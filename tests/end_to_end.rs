//! Cross-crate integration tests: full workloads through the whole stack
//! (simnet → mem → carina → vela → argo → workloads), validating results
//! across programming models.

use argo::{ArgoConfig, ArgoMachine};
use workloads::{blackscholes, cg, ep, lu, matmul, nbody};

#[test]
fn blackscholes_three_models_agree() {
    let p = blackscholes::BsParams {
        options: 500,
        iterations: 2,
    };
    let reference = blackscholes::reference_checksum(p);
    let argo = blackscholes::run_argo(&ArgoMachine::new(ArgoConfig::small(3, 2)), p);
    let mpi = blackscholes::run_mpi_variant(3, 2, p);
    for (name, got) in [("argo", argo.checksum), ("mpi", mpi.checksum)] {
        assert!(
            (got - reference).abs() < 1e-9 * reference,
            "{name}: {got} vs {reference}"
        );
    }
}

#[test]
fn nbody_argo_and_mpi_agree_with_reference() {
    let p = nbody::NbodyParams {
        bodies: 96,
        steps: 2,
    };
    let reference = nbody::reference_checksum(p);
    let argo = nbody::run_argo(&ArgoMachine::new(ArgoConfig::small(2, 3)), p);
    let mpi = nbody::run_mpi_variant(2, 3, p);
    assert!((argo.checksum - reference).abs() < 1e-6 * reference.abs().max(1.0));
    assert!((mpi.checksum - reference).abs() < 1e-6 * reference.abs().max(1.0));
}

#[test]
fn matmul_and_lu_checksums_hold_on_odd_cluster_shapes() {
    // 3 nodes x 5 threads: chunk sizes don't divide anything evenly.
    let m = ArgoMachine::new(ArgoConfig::small(3, 5));
    let mm = matmul::run_argo(&m, matmul::MatmulParams { n: 40 });
    let mm_ref = matmul::reference_checksum(matmul::MatmulParams { n: 40 });
    assert!((mm.checksum - mm_ref).abs() < 1e-6 * mm_ref.abs().max(1.0));

    let m = ArgoMachine::new(ArgoConfig::small(3, 5));
    let l = lu::run_argo(&m, lu::LuParams { n: 48, block: 8 });
    let l_ref = lu::reference_checksum(lu::LuParams { n: 48, block: 8 });
    assert!((l.checksum - l_ref).abs() < 1e-6 * l_ref.abs().max(1.0));
}

#[test]
fn ep_and_cg_match_references_on_pgas_and_argo() {
    let ep_p = ep::EpParams { pairs: 10_000 };
    let ep_ref = ep::reference_tally(ep_p).checksum();
    let a = ep::run_argo(&ArgoMachine::new(ArgoConfig::small(2, 2)), ep_p);
    let u = ep::run_pgas(2, 2, ep_p);
    assert!((a.checksum - ep_ref).abs() < 1e-6 * ep_ref.abs().max(1.0));
    assert!((u.checksum - ep_ref).abs() < 1e-6 * ep_ref.abs().max(1.0));

    let cg_p = cg::CgParams {
        n: 200,
        nnz_per_row: 5,
        iterations: 3,
    };
    let cg_ref = cg::reference_checksum(cg_p);
    let a = cg::run_argo(&ArgoMachine::new(ArgoConfig::small(2, 2)), cg_p);
    let u = cg::run_pgas(2, 2, cg_p);
    assert!((a.checksum - cg_ref).abs() < 1e-6 * cg_ref.abs().max(1.0));
    assert!((u.checksum - cg_ref).abs() < 1e-6 * cg_ref.abs().max(1.0));
}

#[test]
fn checksums_are_stable_across_repeat_runs() {
    let p = nbody::NbodyParams {
        bodies: 64,
        steps: 2,
    };
    let a = nbody::run_argo(&ArgoMachine::new(ArgoConfig::small(2, 2)), p);
    let b = nbody::run_argo(&ArgoMachine::new(ArgoConfig::small(2, 2)), p);
    // Real-thread interleavings differ but the computation is DRF: results
    // must be bit-identical.
    assert_eq!(a.checksum, b.checksum);
    // Virtual time may wiggle with interleaving (NIC reservation order),
    // but not wildly.
    let ratio = a.cycles as f64 / b.cycles as f64;
    assert!((0.5..2.0).contains(&ratio), "cycles diverged: {ratio}");
}

#[test]
fn single_node_runs_produce_no_network_traffic() {
    let p = matmul::MatmulParams { n: 32 };
    let out = matmul::run_argo(&ArgoMachine::new(ArgoConfig::small(1, 4)), p);
    assert_eq!(out.net.rdma_reads, 0);
    assert_eq!(out.net.rdma_writes, 0);
    assert_eq!(out.net.handler_invocations, 0);
}

#[test]
fn argo_never_executes_message_handlers() {
    // The headline property: across a full multi-node workload, zero
    // software message handlers run.
    let p = cg::CgParams {
        n: 300,
        nnz_per_row: 6,
        iterations: 3,
    };
    let out = cg::run_argo(&ArgoMachine::new(ArgoConfig::small(4, 2)), p);
    assert!(out.net.rdma_reads > 0, "workload did use the network");
    assert_eq!(out.net.handler_invocations, 0);
}
