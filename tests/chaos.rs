//! Chaos suite: whole-application runs under deterministic fault injection.
//!
//! The Carina data plane moves bytes through host memory only *after* a
//! verb succeeds, and every remote touchpoint retries with backoff — so a
//! hostile fabric may change when things happen and what the accounting
//! says, but never what the computation produces. These tests run real
//! workloads (matmul, SOR, NAS EP) under seeded [`rma::FaultPlan`]s and
//! assert the checksums are **bit-identical** to the fault-free run, that
//! the injected faults actually happened, and that the retry machinery
//! accounted for them. A permanent blackout then shows the other half of
//! the contract: an exhausted budget surfaces as a clean [`DsmError`], not
//! a hang or a poisoned machine.

use argo::{ArgoConfig, ArgoMachine};
use carina::{CarinaConfig, Dsm, DsmError};
use mem::{GlobalAddr, PAGE_BYTES};
use rma::{
    FaultPlan, FaultSnapshot, FaultyTransport, SimTransport, Transport, VerbClass,
    VerbError,
};
use simnet::{Interconnect, NodeId};
use std::sync::Arc;
use workloads::harness::Outcome;
use workloads::{ep, matmul, sor};

type ChaosNet = FaultyTransport<SimTransport>;

/// The workloads here are deliberately small, so per-mille fault rates
/// would often never fire; chaos runs get a viciously lossy fabric instead
/// (~28% of verb issues fail outright) plus frequent duplicates and spikes.
fn hostile(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        drop_per_million: 200_000,
        timeout_per_million: 100_000,
        duplicate_per_million: 150_000,
        spike_per_million: 150_000,
        spike_cycles: 20_000,
        ..FaultPlan::default()
    }
}

/// An Argo machine whose simulator fabric is wrapped in a fault injector.
/// Returns the fabric handle too, so tests can read the injection counts.
/// The retry budget is raised to 16 attempts per class: at the hostile
/// failure rate that makes spurious exhaustion astronomically unlikely
/// (0.28^16), so any panic here is a real protocol bug.
fn chaos_machine(
    nodes: usize,
    tpn: usize,
    plan: FaultPlan,
) -> (Arc<ArgoMachine<ChaosNet>>, Arc<ChaosNet>) {
    let mut cfg = ArgoConfig::small(nodes, tpn);
    cfg.carina.retry.max_attempts = [16; VerbClass::COUNT];
    let net = FaultyTransport::wrap(Interconnect::new(cfg.topology(), cfg.cost), plan);
    (ArgoMachine::on(cfg, net.clone()), net)
}

/// Fault-free reference run of the same shape.
fn clean_machine(nodes: usize, tpn: usize) -> Arc<ArgoMachine<ChaosNet>> {
    chaos_machine(nodes, tpn, FaultPlan::disabled()).0
}

/// [`chaos_machine`] under an explicit coherence policy.
fn chaos_machine_with<C: carina::Coherence>(
    nodes: usize,
    tpn: usize,
    plan: FaultPlan,
) -> (Arc<ArgoMachine<ChaosNet, C>>, Arc<ChaosNet>) {
    let mut cfg = ArgoConfig::small(nodes, tpn);
    cfg.carina.retry.max_attempts = [16; VerbClass::COUNT];
    let net = FaultyTransport::wrap(Interconnect::new(cfg.topology(), cfg.cost), plan);
    (ArgoMachine::on(cfg, net.clone()), net)
}

/// The core chaos property: same program, same shape, hostile fabric —
/// identical bits out, visible faults and retries in the books.
fn assert_faulted_run_matches(clean: &Outcome, faulted: &Outcome, net: &ChaosNet, what: &str) {
    assert_eq!(
        faulted.checksum.to_bits(),
        clean.checksum.to_bits(),
        "{what}: checksum diverged under faults (clean {} faulted {})",
        clean.checksum,
        faulted.checksum
    );
    assert!(net.injected().total() > 0, "{what}: the fault plan never fired");
    assert_eq!(
        faulted.coherence.verb_exhaustions, 0,
        "{what}: a mixed plan well inside the budget must never exhaust"
    );
}

#[test]
fn matmul_is_bit_identical_under_mixed_faults() {
    let p = matmul::MatmulParams { n: 64 };
    let clean = matmul::run_argo(&clean_machine(2, 2), p);
    assert_eq!(clean.coherence.verb_retries, 0, "healthy fabric must not retry");
    for seed in [11u64, 12, 13] {
        let (m, net) = chaos_machine(2, 2, hostile(seed));
        let faulted = matmul::run_argo(&m, p);
        assert_faulted_run_matches(&clean, &faulted, &net, "matmul");
        assert!(
            faulted.coherence.verb_retries > 0,
            "seed {seed}: faults were injected but nothing retried"
        );
        // Every retry episode lands in the observability profile.
        assert!(faulted.profile.get(obs::Site::Retry).count() > 0);
    }
}

#[test]
fn sor_is_bit_identical_under_mixed_faults() {
    let p = sor::SorParams { n: 48, iterations: 4, omega: 1.25 };
    let clean = sor::run_argo(&clean_machine(3, 1), p);
    for seed in [21u64, 22] {
        let (m, net) = chaos_machine(3, 1, hostile(seed));
        let faulted = sor::run_argo(&m, p);
        assert_faulted_run_matches(&clean, &faulted, &net, "sor");
        assert!(faulted.coherence.verb_retries > 0);
    }
}

#[test]
fn ep_is_bit_identical_under_mixed_faults() {
    let p = ep::EpParams { pairs: 1 << 14 };
    let clean = ep::run_argo(&clean_machine(2, 2), p);
    for seed in [31u64, 32] {
        let (m, net) = chaos_machine(2, 2, hostile(seed));
        let faulted = ep::run_argo(&m, p);
        assert_faulted_run_matches(&clean, &faulted, &net, "ep");
    }
}

/// Duplicates and latency spikes are not failures: nothing retries, the
/// budget never moves, and the bits still match — only timing and the
/// fabric's verb accounting change.
/// The chaos contract is policy-independent: the same hostile fabric under
/// the Tardis lease protocol still produces bit-identical checksums, and
/// the lease machinery keeps working through retries.
#[test]
fn matmul_is_bit_identical_under_mixed_faults_tardis() {
    let p = matmul::MatmulParams { n: 64 };
    let clean = matmul::run_argo(
        &chaos_machine_with::<carina::Tardis>(2, 2, FaultPlan::disabled()).0,
        p,
    );
    assert_eq!(clean.coherence.verb_retries, 0, "healthy fabric must not retry");
    for seed in [31u64, 32] {
        let (m, net) = chaos_machine_with::<carina::Tardis>(2, 2, hostile(seed));
        let faulted = matmul::run_argo(&m, p);
        assert_faulted_run_matches(&clean, &faulted, &net, "matmul/tardis");
        assert!(faulted.coherence.verb_retries > 0);
    }
}

#[test]
fn sor_is_bit_identical_under_mixed_faults_tardis() {
    let p = sor::SorParams { n: 48, iterations: 4, omega: 1.25 };
    let clean = sor::run_argo(
        &chaos_machine_with::<carina::Tardis>(3, 1, FaultPlan::disabled()).0,
        p,
    );
    for seed in [33u64, 34] {
        let (m, net) = chaos_machine_with::<carina::Tardis>(3, 1, hostile(seed));
        let faulted = sor::run_argo(&m, p);
        assert_faulted_run_matches(&clean, &faulted, &net, "sor/tardis");
        assert!(faulted.coherence.verb_retries > 0);
    }
}

/// The Pyxis hybrid adapts its per-page modes from access signals, and
/// retries perturb nothing the signals see (virtual time, not host time),
/// so hostile fabrics must not change its checksums either.
#[test]
fn matmul_is_bit_identical_under_mixed_faults_pyxis() {
    let p = matmul::MatmulParams { n: 64 };
    let clean = matmul::run_argo(
        &chaos_machine_with::<carina::Pyxis>(2, 2, FaultPlan::disabled()).0,
        p,
    );
    assert_eq!(clean.coherence.verb_retries, 0, "healthy fabric must not retry");
    for seed in [35u64, 36] {
        let (m, net) = chaos_machine_with::<carina::Pyxis>(2, 2, hostile(seed));
        let faulted = matmul::run_argo(&m, p);
        assert_faulted_run_matches(&clean, &faulted, &net, "matmul/pyxis");
        assert!(faulted.coherence.verb_retries > 0);
    }
}

#[test]
fn sor_is_bit_identical_under_mixed_faults_pyxis() {
    let p = sor::SorParams { n: 48, iterations: 4, omega: 1.25 };
    let clean = sor::run_argo(
        &chaos_machine_with::<carina::Pyxis>(3, 1, FaultPlan::disabled()).0,
        p,
    );
    for seed in [37u64, 38] {
        let (m, net) = chaos_machine_with::<carina::Pyxis>(3, 1, hostile(seed));
        let faulted = sor::run_argo(&m, p);
        assert_faulted_run_matches(&clean, &faulted, &net, "sor/pyxis");
        assert!(faulted.coherence.verb_retries > 0);
    }
}

#[test]
fn duplicates_and_spikes_change_timing_not_results() {
    let p = matmul::MatmulParams { n: 64 };
    let clean = matmul::run_argo(&clean_machine(2, 2), p);
    let plan = FaultPlan::default()
        .with_seed(99)
        .with_duplicates(400_000)
        .with_spikes(400_000, 25_000);
    let (m, net) = chaos_machine(2, 2, plan);
    let faulted = matmul::run_argo(&m, p);
    assert_eq!(faulted.checksum.to_bits(), clean.checksum.to_bits());
    let injected = net.injected();
    assert!(injected.duplicated > 0 && injected.spiked > 0);
    assert_eq!(injected.dropped + injected.timed_out + injected.stalled, 0);
    assert_eq!(faulted.coherence.verb_retries, 0, "nothing failed, nothing retries");
    assert_eq!(faulted.coherence.verb_exhaustions, 0);
    assert!(
        faulted.cycles > clean.cycles,
        "spiked completions must cost virtual time"
    );
}

/// A transient brownout (well shorter than the retry schedule's total
/// budget) is ridden out by backoff: the program completes with the right
/// answer, and every stall it survived shows up as a retry in the
/// coherence stats and the latency profile.
#[test]
fn transient_brownout_is_survived_by_backoff() {
    use argo::types::GlobalF64Array;
    fn run(plan: FaultPlan) -> (f64, Arc<ChaosNet>, Outcome) {
        let (m, net) = chaos_machine(2, 1, plan);
        let arr = GlobalF64Array::alloc(m.dsm(), 2048);
        let report = m.run(move |ctx| {
            for i in ctx.my_chunk(2048) {
                arr.set(ctx, i, (i * i) as f64);
            }
            ctx.barrier();
            (0..2048).map(|i| arr.get(ctx, i)).sum::<f64>()
        });
        let sum = report.results[0];
        assert!(report.results.iter().all(|&s| s.to_bits() == sum.to_bits()));
        (
            sum,
            net,
            Outcome {
                cycles: report.cycles,
                seconds: report.seconds,
                wall_seconds: report.wall_seconds,
                checksum: sum,
                coherence: report.coherence,
                net: report.net,
                profile: report.profile.clone(),
            },
        )
    }
    let (clean_sum, _, clean) = run(FaultPlan::disabled());
    assert_eq!(clean.coherence.verb_retries, 0);
    let plan = FaultPlan::default().with_brownout(NodeId(1), 0, 150_000);
    let (sum, net, faulted) = run(plan);
    assert_eq!(sum.to_bits(), clean_sum.to_bits(), "brownout changed the data");
    assert!(net.injected().stalled > 0, "the brownout window was never hit");
    assert!(faulted.coherence.verb_retries > 0, "stalls must surface as retries");
    assert!(faulted.profile.get(obs::Site::Retry).count() > 0);
    assert_eq!(faulted.coherence.verb_exhaustions, 0);
    assert!(
        faulted.cycles > clean.cycles,
        "riding out a brownout must cost virtual time"
    );
}

/// The same seed replays the same faults. A single thread is the sole verb
/// issuer, so the per-kind issue counters tick in program order and the
/// schedule is a pure function of the seed — two runs agree on every
/// injection count, and a different seed disagrees.
#[test]
fn fault_schedules_replay_exactly_per_seed() {
    fn run(seed: u64) -> (Vec<u64>, FaultSnapshot) {
        let cfg = ArgoConfig::small(2, 1);
        let net = FaultyTransport::wrap(Interconnect::new(cfg.topology(), cfg.cost), hostile(seed));
        let dsm: Arc<Dsm<ChaosNet>> = Dsm::new(net.clone(), 1 << 20, CarinaConfig::default());
        let mut t = <ChaosNet as Transport>::endpoint(&net, net.topology().loc(NodeId(0), 0));
        // One word per page across 24 pages (half of them remote), with a
        // fence cycle in the middle: write faults, directory updates, group
        // fetches, and drains all draw from the schedule.
        for i in 0..24u64 {
            dsm.write_u64(&mut t, GlobalAddr(i * PAGE_BYTES), i * i);
        }
        dsm.sd_fence(&mut t);
        dsm.si_fence(&mut t);
        let vals = (0..24u64)
            .map(|i| dsm.read_u64(&mut t, GlobalAddr(i * PAGE_BYTES)))
            .collect();
        (vals, net.injected())
    }
    let (vals_a, inj_a) = run(77);
    let (vals_b, inj_b) = run(77);
    assert_eq!(vals_a, vals_b);
    assert!(vals_a.iter().enumerate().all(|(i, &v)| v == (i * i) as u64));
    assert_eq!(inj_a, inj_b, "same seed, different fault schedule");
    assert!(inj_a.total() > 0);
    let (vals_c, inj_c) = run(78);
    assert_eq!(vals_a, vals_c, "faults may never change the data plane");
    assert_ne!(inj_a, inj_c, "different seeds produced the identical schedule");
}

/// A permanent blackout exhausts the retry budget; the fallible API
/// surfaces a typed [`DsmError`] — promptly, with no deadlock — and the
/// machine stays usable for traffic that avoids the dead node.
#[test]
fn blackout_surfaces_a_clean_error_without_deadlock() {
    let cfg = ArgoConfig::small(2, 1);
    let net = FaultyTransport::wrap(
        Interconnect::new(cfg.topology(), cfg.cost),
        FaultPlan::blackout(NodeId(1)),
    );
    let dsm: Arc<Dsm<ChaosNet>> = Dsm::new(net.clone(), 1 << 20, CarinaConfig::default());
    let mut t = <ChaosNet as Transport>::endpoint(&net, net.topology().loc(NodeId(0), 0));

    // Find one page homed on the dead node and one homed locally.
    let mut dead = GlobalAddr(0);
    while dsm.home_of(dead) != 1 {
        dead = dead.offset(PAGE_BYTES);
    }
    let mut alive = GlobalAddr(0);
    while dsm.home_of(alive) != 0 {
        alive = alive.offset(PAGE_BYTES);
    }

    let err = dsm
        .try_read_u64(&mut t, dead)
        .expect_err("a blacked-out home must not produce data");
    assert_eq!(err.last_error, VerbError::NicStall);
    assert_eq!(err.node, 0);
    assert_eq!(err.target, 1);
    assert!(err.attempts > 1, "exhaustion implies the budget was actually spent");
    let msg = format!("{err}");
    assert!(msg.contains("failed after"), "unhelpful error: {msg}");

    // The budget was spent exactly: the error reports every configured
    // attempt for its class, no more and no fewer.
    let budget = dsm.config().retry.attempts(err.class);
    assert_eq!(err.attempts, budget, "exhaustion must spend the whole per-class budget");

    // Writes to the dead home fail the same way; both failures are counted,
    // and the retry counter carries exactly the two budgets' worth of
    // reissues (attempts minus the first try, twice).
    let werr = dsm
        .try_write_u64(&mut t, dead, 7)
        .expect_err("a blacked-out home must not accept writes");
    assert_eq!(werr.attempts, budget);
    let snap = dsm.stats().snapshot();
    assert_eq!(snap.verb_exhaustions, 2);
    assert_eq!(
        snap.verb_retries,
        2 * (budget as u64 - 1),
        "retries must equal the exhausted budgets' reissues exactly"
    );
    assert!(net.injected().stalled > 0);

    // Graceful degradation: the local half of the address space still works.
    dsm.write_u64(&mut t, alive, 42);
    assert_eq!(dsm.read_u64(&mut t, alive), 42);
}

/// Volans stays out of the way of transient trouble: a node that browns
/// out *and recovers* inside the retry schedule's total budget is never
/// declared dead — failover is armed but idle, the membership epoch never
/// moves, and the books show only retries.
#[test]
fn outage_recovers_without_death_declaration() {
    use argo::types::GlobalF64Array;
    fn run(plan: FaultPlan) -> (Arc<ChaosNet>, argo::RunReport<f64>) {
        let mut cfg = ArgoConfig::small(2, 1);
        cfg.carina.volans_failover = true;
        let net = FaultyTransport::wrap(Interconnect::new(cfg.topology(), cfg.cost), plan);
        let m: Arc<ArgoMachine<ChaosNet>> = ArgoMachine::on(cfg, net.clone());
        let arr = GlobalF64Array::alloc(m.dsm(), 2048);
        let report = m.run(move |ctx| {
            for i in ctx.my_chunk(2048) {
                arr.set(ctx, i, (i * i) as f64);
            }
            ctx.barrier();
            (0..2048).map(|i| arr.get(ctx, i)).sum::<f64>()
        });
        (net, report)
    }
    let (_, clean) = run(FaultPlan::disabled());
    assert_eq!(clean.coherence.verb_retries, 0);
    let (net, faulted) = run(FaultPlan::outage(NodeId(1), 0, 150_000));
    assert_eq!(
        faulted.results[0].to_bits(),
        clean.results[0].to_bits(),
        "a survived outage changed the data"
    );
    assert!(net.injected().stalled > 0, "the outage window was never hit");
    assert!(faulted.coherence.verb_retries > 0, "stalls must surface as retries");
    assert_eq!(faulted.coherence.verb_exhaustions, 0, "the budget sufficed");
    assert_eq!(
        faulted.coherence.failovers, 0,
        "a recovered node must never be declared dead"
    );
    assert_eq!(faulted.coherence.pages_rehomed, 0);
    assert_eq!(faulted.membership_epoch, 0, "membership must not move for a brownout");
    assert_eq!(faulted.nodes_alive, 2);
}

/// The lock layer degrades just as cleanly: a CAS against a dead lock home
/// returns `Err` instead of spinning forever, and leaves no residue.
#[test]
fn lock_acquire_against_dead_home_fails_cleanly() {
    let cfg = ArgoConfig::small(2, 1);
    let net = FaultyTransport::wrap(
        Interconnect::new(cfg.topology(), cfg.cost),
        FaultPlan::blackout(NodeId(0)),
    );
    let dsm: Arc<Dsm<ChaosNet>> = Dsm::new(net.clone(), 1 << 20, CarinaConfig::default());
    let lock = vela::DsmGlobalLock::with_retry(NodeId(0), dsm.config().retry);
    let mut t = <ChaosNet as Transport>::endpoint(&net, net.topology().loc(NodeId(1), 0));
    let err: DsmError = lock
        .try_acquire(&mut t)
        .expect_err("a dead lock home must not grant the lock");
    assert_eq!(err.last_error, VerbError::NicStall);
    // The failed acquisition left no residue — the lock never counted as
    // held, so nothing downstream can double-release it.
    assert_eq!(lock.stats().acquisitions, 0);
}

/// The flight recorder under fire: a hostile fabric makes verbs retry, and
/// the Lyra trace must tell the whole story — every retried attempt links
/// by flow arrows (`s`/`t`/`f` keyed by span) to the protocol site that
/// issued it, injected fault fates appear as `fault_injected` records, and
/// a threshold-triggered tail capture holds the offender's full attempt
/// history in its ring snapshot.
#[test]
fn chaos_trace_links_retried_attempts_to_their_site_span() {
    use obs::{JsonValue, RecordKind, Site};
    let cfg = ArgoConfig::small(2, 1);
    let mut ccfg = CarinaConfig::default();
    ccfg.retry.max_attempts = [16; VerbClass::COUNT];
    // Tail threshold sized between the clean-path service time (a read
    // miss on this fabric is ~10k cycles, a write fault ~7k) and the cost
    // of an operation inflated by backoff or an injected spike — only
    // slow offenders trigger captures.
    ccfg.lyra_tail_threshold = 11_000;
    let net = FaultyTransport::wrap(Interconnect::new(cfg.topology(), cfg.cost), hostile(77));
    let dsm: Arc<Dsm<ChaosNet>> = Dsm::new(net.clone(), 1 << 20, ccfg);
    let mut t = <ChaosNet as Transport>::endpoint(&net, net.topology().loc(NodeId(0), 0));
    for i in 0..24u64 {
        dsm.write_u64(&mut t, GlobalAddr(i * PAGE_BYTES), i * i);
    }
    dsm.sd_fence(&mut t);
    dsm.si_fence(&mut t);
    for i in 0..24u64 {
        assert_eq!(dsm.read_u64(&mut t, GlobalAddr(i * PAGE_BYTES)), i * i);
    }
    assert!(net.injected().total() > 0, "the fault plan never fired");
    assert!(dsm.stats().snapshot().verb_retries > 0, "nothing retried");

    let doc = JsonValue::parse(&dsm.lyra().to_chrome_trace()).expect("valid lyra JSON");
    let items = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let span_of = |e: &JsonValue| {
        e.get("args").and_then(|a| a.get("span")).and_then(|s| s.as_str()).map(String::from)
    };

    // Every retried attempt names a span whose flow chain exists and whose
    // parent site slice (read_miss / write_fault / fence) is in the trace.
    let retry_spans: Vec<String> = items
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("verb_retry"))
        .filter_map(span_of)
        .collect();
    assert!(!retry_spans.is_empty(), "retries happened but none were recorded");
    for span in &retry_spans {
        assert_ne!(span, "0x0", "a retry must be attributed to a minted span");
        let phases: Vec<&str> = items
            .iter()
            .filter(|e| e.get("id").and_then(|i| i.as_str()) == Some(span))
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert!(
            phases.contains(&"s") && phases.contains(&"f"),
            "span {span}: retry not linked by flow arrows ({phases:?})"
        );
        assert!(
            items.iter().any(|e| {
                let name = e.get("name").and_then(|n| n.as_str()).unwrap_or("");
                Site::ALL.iter().any(|s| s.name() == name) && span_of(e).as_deref() == Some(span)
            }),
            "span {span}: no parent site slice in the trace"
        );
    }

    // The injector's decisions are first-class records with real fates.
    let fault_fates: Vec<String> = items
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("fault_injected"))
        .map(|e| e.get("args").unwrap().get("fate").unwrap().as_str().unwrap().to_string())
        .collect();
    assert!(!fault_fates.is_empty(), "injected faults left no flight records");
    assert!(
        fault_fates.iter().all(|f| f != "ok"),
        "an injected fault cannot have fate ok: {fault_fates:?}"
    );

    // Tail capture: at least one slow operation crossed the threshold, and
    // some capture's ring snapshot holds the full attempt history of the
    // span that triggered it — retry records with non-ok fates plus the
    // faults the injector dealt it.
    let caps = dsm.lyra().tail_captures();
    assert!(!caps.is_empty(), "threshold crossed but nothing captured");
    assert!(dsm.lyra().stats().tail_captures >= caps.len() as u64);
    let offender = caps
        .iter()
        .find(|c| {
            let own = |k: RecordKind| c.records.iter().any(|r| r.span == c.span && r.kind == k);
            own(RecordKind::VerbRetry) && own(RecordKind::FaultInjected)
        })
        .expect("no capture holds its own span's retry + fault history");
    let history: Vec<_> =
        offender.records.iter().filter(|r| r.span == offender.span).collect();
    assert!(history.len() >= 3, "capture must hold the span's record chain");
    // Per-attempt retry records (those naming the attempt that failed)
    // carry the failure's fate; an injected fault never reads as ok.
    assert!(history
        .iter()
        .filter(|r| r.kind == RecordKind::FaultInjected)
        .all(|r| r.fate != obs::Fate::Ok));
}

/// Speculation under fire: the stride prefetcher issues extra fallible
/// verbs whose failures the protocol must absorb silently — a failed
/// speculative fetch is dropped (counted as waste), never retried and
/// never surfaced. The checksum must still match the fault-free,
/// prefetch-free reference bit for bit, and the prefetch books must
/// balance: every issued page is eventually a hit or a waste.
#[test]
fn prefetch_speculation_is_bit_identical_under_mixed_faults() {
    let p = matmul::MatmulParams { n: 96 };
    let clean = matmul::run_argo(&clean_machine(2, 2), p);
    for seed in [41u64, 42] {
        let mut cfg = ArgoConfig::small(2, 2);
        cfg.carina.retry.max_attempts = [16; VerbClass::COUNT];
        cfg.carina.prefetch_lines = 8;
        cfg.carina.prefetch_streak = 2;
        let net = FaultyTransport::wrap(Interconnect::new(cfg.topology(), cfg.cost), hostile(seed));
        let m = ArgoMachine::<_, carina::CarinaSiSd>::on(cfg, net.clone());
        let faulted = matmul::run_argo(&m, p);
        assert_faulted_run_matches(&clean, &faulted, &net, "matmul+prefetch");
        let c = &faulted.coherence;
        assert!(c.prefetch_issued > 0, "seed {seed}: the predictor never engaged");
        assert_eq!(
            c.prefetch_hits + c.prefetch_wasted,
            c.prefetch_issued,
            "seed {seed}: prefetch books must balance after the run"
        );
    }
}
