//! Cross-backend equivalence: the same DRF programs, the same protocol
//! engine, two transports.
//!
//! The transport layer's promise is that backend choice changes *when
//! things cost*, never *what the memory says*. Each program here is written
//! once, generically over `rma::Transport`, and executed on both the
//! virtual-time simulator and the wall-clock native backend; final global
//! memory contents must agree bit for bit, and the coherence statistics
//! must satisfy the same structural invariants (the raw counts may differ —
//! timing changes eviction interleavings — but the protocol's bookkeeping
//! identities hold on any backend).

use argo::types::GlobalF64Array;
use argo::{ArgoConfig, ArgoMachine};
use carina::{CarinaSiSd, Coherence, CoherenceSnapshot};
use rma::{Endpoint, Transport};
use workloads::{matmul, sor};

/// Producer/consumer over a page-striped array: even tids write their
/// chunk, a barrier publishes, every thread then sums the whole array.
/// Returns (final memory words, per-thread sums, coherence stats).
fn producer_consumer<T: Transport, C: Coherence>(
    machine: &std::sync::Arc<ArgoMachine<T, C>>,
    n: usize,
) -> (Vec<u64>, Vec<f64>, CoherenceSnapshot) {
    let arr = GlobalF64Array::alloc(machine.dsm(), n);
    let report = machine.run(move |ctx| {
        for i in ctx.my_chunk(n) {
            arr.set(ctx, i, (i * i) as f64);
        }
        ctx.barrier();
        let mut sum = 0.0;
        for i in 0..n {
            sum += arr.get(ctx, i);
        }
        sum
    });
    let words = (0..n)
        .map(|i| machine.dsm().peek_u64(arr.addr(i)))
        .collect();
    (words, report.results, report.coherence)
}

/// Multi-phase barrier program: each phase, every thread increments every
/// slot it owns and reads a neighbour thread's slot from the previous
/// phase. Exercises repeated SI/SD cycles rather than one publish.
fn barrier_phases<T: Transport, C: Coherence>(
    machine: &std::sync::Arc<ArgoMachine<T, C>>,
    phases: usize,
) -> (Vec<u64>, CoherenceSnapshot) {
    let total = machine.config().total_threads();
    let stride = 512; // one page per slot: keeps the program DRF per word
    let arr = GlobalF64Array::alloc(machine.dsm(), total * stride);
    let report = machine.run(move |ctx| {
        let me = ctx.tid() * stride;
        let neighbour = ((ctx.tid() + 1) % total) * stride;
        let mut observed = 0.0;
        for _ in 0..phases {
            let v = arr.get(ctx, me);
            arr.set(ctx, me, v + 1.0);
            ctx.barrier();
            observed += arr.get(ctx, neighbour);
            ctx.barrier();
        }
        observed
    });
    let words = (0..total)
        .map(|t| machine.dsm().peek_u64(arr.addr(t * stride)))
        .collect();
    // Each neighbour slot is read once per phase, after its phase-p
    // increment: observed = 1 + 2 + ... + phases.
    let expect = (phases * (phases + 1) / 2) as f64;
    assert!(report.results.iter().all(|&o| o == expect));
    (words, report.coherence)
}

/// Bookkeeping identities that hold on any backend.
fn check_invariants(c: &CoherenceSnapshot) {
    assert!(c.read_misses > 0, "cross-node program must miss");
    assert!(c.write_faults > 0, "cross-node program must write-fault");
    assert!(c.si_fences > 0 && c.sd_fences > 0, "barriers must fence");
    assert!(
        c.writeback_bytes == 0 || c.writebacks > 0,
        "writeback bytes without writeback events"
    );
}

fn machines(nodes: usize, tpn: usize) -> (
    std::sync::Arc<ArgoMachine>,
    std::sync::Arc<ArgoMachine<rma::NativeTransport>>,
) {
    let cfg = ArgoConfig::small(nodes, tpn);
    (ArgoMachine::new(cfg), ArgoMachine::native(cfg))
}

type MachinePair<C> = (
    std::sync::Arc<ArgoMachine<rma::SimTransport, C>>,
    std::sync::Arc<ArgoMachine<rma::NativeTransport, C>>,
);

/// [`machines`] under an explicit coherence policy.
fn machines_with<C: Coherence>(nodes: usize, tpn: usize) -> MachinePair<C> {
    let cfg = ArgoConfig::small(nodes, tpn);
    (ArgoMachine::with_policy(cfg), ArgoMachine::native_with_policy(cfg))
}

/// Structural invariants that hold under any policy (Tardis never reflects
/// classification transitions, so the fence identities are all we pin).
fn check_invariants_any_policy(c: &CoherenceSnapshot) {
    assert!(c.read_misses > 0, "cross-node program must miss");
    assert!(c.write_faults > 0, "cross-node program must write-fault");
    assert!(c.si_fences > 0 && c.sd_fences > 0, "barriers must fence");
    assert!(
        c.writeback_bytes == 0 || c.writebacks > 0,
        "writeback bytes without writeback events"
    );
}

#[test]
fn producer_consumer_identical_memory_on_both_backends() {
    let (sim, native) = machines(3, 2);
    let (mem_sim, sums_sim, coh_sim) = producer_consumer(&sim, 2048);
    let (mem_nat, sums_nat, coh_nat) = producer_consumer(&native, 2048);
    assert_eq!(mem_sim, mem_nat, "final memory diverged across backends");
    assert_eq!(sums_sim, sums_nat, "observed values diverged");
    let expect: f64 = (0..2048u64).map(|i| (i * i) as f64).sum();
    assert!(sums_sim.iter().all(|&s| s == expect));
    check_invariants(&coh_sim);
    check_invariants(&coh_nat);
}

/// The backend-equivalence promise is policy-independent: the same two
/// programs must agree across backends under the Tardis lease protocol
/// too, and its lease counters must actually move.
#[test]
fn producer_consumer_identical_memory_on_both_backends_tardis() {
    let (sim, native) = machines_with::<carina::Tardis>(3, 2);
    let (mem_sim, sums_sim, coh_sim) = producer_consumer(&sim, 2048);
    let (mem_nat, sums_nat, coh_nat) = producer_consumer(&native, 2048);
    assert_eq!(mem_sim, mem_nat, "final memory diverged across backends");
    assert_eq!(sums_sim, sums_nat, "observed values diverged");
    let expect: f64 = (0..2048u64).map(|i| (i * i) as f64).sum();
    assert!(sums_sim.iter().all(|&s| s == expect));
    check_invariants_any_policy(&coh_sim);
    check_invariants_any_policy(&coh_nat);
}

#[test]
fn barrier_phases_identical_memory_on_both_backends_tardis() {
    let (sim, native) = machines_with::<carina::Tardis>(2, 3);
    let (mem_sim, coh_sim) = barrier_phases(&sim, 5);
    let (mem_nat, coh_nat) = barrier_phases(&native, 5);
    assert_eq!(mem_sim, mem_nat, "final memory diverged across backends");
    assert!(mem_sim.iter().all(|&w| f64::from_bits(w) == 5.0));
    check_invariants_any_policy(&coh_sim);
    check_invariants_any_policy(&coh_nat);
}

#[test]
fn producer_consumer_identical_memory_on_both_backends_pyxis() {
    let (sim, native) = machines_with::<carina::Pyxis>(3, 2);
    let (mem_sim, sums_sim, coh_sim) = producer_consumer(&sim, 2048);
    let (mem_nat, sums_nat, coh_nat) = producer_consumer(&native, 2048);
    assert_eq!(mem_sim, mem_nat, "final memory diverged across backends");
    assert_eq!(sums_sim, sums_nat, "observed values diverged");
    let expect: f64 = (0..2048u64).map(|i| (i * i) as f64).sum();
    assert!(sums_sim.iter().all(|&s| s == expect));
    check_invariants_any_policy(&coh_sim);
    check_invariants_any_policy(&coh_nat);
}

#[test]
fn barrier_phases_identical_memory_on_both_backends_pyxis() {
    let (sim, native) = machines_with::<carina::Pyxis>(2, 3);
    let (mem_sim, coh_sim) = barrier_phases(&sim, 5);
    let (mem_nat, coh_nat) = barrier_phases(&native, 5);
    assert_eq!(mem_sim, mem_nat, "final memory diverged across backends");
    assert!(mem_sim.iter().all(|&w| f64::from_bits(w) == 5.0));
    check_invariants_any_policy(&coh_sim);
    check_invariants_any_policy(&coh_nat);
}

#[test]
fn barrier_phases_identical_memory_on_both_backends() {
    let (sim, native) = machines(2, 3);
    let (mem_sim, coh_sim) = barrier_phases(&sim, 5);
    let (mem_nat, coh_nat) = barrier_phases(&native, 5);
    assert_eq!(mem_sim, mem_nat, "final memory diverged across backends");
    assert!(mem_sim.iter().all(|&w| f64::from_bits(w) == 5.0));
    check_invariants(&coh_sim);
    check_invariants(&coh_nat);
}

/// Batched and per-page SD-fence drains are data-plane equivalent: forcing
/// `BatchDrain::Always` vs `Never` must leave bit-identical final home
/// memory (and identical observed values) on *both* backends. Only verb
/// timing and doorbell accounting may differ.
#[test]
fn batched_drain_equals_per_page_drain_on_both_backends() {
    use carina::BatchDrain;
    // Thread-striped writes: every thread writes word `tid` of each of its
    // slots, so every thread dirties (mostly remote) pages homed all over
    // the cluster — fence drains then have several homes to coalesce per
    // batch. One thread per node keeps each node's push/downgrade sequence
    // fully deterministic, so the two modes' counters are exactly
    // comparable.
    fn striped<T: Transport>(
        machine: &std::sync::Arc<ArgoMachine<T>>,
        n: usize,
    ) -> (Vec<u64>, Vec<f64>, CoherenceSnapshot) {
        let total = machine.config().total_threads();
        let arr = GlobalF64Array::alloc(machine.dsm(), n);
        let report = machine.run(move |ctx| {
            let mut i = ctx.tid();
            while i < n {
                arr.set(ctx, i, (i * i) as f64);
                i += total;
            }
            ctx.barrier();
            (0..n).map(|i| arr.get(ctx, i)).sum()
        });
        let words = (0..n)
            .map(|i| machine.dsm().peek_u64(arr.addr(i)))
            .collect();
        (words, report.results, report.coherence)
    }
    let run = |mode: BatchDrain| {
        let mut cfg = ArgoConfig::small(3, 1);
        cfg.carina.batch_drain = mode;
        // Small write buffer: overflow victims (always per-page) and fence
        // drains (mode-dependent) both occur.
        cfg.carina.write_buffer_pages = 6;
        let sim = striped(&ArgoMachine::new(cfg), 1536);
        let nat = striped(&ArgoMachine::native(cfg), 1536);
        (sim, nat)
    };
    let (sim_b, nat_b) = run(BatchDrain::Always);
    let (sim_p, nat_p) = run(BatchDrain::Never);
    assert_eq!(sim_b.0, sim_p.0, "sim: batch vs per-page memory diverged");
    assert_eq!(nat_b.0, nat_p.0, "native: batch vs per-page memory diverged");
    assert_eq!(sim_b.0, nat_b.0, "backends diverged under batching");
    assert_eq!(sim_b.1, sim_p.1, "sim: observed sums diverged");
    check_invariants(&sim_b.2);
    check_invariants(&nat_b.2);
    // Batching coalesces postings but not traffic: byte totals match the
    // per-page drain exactly on the deterministic simulator.
    assert_eq!(
        sim_b.2.writeback_bytes, sim_p.2.writeback_bytes,
        "batching changed how many bytes go home"
    );
    assert_eq!(sim_b.2.writebacks, sim_p.2.writebacks);
}

/// Overlapped verb issue is a timing feature only. Multi-page cache lines
/// make every read miss put several home groups' reads in flight before
/// polling any; `BatchDrain::Always` makes every SD fence post all per-home
/// drain batches before polling any; and the stride prefetcher adds
/// speculative reads on top. None of that may change what memory says:
/// final home memory and every observed value must be bit-identical across
/// configurations and across backends.
#[test]
fn overlapped_fills_and_prefetch_identical_memory_on_both_backends() {
    use carina::BatchDrain;
    use mem::CacheConfig;
    type Run = (Vec<u64>, Vec<f64>, CoherenceSnapshot);
    fn run(cfg: ArgoConfig) -> (Run, Run) {
        let sim = producer_consumer(&ArgoMachine::new(cfg), 16384);
        let nat = producer_consumer(&ArgoMachine::native(cfg), 16384);
        (sim, nat)
    }
    let mut plain = ArgoConfig::small(3, 2);
    plain.carina.cache = CacheConfig::new(256, 4); // multi-group line fills
    plain.carina.batch_drain = BatchDrain::Always; // overlapped fence drains
    let mut speculative = plain;
    speculative.carina.prefetch_lines = 8;
    speculative.carina.prefetch_streak = 2;
    let (sim_plain, nat_plain) = run(plain);
    let (sim_spec, nat_spec) = run(speculative);
    assert_eq!(sim_plain.0, nat_plain.0, "backends diverged (plain)");
    assert_eq!(sim_spec.0, nat_spec.0, "backends diverged (speculative)");
    assert_eq!(sim_plain.0, sim_spec.0, "prefetch changed memory (sim)");
    assert_eq!(sim_plain.1, sim_spec.1, "prefetch changed observed values");
    check_invariants(&sim_spec.2);
    check_invariants(&nat_spec.2);
    assert!(
        sim_spec.2.prefetch_issued > 0 && sim_spec.2.prefetch_hits > 0,
        "the sequential sum phase must engage the stride predictor: {:?}",
        sim_spec.2
    );
}

#[test]
fn matmul_end_to_end_on_native() {
    let p = matmul::MatmulParams { n: 48 };
    let sim = matmul::run_argo(&ArgoMachine::new(ArgoConfig::small(2, 2)), p);
    let nat = matmul::run_argo(&ArgoMachine::native(ArgoConfig::small(2, 2)), p);
    assert!(
        nat.checksum_matches(&sim, 1e-9),
        "matmul checksum diverged: sim {} native {}",
        sim.checksum,
        nat.checksum
    );
    assert_eq!(nat.cycles, 0, "native backend has no virtual clock");
    assert!(nat.wall_seconds > 0.0);
}

/// Observability event *counts* are backend-independent for a fully
/// deterministic program: one thread per node, phase-separated by
/// barriers, and delegated sections that are compute-only (so helper
/// batching nondeterminism cannot leak into miss counts). The latency
/// *values* differ by design — virtual cycles vs wall nanoseconds — but
/// both backends must observe the same events the same number of times.
#[test]
fn observability_counts_identical_on_both_backends() {
    fn counts<T: Transport>(
        machine: &std::sync::Arc<ArgoMachine<T>>,
    ) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
        let arr = GlobalF64Array::alloc(machine.dsm(), 1024);
        let lock = vela::Hqdl::new_named(machine.dsm().clone(), 32, "obs");
        let report = machine.run(move |ctx| {
            for i in ctx.my_chunk(1024) {
                arr.set(ctx, i, (i * 3) as f64);
            }
            ctx.barrier();
            let mut s = 0.0;
            for i in 0..1024 {
                s += arr.get(ctx, i);
            }
            ctx.barrier();
            for _ in 0..40 {
                lock.delegate_wait(&mut ctx.thread, |ht| ht.compute(10));
            }
            ctx.barrier();
            s
        });
        let lock = &report.locks[0];
        (
            report.coherence.read_misses,
            report.coherence.write_faults,
            report.profile.get(obs::Site::ReadMiss).count(),
            report.profile.get(obs::Site::WriteFault).count(),
            report.profile.get(obs::Site::BarrierWait).count(),
            lock.delegations,
            lock.executed(),
            lock.queue_wait.count(),
        )
    }
    let (sim, native) = machines(3, 1);
    let cs = counts(&sim);
    let cn = counts(&native);
    assert_eq!(cs, cn, "observability event counts diverged across backends");
    assert!(cs.0 > 0 && cs.1 > 0, "program must miss and fault");
    assert_eq!(cs.0, cs.2, "every read miss must be profiled");
    assert_eq!(cs.1, cs.3, "every write fault must be profiled");
    assert_eq!(cs.4, 3 * 3, "three threads, three barriers each");
    assert_eq!(cs.5, 3 * 40);
    assert_eq!(cs.5, cs.6, "every delegation must execute exactly once");
}

#[test]
fn sor_end_to_end_on_native() {
    let p = sor::SorParams { n: 64, iterations: 6, omega: 1.25 };
    let sim = sor::run_argo(&ArgoMachine::new(ArgoConfig::small(2, 2)), p);
    let nat = sor::run_argo(&ArgoMachine::native(ArgoConfig::small(2, 2)), p);
    assert!(
        nat.checksum_matches(&sim, 1e-9),
        "sor checksum diverged: sim {} native {}",
        sim.checksum,
        nat.checksum
    );
    assert_eq!(nat.cycles, 0);
}

/// The fault schedule is a pure function of (seed, verb kind, issue count,
/// target) — virtual time is deliberately left out of the draw — so a
/// single issuer replaying the same verb sequence sees the *same* faults
/// on the simulator and on native hardware, even though their clocks are
/// unrelated.
#[test]
fn fault_schedule_is_backend_independent() {
    use rma::{Endpoint as _, FaultPlan, FaultyTransport, VerbError};
    use simnet::{ClusterTopology, NodeId};

    fn pattern<T: Transport>(fab: std::sync::Arc<FaultyTransport<T>>) -> Vec<Result<(), VerbError>> {
        let loc = fab.topology().loc(NodeId(0), 0);
        let mut e = <FaultyTransport<T> as Transport>::endpoint(&fab, loc);
        let mut out = Vec::new();
        for i in 0..200u64 {
            let target = NodeId(1 + (i % 2) as u16);
            out.push(e.rdma_read(target, 64 + i));
            out.push(e.rdma_write(target, 64).map(|_| ()));
            out.push(e.rdma_cas(target));
            e.compute(997); // desynchronize the clocks: the schedule must not care
        }
        out
    }
    let plan = FaultPlan::seeded(1234);
    let topo = ClusterTopology::tiny(3);
    let sim = pattern(FaultyTransport::wrap(
        simnet::Interconnect::new(topo, simnet::CostModel::paper_2011()),
        plan.clone(),
    ));
    let nat = pattern(FaultyTransport::wrap(rma::NativeTransport::new(topo), plan));
    assert_eq!(sim, nat, "fault schedule diverged across backends");
    assert!(sim.iter().any(|r| r.is_err()), "the plan never fired");
}

/// Whole-application chaos across backends: the same hostile plan on the
/// simulator and the native backend leaves the checksums in agreement —
/// faults perturb timing and accounting on both, never the data plane.
#[test]
fn matmul_under_faults_agrees_across_backends() {
    use rma::{FaultPlan, FaultyTransport, VerbClass};

    let p = matmul::MatmulParams { n: 48 };
    let plan = FaultPlan::seeded(5)
        .with_drops(150_000)
        .with_timeouts(50_000);
    let mut cfg = ArgoConfig::small(2, 2);
    cfg.carina.retry.max_attempts = [16; VerbClass::COUNT];
    let sim_net = FaultyTransport::wrap(
        simnet::Interconnect::new(cfg.topology(), cfg.cost),
        plan.clone(),
    );
    let nat_net = FaultyTransport::wrap(
        rma::NativeTransport::with_cost(cfg.topology(), cfg.cost),
        plan,
    );
    let sim = matmul::run_argo(&ArgoMachine::<_, CarinaSiSd>::on(cfg, sim_net.clone()), p);
    let nat = matmul::run_argo(&ArgoMachine::<_, CarinaSiSd>::on(cfg, nat_net.clone()), p);
    assert!(
        nat.checksum_matches(&sim, 1e-9),
        "faulted matmul diverged: sim {} native {}",
        sim.checksum,
        nat.checksum
    );
    assert!(sim_net.injected().total() > 0 && nat_net.injected().total() > 0);
    assert_eq!(sim.coherence.verb_exhaustions, 0);
    assert_eq!(nat.coherence.verb_exhaustions, 0);
    check_invariants(&sim.coherence);
    check_invariants(&nat.coherence);
}
