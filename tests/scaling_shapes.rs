//! Cheap shape assertions: the paper's headline qualitative results must
//! hold even at the reduced problem sizes CI can afford. (The bench
//! binaries regenerate the full figures; these tests pin the *direction*
//! of every claim so a regression is caught by `cargo test`.)

use argo::{ArgoConfig, ArgoMachine};
use carina::{CarinaConfig, ClassificationMode};
use vela::{DsmCohortLock, DsmPairingHeap, Hqdl};
use workloads::{blackscholes, cg};

/// Figure 8 direction: P/S3 is no slower than no-classification (S) on a
/// classification-friendly workload, and strictly faster on Blackscholes.
#[test]
fn ps3_beats_no_classification_on_blackscholes() {
    let p = blackscholes::BsParams {
        options: 4096,
        iterations: 3,
    };
    let run = |mode| {
        let mut cfg = ArgoConfig::small(4, 2);
        cfg.carina = CarinaConfig::with_mode(mode);
        blackscholes::run_argo(&ArgoMachine::new(cfg), p)
    };
    let s = run(ClassificationMode::AllShared);
    let ps3 = run(ClassificationMode::Ps3);
    assert!(s.checksum_matches(&ps3, 1e-9));
    assert!(
        (ps3.cycles as f64) < 0.9 * s.cycles as f64,
        "P/S3 {} vs S {}",
        ps3.cycles,
        s.cycles
    );
    // And the classification actually kept pages at SI fences.
    assert!(ps3.coherence.si_kept > ps3.coherence.si_invalidated);
}

/// Figure 9 direction: a tiny write buffer is much slower than a large one.
/// LU at n=128/b=16 is the stressor: a thread's consecutive blocks revisit
/// the same pages (one matrix row = one page), so a 1-page buffer
/// downgrades hot pages between blocks and every revisit refaults —
/// deterministically, with one thread per node (no scheduling luck).
#[test]
fn tiny_write_buffer_is_catastrophic() {
    let p = workloads::lu::LuParams { n: 128, block: 16 };
    let run = |wb| {
        let mut cfg = ArgoConfig::small(4, 1);
        cfg.carina = CarinaConfig::with_write_buffer(wb);
        workloads::lu::run_argo(&ArgoMachine::new(cfg), p)
    };
    let tiny = run(1);
    let large = run(4096);
    assert!(tiny.checksum_matches(&large, 1e-9));
    assert!(
        tiny.cycles > large.cycles,
        "tiny buffer {} not slower than large {}",
        tiny.cycles,
        large.cycles
    );
    assert!(
        tiny.coherence.writebacks > large.coherence.writebacks,
        "Figure 10 direction: writebacks must fall with buffer size"
    );
}

/// Figure 12 direction: HQDL sustains higher critical-section throughput
/// than the distributed cohort lock on a multi-node cluster.
#[test]
fn hqdl_beats_cohort_over_dsm() {
    fn run(hqdl: bool) -> u64 {
        let m = ArgoMachine::new(ArgoConfig::small(3, 3));
        let dsm = m.dsm().clone();
        let base = dsm
            .allocator()
            .alloc(DsmPairingHeap::bytes_needed(4096), 8)
            .unwrap();
        let qd = Hqdl::new(dsm.clone(), 256);
        let cohort = DsmCohortLock::new(dsm.clone(), 48);
        let d0 = dsm.clone();
        m.run(move |ctx| {
            if ctx.tid() == 0 {
                let h = DsmPairingHeap::init(&d0, &mut ctx.thread, base, 4096);
                for k in 0..128 {
                    h.insert(&d0, &mut ctx.thread, k * 3);
                }
            }
            ctx.start_measurement();
            let heap = DsmPairingHeap::attach(base);
            for i in 0..60u64 {
                let dsm = d0.clone();
                let k = i * 17 + ctx.tid() as u64;
                if hqdl {
                    if i % 2 == 0 {
                        let _ = qd.delegate(&mut ctx.thread, move |ht| heap.insert(&dsm, ht, k));
                    } else {
                        qd.delegate_wait(&mut ctx.thread, move |ht| {
                            heap.extract_min(&dsm, ht);
                        });
                    }
                } else if i % 2 == 0 {
                    cohort.with(&mut ctx.thread, |ht| heap.insert(&d0, ht, k));
                } else {
                    cohort.with(&mut ctx.thread, |ht| {
                        heap.extract_min(&d0, ht);
                    });
                }
            }
            if hqdl {
                qd.delegate_wait(&mut ctx.thread, |_| {});
            }
            0.0
        })
        .cycles
    }
    let hqdl_cycles = run(true);
    let cohort_cycles = run(false);
    assert!(
        hqdl_cycles < cohort_cycles,
        "HQDL {hqdl_cycles} not faster than cohort {cohort_cycles}"
    );
}

/// Figure 13f direction: going from 1 to 4 nodes helps Argo's CG more than
/// the PGAS (UPC-style) version, whose per-rank bulk pulls scale worse.
#[test]
#[cfg_attr(debug_assertions, ignore = "paper-size CG; run with --release")]
fn argo_cg_scales_better_than_pgas() {
    // Large enough that compute dominates reductions — at toy sizes both
    // systems are communication-bound and neither scales.
    let p = cg::CgParams {
        n: 16_384,
        nnz_per_row: 12,
        iterations: 3,
    };
    let argo1 = cg::run_argo(&ArgoMachine::new(ArgoConfig::small(1, 4)), p);
    let argo4 = cg::run_argo(&ArgoMachine::new(ArgoConfig::small(4, 4)), p);
    let pgas1 = cg::run_pgas(1, 4, p);
    let pgas4 = cg::run_pgas(4, 4, p);
    let argo_gain = argo1.cycles as f64 / argo4.cycles as f64;
    let pgas_gain = pgas1.cycles as f64 / pgas4.cycles as f64;
    assert!(
        argo_gain > pgas_gain,
        "argo gain {argo_gain:.2} vs pgas gain {pgas_gain:.2}"
    );
}

/// Passive vs active directory: the ablation must never favour handlers.
#[test]
fn passive_directory_is_never_slower() {
    // 3000 options: deliberately *not* page-aligned to the thread count,
    // so chunks straddle remote pages. (2048 options on 8 threads puts
    // every chunk on its own home node — accidentally perfect placement
    // with zero traffic.)
    let p = blackscholes::BsParams {
        options: 3000,
        iterations: 2,
    };
    let passive = blackscholes::run_argo(&ArgoMachine::new(ArgoConfig::small(4, 2)), p);
    let mut cfg = ArgoConfig::small(4, 2);
    cfg.carina.active_directory = true;
    let active = blackscholes::run_argo(&ArgoMachine::new(cfg), p);
    assert!(passive.cycles <= active.cycles);
    assert_eq!(passive.net.handler_invocations, 0);
    assert!(active.net.handler_invocations > 0);
}

/// Blackscholes keeps scaling with node count in Argo (Figure 13c
/// direction) at fixed problem size.
#[test]
fn blackscholes_argo_scales_with_nodes() {
    let p = blackscholes::BsParams {
        options: 8192,
        iterations: 3,
    };
    let seq = blackscholes::run_argo(&ArgoMachine::new(ArgoConfig::small(1, 1)), p);
    let n2 = blackscholes::run_argo(&ArgoMachine::new(ArgoConfig::small(2, 4)), p);
    let n4 = blackscholes::run_argo(&ArgoMachine::new(ArgoConfig::small(4, 4)), p);
    let s2 = n2.speedup_over(&seq);
    let s4 = n4.speedup_over(&seq);
    assert!(s2 > 1.5, "2-node speedup {s2:.2}");
    assert!(s4 > s2, "4 nodes ({s4:.2}) not faster than 2 ({s2:.2})");
}
