//! Cross-policy equivalence: the coherence policy decides *when* cached
//! copies die and *what* the directory remembers — never what a
//! data-race-free program computes.
//!
//! Each program here runs on identically configured machines once per
//! policy — the Carina SI/SD classification protocol, the Tardis
//! timestamp-lease protocol, and the Pyxis hybrid — and the results must
//! be bit-identical. The policies' *mechanisms* are allowed (expected!)
//! to differ, and the tests also pin that: Tardis runs grant leases and
//! never reflect classification transitions; Carina runs do the opposite;
//! Pyxis maintains the classification ledger in both modes (and may tick
//! either family's counters on top).

use argo::types::GlobalF64Array;
use argo::{ArgoConfig, ArgoMachine};
use carina::{CarinaSiSd, Coherence, CoherenceSnapshot, Pyxis, Tardis};
use rma::SimTransport;
use std::sync::Arc;
use workloads::{matmul, sor};

fn machine<C: Coherence>(nodes: usize, tpn: usize) -> Arc<ArgoMachine<SimTransport, C>> {
    ArgoMachine::with_policy(ArgoConfig::small(nodes, tpn))
}

/// Tardis's ledger: leases moved, classification didn't.
fn assert_tardis_shaped(c: &CoherenceSnapshot) {
    assert!(
        c.lease_renewals + c.lease_expiries + c.lease_kept > 0,
        "a tardis run with fences must touch the lease counters"
    );
    assert_eq!(c.p_to_s + c.nw_to_sw + c.sw_to_mw, 0, "tardis tracks no classes");
}

/// Carina's ledger: classification moved, leases didn't.
fn assert_carina_shaped(c: &CoherenceSnapshot) {
    assert_eq!(
        c.lease_renewals + c.lease_expiries + c.lease_kept,
        0,
        "si/sd grants no leases"
    );
    assert_eq!(c.mode_lease_checks + c.mode_classify_checks, 0, "pure policies tick no mode counters");
}

/// Pyxis's ledger: every fence examination is attributed to exactly one
/// mode (either family's protocol counters may tick on top), and the
/// reconcile counter only moves when a switch actually happened.
fn assert_pyxis_shaped(c: &CoherenceSnapshot) {
    assert!(
        c.mode_lease_checks + c.mode_classify_checks > 0,
        "a pyxis run with fences must attribute examinations to a mode"
    );
    if c.mode_to_lease + c.mode_to_sisd == 0 {
        assert_eq!(c.mode_reconciles, 0, "reconciles require a switch");
    }
}

#[test]
fn matmul_checksum_is_policy_independent() {
    let p = matmul::MatmulParams { n: 64 };
    let sisd = matmul::run_argo(&machine::<CarinaSiSd>(2, 2), p);
    let tardis = matmul::run_argo(&machine::<Tardis>(2, 2), p);
    let pyxis = matmul::run_argo(&machine::<Pyxis>(2, 2), p);
    assert_eq!(
        sisd.checksum.to_bits(),
        tardis.checksum.to_bits(),
        "matmul diverged across policies: sisd {} tardis {}",
        sisd.checksum,
        tardis.checksum
    );
    assert_eq!(
        sisd.checksum.to_bits(),
        pyxis.checksum.to_bits(),
        "matmul diverged across policies: sisd {} pyxis {}",
        sisd.checksum,
        pyxis.checksum
    );
    assert_carina_shaped(&sisd.coherence);
    assert_tardis_shaped(&tardis.coherence);
    assert_pyxis_shaped(&pyxis.coherence);
}

#[test]
fn sor_checksum_is_policy_independent() {
    let p = sor::SorParams { n: 48, iterations: 4, omega: 1.25 };
    let sisd = sor::run_argo(&machine::<CarinaSiSd>(3, 1), p);
    let tardis = sor::run_argo(&machine::<Tardis>(3, 1), p);
    let pyxis = sor::run_argo(&machine::<Pyxis>(3, 1), p);
    assert_eq!(
        sisd.checksum.to_bits(),
        tardis.checksum.to_bits(),
        "sor diverged across policies: sisd {} tardis {}",
        sisd.checksum,
        tardis.checksum
    );
    assert_eq!(
        sisd.checksum.to_bits(),
        pyxis.checksum.to_bits(),
        "sor diverged across policies: sisd {} pyxis {}",
        sisd.checksum,
        pyxis.checksum
    );
    assert_carina_shaped(&sisd.coherence);
    assert_tardis_shaped(&tardis.coherence);
    assert_pyxis_shaped(&pyxis.coherence);
}

/// Word-for-word final memory identity, not just a checksum: every thread
/// writes its chunk, barriers, reads a neighbour's chunk, and the peeked
/// home memory must agree bit for bit across policies.
#[test]
fn final_memory_words_are_policy_independent() {
    fn run<C: Coherence>(n: usize) -> (Vec<u64>, Vec<f64>) {
        let m = machine::<C>(3, 2);
        let arr = GlobalF64Array::alloc(m.dsm(), n);
        let report = m.run(move |ctx| {
            for i in ctx.my_chunk(n) {
                arr.set(ctx, i, (i as f64).sqrt());
            }
            ctx.barrier();
            let total = ctx.nthreads();
            let next = (ctx.tid() + 1) % total;
            let per = n.div_ceil(total);
            let lo = (next * per).min(n);
            let hi = ((next + 1) * per).min(n);
            let mut sum = 0.0;
            for i in lo..hi {
                sum += arr.get(ctx, i);
            }
            sum
        });
        let words = (0..n).map(|i| m.dsm().peek_u64(arr.addr(i))).collect();
        (words, report.results)
    }
    let (mem_sisd, sums_sisd) = run::<CarinaSiSd>(4096);
    let (mem_tardis, sums_tardis) = run::<Tardis>(4096);
    let (mem_pyxis, sums_pyxis) = run::<Pyxis>(4096);
    assert_eq!(mem_sisd, mem_tardis, "final memory diverged across policies");
    assert_eq!(sums_sisd, sums_tardis, "observed values diverged across policies");
    assert_eq!(mem_sisd, mem_pyxis, "final memory diverged under pyxis");
    assert_eq!(sums_sisd, sums_pyxis, "observed values diverged under pyxis");
}

/// The report carries the policy name end to end.
#[test]
fn run_report_names_the_policy() {
    let m = machine::<Tardis>(2, 1);
    let report = m.run(|ctx| ctx.tid());
    assert_eq!(report.policy, "tardis");
    assert!(report.to_json().contains("\"policy\":\"tardis\""));
    let m = machine::<CarinaSiSd>(2, 1);
    let report = m.run(|ctx| ctx.tid());
    assert_eq!(report.policy, "sisd");
    assert!(report.summary().contains("policy sisd"));
    let m = machine::<Pyxis>(2, 1);
    let report = m.run(|ctx| ctx.tid());
    assert_eq!(report.policy, "pyxis");
    assert!(report.to_json().contains("\"policy\":\"pyxis\""));
}
