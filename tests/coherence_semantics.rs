//! Memory-model integration tests: SC-for-DRF through the full stack.
//!
//! Argo's contract (paper §3.1): data-race-free programs observe
//! sequentially consistent behaviour provided synchronization is exposed
//! to Carina — SI on acquire, SD on release, both at barriers. These tests
//! drive the publication idioms that contract must support.

use argo::types::GlobalU64Array;
use argo::{ArgoConfig, ArgoMachine};
use std::sync::Arc;
use vela::Hqdl;

/// Message passing via shared memory: writer publishes a payload, then a
/// flag; reader acquires and must observe the payload if it saw the flag.
#[test]
fn publication_via_barrier() {
    let m = ArgoMachine::new(ArgoConfig::small(4, 2));
    let data = GlobalU64Array::alloc(m.dsm(), 256);
    let report = m.run(move |ctx| {
        let writer = ctx.tid() == 0;
        if writer {
            for i in 0..256 {
                data.set(ctx, i, (i * i) as u64);
            }
        } else {
            // Pre-cache stale zeroes to make the SI meaningful.
            let _ = data.get(ctx, 0);
            let _ = data.get(ctx, 255);
        }
        ctx.barrier();
        (0..256).map(|i| data.get(ctx, i)).sum::<u64>()
    });
    let expect: u64 = (0..256u64).map(|i| i * i).sum();
    assert!(report.results.iter().all(|&s| s == expect));
}

/// Repeated producer/consumer epochs with role rotation: every thread
/// writes in some epochs and reads in others.
#[test]
fn rotating_producers_across_epochs() {
    let m = ArgoMachine::new(ArgoConfig::small(3, 2));
    let slots = GlobalU64Array::alloc(m.dsm(), 64);
    let report = m.run(move |ctx| {
        let nt = ctx.nthreads();
        let mut observed = 0u64;
        for epoch in 0..6u64 {
            let producer = (epoch as usize) % nt;
            if ctx.tid() == producer {
                for i in 0..64 {
                    slots.set(ctx, i, epoch * 1000 + i as u64);
                }
            }
            ctx.barrier();
            // Everyone (including the producer) must read this epoch's
            // values, not a stale epoch's.
            for i in 0..64 {
                let v = slots.get(ctx, i);
                assert_eq!(v, epoch * 1000 + i as u64, "stale read in epoch {epoch}");
                observed ^= v;
            }
            ctx.barrier();
        }
        observed
    });
    assert!(report.results.windows(2).all(|w| w[0] == w[1]));
}

/// Release/acquire through explicit fences + a delegation lock: the HQDL
/// helper's writes must be visible to any thread that waits on its future.
#[test]
fn delegation_results_are_coherent() {
    let m = ArgoMachine::new(ArgoConfig::small(3, 2));
    let dsm = m.dsm().clone();
    let counter = dsm.allocator().alloc_pages(1).expect("mem");
    let lock = Hqdl::new(dsm.clone(), 64);
    let d0 = dsm.clone();
    let report = m.run(move |ctx| {
        let mut last_seen = 0u64;
        for _ in 0..50 {
            let dsm = d0.clone();
            let v = lock.delegate_wait(&mut ctx.thread, move |ht| {
                let v = dsm.read_u64(ht, counter);
                dsm.write_u64(ht, counter, v + 1);
                v + 1
            });
            // Strictly increasing view of the counter from this thread.
            assert!(v > last_seen, "went backwards: {v} after {last_seen}");
            last_seen = v;
        }
        last_seen
    });
    // Total increments = 6 threads x 50.
    let max = report.results.iter().copied().fold(0, u64::max);
    assert_eq!(max, 300);
}

/// Writes without a release fence must *not* be assumed visible — and the
/// write buffer's background drain is allowed to make them visible early.
/// Either way, after an explicit release+acquire pair they must be.
#[test]
fn explicit_fences_publish() {
    let m = ArgoMachine::new(ArgoConfig::small(2, 1));
    let dsm = m.dsm().clone();
    let addr = dsm.allocator().alloc_pages(4).expect("mem");
    let flag = Arc::new(std::sync::Barrier::new(2));
    let report = m.run(move |ctx| {
        if ctx.tid() == 0 {
            ctx.write_u64(addr, 77);
            ctx.release(); // SD fence
            flag.wait();
            0
        } else {
            flag.wait();
            ctx.acquire(); // SI fence
            ctx.read_u64(addr)
        }
    });
    assert_eq!(report.results[1], 77);
}

/// The same DRF program must produce identical results under every
/// classification mode (classification is a performance feature, not a
/// semantics feature).
#[test]
fn classification_modes_are_semantically_equivalent() {
    use carina::{CarinaConfig, ClassificationMode};
    let mut sums = Vec::new();
    for mode in [
        ClassificationMode::AllShared,
        ClassificationMode::PsNaive,
        ClassificationMode::Ps3,
    ] {
        let mut cfg = ArgoConfig::small(3, 2);
        cfg.carina = CarinaConfig::with_mode(mode);
        let m = ArgoMachine::new(cfg);
        let arr = GlobalU64Array::alloc(m.dsm(), 512);
        let report = m.run(move |ctx| {
            for round in 0..4u64 {
                for i in ctx.my_chunk(512) {
                    let old = arr.get(ctx, i);
                    arr.set(ctx, i, old + round + i as u64);
                }
                ctx.barrier();
                // Read a neighbour thread's chunk.
                let peer = (ctx.tid() + 1) % ctx.nthreads();
                let per = 512usize.div_ceil(ctx.nthreads());
                let lo = (peer * per).min(512);
                let hi = ((peer + 1) * per).min(512);
                let mut s = 0u64;
                for i in lo..hi {
                    s ^= arr.get(ctx, i);
                }
                std::hint::black_box(s);
                ctx.barrier();
            }
            (0..512).map(|i| arr.get(ctx, i)).sum::<u64>()
        });
        sums.push(report.results[0]);
    }
    assert!(sums.windows(2).all(|w| w[0] == w[1]), "{sums:?}");
}
