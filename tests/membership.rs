//! Volans membership suite: node death, failover re-homing, online join.
//!
//! The tentpole property: killing a node mid-run is *absorbed*, not
//! survived by luck. The first exhausted retry budget declares the node
//! departed, its pages re-home to rendezvous survivors (no bytes move —
//! the flat store outlives the metadata), every cached copy is scrubbed
//! with dirty data written through, and the program completes with a
//! checksum **bit-identical** to the fault-free run — on the simulator and
//! the native backend, under all three coherence policies. Join is the
//! mirror image: a newcomer enters at an epoch bump with an empty cache
//! and warms purely by demand-faulting, no bulk transfer. The membership
//! primitives underneath (epoch monotonicity, order-independent rendezvous
//! re-homing) get randomized property coverage of their own.

use argo::{ArgoConfig, ArgoMachine};
use carina::{CarinaConfig, CarinaSiSd, Coherence, Dsm, Pyxis, Tardis};
use mem::{GlobalAddr, PAGE_BYTES};
use rma::{
    rendezvous_home, splitmix64, Endpoint, FaultPlan, FaultyTransport, Membership,
    NativeTransport, SimTransport, Transport,
};
use simnet::{Interconnect, NodeId};
use std::sync::Arc;
use workloads::harness::Outcome;
use workloads::matmul::{self, MatmulParams};

type SimChaos = FaultyTransport<SimTransport>;
type NativeChaos = FaultyTransport<NativeTransport>;

const P: MatmulParams = MatmulParams { n: 64 };
/// The node every kill test takes down.
const KILLED: u16 = 2;

fn volans_cfg() -> ArgoConfig {
    let mut cfg = ArgoConfig::small(3, 2);
    cfg.carina.volans_failover = true;
    cfg
}

fn run_sim<C: Coherence>(plan: FaultPlan) -> (Arc<ArgoMachine<SimChaos, C>>, Outcome) {
    let cfg = volans_cfg();
    let net = FaultyTransport::wrap(Interconnect::new(cfg.topology(), cfg.cost), plan);
    let m: Arc<ArgoMachine<SimChaos, C>> = ArgoMachine::on(cfg, net);
    let out = matmul::run_argo(&m, P);
    (m, out)
}

fn run_native<C: Coherence>(plan: FaultPlan) -> (Arc<ArgoMachine<NativeChaos, C>>, Outcome) {
    let cfg = volans_cfg();
    let net = FaultyTransport::wrap(NativeTransport::with_cost(cfg.topology(), cfg.cost), plan);
    let m: Arc<ArgoMachine<NativeChaos, C>> = ArgoMachine::on(cfg, net);
    let out = matmul::run_argo(&m, P);
    (m, out)
}

/// The kill contract: fault-free bits, exactly one declaration, pages
/// re-homed, the budget visibly spent, and the membership telling the
/// story afterwards.
fn assert_kill_absorbed<T: Transport, C: Coherence>(
    m: &ArgoMachine<T, C>,
    out: &Outcome,
    reference: f64,
    what: &str,
) {
    assert_eq!(
        out.checksum.to_bits(),
        reference.to_bits(),
        "{what}: kill changed the data (clean {reference} killed {})",
        out.checksum
    );
    // The blackout kills the node on its *first* touch, during matmul's
    // init phase — before `start_measurement` resets the stat shards. The
    // measured section therefore runs entirely on the post-failover
    // membership: zero further exhaustions, zero further failovers. (The
    // counters themselves are asserted by the report/scripted kill tests,
    // whose runs never reset.)
    assert_eq!(
        out.coherence.failovers, 0,
        "{what}: the measured section must run failover-free"
    );
    assert_eq!(
        out.coherence.verb_exhaustions, 0,
        "{what}: nothing may target the departed node after the re-homing"
    );
    let mem = m.dsm().membership();
    assert_eq!(mem.epoch(), 1, "{what}: one membership change, one epoch bump");
    assert_eq!(mem.nodes_alive(), 2, "{what}: two survivors");
    assert!(!mem.is_alive(KILLED), "{what}: the killed node must be out");
}

#[test]
fn kill_mid_matmul_lands_the_fault_free_checksum_on_the_simulator() {
    let (clean_m, clean) = run_sim::<CarinaSiSd>(FaultPlan::disabled());
    assert_eq!(clean.coherence.verb_exhaustions, 0);
    assert_eq!(clean.coherence.failovers, 0, "healthy runs must not fail over");
    assert_eq!(clean_m.dsm().membership().epoch(), 0, "armed Volans is zero-cost when idle");
    let (m, out) = run_sim::<CarinaSiSd>(FaultPlan::blackout(NodeId(KILLED)));
    assert_kill_absorbed(&m, &out, clean.checksum, "matmul/sim/sisd");
}

/// An epoch bump is policy-independent: Tardis leases and Pyxis modes are
/// nulled for the re-homed pages exactly like the SI/SD directory bits, so
/// all three policies land the same fault-free bits through a kill.
#[test]
fn kill_mid_matmul_is_policy_independent() {
    let (_, clean) = run_sim::<CarinaSiSd>(FaultPlan::disabled());
    let (mt, out_t) = run_sim::<Tardis>(FaultPlan::blackout(NodeId(KILLED)));
    assert_kill_absorbed(&mt, &out_t, clean.checksum, "matmul/sim/tardis");
    let (mp, out_p) = run_sim::<Pyxis>(FaultPlan::blackout(NodeId(KILLED)));
    assert_kill_absorbed(&mp, &out_p, clean.checksum, "matmul/sim/pyxis");
}

/// The same kill on the native backend: no virtual clock, real threads,
/// same protocol engine — and bit-identical to the *simulator's* fault-free
/// checksum, because failover never touches the data plane on any backend.
#[test]
fn kill_mid_matmul_is_backend_independent() {
    let (_, clean) = run_sim::<CarinaSiSd>(FaultPlan::disabled());
    let (m, out) = run_native::<CarinaSiSd>(FaultPlan::blackout(NodeId(KILLED)));
    assert_kill_absorbed(&m, &out, clean.checksum, "matmul/native/sisd");
    let (mt, out_t) = run_native::<Tardis>(FaultPlan::blackout(NodeId(KILLED)));
    assert_kill_absorbed(&mt, &out_t, clean.checksum, "matmul/native/tardis");
    let (mp, out_p) = run_native::<Pyxis>(FaultPlan::blackout(NodeId(KILLED)));
    assert_kill_absorbed(&mp, &out_p, clean.checksum, "matmul/native/pyxis");
}

/// The observability satellite end-to-end: a kill during a region that
/// never resets statistics lands `failovers`/`pages_rehomed` in the
/// [`argo::RunReport`] and the live metrics exposition, and the membership
/// epoch/alive-count ride along.
#[test]
fn failover_counters_flow_into_the_run_report() {
    use argo::types::GlobalF64Array;
    let mut cfg = ArgoConfig::small(3, 1);
    cfg.carina.volans_failover = true;
    let net = FaultyTransport::wrap(
        Interconnect::new(cfg.topology(), cfg.cost),
        FaultPlan::blackout(NodeId(KILLED)),
    );
    let m: Arc<ArgoMachine<SimChaos>> = ArgoMachine::on(cfg, net);
    let arr = GlobalF64Array::alloc(m.dsm(), 6144);
    let report = m.run(move |ctx| {
        for i in ctx.my_chunk(6144) {
            arr.set(ctx, i, (i * 3) as f64);
        }
        ctx.barrier();
        (0..6144).map(|i| arr.get(ctx, i)).sum::<f64>()
    });
    let expected: f64 = (0..6144).map(|i| (i * 3) as f64).sum();
    assert!(
        report.results.iter().all(|&s| s.to_bits() == expected.to_bits()),
        "the kill changed the data"
    );
    assert_eq!(report.coherence.failovers, 1);
    assert!(report.coherence.pages_rehomed > 0, "the dead node homed pages");
    assert!(report.coherence.verb_exhaustions >= 1, "the death signal is an exhausted budget");
    assert_eq!(report.membership_epoch, 1);
    assert_eq!(report.nodes_alive, 2);
    // The same story in the live exposition.
    let prom = m.dsm().metrics_snapshot().to_prometheus();
    assert!(prom.contains("carina_failovers{policy=\"sisd\"} 1"), "{prom}");
    assert!(prom.contains("carina_membership_epoch 1"), "{prom}");
    assert!(prom.contains("carina_nodes_alive 2"), "{prom}");
}

/// A node dies *after* a peer buffered writes against it: the failover
/// sweep writes the dirty copy through to the flat store before
/// invalidating it, so the data reappears — intact — under the new home.
/// The transition also leaves `epoch_bump`/`rehome` records in the flight
/// recorder, attributed to the exhausted verb that triggered it.
#[test]
fn mid_run_kill_preserves_buffered_writes_through_writethrough() {
    let cfg = ArgoConfig::small(2, 1);
    let ccfg = CarinaConfig { volans_failover: true, ..Default::default() };
    let net = FaultyTransport::wrap(
        Interconnect::new(cfg.topology(), cfg.cost),
        FaultPlan::outage(NodeId(1), 2_000_000, u64::MAX),
    );
    let dsm: Arc<Dsm<SimChaos>> = Dsm::new(net.clone(), 1 << 20, ccfg);
    let mut t = <SimChaos as Transport>::endpoint(&net, net.topology().loc(NodeId(0), 0));

    // Two distinct pages homed on the doomed node, and its total page count.
    let mut a = GlobalAddr(0);
    while dsm.home_of(a) != 1 {
        a = a.offset(PAGE_BYTES);
    }
    let mut b = a.offset(PAGE_BYTES);
    while dsm.home_of(b) != 1 {
        b = b.offset(PAGE_BYTES);
    }
    let total_pages = 2 * ((1u64 << 20) / PAGE_BYTES);
    let doomed = (0..total_pages)
        .filter(|&p| dsm.home_of(GlobalAddr(p * PAGE_BYTES)) == 1)
        .count() as u64;

    // Healthy phase: the write registers at node 1 and stays dirty in node
    // 0's cache and write buffer.
    dsm.write_u64(&mut t, a, 4242);
    assert!(t.now() < 2_000_000, "the write must land before the outage opens");

    // The node goes dark mid-run. The next remote touch exhausts its
    // budget, declares the death, re-homes, and retries — transparently.
    t.compute(2_000_000);
    assert_eq!(dsm.read_u64(&mut t, b), 0, "a pristine page reads zero at its new home");

    let mem = dsm.membership();
    assert_eq!(mem.epoch(), 1);
    assert!(!mem.is_alive(1));
    let snap = dsm.stats().snapshot();
    assert_eq!(snap.failovers, 1);
    assert_eq!(snap.pages_rehomed, doomed, "every page of the dead node re-homes");
    assert!(snap.verb_exhaustions >= 1);

    // The buffered write survived the death of its directory home.
    assert_eq!(dsm.home_of(a), 0, "two nodes: the survivor inherits everything");
    assert_eq!(dsm.read_u64(&mut t, a), 4242, "dirty data lost across the failover");

    // The transition is in the flight record.
    let trace = dsm.lyra().to_chrome_trace();
    assert!(trace.contains("epoch_bump"), "the epoch bump must be flight-recorded");
    assert!(trace.contains("rehome"), "the re-homing must be flight-recorded");
}

/// Online join: a latent node homes nothing and is not a member; joining
/// it is an epoch bump and *zero verbs* — it warms by demand-faulting.
#[test]
fn online_join_enters_empty_and_warms_by_demand_faulting() {
    let cfg = ArgoConfig::small(3, 1);
    let ccfg = CarinaConfig { volans_latent_nodes: 1, ..Default::default() };
    let net = Interconnect::new(cfg.topology(), cfg.cost);
    let dsm: Arc<Dsm<SimTransport>> = Dsm::new(net.clone(), 1 << 20, ccfg);

    // The trailing node is latent: out of the membership, homing nothing,
    // and none of that is a membership *change* (epoch stays 0: latent
    // homing is decided statically, before any access).
    let mem = dsm.membership();
    assert_eq!(mem.nodes_alive(), 2);
    assert!(!mem.is_alive(2));
    assert_eq!(mem.epoch(), 0, "latent homing is static, not a membership change");
    let total_pages = 3 * ((1u64 << 20) / PAGE_BYTES);
    for p in 0..total_pages {
        assert_ne!(
            dsm.home_of(GlobalAddr(p * PAGE_BYTES)),
            2,
            "a latent node must home nothing"
        );
    }

    // Founders compute and publish.
    let mut t0 = <SimTransport as Transport>::endpoint(&net, net.topology().loc(NodeId(0), 0));
    for i in 0..32u64 {
        dsm.write_u64(&mut t0, GlobalAddr(i * PAGE_BYTES), i * i + 7);
    }
    dsm.sd_fence(&mut t0);

    // The join itself moves nothing: an epoch bump, no verbs, no bytes.
    let before = net.stats().snapshot();
    assert_eq!(dsm.join_node(2), 1);
    let after = net.stats().snapshot();
    assert_eq!(
        before.rdma_reads, after.rdma_reads,
        "online join must not bulk-read"
    );
    assert_eq!(
        before.rdma_writes, after.rdma_writes,
        "online join must not bulk-write"
    );
    assert_eq!(before.messages, after.messages, "online join must not message");
    assert_eq!(dsm.membership().nodes_alive(), 3);
    assert_eq!(dsm.join_node(2), 1, "joining an alive node is a no-op");

    // The newcomer warms purely by demand faults: every read is correct,
    // and the fetch traffic appears only now.
    let mut t2 = <SimTransport as Transport>::endpoint(&net, net.topology().loc(NodeId(2), 0));
    for i in 0..32u64 {
        assert_eq!(dsm.read_u64(&mut t2, GlobalAddr(i * PAGE_BYTES)), i * i + 7);
    }
    let warmed = net.stats().snapshot();
    assert!(
        warmed.rdma_reads > after.rdma_reads,
        "the newcomer's reads must demand-fault remotely"
    );
}

/// Shadow homes: with `volans_shadow` on, an SD fence mirrors its drained
/// pages to each page's rendezvous successor — modeled whole-page traffic
/// at the fence boundary, nothing on the hot path, nothing when off.
#[test]
fn shadow_mirroring_rides_the_fence_to_the_rendezvous_successor() {
    let cfg = ArgoConfig::small(3, 1);
    let run = |shadow: bool| {
        let ccfg = CarinaConfig { volans_shadow: shadow, ..Default::default() };
        let net = Interconnect::new(cfg.topology(), cfg.cost);
        let dsm: Arc<Dsm<SimTransport>> = Dsm::new(net.clone(), 1 << 20, ccfg);
        let mut t = <SimTransport as Transport>::endpoint(&net, net.topology().loc(NodeId(0), 0));
        for i in 0..24u64 {
            dsm.write_u64(&mut t, GlobalAddr(i * PAGE_BYTES), i + 1);
        }
        dsm.sd_fence(&mut t);
        (dsm.stats().snapshot(), net.stats().snapshot())
    };
    let (plain, plain_net) = run(false);
    assert_eq!(plain.shadow_mirrored, 0, "shadowing off must mirror nothing");
    let (mirrored, mirrored_net) = run(true);
    assert!(
        mirrored.shadow_mirrored > 0,
        "the fence drained remote pages; successor mirrors must post"
    );
    assert!(
        mirrored_net.bytes_written > plain_net.bytes_written,
        "mirrors are modeled whole-page writes on the wire"
    );
}

/// Randomized membership schedule against a shadow model: the epoch is
/// exactly the number of transitions, observations are monotone, and the
/// headline property holds at every step — once epoch *e + 1* has been
/// observed at a target, no verb stamped at epoch *e* is admitted there.
#[test]
fn superseded_epoch_verbs_are_never_admitted() {
    const NODES: u16 = 6;
    let mut rng = 0x5EED_CAFEu64;
    let mut draw = move |m: u64| {
        rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(rng) % m
    };
    let m = Membership::new(NODES as usize);
    let mut observed_model = vec![0u64; NODES as usize];
    let mut epoch_model = 0u64;
    for _ in 0..4000 {
        match draw(4) {
            0 => {
                // A death (keeping at least one survivor) is one epoch bump.
                let n = draw(NODES as u64) as u16;
                if m.is_alive(n) && m.nodes_alive() > 1 {
                    assert!(m.mark_dead(n));
                    epoch_model += 1;
                    assert_eq!(m.bump_epoch(), epoch_model);
                }
            }
            1 => {
                // A join of a dead node is one epoch bump.
                let n = draw(NODES as u64) as u16;
                if !m.is_alive(n) {
                    assert!(m.mark_alive(n));
                    epoch_model += 1;
                    assert_eq!(m.bump_epoch(), epoch_model);
                }
            }
            2 => {
                // A node observes the current epoch.
                let n = draw(NODES as u64) as u16;
                assert_eq!(m.observe(n), epoch_model);
                observed_model[n as usize] = observed_model[n as usize].max(epoch_model);
            }
            _ => {
                // A verb stamped at a random (possibly stale) epoch is
                // admitted iff its stamp is not superseded at the target.
                let target = draw(NODES as u64) as u16;
                let stamp = draw(epoch_model + 1);
                assert_eq!(
                    m.admit(stamp, target),
                    stamp >= observed_model[target as usize],
                    "verb at epoch {stamp} vs observed {} at node {target}",
                    observed_model[target as usize]
                );
            }
        }
        assert_eq!(m.epoch(), epoch_model, "epoch must count transitions exactly");
        for n in 0..NODES {
            assert_eq!(m.observed(n), observed_model[n as usize], "observation regressed");
            if observed_model[n as usize] > 0 {
                assert!(
                    !m.admit(observed_model[n as usize] - 1, n),
                    "a verb from epoch e must not land after e+1 was observed at node {n}"
                );
            }
        }
    }
    assert!(epoch_model > 100, "the schedule never exercised transitions");
}

/// Sequential failover re-homing is order-independent: whatever order a set
/// of nodes dies in, every page lands on the same final home — its initial
/// home if that survived, else the rendezvous argmax over the survivors.
#[test]
fn sequential_rehoming_is_independent_of_death_order() {
    const NODES: u16 = 6;
    const PAGES: u64 = 512;
    let final_homes = |order: &[u16]| -> Vec<u16> {
        let mut alive: Vec<u16> = (0..NODES).collect();
        let mut homes: Vec<u16> = (0..PAGES).map(|p| (p % NODES as u64) as u16).collect();
        for &dead in order {
            alive.retain(|&n| n != dead);
            for (p, h) in homes.iter_mut().enumerate() {
                if *h == dead {
                    *h = rendezvous_home(p as u64, &alive);
                }
            }
        }
        homes
    };
    let reference = final_homes(&[4, 1, 5]);
    for order in [[1u16, 4, 5], [1, 5, 4], [4, 5, 1], [5, 1, 4], [5, 4, 1]] {
        assert_eq!(final_homes(&order), reference, "death order {order:?} moved pages");
    }
    // The closed form of the final assignment.
    let survivors = [0u16, 2, 3];
    for p in 0..PAGES {
        let init = (p % NODES as u64) as u16;
        let expect = if survivors.contains(&init) {
            init
        } else {
            rendezvous_home(p, &survivors)
        };
        assert_eq!(reference[p as usize], expect);
    }
}
