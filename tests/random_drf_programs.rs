//! Property-based test of the whole coherence stack: generate random
//! barrier-structured DRF programs, run them on a simulated cluster under
//! every classification mode, and compare final memory against a simple
//! sequential model.
//!
//! A program is a sequence of epochs separated by barriers; within an
//! epoch each thread owns a disjoint set of slots and performs
//! reads/writes/read-modify-writes on them (reads may target *any* slot
//! written in a previous epoch — cross-thread visibility is exactly what
//! the protocol must get right).

use argo::types::GlobalU64Array;
use argo::{ArgoConfig, ArgoMachine};
use carina::{CarinaConfig, ClassificationMode};
use rand::prelude::*;
use std::sync::Arc;

const SLOTS: usize = 1024;

/// One thread's plan for one epoch.
#[derive(Debug, Clone)]
enum Op {
    /// Write `value + slot` into an owned slot.
    Write { slot: usize, value: u64 },
    /// Read any slot and fold it into the thread's running checksum.
    Read { slot: usize },
    /// owned[dst] = f(any[src]) — cross-slot dependency.
    Combine { src: usize, dst: usize },
}

#[derive(Debug, Clone)]
struct Program {
    threads: usize,
    /// `epochs[e][t]` = ops of thread `t` in epoch `e`.
    epochs: Vec<Vec<Vec<Op>>>,
}

fn gen_program(seed: u64, threads: usize, epochs: usize, ops_per_epoch: usize) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let per = SLOTS / threads;
    let mut prog = Program {
        threads,
        epochs: Vec::new(),
    };
    for _ in 0..epochs {
        let mut epoch = Vec::new();
        for t in 0..threads {
            let own_lo = t * per;
            let mut ops = Vec::new();
            for _ in 0..ops_per_epoch {
                let own = own_lo + rng.random_range(0..per);
                ops.push(match rng.random_range(0..3u32) {
                    0 => Op::Write {
                        slot: own,
                        value: rng.random::<u32>() as u64,
                    },
                    1 => Op::Read {
                        slot: rng.random_range(0..SLOTS),
                    },
                    _ => Op::Combine {
                        src: rng.random_range(0..SLOTS),
                        dst: own,
                    },
                });
            }
            epoch.push(ops);
        }
        prog.epochs.push(epoch);
    }
    prog
}

/// Sequential model: apply epochs in order; within an epoch, reads see the
/// *previous* epoch's memory (threads are concurrent), writes land in the
/// next memory. Returns (final memory, per-thread checksums).
fn run_model(prog: &Program) -> (Vec<u64>, Vec<u64>) {
    let mut memory = vec![0u64; SLOTS];
    let mut checksums = vec![0u64; prog.threads];
    for epoch in &prog.epochs {
        let snapshot = memory.clone();
        // Each thread's ops execute against the snapshot for cross-thread
        // reads; reads/combines of a thread's OWN slots see its own writes
        // within the epoch (program order). We model this by tracking each
        // thread's private view of its own slots.
        for (t, ops) in epoch.iter().enumerate() {
            let per = SLOTS / prog.threads;
            let own_range = (t * per)..((t + 1) * per);
            let mut own_view: Vec<u64> = snapshot[own_range.clone()].to_vec();
            for op in ops {
                match *op {
                    Op::Write { slot, value } => {
                        own_view[slot - own_range.start] = value.wrapping_add(slot as u64);
                    }
                    Op::Read { slot } => {
                        let v = if own_range.contains(&slot) {
                            own_view[slot - own_range.start]
                        } else {
                            snapshot[slot]
                        };
                        checksums[t] = checksums[t].rotate_left(7) ^ v;
                    }
                    Op::Combine { src, dst } => {
                        let v = if own_range.contains(&src) {
                            own_view[src - own_range.start]
                        } else {
                            snapshot[src]
                        };
                        own_view[dst - own_range.start] = v.wrapping_mul(31).wrapping_add(1);
                    }
                }
            }
            memory[own_range.clone()].copy_from_slice(&own_view);
        }
    }
    (memory, checksums)
}

/// Run the same program on the DSM.
fn run_dsm(prog: &Program, mode: ClassificationMode, nodes: usize) -> (Vec<u64>, Vec<u64>) {
    let threads_per_node = prog.threads / nodes;
    let mut cfg = ArgoConfig::small(nodes, threads_per_node);
    cfg.carina = CarinaConfig::with_mode(mode);
    let machine = ArgoMachine::new(cfg);
    let arr = GlobalU64Array::alloc(machine.dsm(), SLOTS);
    let prog = Arc::new(prog.clone());
    let p2 = prog.clone();
    let report = machine.run(move |ctx| {
        let t = ctx.tid();
        let per = SLOTS / p2.threads;
        let own_start = t * per;
        let mut checksum = 0u64;
        for epoch in &p2.epochs {
            for op in &epoch[t] {
                match *op {
                    Op::Write { slot, value } => {
                        arr.set(ctx, slot, value.wrapping_add(slot as u64));
                    }
                    Op::Read { slot } => {
                        let v = arr.get(ctx, slot);
                        checksum = checksum.rotate_left(7) ^ v;
                    }
                    Op::Combine { src, dst } => {
                        let v = arr.get(ctx, src);
                        arr.set(ctx, dst, v.wrapping_mul(31).wrapping_add(1));
                    }
                }
            }
            ctx.barrier();
        }
        let _ = own_start;
        checksum
    });
    // The protocol's internal invariants must hold at quiescence.
    let violations = machine.dsm().check_invariants();
    assert!(violations.is_empty(), "invariant violations: {violations:?}");
    let memory = (0..SLOTS)
        .map(|i| machine.dsm().peek_u64(arr.addr(i)))
        .collect();
    (memory, report.results)
}

fn check_seed(seed: u64, mode: ClassificationMode, nodes: usize, threads: usize) {
    let prog = gen_program(seed, threads, 5, 40);
    let (model_mem, model_sums) = run_model(&prog);
    let (dsm_mem, dsm_sums) = run_dsm(&prog, mode, nodes);
    assert_eq!(
        dsm_sums, model_sums,
        "checksum divergence (seed {seed}, {mode:?}, {nodes} nodes)"
    );
    assert_eq!(
        dsm_mem, model_mem,
        "final memory divergence (seed {seed}, {mode:?}, {nodes} nodes)"
    );
}

// Raw generated programs may read a slot that its owner writes in the
// same epoch — a data race, outside the DRF contract (and outside the
// model's snapshot semantics). `sanitize` post-processes programs into
// DRF form: cross-thread reads/combine sources are redirected away from
// slots written in the current epoch.
fn sanitize(prog: &mut Program) {
    let threads = prog.threads;
    let per = SLOTS / threads;
    // written_upto[slot] = last epoch (exclusive) in which slot was
    // written before the current epoch.
    let mut written_before: Vec<Vec<bool>> = Vec::new(); // per epoch: written this epoch
    for epoch in &prog.epochs {
        let mut w = vec![false; SLOTS];
        for ops in epoch {
            for op in ops {
                match *op {
                    Op::Write { slot, .. } | Op::Combine { dst: slot, .. } => w[slot] = true,
                    _ => {}
                }
            }
        }
        written_before.push(w);
    }
    for (e, epoch) in prog.epochs.iter_mut().enumerate() {
        for (t, ops) in epoch.iter_mut().enumerate() {
            let own_range = (t * per)..((t + 1) * per);
            for op in ops {
                let fix = |slot: &mut usize| {
                    if !own_range.contains(slot) && written_before[e][*slot] {
                        // Redirect to an owned slot: always race-free.
                        *slot = own_range.start + (*slot % per);
                    }
                };
                match op {
                    Op::Read { slot } => fix(slot),
                    Op::Combine { src, .. } => fix(src),
                    Op::Write { .. } => {}
                }
            }
        }
    }
}

fn check_seed_sanitized(seed: u64, mode: ClassificationMode, nodes: usize, threads: usize) {
    let mut prog = gen_program(seed, threads, 5, 40);
    sanitize(&mut prog);
    let (model_mem, model_sums) = run_model(&prog);
    let (dsm_mem, dsm_sums) = run_dsm(&prog, mode, nodes);
    assert_eq!(
        dsm_sums, model_sums,
        "checksum divergence (seed {seed}, {mode:?}, {nodes} nodes)"
    );
    assert_eq!(
        dsm_mem, model_mem,
        "final memory divergence (seed {seed}, {mode:?}, {nodes} nodes)"
    );
    let _ = check_seed; // unsanitized checker unused by design
}

#[test]
fn random_programs_ps3() {
    for seed in 0..6 {
        check_seed_sanitized(seed, ClassificationMode::Ps3, 4, 8);
    }
}

#[test]
fn random_programs_all_shared() {
    for seed in 100..103 {
        check_seed_sanitized(seed, ClassificationMode::AllShared, 4, 8);
    }
}

#[test]
fn random_programs_ps_naive() {
    for seed in 200..203 {
        check_seed_sanitized(seed, ClassificationMode::PsNaive, 4, 8);
    }
}

#[test]
fn random_programs_odd_shapes() {
    check_seed_sanitized(300, ClassificationMode::Ps3, 2, 8);
    check_seed_sanitized(301, ClassificationMode::Ps3, 8, 8);
    check_seed_sanitized(302, ClassificationMode::Ps3, 1, 4);
}

/// Interleaving decay epochs between barriers must not change results.
#[test]
fn random_programs_with_decay_epochs() {
    for seed in 400..403 {
        let mut prog = gen_program(seed, 8, 5, 40);
        sanitize(&mut prog);
        let (model_mem, model_sums) = run_model(&prog);
        // Same DSM run, but with an adapt_classification between epochs.
        let mut cfg = ArgoConfig::small(4, 2);
        cfg.carina = CarinaConfig::with_mode(ClassificationMode::Ps3);
        let machine = ArgoMachine::new(cfg);
        let arr = GlobalU64Array::alloc(machine.dsm(), SLOTS);
        let prog = Arc::new(prog);
        let p2 = prog.clone();
        let report = machine.run(move |ctx| {
            let t = ctx.tid();
            let mut checksum = 0u64;
            for (e, epoch) in p2.epochs.iter().enumerate() {
                if e == 2 {
                    ctx.adapt_classification();
                }
                for op in &epoch[t] {
                    match *op {
                        Op::Write { slot, value } => {
                            arr.set(ctx, slot, value.wrapping_add(slot as u64));
                        }
                        Op::Read { slot } => {
                            let v = arr.get(ctx, slot);
                            checksum = checksum.rotate_left(7) ^ v;
                        }
                        Op::Combine { src, dst } => {
                            let v = arr.get(ctx, src);
                            arr.set(ctx, dst, v.wrapping_mul(31).wrapping_add(1));
                        }
                    }
                }
                ctx.barrier();
            }
            checksum
        });
        assert_eq!(report.results, model_sums, "seed {seed} with decay");
        let mem: Vec<u64> = (0..SLOTS)
            .map(|i| machine.dsm().peek_u64(arr.addr(i)))
            .collect();
        assert_eq!(mem, model_mem, "seed {seed} memory with decay");
    }
}
