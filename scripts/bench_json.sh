#!/usr/bin/env bash
# Run the simulator-throughput and fence microbenchmarks and aggregate the
# per-benchmark JSON records into BENCH_simulator.json at the repo root,
# then run the wall-clock workload benchmarks on the native transport and
# emit BENCH_native.json alongside it.
#
# If a baseline exists (target/bench-baseline/*.json, captured by running
# this script once on the pre-change tree and copying target/bench-current
# over), the report includes per-benchmark speedups and their geomean.
set -euo pipefail
cd "$(dirname "$0")/.."

# Absolute paths: cargo runs bench binaries from the package directory.
OUT_DIR=$PWD/target/bench-current
BASELINE_DIR=${BENCH_BASELINE_DIR:-$PWD/target/bench-baseline}
rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR"

CRITERION_MINI_OUT="$OUT_DIR" cargo bench -p bench --bench simulator_throughput
CRITERION_MINI_OUT="$OUT_DIR" cargo bench -p bench --bench fences
# Lyra overhead guard input: the fence suite with the recorder on vs off
# (`LYRA_DISABLED=1`), as back-to-back interleaved pairs so both
# configurations see the same host conditions (the pipeline's first
# fences run above lands right after compilation and is NOT used for the
# guard). The python block below min-merges each configuration's runs
# per bench and fails the build if always-on recording costs more than
# LYRA_OVERHEAD_MAX on the fence geomean.
LYRA_GUARD_RUNS=${LYRA_GUARD_RUNS:-3}
LYRA_ON_DIRS=()
LYRA_OFF_DIRS=()
for i in $(seq 1 "$LYRA_GUARD_RUNS"); do
    on_dir=$PWD/target/bench-lyra-on$i
    off_dir=$PWD/target/bench-lyra-off$i
    rm -rf "$on_dir" "$off_dir"
    mkdir -p "$on_dir" "$off_dir"
    CRITERION_MINI_OUT="$on_dir" cargo bench -p bench --bench fences
    LYRA_DISABLED=1 CRITERION_MINI_OUT="$off_dir" cargo bench -p bench --bench fences
    LYRA_ON_DIRS+=("$on_dir")
    LYRA_OFF_DIRS+=("$off_dir")
done
CRITERION_MINI_OUT="$OUT_DIR" cargo bench -p bench --bench drain
CRITERION_MINI_OUT="$OUT_DIR" cargo bench -p bench --bench read_miss
# Coherence-policy head-to-head (coherence/{read_mostly,private,mixed}_64p/
# {sisd,tardis,pyxis}): the per-fence-round cost of SI/SD classification vs
# Tardis timestamp leases vs the Pyxis census-driven hybrid on the two
# extreme sharing patterns plus a mixed region where neither pure policy
# wins. Feeds the per-policy rows of BENCH_simulator.json.
CRITERION_MINI_OUT="$OUT_DIR" cargo bench -p bench --bench coherence

# Policy head-to-head table (virtual cycles + ledgers, checksums asserted
# bit-identical across policies on both backends). Output is informational
# here; the hard claims are asserted inside the binary itself.
cargo run --release -p bench --bin bench_coherence

# Argoscope: instrumented reference run on both backends. Emits the
# Perfetto traces and report JSON under target/argoscope/; the sim
# report's latency percentiles are embedded in BENCH_simulator.json below.
cargo run --release --example argoscope

python3 - "$OUT_DIR" "$BASELINE_DIR" "$LYRA_GUARD_RUNS" \
    "${LYRA_ON_DIRS[@]}" "${LYRA_OFF_DIRS[@]}" <<'EOF'
import json, glob, os, sys

out_dir, baseline_dir = sys.argv[1], sys.argv[2]
n_guard = int(sys.argv[3])
lyra_on_dirs = sys.argv[4 : 4 + n_guard]
lyra_off_dirs = sys.argv[4 + n_guard : 4 + 2 * n_guard]

def load(d):
    recs = {}
    for f in sorted(glob.glob(os.path.join(d, "*.json"))):
        with open(f) as fh:
            r = json.load(fh)
        recs[r["id"]] = r
    return recs

current = load(out_dir)
baseline = load(baseline_dir) if os.path.isdir(baseline_dir) else {}

report = {"benchmarks": [], "geomean_speedup": None, "fence_geomean_speedup": None}
ratios = []
fence_ratios = []
for bid, cur in sorted(current.items()):
    entry = {"id": bid, "current_mean_ns": cur["mean_ns"]}
    base = baseline.get(bid)
    if base:
        entry["baseline_mean_ns"] = base["mean_ns"]
        entry["speedup"] = base["mean_ns"] / cur["mean_ns"]
        # Only the throughput suite feeds the geomean gate; the fence
        # microbenches have no meaningful pre-change baseline shape.
        if bid.startswith("simulator_throughput/"):
            ratios.append(entry["speedup"])
        if bid.startswith("fences/"):
            fence_ratios.append(entry["speedup"])
    report["benchmarks"].append(entry)

def geomean(rs):
    g = 1.0
    for r in rs:
        g *= r
    return g ** (1.0 / len(rs))

if ratios:
    report["geomean_speedup"] = geomean(ratios)
if fence_ratios:
    report["fence_geomean_speedup"] = geomean(fence_ratios)

# Resilience guard: the fallible verb surface and the (disabled) fault
# injection hook must stay free on the hot fence path. When a baseline
# exists, any fences/* benchmark slowing down past noise fails the build.
FENCE_FLOOR = 0.75
slow = [
    (bid, e["speedup"])
    for e in report["benchmarks"]
    for bid in [e["id"]]
    if bid.startswith("fences/") and "speedup" in e and e["speedup"] < FENCE_FLOOR
]
if slow:
    for bid, s in slow:
        print(f"FENCE REGRESSION: {bid} speedup {s:.3f} < {FENCE_FLOOR}", file=sys.stderr)
    sys.exit(1)

# Aggregate fence guard: individual fences may wobble inside FENCE_FLOOR,
# but the suite as a whole must not creep down — the Volans membership
# checks (epoch admission on every remote touchpoint, shadow-mirror hook
# at drain) ride the fence path and their disabled/epoch-0 fast paths
# must stay free. Tighter than the per-bench floor because geomean
# averages out per-bench noise.
FENCE_GEOMEAN_FLOOR = 0.90
fg = report["fence_geomean_speedup"]
if fg is not None and fg < FENCE_GEOMEAN_FLOOR:
    print(f"FENCE GEOMEAN REGRESSION: fences/* geomean speedup {fg:.3f} "
          f"< {FENCE_GEOMEAN_FLOOR}", file=sys.stderr)
    sys.exit(1)

# Lyra overhead guard: the always-on flight recorder must be within
# LYRA_OVERHEAD_MAX of the disabled configuration on the fence geomean.
# Basis: per-bench minimum of min_ns over each configuration's
# interleaved runs — the best observed iteration is the least
# noise-contaminated estimate of the true per-fence cost (mean_ns folds
# in scheduler jitter that swamps a few-percent budget on shared CI
# runners, and even a single run's min carries µs-scale outliers on the
# large-residency fences).
LYRA_OVERHEAD_MAX = 1.03

def min_merge(dirs):
    merged = {}
    for d in dirs:
        if not os.path.isdir(d):
            continue
        for bid, r in load(d).items():
            prev = merged.get(bid)
            if prev is None or r["min_ns"] < prev:
                merged[bid] = r["min_ns"]
    return merged

lyra_on = min_merge(lyra_on_dirs)
lyra_off = min_merge(lyra_off_dirs)
lyra_ratios = []
for bid, off_ns in sorted(lyra_off.items()):
    on_ns = lyra_on.get(bid)
    if on_ns and bid.startswith("fences/"):
        lyra_ratios.append(on_ns / off_ns)
if lyra_ratios:
    g = 1.0
    for r in lyra_ratios:
        g *= r
    g **= 1.0 / len(lyra_ratios)
    report["lyra_fence_overhead"] = g
    print(f"lyra fence overhead geomean: {g:.4f} (budget {LYRA_OVERHEAD_MAX})")
    if g > LYRA_OVERHEAD_MAX:
        print(f"LYRA OVERHEAD REGRESSION: recorder-on fences geomean "
              f"{g:.4f}x > {LYRA_OVERHEAD_MAX}x recorder-off", file=sys.stderr)
        sys.exit(1)

# Latency percentiles from the argoscope reference run (virtual cycles):
# per-site count/mean/p50/p90/p99 histograms plus per-lock delegation
# stats, straight out of RunReport::to_json().
scope = "target/argoscope/report_sim.json"
if os.path.exists(scope):
    with open(scope) as fh:
        scope_report = json.load(fh)
    report["argoscope_latency"] = scope_report["profile"]
    report["argoscope_locks"] = scope_report["locks"]

with open("BENCH_simulator.json", "w") as fh:
    json.dump(report, fh, indent=2)
    fh.write("\n")
print(json.dumps(report, indent=2))
EOF

# Native-backend wall-clock workload timings (no virtual clock, same
# protocol engine). Writes BENCH_native.json at the repo root.
cargo run --release -p bench --bin bench_native -- BENCH_native.json
