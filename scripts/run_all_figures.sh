#!/usr/bin/env bash
# Regenerate every table and figure of the paper into results/.
# Pass --full for paper-scale sweeps (much slower).
set -u
cd "$(dirname "$0")/.."
ARGS="${1:-}"
BINS="fig01_trends table1_classification fig07_bandwidth fig08_classification \
fig09_writebuffer fig10_writebacks fig11_locks_single_node fig11v_locks_virtual fig12_locks_dsm \
fig13a_lu fig13b_nbody fig13c_blackscholes fig13d_matmul fig13e_ep fig13f_cg \
ablation_passive_dir ablation_hqdl_batch ablation_prefetch ablation_cohort_fencing ablation_adaptive ablation_distribution extra_workloads inspect_traffic"
mkdir -p results
for b in $BINS; do
    echo "== $b =="
    cargo run --release -p bench --bin "$b" -- $ARGS 2>/dev/null | tee "results/$b.txt"
done
echo "All outputs in results/"
