//! # argo-dsm — workspace façade
//!
//! Re-exports the public API of every crate in the Argo DSM reproduction.
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use argo;
pub use carina;
pub use mem;
pub use simnet;
pub use vela;
pub use workloads;
