//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small API subset it actually uses. Lock types delegate to
//! `std::sync` (swallowing poison, as parking_lot does by not having it);
//! [`RawMutex`] is a test-and-test-and-set spinlock with yielding backoff.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

pub mod lock_api {
    /// The subset of `lock_api::RawMutex` the workspace relies on.
    pub trait RawMutex {
        /// An unlocked mutex, usable in const contexts.
        const INIT: Self;
        fn lock(&self);
        fn try_lock(&self) -> bool;
        /// # Safety
        /// The caller must hold the lock.
        unsafe fn unlock(&self);
    }
}

/// A word-sized raw mutex: test-and-test-and-set with yielding backoff.
pub struct RawMutex {
    locked: AtomicBool,
}

impl lock_api::RawMutex for RawMutex {
    const INIT: RawMutex = RawMutex {
        locked: AtomicBool::new(false),
    };

    fn lock(&self) {
        let mut spins = 0u32;
        loop {
            if self.try_lock() {
                return;
            }
            while self.locked.load(Ordering::Relaxed) {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    #[inline]
    fn try_lock(&self) -> bool {
        self.locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    #[inline]
    unsafe fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }
}

impl std::fmt::Debug for RawMutex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RawMutex")
            .field("locked", &self.locked.load(Ordering::Relaxed))
            .finish()
    }
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// `std::sync::Mutex` with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// `std::sync::RwLock` with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    #[inline]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// `std::sync::Condvar` adapted to parking_lot's `&mut guard` calling
/// convention.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.replace_guard(guard, |g| {
            self.0.wait(g).unwrap_or_else(|e| e.into_inner())
        });
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        self.replace_guard(guard, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    #[inline]
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    #[inline]
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Move the guard out of `&mut`, run `f` (which consumes and returns a
    /// guard), and move the result back in. `f` must not panic; the only
    /// panic source in `std::sync::Condvar::wait*` is lock poisoning, which
    /// the callers above swallow via `into_inner`.
    fn replace_guard<'a, T>(
        &self,
        slot: &mut MutexGuard<'a, T>,
        f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
    ) {
        unsafe {
            let guard = std::ptr::read(slot);
            let guard = f(guard);
            std::ptr::write(slot, guard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::lock_api::RawMutex as _;
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn raw_mutex_excludes() {
        let m = RawMutex::INIT;
        m.lock();
        assert!(!m.try_lock());
        unsafe { m.unlock() };
        assert!(m.try_lock());
        unsafe { m.unlock() };
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            *done = true;
            c.notify_one();
            drop(done);
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            c.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
