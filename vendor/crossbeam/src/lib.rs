//! Offline stand-in for the `crossbeam` crate (no crates.io access in the
//! build environment). Only `queue::SegQueue` is provided — the single API
//! this workspace consumes — implemented as a mutex-protected `VecDeque`.
//! Semantics match (MPMC, FIFO, unbounded); only the lock-free scalability
//! is approximated.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        pub const fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, value: T) {
            self.lock().push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.lock().pop_front()
        }

        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        pub fn len(&self) -> usize {
            self.lock().len()
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            assert!(q.is_empty());
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
        }
    }
}
