//! Offline stand-in for the `rand` crate (0.9 API surface), vendored
//! because the build environment has no crates.io access.
//!
//! Provides deterministic, seedable generators (`StdRng`, `SmallRng` — both
//! xoshiro256**-based here) and the `Rng` method subset the workspace uses:
//! `random`, `random_bool`, `random_range`, `random_iter`. Distribution
//! quality is adequate for tests and workload shuffling, not cryptography.

use std::ops::Range;

/// Core entropy source: 64 random bits at a time.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: seeds the main generators and serves as their state mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256** state, the engine behind both [`StdRng`] and [`SmallRng`].
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Xoshiro256 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

macro_rules! wrapper_rng {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone)]
        pub struct $name(Xoshiro256);

        impl RngCore for $name {
            #[inline]
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64()
            }
        }

        impl SeedableRng for $name {
            fn seed_from_u64(seed: u64) -> Self {
                $name(Xoshiro256::seed_from_u64(seed))
            }
        }
    };
}

wrapper_rng!(
    /// The default general-purpose generator.
    StdRng
);
wrapper_rng!(
    /// The small/fast generator (same engine here).
    SmallRng
);

/// Types producible uniformly from raw generator output (`rng.random()`).
pub trait Standard: Sized {
    fn from_rng(rng: &mut impl RngCore) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn from_rng(rng: &mut impl RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn from_rng(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn from_rng(rng: &mut impl RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_rng(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with uniform sampling over a half-open range.
pub trait SampleUniform: Sized {
    fn sample_range(rng: &mut impl RngCore, range: Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range(rng: &mut impl RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty random_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift rejection-free mapping; bias is < 2^-64,
                // irrelevant for simulation workloads.
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (range.start as i128 + v) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range(rng: &mut impl RngCore, range: Range<Self>) -> Self {
        let unit: f64 = Standard::from_rng(rng);
        range.start + unit * (range.end - range.start)
    }
}

/// The user-facing method bundle, blanket-implemented for every generator.
pub trait Rng: RngCore + Sized {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        let unit: f64 = Standard::from_rng(self);
        unit < p
    }

    #[inline]
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    #[inline]
    fn random_iter<T: Standard>(self) -> RandomIter<Self, T> {
        RandomIter {
            rng: self,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Endless stream of `T` samples, consuming the generator.
#[derive(Debug)]
pub struct RandomIter<R: RngCore, T: Standard> {
    rng: R,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<R: RngCore, T: Standard> Iterator for RandomIter<R, T> {
    type Item = T;

    #[inline]
    fn next(&mut self) -> Option<T> {
        Some(T::from_rng(&mut self.rng))
    }
}

pub mod prelude {
    pub use crate::{Rng, RngCore, SampleUniform, SeedableRng, SmallRng, Standard, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let a: Vec<u64> = StdRng::seed_from_u64(42).random_iter().take(8).collect();
        let b: Vec<u64> = StdRng::seed_from_u64(42).random_iter().take(8).collect();
        let c: Vec<u64> = StdRng::seed_from_u64(43).random_iter().take(8).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0usize..3);
            assert!(w < 3);
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
