//! Offline stand-in for the `criterion` crate (no crates.io access in the
//! build environment).
//!
//! Implements the subset this workspace's benches use: `criterion_group!` /
//! `criterion_main!`, `Criterion` with `measurement_time` / `warm_up_time` /
//! `sample_size`, benchmark groups, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, and `Bencher::{iter, iter_custom, iter_batched}`.
//!
//! Methodology: geometric warmup until the warmup budget is spent, then
//! `sample_size` timed batches sized to fill the measurement budget; the
//! reported estimate is the mean ns/iter over all batches. Every estimate
//! is also appended as one JSON object to
//! `$CRITERION_MINI_OUT/<sanitized-id>.json` (default
//! `target/criterion-mini/`), which `scripts/bench_json.sh` aggregates.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark registry entry point, mirroring criterion's builder.
pub struct Criterion {
    measurement: Duration,
    warmup: Duration,
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_secs(2),
            warmup: Duration::from_millis(300),
            sample_size: 10,
            filter: parse_filter(),
        }
    }
}

/// First free-standing CLI argument = substring filter, as cargo bench
/// forwards trailing args. Flags (`--bench`, `--test`, …) are ignored.
fn parse_filter() -> Option<String> {
    std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
}

/// True when cargo invoked the bench binary in test mode (`cargo test`
/// passes `--test`); benches then exit without running.
pub fn in_test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

impl Criterion {
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            measurement: None,
            warmup: None,
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().render();
        run_benchmark(
            &id,
            self.measurement,
            self.warmup,
            self.sample_size,
            self.filter.as_deref(),
            f,
        );
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }
}

/// A named cluster of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    measurement: Option<Duration>,
    warmup: Option<Duration>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = Some(d);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warmup = Some(d);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().render());
        run_benchmark(
            &id,
            self.measurement.unwrap_or(self.parent.measurement),
            self.warmup.unwrap_or(self.parent.warmup),
            self.sample_size.unwrap_or(self.parent.sample_size),
            self.parent.filter.as_deref(),
            f,
        );
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// A two-part benchmark name (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    fn render(self) -> String {
        self.id
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl From<&String> for BenchmarkId {
    fn from(id: &String) -> Self {
        BenchmarkId { id: id.clone() }
    }
}

/// Handed to the benchmark closure; records how the routine maps iteration
/// counts to elapsed time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        self.elapsed = routine(self.iters);
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Batch sizing hint; the stand-in times each iteration individually, so
/// the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn run_benchmark<F>(
    id: &str,
    measurement: Duration,
    warmup: Duration,
    sample_size: usize,
    filter: Option<&str>,
    mut routine: F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(f) = filter {
        if !id.contains(f) {
            return;
        }
    }
    // Warmup: geometrically grow the iteration count until the budget is
    // spent; this also calibrates the per-iteration cost.
    let mut iters = 1u64;
    let mut spent = Duration::ZERO;
    let mut per_iter;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        spent += b.elapsed;
        per_iter = b.elapsed.max(Duration::from_nanos(1)) / iters as u32;
        if spent >= warmup {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    // Measurement: sample_size batches splitting the measurement budget.
    let batch_budget = measurement / sample_size as u32;
    let batch_iters = (batch_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    let mut means = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters: batch_iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        total += b.elapsed;
        total_iters += batch_iters;
        means.push(b.elapsed.as_nanos() as f64 / batch_iters as f64);
    }
    let mean_ns = total.as_nanos() as f64 / total_iters as f64;
    let spread = means.iter().cloned().fold(f64::INFINITY, f64::min)
        ..means.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{id:<48} time: [{:>12.1} ns {:>12.1} ns {:>12.1} ns]  ({} samples x {} iters)",
        spread.start, mean_ns, spread.end, sample_size, batch_iters
    );
    write_estimate(id, mean_ns, spread.start, spread.end, total_iters);
}

fn write_estimate(id: &str, mean_ns: f64, min_ns: f64, max_ns: f64, iters: u64) {
    let dir = std::env::var("CRITERION_MINI_OUT")
        .unwrap_or_else(|_| "target/criterion-mini".to_string());
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let sanitized: String = id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let json = format!(
        "{{\"id\":\"{id}\",\"mean_ns\":{mean_ns:.3},\"min_ns\":{min_ns:.3},\"max_ns\":{max_ns:.3},\"iters\":{iters}}}\n"
    );
    let _ = std::fs::write(format!("{dir}/{sanitized}.json"), json);
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut c: $crate::Criterion = $config;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if $crate::in_test_mode() {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_compose() {
        assert_eq!(BenchmarkId::new("f", 3).render(), "f/3");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 100);
        assert!(b.elapsed > Duration::ZERO || count == 100);
    }
}
