//! Offline stand-in for the `proptest` crate (no crates.io access in the
//! build environment).
//!
//! Supports the subset this workspace's tests use: the `proptest!` macro
//! with `arg in strategy` bindings, `prop_assert!`/`prop_assert_eq!`,
//! `any::<T>()`, half-open integer ranges, tuples of strategies, and
//! `collection::vec`. Each test runs [`CASES`] deterministic cases seeded
//! from the test name; failing inputs are printed but not shrunk.

use std::ops::Range;

/// Cases per property; proptest's default is 256, this keeps CI fast while
/// still covering the input space well for the sizes used here.
pub const CASES: u32 = 128;

/// Deterministic per-test generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeded from the property name so every test gets a stable but
    /// distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// A value generator: the proptest notion, minus shrinking.
pub trait Strategy {
    type Value: std::fmt::Debug;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Integers produced uniformly from a range or the full domain.
pub trait UniformInt: Copy + std::fmt::Debug {
    fn from_u64_in(raw: u64, lo: Self, hi: Self) -> Self;
    fn from_u64_any(raw: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn from_u64_in(raw: u64, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                assert!(span > 0, "empty strategy range");
                (lo as i128 + ((raw as u128 * span) >> 64) as i128) as $t
            }
            #[inline]
            fn from_u64_any(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UniformInt> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::from_u64_in(rng.next_u64(), self.start, self.end)
    }
}

/// `any::<T>()`: the full domain of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: UniformInt> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::from_u64_any(rng.next_u64())
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $i:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A / 0);
    (A / 0, B / 1);
    (A / 0, B / 1, C / 2);
    (A / 0, B / 1, C / 2, D / 3);
}

pub mod collection {
    use super::{Strategy, TestRng, UniformInt};
    use std::ops::Range;

    /// Vec of `element` samples with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = usize::from_u64_in(rng.next_u64(), self.len.start, self.len.end);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Run one property over [`CASES`] deterministic inputs. Used by the
/// `proptest!` macro; kept as a function so failure reporting lives in one
/// place.
pub fn run_cases(name: &str, mut case: impl FnMut(&mut TestRng) -> Result<(), String>) {
    let mut rng = TestRng::deterministic(name);
    for i in 0..CASES {
        if let Err(msg) = case(&mut rng) {
            panic!("property {name} failed on case {i}: {msg}");
        }
    }
}

#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::proptest! { $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({:?} != {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs_in_bounds(
            xs in collection::vec(1u64..100, 1..20),
            k in 0usize..8,
        ) {
            prop_assert!(k < 8);
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            for x in xs {
                prop_assert!((1..100).contains(&x), "x = {x}");
            }
        }

        #[test]
        fn tuples_compose(pair in (0u8..5, any::<u64>())) {
            prop_assert!(pair.0 < 5);
            let _ = pair.1;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
