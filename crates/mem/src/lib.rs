//! # mem — global address space substrate
//!
//! Data-plane structures for the Argo DSM: the paper's globally shared
//! virtual address space (§3), realized inside one process.
//!
//! - [`page`]: 4 KiB pages stored as 512 atomic 64-bit words. The simulated
//!   machine is *word-atomic DRAM*: all data accesses are `Relaxed` word
//!   atomics, so the host program is data-race-free even though the
//!   *simulated* program's correctness rests on DRF + SI/SD, exactly as in
//!   the paper.
//! - [`addr`]: global byte addresses and their page/word decomposition.
//! - [`global`]: home storage. Pages are interleaved across nodes — for N
//!   nodes, node 0 serves the lowest addresses, node N−1 the highest, page
//!   by page (paper §3).
//! - [`cache`]: each node's local page cache — direct mapped, organized in
//!   multi-page "cache lines" to support Argo's prefetching (§3.6.2).
//! - [`alloc`]: the collective bump allocator backing `argo`'s typed
//!   allocation API.
//!
//! This crate holds *state*; the coherence protocol that manipulates it
//! (misses, classification, fences) lives in `carina`.
//!
//! The data plane is **backend-neutral**: pages, caches, and the directory
//! live in host shared memory regardless of which `rma::Transport` the
//! protocol runs over. The simulator backend moves no bytes — it only
//! charges virtual time for the transfers these structures imply — and the
//! native backend uses the very same storage at wall-clock speed.

pub mod addr;
pub mod alloc;
pub mod cache;
pub mod global;
pub mod page;

pub use addr::{GlobalAddr, HomeMap, HomePolicy, PageNum, PAGE_BYTES, WORDS_PER_PAGE, WORD_BYTES};
pub use alloc::GlobalAllocator;
pub use cache::{CacheConfig, CachedPage, LineSlot, PageCache, SlotGuard};
pub use global::GlobalMemory;
pub use page::{PageData, WriteMask, CHUNK_WORDS, MASK_WORDS};
