//! Collective allocation over the global address space.
//!
//! The paper's Argo initializes the shared virtual range on every node and
//! hands out addresses "using our own allocator" (§3). Because every node
//! maps the same range, allocation must yield identical addresses
//! everywhere; we achieve this with a single shared bump pointer.

use crate::addr::{GlobalAddr, PAGE_BYTES};
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone bump allocator over `[0, capacity_bytes)` of global memory.
///
/// There is no free: DSM applications in the paper allocate their shared
/// data structures once at startup. Allocation is thread-safe (CAS bump).
#[derive(Debug)]
pub struct GlobalAllocator {
    next: AtomicU64,
    capacity: u64,
}

/// Error returned when the global space is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfGlobalMemory {
    pub requested: u64,
    pub capacity: u64,
}

impl std::fmt::Display for OutOfGlobalMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of global memory: requested {} bytes from a {}-byte space",
            self.requested, self.capacity
        )
    }
}

impl std::error::Error for OutOfGlobalMemory {}

impl GlobalAllocator {
    pub fn new(capacity_bytes: u64) -> Self {
        GlobalAllocator {
            next: AtomicU64::new(0),
            capacity: capacity_bytes,
        }
    }

    /// Allocate `bytes` with the given power-of-two alignment.
    pub fn alloc(&self, bytes: u64, align: u64) -> Result<GlobalAddr, OutOfGlobalMemory> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let mut cur = self.next.load(Ordering::Relaxed);
        loop {
            let base = (cur + align - 1) & !(align - 1);
            let end = base + bytes;
            if end > self.capacity {
                return Err(OutOfGlobalMemory {
                    requested: bytes,
                    capacity: self.capacity,
                });
            }
            match self.next.compare_exchange_weak(
                cur,
                end,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(GlobalAddr(base)),
                Err(c) => cur = c,
            }
        }
    }

    /// Allocate whole pages (page-aligned). Convenient for arrays that
    /// should not false-share pages with unrelated data.
    pub fn alloc_pages(&self, pages: u64) -> Result<GlobalAddr, OutOfGlobalMemory> {
        self.alloc(pages * PAGE_BYTES, PAGE_BYTES)
    }

    /// Bytes handed out so far.
    pub fn used(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sequential_allocations_do_not_overlap() {
        let a = GlobalAllocator::new(1 << 20);
        let x = a.alloc(100, 8).unwrap();
        let y = a.alloc(100, 8).unwrap();
        assert!(y.0 >= x.0 + 100);
    }

    #[test]
    fn alignment_respected() {
        let a = GlobalAllocator::new(1 << 20);
        a.alloc(3, 1).unwrap();
        let x = a.alloc(16, 64).unwrap();
        assert_eq!(x.0 % 64, 0);
        let p = a.alloc_pages(2).unwrap();
        assert_eq!(p.0 % PAGE_BYTES, 0);
    }

    #[test]
    fn exhaustion_reported() {
        let a = GlobalAllocator::new(PAGE_BYTES);
        assert!(a.alloc_pages(1).is_ok());
        let err = a.alloc(1, 1).unwrap_err();
        assert_eq!(err.capacity, PAGE_BYTES);
    }

    #[test]
    fn concurrent_allocations_are_disjoint() {
        use std::sync::Arc;
        let a = Arc::new(GlobalAllocator::new(1 << 24));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let a = a.clone();
                std::thread::spawn(move || {
                    (0..100).map(|_| a.alloc(64, 8).unwrap().0).collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        for w in all.windows(2) {
            assert!(w[1] - w[0] >= 64, "overlapping allocations");
        }
    }

    proptest! {
        #[test]
        fn prop_allocations_stay_in_bounds(
            sizes in proptest::collection::vec(1u64..5000, 1..50),
            align_pow in 0u32..7,
        ) {
            let cap = 1u64 << 18;
            let a = GlobalAllocator::new(cap);
            let align = 1u64 << align_pow;
            for s in sizes {
                if let Ok(addr) = a.alloc(s, align) {
                    prop_assert!(addr.0 % align == 0);
                    prop_assert!(addr.0 + s <= cap);
                }
            }
            prop_assert!(a.used() <= cap);
        }
    }
}
