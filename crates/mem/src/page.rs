//! Page data: 512 atomic 64-bit words of simulated DRAM.
//!
//! All data-plane loads and stores are `Relaxed`: ordering between nodes is
//! the job of the coherence protocol's fences (which synchronize through
//! acquire/release control structures), never of individual data words —
//! mirroring how real DRAM provides no ordering by itself.

use crate::addr::WORDS_PER_PAGE;
use std::sync::atomic::{AtomicU64, Ordering};

/// Words covered by one `WriteMask` bit word (one "chunk").
pub const CHUNK_WORDS: usize = 64;
/// `u64`s in a [`WriteMask`]: one bit per page word.
pub const MASK_WORDS: usize = WORDS_PER_PAGE / CHUNK_WORDS;

const _: () = assert!(WORDS_PER_PAGE.is_multiple_of(CHUNK_WORDS));

/// A 512-bit per-page write mask: bit `w` is set when word `w` of the page
/// has (possibly) been stored to since the page last went clean.
///
/// The mask is a cheap *superset* of the changed words — a store of the
/// value already present still sets its bit — so it can prune the diff scan
/// ([`PageData::diff_against_masked`]) without ever hiding a real change.
/// Bits are set on the DSM store fast path and cleared when the page is
/// downgraded or invalidated.
#[derive(Debug, Default)]
pub struct WriteMask {
    bits: [AtomicU64; MASK_WORDS],
}

impl WriteMask {
    /// An empty mask.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a store to `word`. Returns `true` when this is the first bit
    /// set in the word's 64-word chunk — the caller's cue to lazily
    /// materialize that chunk of the twin before the store lands.
    ///
    /// Mutators must be externally serialized (the page's slot lock, which
    /// every DSM store path already holds): the atomics exist for interior
    /// mutability through `&self`, not for lock-free mutation, so the write
    /// fast path pays a load + store, never an RMW.
    #[inline]
    pub fn set(&self, word: usize) -> bool {
        let bit = 1u64 << (word % CHUNK_WORDS);
        let w = &self.bits[word / CHUNK_WORDS];
        let cur = w.load(Ordering::Relaxed);
        if cur & bit != 0 {
            return false;
        }
        w.store(cur | bit, Ordering::Relaxed);
        cur == 0
    }

    /// Record stores to `len` consecutive words starting at `first` — the
    /// bulk counterpart of [`Self::set`], one mask-word update per touched
    /// chunk. Invokes `on_new_chunk(chunk)` for each chunk whose mask word
    /// was previously empty, *before* the caller's stores land, so lazy
    /// twin chunks can be materialized from pre-store values. Same external
    /// serialization contract as [`Self::set`].
    pub fn cover(&self, first: usize, len: usize, mut on_new_chunk: impl FnMut(usize)) {
        if len == 0 {
            return;
        }
        let last = first + len - 1;
        for chunk in first / CHUNK_WORDS..=last / CHUNK_WORDS {
            let lo = (first.max(chunk * CHUNK_WORDS)) % CHUNK_WORDS;
            let hi = (last.min(chunk * CHUNK_WORDS + CHUNK_WORDS - 1)) % CHUNK_WORDS;
            let bits = if hi - lo == CHUNK_WORDS - 1 {
                u64::MAX
            } else {
                ((1u64 << (hi - lo + 1)) - 1) << lo
            };
            let w = &self.bits[chunk];
            let cur = w.load(Ordering::Relaxed);
            if cur & bits == bits {
                continue; // fully masked already (hot-loop re-store)
            }
            if cur == 0 {
                on_new_chunk(chunk);
            }
            w.store(cur | bits, Ordering::Relaxed);
        }
    }

    /// Whether the bit for `word` is set.
    #[inline]
    pub fn is_set(&self, word: usize) -> bool {
        self.bits[word / CHUNK_WORDS].load(Ordering::Relaxed) & (1u64 << (word % CHUNK_WORDS)) != 0
    }

    /// The 64-bit chunk of mask bits covering words
    /// `[chunk * CHUNK_WORDS, (chunk + 1) * CHUNK_WORDS)`.
    #[inline]
    pub fn chunk(&self, chunk: usize) -> u64 {
        self.bits[chunk].load(Ordering::Relaxed)
    }

    /// Reset every bit (page went clean).
    pub fn clear(&self) {
        for b in &self.bits {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// No bits set?
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|b| b.load(Ordering::Relaxed) == 0)
    }

    /// Number of set bits (words possibly written).
    pub fn count(&self) -> usize {
        self.bits
            .iter()
            .map(|b| b.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }
}

/// One 4 KiB page of word-atomic memory.
#[derive(Debug)]
pub struct PageData {
    words: Box<[AtomicU64]>,
}

impl PageData {
    /// A zeroed page. Allocated as a plain `u64` buffer so the allocator's
    /// zeroed-memory fast path applies — this sits on the write-fault path
    /// (twin allocation), where a per-word constructor loop shows up.
    pub fn zeroed() -> Self {
        let raw: Box<[u64]> = vec![0u64; WORDS_PER_PAGE].into_boxed_slice();
        // SAFETY: AtomicU64 has the same size and alignment as u64
        // (guaranteed by std), and all-zero bytes are a valid AtomicU64.
        let words = unsafe { Box::from_raw(Box::into_raw(raw) as *mut [AtomicU64]) };
        PageData { words }
    }

    #[inline]
    pub fn load(&self, word: usize) -> u64 {
        self.words[word].load(Ordering::Relaxed)
    }

    #[inline]
    pub fn store(&self, word: usize, value: u64) {
        self.words[word].store(value, Ordering::Relaxed);
    }

    #[inline]
    pub fn load_f64(&self, word: usize) -> f64 {
        f64::from_bits(self.load(word))
    }

    #[inline]
    pub fn store_f64(&self, word: usize, value: f64) {
        self.store(word, value.to_bits());
    }

    /// Copy every word of `src` into `self` (an RDMA page transfer).
    ///
    /// Iterates the two word slices in lockstep so the loop carries no
    /// bounds checks — the bulk path shared by page fetches and full-page
    /// writebacks.
    pub fn copy_from(&self, src: &PageData) {
        for (dst, src) in self.words.iter().zip(src.words.iter()) {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Copy the 64-word chunk `chunk` of `src` into `self` — lazy twin
    /// materialization copies only the chunks the writer actually touches.
    pub fn copy_chunk_from(&self, src: &PageData, chunk: usize) {
        let lo = chunk * CHUNK_WORDS;
        let hi = lo + CHUNK_WORDS;
        for (dst, src) in self.words[lo..hi].iter().zip(src.words[lo..hi].iter()) {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Fill with zeroes.
    pub fn clear(&self) {
        for w in self.words.iter() {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Words where `self` differs from `twin`, as `(index, new_value)` pairs
    /// — the paper's diff creation against a twin copy (§3.2), used to
    /// downgrade multiple-writer pages without clobbering concurrent writers
    /// of *other* words (false sharing).
    pub fn diff_against(&self, twin: &PageData) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        for w in 0..WORDS_PER_PAGE {
            let v = self.load(w);
            if v != twin.load(w) {
                out.push((w, v));
            }
        }
        out
    }

    /// [`Self::diff_against`] pruned by a write mask: visits only words whose
    /// mask bit is set. Because the mask is a superset of the changed words
    /// (every store sets its bit before any diff can run), this produces the
    /// *identical* diff — same words, same ascending order — at O(written)
    /// cost instead of O(page).
    ///
    /// When the mask's chunks are lazily twinned, `twin` is only meaningful
    /// inside masked chunks; this never reads outside them.
    pub fn diff_against_masked(&self, twin: &PageData, mask: &WriteMask) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        for chunk in 0..MASK_WORDS {
            let mut bits = mask.chunk(chunk);
            if bits == u64::MAX {
                // Fully-written chunk (the dense-workload steady state):
                // straight sweep, no per-bit extraction.
                for w in chunk * CHUNK_WORDS..(chunk + 1) * CHUNK_WORDS {
                    let v = self.load(w);
                    if v != twin.load(w) {
                        out.push((w, v));
                    }
                }
                continue;
            }
            while bits != 0 {
                let w = chunk * CHUNK_WORDS + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let v = self.load(w);
                if v != twin.load(w) {
                    out.push((w, v));
                }
            }
        }
        out
    }

    /// Apply a diff produced by [`Self::diff_against`].
    pub fn apply_diff(&self, diff: &[(usize, u64)]) {
        for &(w, v) in diff {
            self.store(w, v);
        }
    }

    /// Snapshot into a fresh page (twin creation on first write miss).
    /// Builds the twin directly from the source words — no zeroed
    /// intermediate page that every word would then overwrite.
    pub fn snapshot(&self) -> PageData {
        PageData {
            words: self
                .words
                .iter()
                .map(|w| AtomicU64::new(w.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

impl Default for PageData {
    fn default() -> Self {
        Self::zeroed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeroed_page_is_zero() {
        let p = PageData::zeroed();
        assert_eq!(p.load(0), 0);
        assert_eq!(p.load(WORDS_PER_PAGE - 1), 0);
    }

    #[test]
    fn f64_round_trips() {
        let p = PageData::zeroed();
        p.store_f64(7, -3.25);
        assert_eq!(p.load_f64(7), -3.25);
        p.store_f64(7, f64::NEG_INFINITY);
        assert_eq!(p.load_f64(7), f64::NEG_INFINITY);
    }

    #[test]
    fn copy_replicates_all_words() {
        let a = PageData::zeroed();
        a.store(0, 1);
        a.store(511, 2);
        let b = PageData::zeroed();
        b.copy_from(&a);
        assert_eq!(b.load(0), 1);
        assert_eq!(b.load(511), 2);
    }

    #[test]
    fn diff_finds_only_changed_words() {
        let p = PageData::zeroed();
        let twin = p.snapshot();
        p.store(3, 42);
        p.store(100, 7);
        let d = p.diff_against(&twin);
        assert_eq!(d, vec![(3, 42), (100, 7)]);
    }

    #[test]
    fn diff_merges_nonoverlapping_writers() {
        // The false-sharing scenario diffs exist for: two nodes write
        // disjoint words of the same page; applying both diffs at home
        // preserves both updates.
        let home = PageData::zeroed();
        let twin_a = home.snapshot();
        let twin_b = home.snapshot();
        let copy_a = home.snapshot();
        let copy_b = home.snapshot();
        copy_a.store(1, 11);
        copy_b.store(2, 22);
        home.apply_diff(&copy_a.diff_against(&twin_a));
        home.apply_diff(&copy_b.diff_against(&twin_b));
        assert_eq!(home.load(1), 11);
        assert_eq!(home.load(2), 22);
    }

    #[test]
    fn mask_set_reports_first_touch_per_chunk() {
        let m = WriteMask::new();
        assert!(m.set(5), "first bit in chunk 0");
        assert!(!m.set(5), "repeat store");
        assert!(!m.set(63), "same chunk, different word");
        assert!(m.set(64), "first bit in chunk 1");
        assert!(m.is_set(5));
        assert!(m.is_set(64));
        assert!(!m.is_set(6));
        assert_eq!(m.count(), 3);
        m.clear();
        assert!(m.is_empty());
        assert!(m.set(5), "cleared mask treats chunk as fresh again");
    }

    #[test]
    fn cover_marks_runs_and_reports_fresh_chunks() {
        let m = WriteMask::new();
        let mut fresh = Vec::new();
        m.cover(60, 10, |c| fresh.push(c)); // spans chunks 0 and 1
        assert_eq!(fresh, vec![0, 1]);
        for w in 60..70 {
            assert!(m.is_set(w));
        }
        assert!(!m.is_set(59));
        assert!(!m.is_set(70));
        assert_eq!(m.count(), 10);
        fresh.clear();
        m.cover(0, 128, |c| fresh.push(c)); // full chunks, already touched
        assert_eq!(fresh, Vec::<usize>::new());
        assert_eq!(m.count(), 128);
        m.cover(0, 0, |_| panic!("empty cover must not touch chunks"));
    }

    #[test]
    fn masked_diff_skips_unmasked_chunks_entirely() {
        // Lazy twinning leaves untouched chunks of the twin as garbage;
        // the masked diff must never look at them.
        let p = PageData::zeroed();
        let twin = PageData::zeroed();
        let mask = WriteMask::new();
        // Chunk 7 of the twin is "garbage" (differs from p) but unmasked.
        twin.store(7 * CHUNK_WORDS + 3, 999);
        mask.set(10);
        p.store(10, 1);
        twin.copy_chunk_from(&p, 0); // then diverge word 10
        twin.store(10, 0);
        assert_eq!(p.diff_against_masked(&twin, &mask), vec![(10, 1)]);
    }

    proptest! {
        #[test]
        fn prop_diff_apply_reconstructs(
            writes in proptest::collection::vec((0usize..WORDS_PER_PAGE, any::<u64>()), 0..64)
        ) {
            let original = PageData::zeroed();
            let twin = original.snapshot();
            let modified = original.snapshot();
            for &(w, v) in &writes {
                modified.store(w, v);
            }
            // Applying the diff to a fresh copy of the original must equal
            // the modified page.
            let target = original.snapshot();
            target.apply_diff(&modified.diff_against(&twin));
            for w in 0..WORDS_PER_PAGE {
                prop_assert_eq!(target.load(w), modified.load(w));
            }
        }

        #[test]
        fn prop_diff_of_identical_is_empty(seed in any::<u64>()) {
            let p = PageData::zeroed();
            p.store((seed % 512) as usize, seed);
            let twin = p.snapshot();
            prop_assert!(p.diff_against(&twin).is_empty());
        }

        #[test]
        fn prop_masked_diff_equals_full_diff(
            writes in proptest::collection::vec((0usize..WORDS_PER_PAGE, any::<u64>()), 0..96),
            extra_mask in proptest::collection::vec(0usize..WORDS_PER_PAGE, 0..32),
        ) {
            // Populate a page with arbitrary prior contents, twin it, then
            // apply an arbitrary write set while maintaining the mask the
            // way the store fast path does. Extra mask bits on unwritten
            // words model the superset property (e.g. stores of unchanged
            // values): the masked diff must still equal the full diff.
            let page = PageData::zeroed();
            for &(w, v) in &writes {
                page.store(w, v.rotate_left(17));
            }
            let twin = page.snapshot();
            let mask = WriteMask::new();
            for &(w, v) in &writes {
                mask.set(w);
                page.store(w, v);
            }
            for &w in &extra_mask {
                mask.set(w);
            }
            prop_assert_eq!(
                page.diff_against_masked(&twin, &mask),
                page.diff_against(&twin)
            );
        }
    }
}
