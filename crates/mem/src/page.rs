//! Page data: 512 atomic 64-bit words of simulated DRAM.
//!
//! All data-plane loads and stores are `Relaxed`: ordering between nodes is
//! the job of the coherence protocol's fences (which synchronize through
//! acquire/release control structures), never of individual data words —
//! mirroring how real DRAM provides no ordering by itself.

use crate::addr::WORDS_PER_PAGE;
use std::sync::atomic::{AtomicU64, Ordering};

/// One 4 KiB page of word-atomic memory.
#[derive(Debug)]
pub struct PageData {
    words: Box<[AtomicU64]>,
}

impl PageData {
    /// A zeroed page.
    pub fn zeroed() -> Self {
        PageData {
            words: (0..WORDS_PER_PAGE).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[inline]
    pub fn load(&self, word: usize) -> u64 {
        self.words[word].load(Ordering::Relaxed)
    }

    #[inline]
    pub fn store(&self, word: usize, value: u64) {
        self.words[word].store(value, Ordering::Relaxed);
    }

    #[inline]
    pub fn load_f64(&self, word: usize) -> f64 {
        f64::from_bits(self.load(word))
    }

    #[inline]
    pub fn store_f64(&self, word: usize, value: f64) {
        self.store(word, value.to_bits());
    }

    /// Copy every word of `src` into `self` (an RDMA page transfer).
    pub fn copy_from(&self, src: &PageData) {
        for w in 0..WORDS_PER_PAGE {
            self.store(w, src.load(w));
        }
    }

    /// Fill with zeroes.
    pub fn clear(&self) {
        for w in 0..WORDS_PER_PAGE {
            self.store(w, 0);
        }
    }

    /// Words where `self` differs from `twin`, as `(index, new_value)` pairs
    /// — the paper's diff creation against a twin copy (§3.2), used to
    /// downgrade multiple-writer pages without clobbering concurrent writers
    /// of *other* words (false sharing).
    pub fn diff_against(&self, twin: &PageData) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        for w in 0..WORDS_PER_PAGE {
            let v = self.load(w);
            if v != twin.load(w) {
                out.push((w, v));
            }
        }
        out
    }

    /// Apply a diff produced by [`Self::diff_against`].
    pub fn apply_diff(&self, diff: &[(usize, u64)]) {
        for &(w, v) in diff {
            self.store(w, v);
        }
    }

    /// Snapshot into a fresh page (twin creation on first write miss).
    pub fn snapshot(&self) -> PageData {
        let twin = PageData::zeroed();
        twin.copy_from(self);
        twin
    }
}

impl Default for PageData {
    fn default() -> Self {
        Self::zeroed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeroed_page_is_zero() {
        let p = PageData::zeroed();
        assert_eq!(p.load(0), 0);
        assert_eq!(p.load(WORDS_PER_PAGE - 1), 0);
    }

    #[test]
    fn f64_round_trips() {
        let p = PageData::zeroed();
        p.store_f64(7, -3.25);
        assert_eq!(p.load_f64(7), -3.25);
        p.store_f64(7, f64::NEG_INFINITY);
        assert_eq!(p.load_f64(7), f64::NEG_INFINITY);
    }

    #[test]
    fn copy_replicates_all_words() {
        let a = PageData::zeroed();
        a.store(0, 1);
        a.store(511, 2);
        let b = PageData::zeroed();
        b.copy_from(&a);
        assert_eq!(b.load(0), 1);
        assert_eq!(b.load(511), 2);
    }

    #[test]
    fn diff_finds_only_changed_words() {
        let p = PageData::zeroed();
        let twin = p.snapshot();
        p.store(3, 42);
        p.store(100, 7);
        let d = p.diff_against(&twin);
        assert_eq!(d, vec![(3, 42), (100, 7)]);
    }

    #[test]
    fn diff_merges_nonoverlapping_writers() {
        // The false-sharing scenario diffs exist for: two nodes write
        // disjoint words of the same page; applying both diffs at home
        // preserves both updates.
        let home = PageData::zeroed();
        let twin_a = home.snapshot();
        let twin_b = home.snapshot();
        let copy_a = home.snapshot();
        let copy_b = home.snapshot();
        copy_a.store(1, 11);
        copy_b.store(2, 22);
        home.apply_diff(&copy_a.diff_against(&twin_a));
        home.apply_diff(&copy_b.diff_against(&twin_b));
        assert_eq!(home.load(1), 11);
        assert_eq!(home.load(2), 22);
    }

    proptest! {
        #[test]
        fn prop_diff_apply_reconstructs(
            writes in proptest::collection::vec((0usize..WORDS_PER_PAGE, any::<u64>()), 0..64)
        ) {
            let original = PageData::zeroed();
            let twin = original.snapshot();
            let modified = original.snapshot();
            for &(w, v) in &writes {
                modified.store(w, v);
            }
            // Applying the diff to a fresh copy of the original must equal
            // the modified page.
            let target = original.snapshot();
            target.apply_diff(&modified.diff_against(&twin));
            for w in 0..WORDS_PER_PAGE {
                prop_assert_eq!(target.load(w), modified.load(w));
            }
        }

        #[test]
        fn prop_diff_of_identical_is_empty(seed in any::<u64>()) {
            let p = PageData::zeroed();
            p.store((seed % 512) as usize, seed);
            let twin = p.snapshot();
            prop_assert!(p.diff_against(&twin).is_empty());
        }
    }
}
