//! Home storage for the global address space.
//!
//! Every node contributes an equal share of memory to the shared space
//! (paper §5). `GlobalMemory` owns the *home* copy of every page — the copy
//! that self-downgrades write back to and read misses fetch from.
//!
//! In the simulator all pages live in one flat store; *which node's memory
//! a page belongs to* is metadata (it determines timing: local vs remote
//! access) kept per page, initialized by a [`HomePolicy`] and adjustable
//! per allocation (`set_home`) to express distribution hints — the
//! "more sophisticated data distribution schemes" the paper leaves for
//! future work.

use crate::addr::{GlobalAddr, HomeMap, HomePolicy, PageNum, PAGE_BYTES};
use crate::page::PageData;
use std::sync::atomic::{AtomicU16, Ordering};

/// The home copies of all pages, with per-page home-node metadata.
#[derive(Debug)]
pub struct GlobalMemory {
    nodes: usize,
    pages_per_node: usize,
    home_map: HomeMap,
    /// `homes[page]` = node whose memory serves this page.
    homes: Vec<AtomicU16>,
    /// `store[page]` = the home copy (flat; the split across nodes is
    /// expressed by `homes`).
    store: Vec<PageData>,
}

impl GlobalMemory {
    /// Allocate a space of `nodes * bytes_per_node` bytes. `bytes_per_node`
    /// is rounded up to whole pages. Interleaved home assignment.
    pub fn new(nodes: usize, bytes_per_node: u64) -> Self {
        Self::with_policy(nodes, bytes_per_node, HomePolicy::Interleaved)
    }

    /// As [`Self::new`] with an explicit default distribution policy.
    pub fn with_policy(nodes: usize, bytes_per_node: u64, policy: HomePolicy) -> Self {
        assert!(nodes > 0, "need at least one node");
        let pages_per_node = bytes_per_node.div_ceil(PAGE_BYTES) as usize;
        let home_map = HomeMap {
            nodes,
            pages_per_node: pages_per_node as u64,
            policy,
        };
        let total = nodes * pages_per_node;
        GlobalMemory {
            nodes,
            pages_per_node,
            home_map,
            homes: (0..total)
                .map(|p| AtomicU16::new(home_map.home(PageNum(p as u64))))
                .collect(),
            store: (0..total).map(|_| PageData::zeroed()).collect(),
        }
    }

    /// The default page→home mapping of this space.
    #[inline]
    pub fn home_map(&self) -> HomeMap {
        self.home_map
    }

    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Total pages in the global space.
    #[inline]
    pub fn total_pages(&self) -> u64 {
        (self.nodes * self.pages_per_node) as u64
    }

    /// Total bytes in the global space.
    #[inline]
    pub fn total_bytes(&self) -> u64 {
        self.total_pages() * PAGE_BYTES
    }

    /// Home node of a page.
    #[inline]
    pub fn home_of(&self, page: PageNum) -> u16 {
        self.homes[page.0 as usize].load(Ordering::Relaxed)
    }

    /// Re-home a page. As a distribution hint this must happen before the
    /// page is accessed through the coherence layer; re-homing a *live*
    /// page is a membership transition (Volans failover) that only the
    /// engine may perform, under its transition lock, with every cached
    /// copy of the page scrubbed. Either way no bytes move — the flat
    /// store is indexed by page number regardless of home metadata.
    pub fn set_home(&self, page: PageNum, node: u16) {
        assert!((node as usize) < self.nodes, "node {node} out of range");
        self.homes[page.0 as usize].store(node, Ordering::Relaxed);
    }

    /// The home copy of `page`.
    ///
    /// # Panics
    /// Panics if the page is outside the allocated space.
    #[inline]
    pub fn home_page(&self, page: PageNum) -> &PageData {
        &self.store[page.0 as usize]
    }

    /// True if `addr` lies within the allocated space.
    #[inline]
    pub fn contains(&self, addr: GlobalAddr) -> bool {
        addr.0 < self.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_round_up_to_pages() {
        let g = GlobalMemory::new(4, PAGE_BYTES + 1);
        assert_eq!(g.total_pages(), 8);
        assert_eq!(g.total_bytes(), 8 * PAGE_BYTES);
    }

    #[test]
    fn home_pages_are_distinct_storage() {
        let g = GlobalMemory::new(2, 4 * PAGE_BYTES);
        g.home_page(PageNum(0)).store(0, 111);
        g.home_page(PageNum(1)).store(0, 222);
        assert_eq!(g.home_page(PageNum(0)).load(0), 111);
        assert_eq!(g.home_page(PageNum(1)).load(0), 222);
        assert_eq!(g.home_page(PageNum(2)).load(0), 0);
    }

    #[test]
    fn interleaving_matches_addr_module() {
        let g = GlobalMemory::new(3, 8 * PAGE_BYTES);
        for p in 0..g.total_pages() {
            assert_eq!(g.home_of(PageNum(p)), (p % 3) as u16);
        }
    }

    #[test]
    fn contains_checks_bounds() {
        let g = GlobalMemory::new(2, 2 * PAGE_BYTES);
        assert!(g.contains(GlobalAddr(0)));
        assert!(g.contains(GlobalAddr(4 * PAGE_BYTES - 1)));
        assert!(!g.contains(GlobalAddr(4 * PAGE_BYTES)));
    }

    #[test]
    fn set_home_rehomes_metadata_not_data() {
        let g = GlobalMemory::new(4, 4 * PAGE_BYTES);
        g.home_page(PageNum(5)).store(0, 99);
        assert_eq!(g.home_of(PageNum(5)), 1); // interleaved default
        g.set_home(PageNum(5), 3);
        assert_eq!(g.home_of(PageNum(5)), 3);
        assert_eq!(g.home_page(PageNum(5)).load(0), 99); // data untouched
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_home_rejects_bad_node() {
        GlobalMemory::new(2, PAGE_BYTES).set_home(PageNum(0), 7);
    }
}
