//! Global addresses and their decomposition into pages and words.

use serde_like::NodeCount;

/// Bytes per DSM page (the paper's granularity: a 4 KiB virtual page).
pub const PAGE_BYTES: u64 = 4096;
/// Bytes per atomic word of simulated DRAM.
pub const WORD_BYTES: u64 = 8;
/// Words per page.
pub const WORDS_PER_PAGE: usize = (PAGE_BYTES / WORD_BYTES) as usize;

/// How pages map to home nodes.
///
/// The paper's prototype interleaves ("node 0 serves the lower addresses …
/// a simplistic approach; more sophisticated data distribution schemes are
/// orthogonal … left for future work", §3). `Blocked` is the first such
/// scheme: contiguous page ranges per node, which aligns chunked workloads'
/// data with the threads that touch it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HomePolicy {
    /// Page `p` lives on node `p mod N` (the paper's prototype).
    #[default]
    Interleaved,
    /// Node `k` serves pages `[k·P, (k+1)·P)` where `P` = pages per node.
    Blocked,
}

/// The page→home mapping for a concrete address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomeMap {
    pub nodes: usize,
    pub pages_per_node: u64,
    pub policy: HomePolicy,
}

impl HomeMap {
    /// Home node of `page`.
    #[inline]
    pub fn home(&self, page: PageNum) -> u16 {
        match self.policy {
            HomePolicy::Interleaved => (page.0 % self.nodes as u64) as u16,
            HomePolicy::Blocked => {
                ((page.0 / self.pages_per_node).min(self.nodes as u64 - 1)) as u16
            }
        }
    }

    /// Index of `page` within its home node's backing store.
    #[inline]
    pub fn home_index(&self, page: PageNum) -> usize {
        match self.policy {
            HomePolicy::Interleaved => (page.0 / self.nodes as u64) as usize,
            HomePolicy::Blocked => (page.0 % self.pages_per_node) as usize,
        }
    }
}

/// A page number within the global address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageNum(pub u64);

impl PageNum {
    /// Home node of this page under the paper's interleaved distribution:
    /// page p lives on node `p mod nodes`.
    #[inline]
    pub fn home(self, nodes: NodeCount) -> u16 {
        (self.0 % nodes as u64) as u16
    }

    /// Index of this page within its home node's backing store.
    #[inline]
    pub fn home_index(self, nodes: NodeCount) -> usize {
        (self.0 / nodes as u64) as usize
    }

    /// First byte address of the page.
    #[inline]
    pub fn base(self) -> GlobalAddr {
        GlobalAddr(self.0 * PAGE_BYTES)
    }
}

/// A byte address in the global shared address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalAddr(pub u64);

impl GlobalAddr {
    pub const NULL: GlobalAddr = GlobalAddr(u64::MAX);

    #[inline]
    pub fn page(self) -> PageNum {
        PageNum(self.0 / PAGE_BYTES)
    }

    /// Byte offset within the page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 % PAGE_BYTES
    }

    /// Word index within the page. The address must be word aligned.
    ///
    /// # Panics
    /// Panics on a misaligned address: simulated DRAM is word-atomic, and all
    /// typed accessors in `argo` produce aligned addresses.
    #[inline]
    pub fn word_index(self) -> usize {
        assert!(
            self.0.is_multiple_of(WORD_BYTES),
            "unaligned word access at global address {:#x}",
            self.0
        );
        (self.page_offset() / WORD_BYTES) as usize
    }

    #[inline]
    pub fn offset(self, bytes: u64) -> GlobalAddr {
        GlobalAddr(self.0 + bytes)
    }

    #[inline]
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }
}

impl std::fmt::Display for GlobalAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{:#x}", self.0)
    }
}

/// Minimal local alias to avoid a dependency: node counts fit in u16.
mod serde_like {
    pub type NodeCount = usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_decomposition() {
        let a = GlobalAddr(2 * PAGE_BYTES + 24);
        assert_eq!(a.page(), PageNum(2));
        assert_eq!(a.page_offset(), 24);
        assert_eq!(a.word_index(), 3);
        assert_eq!(a.page().base(), GlobalAddr(2 * PAGE_BYTES));
    }

    #[test]
    fn interleaved_home_assignment() {
        // 4 nodes: pages 0,4,8.. on node 0; 1,5,9.. on node 1; etc.
        for p in 0..32u64 {
            let page = PageNum(p);
            assert_eq!(page.home(4) as u64, p % 4);
            assert_eq!(page.home_index(4) as u64, p / 4);
        }
    }

    #[test]
    fn single_node_homes_everything() {
        assert_eq!(PageNum(17).home(1), 0);
        assert_eq!(PageNum(17).home_index(1), 17);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn word_index_rejects_misaligned() {
        GlobalAddr(13).word_index();
    }

    #[test]
    fn blocked_policy_maps_contiguous_ranges() {
        let m = HomeMap {
            nodes: 4,
            pages_per_node: 8,
            policy: HomePolicy::Blocked,
        };
        for p in 0..32u64 {
            assert_eq!(m.home(PageNum(p)) as u64, p / 8);
            assert_eq!(m.home_index(PageNum(p)) as u64, p % 8);
        }
        // Out-of-range pages clamp to the last node (defensive).
        assert_eq!(m.home(PageNum(100)), 3);
    }

    #[test]
    fn interleaved_policy_matches_legacy_helpers() {
        let m = HomeMap {
            nodes: 3,
            pages_per_node: 10,
            policy: HomePolicy::Interleaved,
        };
        for p in 0..30u64 {
            assert_eq!(m.home(PageNum(p)), PageNum(p).home(3));
            assert_eq!(m.home_index(PageNum(p)), PageNum(p).home_index(3));
        }
    }
}
