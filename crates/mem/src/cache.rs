//! Per-node page caches.
//!
//! Each node caches remote pages in a local, **direct-mapped** cache whose
//! unit of fill is a *line* of consecutive pages (paper §3.6.2: on a miss
//! Argo fetches not just the page but a configurable line of pages, trading
//! bandwidth for latency). A thread missing on a page that is already being
//! fetched waits for that fill — modeled by the line's `ready_at` virtual
//! timestamp, which every hit merges into its clock.
//!
//! This module is purely structural: eviction/fill/invalidation *policy* and
//! all network charging live in `carina`.

use crate::addr::PageNum;
use crate::page::PageData;
use parking_lot::{Mutex, MutexGuard};

/// Geometry of a node's page cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of direct-mapped line slots.
    pub lines: usize,
    /// Consecutive pages fetched per line (the paper's prefetch "cache line
    /// size"; 1 disables prefetching).
    pub pages_per_line: usize,
}

impl CacheConfig {
    pub fn new(lines: usize, pages_per_line: usize) -> Self {
        assert!(lines > 0 && pages_per_line > 0, "cache dimensions must be positive");
        CacheConfig { lines, pages_per_line }
    }

    /// Total pages the cache can hold.
    pub fn capacity_pages(&self) -> usize {
        self.lines * self.pages_per_line
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        // Roomy default: 8192 single-page lines = 32 MiB of cache.
        CacheConfig::new(8192, 1)
    }
}

/// One cached page within a line: data plus protocol bits.
///
/// Page data is allocated lazily on first fill: a cache is sized for the
/// worst case (thousands of slots per node) but typical programs touch a
/// small fraction, and eager allocation would cost gigabytes at 128 nodes.
#[derive(Debug)]
pub struct CachedPage {
    data: Option<PageData>,
    /// Holds a valid copy of the tagged page.
    pub valid: bool,
    /// Written since the last downgrade (a twin exists while dirty).
    pub dirty: bool,
    /// Snapshot taken at write-miss time; diffed against `data` on
    /// downgrade to avoid clobbering concurrent remote writers.
    pub twin: Option<PageData>,
}

impl CachedPage {
    fn empty() -> Self {
        CachedPage {
            data: None,
            valid: false,
            dirty: false,
            twin: None,
        }
    }

    /// The page's data storage, allocating it on first use.
    pub fn data_mut(&mut self) -> &PageData {
        self.data.get_or_insert_with(PageData::zeroed)
    }

    /// The page's data storage.
    ///
    /// # Panics
    /// Panics if the page was never filled — protocol code only reads data
    /// from `valid` pages, which have always been filled.
    pub fn data(&self) -> &PageData {
        self.data.as_ref().expect("reading a never-filled cache page")
    }

    /// Drop contents and protocol state (self-invalidation of this page).
    /// The data allocation is kept for reuse.
    pub fn invalidate(&mut self) {
        self.valid = false;
        self.dirty = false;
        self.twin = None;
    }
}

/// Mutable state of a line slot.
#[derive(Debug)]
pub struct LineState {
    /// Line id (`page / pages_per_line`) currently resident, if any.
    pub tag: Option<u64>,
    /// Virtual time at which the resident line's fill completed. Hits merge
    /// this: a thread cannot consume data before it arrived.
    pub ready_at: u64,
    pub pages: Vec<CachedPage>,
}

impl LineState {
    /// Reset the slot for a new line tag; all pages become invalid/clean.
    pub fn retag(&mut self, tag: u64) {
        self.tag = Some(tag);
        self.ready_at = 0;
        for p in &mut self.pages {
            p.invalidate();
        }
    }
}

/// A direct-mapped slot holding one line.
#[derive(Debug)]
pub struct LineSlot {
    state: Mutex<LineState>,
}

impl LineSlot {
    fn new(pages_per_line: usize) -> Self {
        LineSlot {
            state: Mutex::new(LineState {
                tag: None,
                ready_at: 0,
                pages: (0..pages_per_line).map(|_| CachedPage::empty()).collect(),
            }),
        }
    }

    /// Lock the slot for access or protocol action.
    pub fn lock(&self) -> MutexGuard<'_, LineState> {
        self.state.lock()
    }
}

/// A node's page cache.
#[derive(Debug)]
pub struct PageCache {
    config: CacheConfig,
    slots: Vec<LineSlot>,
}

impl PageCache {
    pub fn new(config: CacheConfig) -> Self {
        PageCache {
            config,
            slots: (0..config.lines)
                .map(|_| LineSlot::new(config.pages_per_line))
                .collect(),
        }
    }

    #[inline]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Line id containing `page`.
    #[inline]
    pub fn line_of(&self, page: PageNum) -> u64 {
        page.0 / self.config.pages_per_line as u64
    }

    /// First page of line `line`.
    #[inline]
    pub fn line_base(&self, line: u64) -> PageNum {
        PageNum(line * self.config.pages_per_line as u64)
    }

    /// Index of `page` within its line.
    #[inline]
    pub fn index_in_line(&self, page: PageNum) -> usize {
        (page.0 % self.config.pages_per_line as u64) as usize
    }

    /// The direct-mapped slot that `page` maps to.
    #[inline]
    pub fn slot_for(&self, page: PageNum) -> &LineSlot {
        let line = self.line_of(page);
        &self.slots[(line % self.config.lines as u64) as usize]
    }

    /// All slots, for whole-cache fence sweeps.
    pub fn slots(&self) -> impl Iterator<Item = &LineSlot> {
        self.slots.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapping_is_stable_and_conflicting() {
        let c = PageCache::new(CacheConfig::new(4, 2));
        // Pages 0 and 1 share line 0; page 8 maps to line 4 which conflicts
        // with line 0 in a 4-slot cache.
        assert_eq!(c.line_of(PageNum(0)), 0);
        assert_eq!(c.line_of(PageNum(1)), 0);
        assert_eq!(c.line_of(PageNum(8)), 4);
        assert!(std::ptr::eq(c.slot_for(PageNum(0)), c.slot_for(PageNum(1))));
        assert!(std::ptr::eq(c.slot_for(PageNum(0)), c.slot_for(PageNum(8))));
        assert!(!std::ptr::eq(c.slot_for(PageNum(0)), c.slot_for(PageNum(2))));
    }

    #[test]
    fn retag_invalidates_all_pages() {
        let c = PageCache::new(CacheConfig::new(2, 2));
        let slot = c.slot_for(PageNum(0));
        {
            let mut st = slot.lock();
            st.tag = Some(0);
            st.pages[0].valid = true;
            st.pages[0].dirty = true;
            st.pages[0].twin = Some(PageData::zeroed());
            st.retag(5);
            assert_eq!(st.tag, Some(5));
            assert!(!st.pages[0].valid);
            assert!(!st.pages[0].dirty);
            assert!(st.pages[0].twin.is_none());
        }
    }

    #[test]
    fn line_base_and_index_round_trip() {
        let c = PageCache::new(CacheConfig::new(8, 4));
        let p = PageNum(13);
        let line = c.line_of(p);
        assert_eq!(line, 3);
        assert_eq!(c.line_base(line), PageNum(12));
        assert_eq!(c.index_in_line(p), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lines_rejected() {
        CacheConfig::new(0, 1);
    }
}
