//! Per-node page caches.
//!
//! Each node caches remote pages in a local, **direct-mapped** cache whose
//! unit of fill is a *line* of consecutive pages (paper §3.6.2: on a miss
//! Argo fetches not just the page but a configurable line of pages, trading
//! bandwidth for latency). A thread missing on a page that is already being
//! fetched waits for that fill — modeled by the line's `ready_at` virtual
//! timestamp, which every hit merges into its clock.
//!
//! Host-side engineering (none of it visible in virtual time):
//!
//! - **Seqlock read path.** Each slot publishes lock-free mirrors of its
//!   tag, valid mask, and fill timestamp, guarded by a sequence word
//!   ([`LineSlot::try_read`]). Read hits — the overwhelming majority of
//!   protocol operations — validate the mirrors optimistically and never
//!   touch the slot mutex; any concurrent metadata mutation is caught by
//!   the sequence check and falls back to the locked path. Page contents
//!   are word-atomic, so the optimistic loads are race-free by
//!   construction.
//! - **Occupancy bitsets.** The cache tracks which slots hold a line and
//!   which hold dirty pages, so fence sweeps visit O(resident) slots
//!   instead of scanning every slot of a mostly-empty cache.
//!
//! Both structures are maintained in one place: [`SlotGuard`], the only
//! handle through which slot metadata can be mutated. Its `Drop` republishes
//! the mirrors and bitset bits while the slot mutex is still held, so they
//! can never drift from the locked state.
//!
//! This module is purely structural: eviction/fill/invalidation *policy* and
//! all network charging live in `carina`.

use crate::addr::PageNum;
use crate::page::{PageData, WriteMask};
use parking_lot::{Mutex, MutexGuard};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Geometry of a node's page cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of direct-mapped line slots.
    pub lines: usize,
    /// Consecutive pages fetched per line (the paper's prefetch "cache line
    /// size"; 1 disables prefetching).
    pub pages_per_line: usize,
}

impl CacheConfig {
    pub fn new(lines: usize, pages_per_line: usize) -> Self {
        assert!(lines > 0 && pages_per_line > 0, "cache dimensions must be positive");
        // The per-slot valid mask is one 64-bit word.
        assert!(pages_per_line <= 64, "lines are limited to 64 pages");
        CacheConfig { lines, pages_per_line }
    }

    /// Total pages the cache can hold.
    pub fn capacity_pages(&self) -> usize {
        self.lines * self.pages_per_line
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        // Roomy default: 8192 single-page lines = 32 MiB of cache.
        CacheConfig::new(8192, 1)
    }
}

/// Protocol metadata of one cached page within a line. The page *contents*
/// live outside the slot mutex (see [`LineSlot`]) so lock-free readers can
/// reach them.
#[derive(Debug)]
pub struct CachedPage {
    /// Holds a valid copy of the tagged page.
    pub valid: bool,
    /// Written since the last downgrade (a twin exists while dirty).
    pub dirty: bool,
    /// Snapshot taken at write-miss time; diffed against the live data on
    /// downgrade to avoid clobbering concurrent remote writers. Lazily
    /// materialized per 64-word chunk as the mask's chunks are first
    /// touched, so it only holds meaningful data inside masked chunks.
    pub twin: Option<PageData>,
    /// Which words have been stored to since the page last went clean — a
    /// superset of the words that actually changed. Drives the masked diff
    /// on downgrade and the lazy chunk-wise twin copies.
    pub mask: WriteMask,
}

impl CachedPage {
    fn empty() -> Self {
        CachedPage {
            valid: false,
            dirty: false,
            twin: None,
            mask: WriteMask::new(),
        }
    }

    /// Drop protocol state (self-invalidation of this page). The data
    /// allocation is kept for reuse.
    pub fn invalidate(&mut self) {
        self.valid = false;
        self.dirty = false;
        self.twin = None;
        self.mask.clear();
    }
}

/// Mutable state of a line slot.
#[derive(Debug)]
pub struct LineState {
    /// Line id (`page / pages_per_line`) currently resident, if any.
    pub tag: Option<u64>,
    /// Virtual time at which the resident line's fill completed. Hits merge
    /// this: a thread cannot consume data before it arrived.
    pub ready_at: u64,
    pub pages: Vec<CachedPage>,
}

impl LineState {
    /// Reset the slot for a new line tag; all pages become invalid/clean.
    pub fn retag(&mut self, tag: u64) {
        self.tag = Some(tag);
        self.ready_at = 0;
        for p in &mut self.pages {
            p.invalidate();
        }
    }
}

/// A direct-mapped slot holding one line.
///
/// Alongside the mutex-protected [`LineState`], the slot carries:
///
/// - per-page data storage in [`OnceLock`]s — allocated on first fill,
///   never freed, contents word-atomic, readable without the mutex;
/// - seqlock mirrors of the metadata (`seq`, `tag`, valid mask,
///   `ready_at`), republished by [`SlotGuard`] on every mutation.
///
/// Writer protocol (inside `SlotGuard`): bump `seq` to odd before the
/// first mutation with a release fence, mutate under the mutex, republish
/// the mirrors, bump `seq` back to even with a release store. Readers
/// ([`Self::try_read`]) load `seq` (acquire), read the mirrors and data,
/// then re-check `seq` behind an acquire fence.
#[derive(Debug)]
pub struct LineSlot {
    state: Mutex<LineState>,
    /// Seqlock word: odd while a mutation is in flight.
    seq: AtomicU64,
    /// Mirror of `tag`, biased by one (0 = empty slot).
    fast_tag: AtomicU64,
    /// Mirror of the per-page `valid` bits.
    fast_valid: AtomicU64,
    /// Mirror of `ready_at`.
    fast_ready: AtomicU64,
    /// Page contents, indexed like `LineState::pages`. Allocation is lazy:
    /// a cache is sized for the worst case (thousands of slots per node)
    /// but typical programs touch a small fraction, and eager allocation
    /// would cost gigabytes at 128 nodes.
    data: Box<[OnceLock<PageData>]>,
}

impl LineSlot {
    fn new(pages_per_line: usize) -> Self {
        LineSlot {
            state: Mutex::new(LineState {
                tag: None,
                ready_at: 0,
                pages: (0..pages_per_line).map(|_| CachedPage::empty()).collect(),
            }),
            seq: AtomicU64::new(0),
            fast_tag: AtomicU64::new(0),
            fast_valid: AtomicU64::new(0),
            fast_ready: AtomicU64::new(0),
            data: (0..pages_per_line).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Optimistic lock-free read of `word` of the page at `idx`, provided
    /// the slot currently holds line `tag` and that page is valid. Returns
    /// the value and the line's `ready_at` on success; `None` means the
    /// caller must take the locked path (miss, or a concurrent mutation).
    #[inline]
    pub fn try_read(&self, tag: u64, idx: usize, word: usize) -> Option<(u64, u64)> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 != 0 {
            return None;
        }
        if self.fast_tag.load(Ordering::Relaxed) != tag.wrapping_add(1)
            || self.fast_valid.load(Ordering::Relaxed) & (1u64 << idx) == 0
        {
            return None;
        }
        let ready = self.fast_ready.load(Ordering::Relaxed);
        let value = self.data[idx].get()?.load(word);
        fence(Ordering::Acquire);
        if self.seq.load(Ordering::Relaxed) != s1 {
            return None;
        }
        Some((value, ready))
    }

    /// Bulk variant of [`Self::try_read`]: fills `out` from consecutive
    /// words starting at `first_word`. Returns `ready_at` on success.
    #[inline]
    pub fn try_read_run(
        &self,
        tag: u64,
        idx: usize,
        first_word: usize,
        out: &mut [u64],
    ) -> Option<u64> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 != 0 {
            return None;
        }
        if self.fast_tag.load(Ordering::Relaxed) != tag.wrapping_add(1)
            || self.fast_valid.load(Ordering::Relaxed) & (1u64 << idx) == 0
        {
            return None;
        }
        let ready = self.fast_ready.load(Ordering::Relaxed);
        let data = self.data[idx].get()?;
        for (k, o) in out.iter_mut().enumerate() {
            *o = data.load(first_word + k);
        }
        fence(Ordering::Acquire);
        if self.seq.load(Ordering::Relaxed) != s1 {
            return None;
        }
        Some(ready)
    }

    /// The data storage of the page at `idx`.
    ///
    /// # Panics
    /// Panics if the page was never filled — protocol code only reads data
    /// from `valid` pages, which have always been filled.
    #[inline]
    pub fn data(&self, idx: usize) -> &PageData {
        self.data[idx].get().expect("reading a never-filled cache page")
    }

    /// The data storage of the page at `idx`, allocating it on first use.
    #[inline]
    pub fn alloc_data(&self, idx: usize) -> &PageData {
        self.data[idx].get_or_init(PageData::zeroed)
    }
}

#[inline]
fn bitset_words(bits: usize) -> Box<[AtomicU64]> {
    (0..bits.div_ceil(64)).map(|_| AtomicU64::new(0)).collect()
}

#[inline]
fn bitset_write(words: &[AtomicU64], i: usize, on: bool) {
    let mask = 1u64 << (i % 64);
    if on {
        words[i / 64].fetch_or(mask, Ordering::Relaxed);
    } else {
        words[i / 64].fetch_and(!mask, Ordering::Relaxed);
    }
}

fn bitset_indices(words: &[AtomicU64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(w, word)| {
        let mut bits = word.load(Ordering::Relaxed);
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(w * 64 + b)
        })
    })
}

/// A node's page cache.
#[derive(Debug)]
pub struct PageCache {
    config: CacheConfig,
    slots: Vec<LineSlot>,
    /// Slots currently holding a line (`tag.is_some()`).
    occupied: Box<[AtomicU64]>,
    /// Slots currently holding at least one dirty page.
    dirty: Box<[AtomicU64]>,
}

impl PageCache {
    pub fn new(config: CacheConfig) -> Self {
        PageCache {
            config,
            slots: (0..config.lines)
                .map(|_| LineSlot::new(config.pages_per_line))
                .collect(),
            occupied: bitset_words(config.lines),
            dirty: bitset_words(config.lines),
        }
    }

    #[inline]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Line id containing `page`.
    #[inline]
    pub fn line_of(&self, page: PageNum) -> u64 {
        page.0 / self.config.pages_per_line as u64
    }

    /// First page of line `line`.
    #[inline]
    pub fn line_base(&self, line: u64) -> PageNum {
        PageNum(line * self.config.pages_per_line as u64)
    }

    /// Index of `page` within its line.
    #[inline]
    pub fn index_in_line(&self, page: PageNum) -> usize {
        (page.0 % self.config.pages_per_line as u64) as usize
    }

    /// The direct-mapped slot that `page` maps to (for the lock-free read
    /// path; mutations go through [`Self::lock_slot`]).
    #[inline]
    pub fn slot_for(&self, page: PageNum) -> &LineSlot {
        &self.slots[self.slot_index_for(page)]
    }

    #[inline]
    fn slot_index_for(&self, page: PageNum) -> usize {
        (self.line_of(page) % self.config.lines as u64) as usize
    }

    #[inline]
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Lock the slot that `page` maps to.
    #[inline]
    pub fn lock_slot(&self, page: PageNum) -> SlotGuard<'_> {
        self.lock_index(self.slot_index_for(page))
    }

    /// Lock slot `index` (used with the occupancy iterators for sweeps).
    #[inline]
    pub fn lock_index(&self, index: usize) -> SlotGuard<'_> {
        SlotGuard {
            cache: self,
            index,
            wrote: false,
            st: self.slots[index].state.lock(),
        }
    }

    /// Indices of slots currently holding a line, ascending. A lock-free
    /// snapshot: slots mutated concurrently may appear or not, exactly as
    /// they might under a full scan — callers re-check under the slot lock.
    pub fn occupied_indices(&self) -> impl Iterator<Item = usize> + '_ {
        bitset_indices(&self.occupied)
    }

    /// Indices of slots currently holding at least one dirty page,
    /// ascending (same snapshot semantics as [`Self::occupied_indices`]).
    pub fn dirty_indices(&self) -> impl Iterator<Item = usize> + '_ {
        bitset_indices(&self.dirty)
    }
}

/// Exclusive access to one slot's metadata.
///
/// Dereferences to [`LineState`]. The first mutable dereference flips the
/// slot's seqlock odd (fencing out optimistic readers); dropping the guard
/// after a mutation republishes the lock-free mirrors and the cache's
/// occupancy bitsets, then flips the seqlock even — all before the mutex is
/// released, so locked and lock-free views can never disagree. Read-only
/// uses pay none of this.
pub struct SlotGuard<'a> {
    cache: &'a PageCache,
    index: usize,
    wrote: bool,
    // Dropped last (declaration order): the republish in `Drop::drop` runs
    // while the mutex is still held.
    st: MutexGuard<'a, LineState>,
}

impl<'a> SlotGuard<'a> {
    #[inline]
    fn slot(&self) -> &'a LineSlot {
        &self.cache.slots[self.index]
    }

    /// This slot's index within the cache.
    #[inline]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Data storage of the page at `idx`. The reference is tied to the
    /// cache, not the guard, so it can be used while metadata is mutably
    /// borrowed; contents are word-atomic.
    #[inline]
    pub fn data(&self, idx: usize) -> &'a PageData {
        self.slot().data(idx)
    }

    /// Like [`Self::data`], allocating the page storage on first use.
    #[inline]
    pub fn alloc_data(&self, idx: usize) -> &'a PageData {
        self.slot().alloc_data(idx)
    }
}

impl Deref for SlotGuard<'_> {
    type Target = LineState;

    #[inline]
    fn deref(&self) -> &LineState {
        &self.st
    }
}

impl DerefMut for SlotGuard<'_> {
    #[inline]
    fn deref_mut(&mut self) -> &mut LineState {
        if !self.wrote {
            self.wrote = true;
            let slot = &self.cache.slots[self.index];
            // Seqlock writer entry: odd store, then a release fence so the
            // odd value is visible before any mutation.
            let s = slot.seq.load(Ordering::Relaxed);
            slot.seq.store(s.wrapping_add(1), Ordering::Relaxed);
            fence(Ordering::Release);
        }
        &mut self.st
    }
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        if !self.wrote {
            return;
        }
        let slot = &self.cache.slots[self.index];
        let st = &*self.st;
        slot.fast_tag
            .store(st.tag.map_or(0, |t| t.wrapping_add(1)), Ordering::Relaxed);
        let mut valid = 0u64;
        let mut any_dirty = false;
        for (i, p) in st.pages.iter().enumerate() {
            if p.valid {
                valid |= 1u64 << i;
            }
            any_dirty |= p.dirty;
        }
        slot.fast_valid.store(valid, Ordering::Relaxed);
        slot.fast_ready.store(st.ready_at, Ordering::Relaxed);
        bitset_write(&self.cache.occupied, self.index, st.tag.is_some());
        bitset_write(&self.cache.dirty, self.index, any_dirty);
        // Seqlock writer exit: back to even, releasing the mutations.
        let s = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(s.wrapping_add(1), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn direct_mapping_is_stable_and_conflicting() {
        let c = PageCache::new(CacheConfig::new(4, 2));
        // Pages 0 and 1 share line 0; page 8 maps to line 4 which conflicts
        // with line 0 in a 4-slot cache.
        assert_eq!(c.line_of(PageNum(0)), 0);
        assert_eq!(c.line_of(PageNum(1)), 0);
        assert_eq!(c.line_of(PageNum(8)), 4);
        assert!(std::ptr::eq(c.slot_for(PageNum(0)), c.slot_for(PageNum(1))));
        assert!(std::ptr::eq(c.slot_for(PageNum(0)), c.slot_for(PageNum(8))));
        assert!(!std::ptr::eq(c.slot_for(PageNum(0)), c.slot_for(PageNum(2))));
    }

    #[test]
    fn retag_invalidates_all_pages() {
        let c = PageCache::new(CacheConfig::new(2, 2));
        let mut st = c.lock_slot(PageNum(0));
        st.tag = Some(0);
        st.pages[0].valid = true;
        st.pages[0].dirty = true;
        st.pages[0].twin = Some(PageData::zeroed());
        st.retag(5);
        assert_eq!(st.tag, Some(5));
        assert!(!st.pages[0].valid);
        assert!(!st.pages[0].dirty);
        assert!(st.pages[0].twin.is_none());
    }

    #[test]
    fn line_base_and_index_round_trip() {
        let c = PageCache::new(CacheConfig::new(8, 4));
        let p = PageNum(13);
        let line = c.line_of(p);
        assert_eq!(line, 3);
        assert_eq!(c.line_base(line), PageNum(12));
        assert_eq!(c.index_in_line(p), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lines_rejected() {
        CacheConfig::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "64")]
    fn oversized_lines_rejected() {
        CacheConfig::new(1, 65);
    }

    #[test]
    fn occupancy_bitsets_track_guard_mutations() {
        let c = PageCache::new(CacheConfig::new(128, 1));
        assert_eq!(c.occupied_indices().count(), 0);
        for page in [3u64, 70, 100] {
            let mut g = c.lock_slot(PageNum(page));
            let line = c.line_of(PageNum(page));
            g.retag(line);
            g.alloc_data(0).store(0, page);
            g.pages[0].valid = true;
        }
        assert_eq!(c.occupied_indices().collect::<Vec<_>>(), vec![3, 70, 100]);
        assert_eq!(c.dirty_indices().count(), 0);
        {
            let mut g = c.lock_slot(PageNum(70));
            g.pages[0].dirty = true;
        }
        assert_eq!(c.dirty_indices().collect::<Vec<_>>(), vec![70]);
        {
            let mut g = c.lock_slot(PageNum(70));
            g.pages[0].invalidate();
            g.tag = None;
        }
        assert_eq!(c.occupied_indices().collect::<Vec<_>>(), vec![3, 100]);
        assert_eq!(c.dirty_indices().count(), 0);
    }

    #[test]
    fn read_only_guard_leaves_seqlock_untouched() {
        let c = PageCache::new(CacheConfig::new(4, 1));
        let before = c.slots[0].seq.load(Ordering::Relaxed);
        {
            let g = c.lock_index(0);
            assert_eq!(g.tag, None);
        }
        assert_eq!(c.slots[0].seq.load(Ordering::Relaxed), before);
    }

    #[test]
    fn try_read_hits_only_valid_tagged_pages() {
        let c = PageCache::new(CacheConfig::new(4, 2));
        let slot = c.slot_for(PageNum(0));
        assert_eq!(slot.try_read(0, 0, 0), None); // empty slot
        {
            let mut g = c.lock_slot(PageNum(0));
            g.retag(0);
            g.alloc_data(0).store(7, 42);
            g.pages[0].valid = true;
            g.ready_at = 123;
        }
        assert_eq!(slot.try_read(0, 0, 7), Some((42, 123)));
        assert_eq!(slot.try_read(0, 1, 7), None); // page 1 invalid
        assert_eq!(slot.try_read(9, 0, 7), None); // wrong tag
        {
            let mut g = c.lock_slot(PageNum(0));
            g.pages[0].invalidate();
        }
        assert_eq!(slot.try_read(0, 0, 7), None); // invalidated
    }

    #[test]
    fn try_read_run_reads_consecutive_words() {
        let c = PageCache::new(CacheConfig::new(4, 1));
        {
            let mut g = c.lock_slot(PageNum(5));
            g.retag(5);
            let d = g.alloc_data(0);
            for w in 0..8 {
                d.store(w, (w as u64) * 11);
            }
            g.pages[0].valid = true;
            g.ready_at = 9;
        }
        let mut out = [0u64; 4];
        let slot = c.slot_for(PageNum(5));
        assert_eq!(slot.try_read_run(5, 0, 2, &mut out), Some(9));
        assert_eq!(out, [22, 33, 44, 55]);
        assert_eq!(slot.try_read_run(6, 0, 2, &mut out), None);
    }

    #[test]
    fn concurrent_retag_and_fill_is_consistent() {
        let cache = Arc::new(PageCache::new(CacheConfig::new(4, 2)));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for round in 0..500u64 {
                        let page = PageNum((t * 500 + round) * 2);
                        let mut st = cache.lock_slot(page);
                        let line = cache.line_of(page);
                        if st.tag != Some(line) {
                            st.retag(line);
                        }
                        let idx = cache.index_in_line(page);
                        st.alloc_data(idx).store(0, t * 1000 + round);
                        st.pages[idx].valid = true;
                        // Invariant under the lock: tag matches what we set.
                        assert_eq!(st.tag, Some(line));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn seqlock_readers_never_observe_torn_state() {
        // One thread alternates slot contents between two (tag, value)
        // pairs; readers must only ever observe matched pairs.
        let cache = Arc::new(PageCache::new(CacheConfig::new(1, 1)));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cache = cache.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut hits = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for tag in [0u64, 1] {
                            let slot = cache.slot_for(PageNum(tag));
                            if let Some((v, ready)) = slot.try_read(tag, 0, 0) {
                                assert_eq!(v, tag * 1000 + 5, "torn value for tag {tag}");
                                assert_eq!(ready, tag + 7, "torn ready_at for tag {tag}");
                                hits += 1;
                            }
                        }
                    }
                    hits
                })
            })
            .collect();
        for round in 0..20_000u64 {
            let tag = round % 2;
            let mut g = cache.lock_slot(PageNum(tag));
            g.retag(tag);
            g.alloc_data(0).store(0, tag * 1000 + 5);
            g.pages[0].valid = true;
            g.ready_at = tag + 7;
        }
        stop.store(true, Ordering::Relaxed);
        for h in readers {
            h.join().unwrap();
        }
    }
}
