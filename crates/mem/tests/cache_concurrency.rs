//! Concurrency tests for the page-cache structure: slot locking must keep
//! line state consistent under contention.

use mem::{CacheConfig, PageCache, PageNum};
use std::sync::Arc;

#[test]
fn concurrent_retag_and_fill_is_consistent() {
    let cache = Arc::new(PageCache::new(CacheConfig::new(4, 2)));
    let handles: Vec<_> = (0..8u64)
        .map(|t| {
            let cache = cache.clone();
            std::thread::spawn(move || {
                for round in 0..500u64 {
                    let page = PageNum((t * 500 + round) * 2);
                    let slot = cache.slot_for(page);
                    let mut st = slot.lock();
                    let line = cache.line_of(page);
                    if st.tag != Some(line) {
                        st.retag(line);
                    }
                    let idx = cache.index_in_line(page);
                    st.pages[idx].data_mut().store(0, t * 1000 + round);
                    st.pages[idx].valid = true;
                    // Invariant under the lock: tag matches what we set.
                    assert_eq!(st.tag, Some(line));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn slots_iter_covers_every_slot_exactly_once() {
    let cache = PageCache::new(CacheConfig::new(16, 4));
    assert_eq!(cache.slots().count(), 16);
    // Distinct lines within capacity hit distinct slots.
    let mut seen = std::collections::HashSet::new();
    for line in 0..16u64 {
        let p = cache.line_base(line);
        seen.insert(cache.slot_for(p) as *const _ as usize);
    }
    assert_eq!(seen.len(), 16);
}

#[test]
fn capacity_math() {
    let cfg = CacheConfig::new(8, 4);
    assert_eq!(cfg.capacity_pages(), 32);
}
