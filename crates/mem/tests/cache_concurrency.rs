//! Concurrency tests for the page-cache structure: slot locking must keep
//! line state consistent under contention, and the lock-free read path must
//! agree with the locked state it mirrors.

use mem::{CacheConfig, PageCache, PageNum};
use std::sync::Arc;

#[test]
fn concurrent_retag_and_fill_is_consistent() {
    let cache = Arc::new(PageCache::new(CacheConfig::new(4, 2)));
    let handles: Vec<_> = (0..8u64)
        .map(|t| {
            let cache = cache.clone();
            std::thread::spawn(move || {
                for round in 0..500u64 {
                    let page = PageNum((t * 500 + round) * 2);
                    let mut st = cache.lock_slot(page);
                    let line = cache.line_of(page);
                    if st.tag != Some(line) {
                        st.retag(line);
                    }
                    let idx = cache.index_in_line(page);
                    st.alloc_data(idx).store(0, t * 1000 + round);
                    st.pages[idx].valid = true;
                    // Invariant under the lock: tag matches what we set.
                    assert_eq!(st.tag, Some(line));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn occupancy_covers_every_filled_slot_exactly_once() {
    let cache = PageCache::new(CacheConfig::new(16, 4));
    assert_eq!(cache.num_slots(), 16);
    assert_eq!(cache.occupied_indices().count(), 0);
    // Distinct lines within capacity hit distinct slots.
    let mut seen = std::collections::HashSet::new();
    for line in 0..16u64 {
        let p = cache.line_base(line);
        seen.insert(cache.slot_for(p) as *const _ as usize);
        let mut g = cache.lock_slot(p);
        g.retag(line);
    }
    assert_eq!(seen.len(), 16);
    assert_eq!(cache.occupied_indices().count(), 16);
}

#[test]
fn lock_free_reads_race_with_locked_writers() {
    // Readers spin on try_read while writers churn fills and invalidations;
    // every successful optimistic read must return a value actually
    // published for that tag.
    let cache = Arc::new(PageCache::new(CacheConfig::new(8, 1)));
    let writers: Vec<_> = (0..2u64)
        .map(|w| {
            let cache = cache.clone();
            std::thread::spawn(move || {
                for round in 0..20_000u64 {
                    let line = (w * 4) + (round % 4);
                    let page = PageNum(line);
                    let mut g = cache.lock_slot(page);
                    if round % 7 == 3 {
                        if g.tag == Some(line) {
                            g.pages[0].invalidate();
                            g.tag = None;
                        }
                    } else {
                        g.retag(line);
                        g.alloc_data(0).store(3, line * 100 + 9);
                        g.pages[0].valid = true;
                        g.ready_at = line;
                    }
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let cache = cache.clone();
            std::thread::spawn(move || {
                let mut hits = 0u64;
                for round in 0..40_000u64 {
                    let line = round % 8;
                    if let Some((v, ready)) = cache.slot_for(PageNum(line)).try_read(line, 0, 3)
                    {
                        assert_eq!(v, line * 100 + 9);
                        assert_eq!(ready, line);
                        hits += 1;
                    }
                }
                hits
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }
    for h in readers {
        h.join().unwrap();
    }
}

#[test]
fn capacity_math() {
    let cfg = CacheConfig::new(8, 4);
    assert_eq!(cfg.capacity_pages(), 32);
}
