//! Property tests on the virtual-time substrate: monotonicity, merge
//! semantics, and cost-model algebra must hold for arbitrary inputs.

use proptest::prelude::*;
use simnet::testkit::{thread, tiny_net};
use simnet::{CostModel, NodeId};

proptest! {
    /// A thread's clock never goes backwards under any op sequence.
    #[test]
    fn prop_clock_monotone(ops in proptest::collection::vec((0u8..5, 0u64..10_000), 1..100)) {
        let mut t = thread(&tiny_net(4), 0, 0);
        let mut last = 0;
        for (kind, arg) in ops {
            match kind {
                0 => t.compute(arg),
                1 => t.merge(arg),
                2 => t.rdma_read(NodeId((arg % 4) as u16), arg % 65536),
                3 => { let _ = t.rdma_write(NodeId((arg % 4) as u16), arg % 65536); }
                _ => t.rdma_atomic(NodeId((arg % 4) as u16)),
            }
            prop_assert!(t.now() >= last, "clock went backwards");
            last = t.now();
        }
    }

    /// Transfer cost is monotone in size and additive-dominated (cost of a
    /// combined transfer never exceeds the sum of its halves' wire terms).
    #[test]
    fn prop_transfer_cost_monotone(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let c = CostModel::paper_2011();
        prop_assert!(c.transfer_cycles(a + b) >= c.transfer_cycles(a));
        prop_assert!(c.transfer_cycles(a + b) <= c.transfer_cycles(a) + c.transfer_cycles(b) + 1);
    }

    /// cycles→secs→cycles round-trips within rounding.
    #[test]
    fn prop_time_conversion_round_trips(cycles in 0u64..1_000_000_000_000) {
        let c = CostModel::paper_2011();
        let back = c.secs_to_cycles(c.cycles_to_secs(cycles));
        prop_assert!(back.abs_diff(cycles) <= cycles / 1_000_000 + 1);
    }

    /// Posted writes settle no earlier than the initiator unblocks, and
    /// reads settle exactly when the initiator unblocks.
    #[test]
    fn prop_settle_ordering(bytes in 1u64..1_000_000, start in 0u64..1_000_000) {
        let net = tiny_net(2);
        let loc = net.topology().loc(NodeId(0), 0);
        let w = net.rdma_write(loc, NodeId(1), start, bytes);
        prop_assert!(w.settled >= w.initiator_done);
        let r = net.rdma_read(loc, NodeId(1), start, bytes);
        prop_assert_eq!(r.settled, r.initiator_done);
        prop_assert!(r.initiator_done >= start);
    }

    /// Per-node accounting conserves bytes: sum(in) == sum(out).
    #[test]
    fn prop_per_node_accounting_conserves(
        transfers in proptest::collection::vec((0u16..4, 0u16..4, 1u64..100_000), 1..50)
    ) {
        let net = tiny_net(4);
        for (src, dst, bytes) in transfers {
            let loc = net.topology().loc(NodeId(src), 0);
            let _ = net.rdma_write(loc, NodeId(dst), 0, bytes);
        }
        let per = net.per_node_stats();
        let total_in: u64 = per.iter().map(|p| p.bytes_in).sum();
        let total_out: u64 = per.iter().map(|p| p.bytes_out).sum();
        prop_assert_eq!(total_in, total_out);
    }
}
