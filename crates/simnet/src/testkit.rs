//! Shared test scaffolding.
//!
//! Nearly every test module across simnet/carina/vela used to copy-paste
//! the same three lines — build a tiny topology, price it with the paper's
//! 2011 cost column, spawn a `SimThread` on some core. These helpers are
//! that setup, once. They are plain `pub` (not `cfg(test)`) so downstream
//! crates' tests and benches can use them too.

use crate::{ClusterTopology, CostModel, Interconnect, NodeId, SimThread};
use std::sync::Arc;

/// The standard test fabric: `nodes` machines of [`ClusterTopology::tiny`]
/// shape, priced with [`CostModel::paper_2011`].
pub fn tiny_net(nodes: usize) -> Arc<Interconnect> {
    Interconnect::new(ClusterTopology::tiny(nodes), CostModel::paper_2011())
}

/// A fabric with the paper's full node shape (4 NUMA domains × 4 cores).
pub fn paper_net(nodes: usize) -> Arc<Interconnect> {
    Interconnect::new(ClusterTopology::paper(nodes), CostModel::paper_2011())
}

/// A simulated thread on local core `core` of node `node` of `net`.
pub fn thread(net: &Arc<Interconnect>, node: u16, core: usize) -> SimThread {
    SimThread::new(net.topology().loc(NodeId(node), core), net.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_consistent_fixtures() {
        let net = tiny_net(3);
        assert_eq!(net.topology().nodes, 3);
        assert_eq!(net.cost().network_latency, CostModel::paper_2011().network_latency);
        let t = thread(&net, 2, 1);
        assert_eq!(t.node(), NodeId(2));
        assert_eq!(t.now(), 0);
        assert_eq!(paper_net(2).topology().cores_per_node(), 16);
    }
}
