//! Message passing for MPI-style baselines.
//!
//! The paper compares Argo against MPI ports of several benchmarks. This
//! module provides the minimal two-sided layer those ports need: tagged
//! send/receive between ranks, a barrier, and an all-reduce — all with
//! virtual-time semantics. Every receive pays the software message-handler
//! cost that Argo's passive protocol avoids.

use crate::clock::SimThread;
use crate::net::Interconnect;
use crate::topology::ThreadLoc;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Message tag for matching sends to receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub u32);

/// A delivered message.
#[derive(Debug)]
pub struct Msg {
    pub src: usize,
    pub tag: Tag,
    pub payload: Vec<u8>,
    /// Virtual time at which the message (and its handler) completed at the
    /// receiver; merged into the receiving thread's clock.
    pub settled: u64,
}

/// Error from [`MsgWorld::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No matching message arrived within the wall-clock timeout. In a
    /// correct program this indicates a deadlock in the communication
    /// pattern, so tests treat it as failure.
    Timeout,
}

#[derive(Default)]
struct Mailbox {
    queue: Mutex<VecDeque<Msg>>,
    cond: Condvar,
}

struct BarrierState {
    entered: usize,
    generation: u64,
    max_clock: u64,
    /// Exit timestamp of the generation that just completed.
    release_clock: u64,
    /// Scratch for all-reduce sums.
    acc: f64,
    result: f64,
}

/// A communicator over `ranks` participants (one per simulated process).
pub struct MsgWorld {
    net: Arc<Interconnect>,
    locs: Vec<ThreadLoc>,
    mailboxes: Vec<Mailbox>,
    barrier: Mutex<BarrierState>,
    barrier_cond: Condvar,
}

impl MsgWorld {
    /// Create a world with one rank per entry of `locs` (rank i lives at
    /// `locs[i]`).
    pub fn new(net: Arc<Interconnect>, locs: Vec<ThreadLoc>) -> Arc<Self> {
        let ranks = locs.len();
        assert!(ranks > 0, "MsgWorld needs at least one rank");
        Arc::new(MsgWorld {
            net,
            locs,
            mailboxes: (0..ranks).map(|_| Mailbox::default()).collect(),
            barrier: Mutex::new(BarrierState {
                entered: 0,
                generation: 0,
                max_clock: 0,
                release_clock: 0,
                acc: 0.0,
                result: 0.0,
            }),
            barrier_cond: Condvar::new(),
        })
    }

    pub fn ranks(&self) -> usize {
        self.locs.len()
    }

    /// Send `payload` from `thread` (which must be rank `src`) to rank `dst`.
    /// Buffered-send semantics: the sender unblocks after handing the
    /// payload to its NIC.
    pub fn send(&self, thread: &mut SimThread, src: usize, dst: usize, tag: Tag, payload: Vec<u8>) {
        assert!(dst < self.ranks(), "rank {dst} out of range");
        let timing = self.net.message(
            self.locs[src],
            self.locs[dst],
            thread.now(),
            payload.len() as u64,
        );
        thread.merge(timing.initiator_done);
        let msg = Msg {
            src,
            tag,
            payload,
            settled: timing.settled,
        };
        let mb = &self.mailboxes[dst];
        mb.queue.lock().push_back(msg);
        mb.cond.notify_all();
    }

    /// Blocking receive at rank `dst` of a message matching `src`/`tag`
    /// (`None` src = wildcard). Merges the message's settle time into the
    /// receiving clock.
    pub fn recv(&self, thread: &mut SimThread, dst: usize, src: Option<usize>, tag: Tag) -> Msg {
        self.recv_timeout(thread, dst, src, tag, Duration::from_secs(300))
            .expect("recv deadlocked (no matching message within 300s wall clock)")
    }

    /// [`Self::recv`] with a wall-clock timeout, for deadlock-safe tests.
    pub fn recv_timeout(
        &self,
        thread: &mut SimThread,
        dst: usize,
        src: Option<usize>,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Msg, RecvError> {
        let mb = &self.mailboxes[dst];
        let mut q = mb.queue.lock();
        loop {
            if let Some(pos) = q
                .iter()
                .position(|m| m.tag == tag && src.is_none_or(|s| s == m.src))
            {
                let msg = q.remove(pos).expect("position just found");
                thread.merge(msg.settled);
                return Ok(msg);
            }
            if mb.cond.wait_for(&mut q, timeout).timed_out() {
                return Err(RecvError::Timeout);
            }
        }
    }

    /// Barrier across all ranks. Exit clock = max(entry clocks) + a
    /// dissemination-tree cost of `2 * latency * ceil(log2(ranks))`.
    pub fn barrier(&self, thread: &mut SimThread) {
        self.reduce_internal(thread, 0.0);
    }

    /// All-reduce sum of one f64 across all ranks; every rank receives the
    /// total. Costs the same tree traversal as a barrier.
    pub fn allreduce_sum(&self, thread: &mut SimThread, value: f64) -> f64 {
        self.reduce_internal(thread, value)
    }

    fn tree_cost(&self) -> u64 {
        let n = self.ranks() as u64;
        let rounds = 64 - (n - 1).leading_zeros() as u64; // ceil(log2(n))
        2 * self.net.cost().network_latency * rounds
            + self.net.cost().handler_cycles * rounds
    }

    fn reduce_internal(&self, thread: &mut SimThread, value: f64) -> f64 {
        let n = self.ranks();
        if n == 1 {
            return value;
        }
        let cost = self.tree_cost();
        let mut st = self.barrier.lock();
        let my_gen = st.generation;
        st.entered += 1;
        st.max_clock = st.max_clock.max(thread.now());
        st.acc += value;
        if st.entered == n {
            st.entered = 0;
            st.generation += 1;
            st.release_clock = st.max_clock + cost;
            st.result = st.acc;
            st.max_clock = 0;
            st.acc = 0.0;
            self.barrier_cond.notify_all();
        } else {
            while st.generation == my_gen {
                self.barrier_cond.wait(&mut st);
            }
        }
        thread.merge(st.release_clock);
        st.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::topology::NodeId;

    fn world(n: usize) -> (Arc<MsgWorld>, Vec<SimThread>) {
        let net = crate::testkit::tiny_net(n);
        let topo = *net.topology();
        let locs: Vec<_> = (0..n).map(|i| topo.loc(NodeId(i as u16), 0)).collect();
        let threads = locs
            .iter()
            .map(|&l| SimThread::new(l, net.clone()))
            .collect();
        (MsgWorld::new(net, locs), threads)
    }

    #[test]
    fn send_recv_delivers_payload_and_time() {
        let (w, mut ts) = world(2);
        let mut t0 = ts.remove(0);
        let mut t1 = ts.remove(0);
        w.send(&mut t0, 0, 1, Tag(7), vec![1, 2, 3]);
        let m = w.recv(&mut t1, 1, Some(0), Tag(7));
        assert_eq!(m.payload, vec![1, 2, 3]);
        let c = CostModel::paper_2011();
        // Receiver clock includes propagation + handler.
        assert!(t1.now() >= c.network_latency + c.handler_cycles);
        // Sender unblocked after only the wire-injection time.
        assert!(t0.now() < c.network_latency);
    }

    #[test]
    fn recv_matches_by_tag() {
        let (w, mut ts) = world(2);
        let mut t0 = ts.remove(0);
        let mut t1 = ts.remove(0);
        w.send(&mut t0, 0, 1, Tag(1), vec![1]);
        w.send(&mut t0, 0, 1, Tag(2), vec![2]);
        let m2 = w.recv(&mut t1, 1, None, Tag(2));
        let m1 = w.recv(&mut t1, 1, None, Tag(1));
        assert_eq!(m2.payload, vec![2]);
        assert_eq!(m1.payload, vec![1]);
    }

    #[test]
    fn recv_timeout_reports_deadlock() {
        let (w, mut ts) = world(2);
        let mut t1 = ts.remove(1);
        let r = w.recv_timeout(&mut t1, 1, None, Tag(0), Duration::from_millis(10));
        assert_eq!(r.unwrap_err(), RecvError::Timeout);
    }

    #[test]
    fn barrier_merges_clocks_across_real_threads() {
        let (w, ts) = world(4);
        let handles: Vec<_> = ts
            .into_iter()
            .enumerate()
            .map(|(i, mut t)| {
                let w = w.clone();
                std::thread::spawn(move || {
                    t.compute((i as u64 + 1) * 1000);
                    w.barrier(&mut t);
                    t.now()
                })
            })
            .collect();
        let exits: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All exits equal and at least max entry (4000) plus tree cost.
        assert!(exits.iter().all(|&e| e == exits[0]));
        assert!(exits[0] >= 4000);
    }

    #[test]
    fn allreduce_sums_across_threads() {
        let (w, ts) = world(3);
        let handles: Vec<_> = ts
            .into_iter()
            .enumerate()
            .map(|(i, mut t)| {
                let w = w.clone();
                std::thread::spawn(move || w.allreduce_sum(&mut t, (i + 1) as f64))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 6.0);
        }
    }

    #[test]
    fn single_rank_world_is_free() {
        let (w, mut ts) = world(1);
        let mut t = ts.remove(0);
        w.barrier(&mut t);
        assert_eq!(t.now(), 0);
        assert_eq!(w.allreduce_sum(&mut t, 5.0), 5.0);
    }
}
