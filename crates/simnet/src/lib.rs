//! # simnet — simulated cluster interconnect
//!
//! This crate is the hardware substrate for the Argo DSM reproduction. The
//! paper ran on a 128-node InfiniBand cluster; we run every "node" inside one
//! process and model the network with a **virtual-time cost model** instead of
//! real wires. Three properties of the paper's platform are preserved:
//!
//! 1. **One-sidedness.** RDMA verbs complete without any code executing on
//!    the target node. In the simulation, initiators touch the target's
//!    memory directly (the data plane lives in the `mem` crate); `simnet`
//!    only *charges time* to the initiating thread.
//! 2. **Latency structure.** Every verb costs propagation latency plus a
//!    bandwidth term, with constants calibrated from the paper's Figure 1
//!    (2011 column). Message-passing sends additionally pay a software
//!    message-handler cost on the receiving side — the overhead Argo's
//!    passive protocol is designed to avoid.
//! 3. **Bandwidth contention.** Each node has a NIC with an occupancy
//!    timeline; concurrent transfers through the same NIC serialize, so
//!    hot-spotting a home node shows up in virtual time exactly as it would
//!    on real hardware.
//!
//! Virtual time is carried by [`SimThread`]: a per-thread monotone cycle
//! counter that synchronization primitives merge at clock-exchange points
//! (barrier entry, lock hand-off, message receipt).

pub mod clock;
pub mod cost;
pub mod error;
pub mod msg;
pub mod net;
pub mod stats;
pub mod testkit;
pub mod topology;

pub use clock::SimThread;
pub use cost::CostModel;
pub use error::ConfigError;
pub use msg::{Msg, MsgWorld, RecvError, Tag};
pub use net::Interconnect;
pub use stats::{NetStats, PerNodeSnapshot};
pub use topology::{ClusterTopology, NodeId, ThreadLoc};
