//! Virtual-time cost model, calibrated from the paper's Figure 1.
//!
//! The paper's motivating trend data (2011 column): CPU 3.4 GHz, DRAM minimum
//! latency ≈ 170 cycles, network minimum latency ≈ 1700 cycles, network peak
//! bandwidth ≈ 111 cycles per KB transferred. All constants here are in CPU
//! cycles of that reference machine and are freely configurable.

use crate::topology::ThreadLoc;

/// Cost constants (CPU cycles) for every simulated hardware event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Local DRAM access (page-cache hit that misses CPU caches).
    pub dram_latency: u64,
    /// Extra hop between NUMA domains inside one machine.
    pub intersocket_latency: u64,
    /// One-way network propagation latency between machines.
    pub network_latency: u64,
    /// Bandwidth term: cycles to push 1 KiB onto the wire.
    pub cycles_per_kb: u64,
    /// Cost of running a software message handler (the overhead Argo's
    /// passive directory avoids; paid by MPI-style sends and by the
    /// active-directory ablation).
    pub handler_cycles: u64,
    /// Cost of taking a page-fault trap into the DSM runtime (models the
    /// SIGSEGV + mprotect path of the real implementation).
    pub fault_trap_cycles: u64,
    /// Wire footprint of a remote atomic (fetch-and-add on a directory word).
    pub atomic_op_bytes: u64,
    /// Doorbell + work-request header for a *batched* posted write: charged
    /// once per `rdma_write_batch` call regardless of how many pages it
    /// carries. Single writes carry no explicit doorbell (it is folded into
    /// their latency constants), so batching trades one of these per home
    /// node against per-page initiation overhead on the host.
    pub batch_doorbell_cycles: u64,
    /// CPU frequency used to convert cycles to seconds for reporting.
    pub cpu_ghz: f64,
}

impl CostModel {
    /// Constants from the paper's Figure 1, 2011 column.
    pub fn paper_2011() -> Self {
        CostModel {
            dram_latency: 170,
            intersocket_latency: 300,
            network_latency: 1700,
            cycles_per_kb: 111,
            handler_cycles: 2500,
            fault_trap_cycles: 3000,
            atomic_op_bytes: 64,
            batch_doorbell_cycles: 200,
            cpu_ghz: 3.4,
        }
    }

    /// A model with zero network costs; useful for isolating protocol logic
    /// in unit tests.
    pub fn free() -> Self {
        CostModel {
            dram_latency: 0,
            intersocket_latency: 0,
            network_latency: 0,
            cycles_per_kb: 0,
            handler_cycles: 0,
            fault_trap_cycles: 0,
            atomic_op_bytes: 64,
            batch_doorbell_cycles: 0,
            cpu_ghz: 1.0,
        }
    }

    /// Cycles for the bandwidth (serialization) term of a `bytes`-sized
    /// transfer. Rounds up so a 1-byte transfer is not free.
    #[inline]
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        (bytes * self.cycles_per_kb).div_ceil(1024)
    }

    /// One-way propagation latency between two placements: zero within a
    /// socket (cache-to-cache), one inter-socket hop within a machine, full
    /// network latency between machines.
    #[inline]
    pub fn propagation(&self, a: ThreadLoc, b: ThreadLoc) -> u64 {
        if a.node != b.node {
            self.network_latency
        } else if a.socket != b.socket {
            self.intersocket_latency
        } else {
            0
        }
    }

    /// Convert a cycle count to seconds at the model's CPU frequency.
    #[inline]
    pub fn cycles_to_secs(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.cpu_ghz * 1e9)
    }

    /// Convert seconds to cycles at the model's CPU frequency.
    #[inline]
    pub fn secs_to_cycles(&self, secs: f64) -> u64 {
        (secs * self.cpu_ghz * 1e9) as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_2011()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{ClusterTopology, NodeId};

    #[test]
    fn transfer_rounds_up() {
        let c = CostModel::paper_2011();
        assert_eq!(c.transfer_cycles(0), 0);
        assert!(c.transfer_cycles(1) >= 1);
        assert_eq!(c.transfer_cycles(1024), 111);
        assert_eq!(c.transfer_cycles(4096), 444);
    }

    #[test]
    fn propagation_respects_hierarchy() {
        let t = ClusterTopology::paper(2);
        let c = CostModel::paper_2011();
        let a = t.loc(NodeId(0), 0);
        let b = t.loc(NodeId(0), 1); // same socket
        let s = t.loc(NodeId(0), 5); // other socket
        let r = t.loc(NodeId(1), 0); // other node
        assert_eq!(c.propagation(a, b), 0);
        assert_eq!(c.propagation(a, s), 300);
        assert_eq!(c.propagation(a, r), 1700);
        assert_eq!(c.propagation(a, a), 0);
    }

    #[test]
    fn cycle_second_round_trip() {
        let c = CostModel::paper_2011();
        let cycles = 3_400_000_000;
        let secs = c.cycles_to_secs(cycles);
        assert!((secs - 1.0).abs() < 1e-9);
        assert_eq!(c.secs_to_cycles(secs), cycles);
    }
}
