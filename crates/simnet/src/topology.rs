//! Cluster topology: nodes, sockets (NUMA domains), and cores.
//!
//! The paper's machines have two Opteron 6220 packages, each containing two
//! quad-core dies on a shared interconnect — i.e. **4 NUMA domains of 4 cores
//! per node** (16 cores, of which Argo uses 15). The default topology mirrors
//! this; all dimensions are configurable.


/// Identifier of a cluster node (one machine in the paper's cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Index usable for array addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Placement of a simulated hardware thread: which node, which NUMA socket
/// within the node, and which core within the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadLoc {
    pub node: NodeId,
    pub socket: u16,
    pub core: u16,
}

impl ThreadLoc {
    /// True if `self` and `other` share a NUMA domain (fastest communication).
    #[inline]
    pub fn same_socket(&self, other: &ThreadLoc) -> bool {
        self.node == other.node && self.socket == other.socket
    }

    /// True if `self` and `other` are on the same machine.
    #[inline]
    pub fn same_node(&self, other: &ThreadLoc) -> bool {
        self.node == other.node
    }
}

/// Shape of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterTopology {
    /// Number of machines in the cluster.
    pub nodes: usize,
    /// NUMA domains per machine.
    pub sockets_per_node: usize,
    /// Cores per NUMA domain.
    pub cores_per_socket: usize,
}

impl ClusterTopology {
    /// Topology of the paper's evaluation cluster nodes: 4 NUMA domains × 4
    /// cores (two dual-die Opteron 6220 packages).
    pub fn paper(nodes: usize) -> Self {
        ClusterTopology {
            nodes,
            sockets_per_node: 4,
            cores_per_socket: 4,
        }
    }

    /// A small topology convenient for unit tests.
    pub fn tiny(nodes: usize) -> Self {
        ClusterTopology {
            nodes,
            sockets_per_node: 1,
            cores_per_socket: 2,
        }
    }

    #[inline]
    pub fn cores_per_node(&self) -> usize {
        self.sockets_per_node * self.cores_per_socket
    }

    #[inline]
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node()
    }

    /// Check that every dimension is nonzero (a shape with no cores cannot
    /// place any thread).
    pub fn validate(&self) -> Result<(), crate::ConfigError> {
        if self.nodes == 0 || self.sockets_per_node == 0 || self.cores_per_socket == 0 {
            return Err(crate::ConfigError::EmptyTopology {
                nodes: self.nodes,
                sockets_per_node: self.sockets_per_node,
                cores_per_socket: self.cores_per_socket,
            });
        }
        Ok(())
    }

    /// Placement of local core index `core` (0-based within the node).
    ///
    /// # Panics
    /// Panics if `node` or `core` is out of range; [`Self::try_loc`]
    /// reports the same conditions as a typed error instead.
    pub fn loc(&self, node: NodeId, core: usize) -> ThreadLoc {
        self.try_loc(node, core)
            .unwrap_or_else(|e| panic!("invalid placement: {e}"))
    }

    /// Fallible flavor of [`Self::loc`].
    pub fn try_loc(&self, node: NodeId, core: usize) -> Result<ThreadLoc, crate::ConfigError> {
        if node.idx() >= self.nodes {
            return Err(crate::ConfigError::NodeOutOfRange {
                node,
                nodes: self.nodes,
            });
        }
        if core >= self.cores_per_node() {
            return Err(crate::ConfigError::CoreOutOfRange {
                core,
                cores_per_node: self.cores_per_node(),
            });
        }
        Ok(ThreadLoc {
            node,
            socket: (core / self.cores_per_socket) as u16,
            core: (core % self.cores_per_socket) as u16,
        })
    }

    /// Iterate over all `(NodeId, local core index)` pairs.
    pub fn all_cores(&self) -> impl Iterator<Item = (NodeId, usize)> + '_ {
        (0..self.nodes).flat_map(move |n| {
            (0..self.cores_per_node()).map(move |c| (NodeId(n as u16), c))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_has_16_cores_per_node() {
        let t = ClusterTopology::paper(4);
        assert_eq!(t.cores_per_node(), 16);
        assert_eq!(t.total_cores(), 64);
    }

    #[test]
    fn loc_maps_cores_to_sockets() {
        let t = ClusterTopology::paper(2);
        let a = t.loc(NodeId(0), 0);
        let b = t.loc(NodeId(0), 3);
        let c = t.loc(NodeId(0), 4);
        let d = t.loc(NodeId(1), 4);
        assert!(a.same_socket(&b));
        assert!(!a.same_socket(&c));
        assert!(a.same_node(&c));
        assert!(!c.same_node(&d));
        assert_eq!(c.socket, 1);
        assert_eq!(c.core, 0);
    }

    #[test]
    fn all_cores_enumerates_every_core_once() {
        let t = ClusterTopology::tiny(3);
        let v: Vec<_> = t.all_cores().collect();
        assert_eq!(v.len(), t.total_cores());
        assert_eq!(v[0], (NodeId(0), 0));
        assert_eq!(*v.last().unwrap(), (NodeId(2), 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn loc_panics_on_bad_core() {
        ClusterTopology::tiny(1).loc(NodeId(0), 99);
    }

    #[test]
    fn try_loc_reports_bad_placements_as_typed_errors() {
        let t = ClusterTopology::tiny(2);
        assert_eq!(t.try_loc(NodeId(0), 1).unwrap(), t.loc(NodeId(0), 1));
        assert_eq!(
            t.try_loc(NodeId(5), 0),
            Err(crate::ConfigError::NodeOutOfRange { node: NodeId(5), nodes: 2 })
        );
        assert_eq!(
            t.try_loc(NodeId(0), 2),
            Err(crate::ConfigError::CoreOutOfRange { core: 2, cores_per_node: 2 })
        );
    }

    #[test]
    fn validate_rejects_empty_dimensions() {
        assert!(ClusterTopology::tiny(1).validate().is_ok());
        let z = ClusterTopology { nodes: 0, sockets_per_node: 1, cores_per_socket: 1 };
        assert!(matches!(z.validate(), Err(crate::ConfigError::EmptyTopology { .. })));
    }
}
