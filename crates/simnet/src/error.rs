//! Typed configuration errors for cluster construction.
//!
//! Malformed shapes (zero-node clusters, sub-unity oversubscription, cores
//! that don't exist) are *reportable* conditions for harnesses and config
//! loaders: constructors come in `try_*` flavors returning [`ConfigError`],
//! and the original panicking flavors remain as thin wrappers.

use crate::topology::NodeId;
use std::fmt;

/// A cluster shape or fabric parameter that cannot be built.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// The oversubscription factor must be finite and >= 1.
    Oversubscription { factor: f64 },
    /// A topology dimension (nodes, sockets, cores) is zero.
    EmptyTopology { nodes: usize, sockets_per_node: usize, cores_per_socket: usize },
    /// A node id addressed past the end of the cluster.
    NodeOutOfRange { node: NodeId, nodes: usize },
    /// A local core index addressed past the node's core count.
    CoreOutOfRange { core: usize, cores_per_node: usize },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Oversubscription { factor } => {
                write!(f, "oversubscription factor must be finite and >= 1, got {factor}")
            }
            ConfigError::EmptyTopology {
                nodes,
                sockets_per_node,
                cores_per_socket,
            } => write!(
                f,
                "topology dimensions must be nonzero: {nodes} nodes x \
                 {sockets_per_node} sockets x {cores_per_socket} cores"
            ),
            ConfigError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range for a {nodes}-node cluster")
            }
            ConfigError::CoreOutOfRange { core, cores_per_node } => {
                write!(f, "core {core} out of range for {cores_per_node} cores/node")
            }
        }
    }
}

impl std::error::Error for ConfigError {}
