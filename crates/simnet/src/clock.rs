//! Per-thread virtual clocks.
//!
//! Every simulated application thread owns a [`SimThread`]: its placement in
//! the topology plus a monotone cycle counter. Compute work and network verbs
//! advance the counter; synchronization primitives exchange counters so that
//! causally-later events never carry earlier timestamps (a conservative
//! parallel virtual-time simulation).

use crate::net::{Interconnect, VerbTiming};
use crate::topology::{NodeId, ThreadLoc};
use std::sync::Arc;

/// A slab of verbs issued but not yet resolved. Raw handles encode
/// `generation << 32 | slot`; the generation bumps every time a slot is
/// recycled, so a stale or duplicated handle is caught instead of silently
/// resolving a different verb.
///
/// The simulator computes verb timing eagerly at issue (the interconnect is
/// a closed-form cost model), so "in flight" here means "issued, timing
/// reserved on the NIC timelines, but not yet folded into any thread's
/// clock" — exactly the window in which latency is hidden.
#[derive(Debug, Clone, Default)]
struct PendingVerbs {
    slots: Vec<(u32, Option<VerbTiming>)>,
    free: Vec<u32>,
}

impl PendingVerbs {
    fn insert(&mut self, timing: VerbTiming) -> u64 {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize].1 = Some(timing);
                s
            }
            None => {
                self.slots.push((0, Some(timing)));
                (self.slots.len() - 1) as u32
            }
        };
        let generation = self.slots[slot as usize].0;
        (u64::from(generation) << 32) | u64::from(slot)
    }

    fn take(&mut self, raw: u64) -> VerbTiming {
        let slot = (raw & 0xFFFF_FFFF) as usize;
        let generation = (raw >> 32) as u32;
        let entry = self
            .slots
            .get_mut(slot)
            .filter(|(g, _)| *g == generation)
            .and_then(|(_, t)| t.take());
        let Some(timing) = entry else {
            panic!("stale or foreign verb token (raw {raw:#x})");
        };
        self.slots[slot].0 = self.slots[slot].0.wrapping_add(1);
        self.free.push(slot as u32);
        timing
    }
}

/// A simulated hardware thread: placement + virtual clock + interconnect.
///
/// `SimThread` is deliberately `!Sync`-by-usage: each OS thread owns exactly
/// one and mutates it without sharing. Clocks cross threads only as plain
/// `u64` timestamps through synchronization structures.
///
/// `SimThread` is the simulator backend's implementation of the `rma`
/// crate's `Endpoint` trait (re-exported there as `SimEndpoint`); protocol
/// code written against `rma::Transport` receives one of these when it runs
/// on the simulator. Constructing one directly is equivalent to
/// `SimTransport::endpoint(&net, loc)`:
///
/// ```
/// use simnet::{ClusterTopology, CostModel, Interconnect, NodeId, SimThread};
///
/// let topo = ClusterTopology::tiny(2);
/// let net = Interconnect::new(topo, CostModel::paper_2011());
/// let mut t = SimThread::new(topo.loc(NodeId(0), 0), net);
/// t.compute(100);
/// t.rdma_read(NodeId(1), 4096); // a remote page fetch
/// assert!(t.now() >= 100 + 2 * CostModel::paper_2011().network_latency);
/// ```
#[derive(Debug, Clone)]
pub struct SimThread {
    loc: ThreadLoc,
    now: u64,
    net: Arc<Interconnect>,
    pending: PendingVerbs,
    /// Single-writer Lyra lane, opened against the interconnect's attached
    /// flight recorder (if any). Owning it here keeps hot-path recording
    /// free of atomic read-modify-writes.
    lane: Option<obs::Lane>,
}

impl SimThread {
    pub fn new(loc: ThreadLoc, net: Arc<Interconnect>) -> Self {
        let lane = net
            .recorder()
            .map(|fr| obs::FlightRecorder::lane(fr, loc.node.idx()));
        SimThread {
            loc,
            now: 0,
            net,
            pending: PendingVerbs::default(),
            lane,
        }
    }

    /// This thread's single-writer Lyra lane, if a recorder is attached.
    #[inline]
    pub fn lyra_lane(&mut self) -> Option<&mut obs::Lane> {
        self.lane.as_mut()
    }

    #[inline]
    pub fn loc(&self) -> ThreadLoc {
        self.loc
    }

    #[inline]
    pub fn node(&self) -> NodeId {
        self.loc.node
    }

    #[inline]
    pub fn net(&self) -> &Arc<Interconnect> {
        &self.net
    }

    /// Current virtual time in cycles.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Current virtual time in seconds at the cost model's CPU frequency.
    #[inline]
    pub fn now_secs(&self) -> f64 {
        self.net.cost().cycles_to_secs(self.now)
    }

    /// Charge `cycles` of local computation.
    #[inline]
    pub fn compute(&mut self, cycles: u64) {
        self.now += cycles;
    }

    /// Charge one local DRAM access (page-cache hit missing CPU caches).
    #[inline]
    pub fn dram_access(&mut self) {
        self.now += self.net.cost().dram_latency;
    }

    /// Charge a page-fault trap into the DSM runtime (models SIGSEGV entry).
    #[inline]
    pub fn fault_trap(&mut self) {
        self.now += self.net.cost().fault_trap_cycles;
    }

    /// Merge an externally observed timestamp: this thread cannot proceed
    /// before `t` (lock hand-off, barrier exit, message receipt).
    #[inline]
    pub fn merge(&mut self, t: u64) {
        self.now = self.now.max(t);
    }

    /// Blocking one-sided read of `bytes` from `target`'s memory.
    pub fn rdma_read(&mut self, target: NodeId, bytes: u64) {
        let t = self.net.rdma_read(self.loc, target, self.now, bytes);
        self.now = t.initiator_done;
    }

    /// Posted one-sided write of `bytes` to `target`'s memory. Returns the
    /// virtual time at which the payload settles remotely; SD fences collect
    /// the max of these.
    pub fn rdma_write(&mut self, target: NodeId, bytes: u64) -> u64 {
        let t = self.net.rdma_write(self.loc, target, self.now, bytes);
        self.now = t.initiator_done;
        t.settled
    }

    /// Home-coalesced posted write of `sizes.len()` page payloads to
    /// `target` behind one doorbell. Returns the settle stamp of the whole
    /// batch (SD fences collect the max of these).
    pub fn rdma_write_batch(&mut self, target: NodeId, sizes: &[u64]) -> u64 {
        let t = self.net.rdma_write_batch(self.loc, target, self.now, sizes);
        self.now = t.initiator_done;
        t.settled
    }

    /// Issue a one-sided read without blocking: the verb enters the fabric
    /// at `max(now, not_before)`, its NIC occupancy is reserved, and the
    /// thread's clock is untouched. Returns a raw completion handle for
    /// [`SimThread::resolve_issued`].
    pub fn issue_read(&mut self, target: NodeId, bytes: u64, not_before: u64) -> u64 {
        let at = self.now.max(not_before);
        let t = self.net.rdma_read(self.loc, target, at, bytes);
        self.pending.insert(t)
    }

    /// Issue a posted write without blocking (see [`SimThread::issue_read`]).
    pub fn issue_write(&mut self, target: NodeId, bytes: u64, not_before: u64) -> u64 {
        let at = self.now.max(not_before);
        let t = self.net.rdma_write(self.loc, target, at, bytes);
        self.pending.insert(t)
    }

    /// Issue a home-coalesced batch write without blocking (see
    /// [`SimThread::issue_read`]).
    pub fn issue_write_batch(&mut self, target: NodeId, sizes: &[u64], not_before: u64) -> u64 {
        let at = self.now.max(not_before);
        let t = self.net.rdma_write_batch(self.loc, target, at, sizes);
        self.pending.insert(t)
    }

    /// Resolve a handle from one of the `issue_*` verbs, consuming it. The
    /// clock is *not* merged: the caller folds `initiator_done` in (via
    /// [`SimThread::merge`]) when — and only when — it actually waits on
    /// the verb. Panics on a stale or foreign handle.
    pub fn resolve_issued(&mut self, raw: u64) -> VerbTiming {
        self.pending.take(raw)
    }

    /// Blocking remote atomic (fetch-and-add on a directory word).
    pub fn rdma_atomic(&mut self, target: NodeId) {
        let t = self.net.rdma_atomic(self.loc, target, self.now);
        self.now = t.initiator_done;
    }

    /// Wait (in virtual time) until `target`'s NIC has drained everything
    /// reserved so far. Combined with settle timestamps this implements the
    /// completion side of an SD fence.
    pub fn wait_nic_drain(&mut self, target: NodeId) {
        let t = self.net.nic_drained_at(target);
        self.merge(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    fn thread_on(node: u16) -> SimThread {
        crate::testkit::thread(&crate::testkit::tiny_net(4), node, 0)
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut t = thread_on(0);
        t.compute(100);
        assert_eq!(t.now(), 100);
        t.dram_access();
        assert_eq!(t.now(), 270);
        t.merge(50); // must not go backwards
        assert_eq!(t.now(), 270);
        t.merge(1000);
        assert_eq!(t.now(), 1000);
    }

    #[test]
    fn rdma_read_blocks_for_round_trip() {
        let mut t = thread_on(0);
        t.rdma_read(NodeId(1), 4096);
        let c = CostModel::paper_2011();
        assert_eq!(t.now(), 2 * c.network_latency + c.transfer_cycles(4096));
    }

    #[test]
    fn posted_write_returns_later_settle_time() {
        let mut t = thread_on(0);
        let settled = t.rdma_write(NodeId(1), 4096);
        assert!(settled > t.now());
    }

    #[test]
    fn issue_then_resolve_hides_latency() {
        let c = CostModel::paper_2011();
        // Blocking: two chained reads pay two full round trips.
        let mut seq = thread_on(0);
        seq.rdma_read(NodeId(1), 4096);
        seq.rdma_read(NodeId(2), 4096);
        // Async: both issued back to back, resolved afterwards — the
        // latencies overlap, only NIC occupancy serializes.
        let mut t = thread_on(0);
        let a = t.issue_read(NodeId(1), 4096, 0);
        let b = t.issue_read(NodeId(2), 4096, 0);
        assert_eq!(t.now(), 0, "issuing must not advance the clock");
        let done = t
            .resolve_issued(a)
            .initiator_done
            .max(t.resolve_issued(b).initiator_done);
        t.merge(done);
        assert!(t.now() < seq.now(), "overlap must beat chaining");
        assert!(t.now() >= 2 * c.network_latency + c.transfer_cycles(4096));
    }

    #[test]
    #[should_panic(expected = "stale or foreign verb token")]
    fn resolving_a_token_twice_panics() {
        let mut t = thread_on(0);
        let a = t.issue_read(NodeId(1), 4096, 0);
        let _ = t.resolve_issued(a);
        let _ = t.resolve_issued(a);
    }

    #[test]
    fn now_secs_matches_model() {
        let mut t = thread_on(0);
        t.compute(3_400_000); // 1 ms at 3.4 GHz
        assert!((t.now_secs() - 1e-3).abs() < 1e-12);
    }
}
