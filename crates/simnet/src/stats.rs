//! Global traffic counters for a simulated interconnect.
//!
//! The paper repeatedly *trades bandwidth for latency*; these counters are
//! what lets the benchmarks show that trade (e.g. Figure 10 counts
//! writebacks as a function of write-buffer size).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters of everything that crossed the simulated network.
///
/// All counters use `Relaxed` ordering: they are statistics, not
/// synchronization, and are only read coherently after worker threads join.
#[derive(Debug, Default)]
pub struct NetStats {
    pub rdma_reads: AtomicU64,
    pub rdma_writes: AtomicU64,
    pub rdma_atomics: AtomicU64,
    pub bytes_read: AtomicU64,
    pub bytes_written: AtomicU64,
    pub messages: AtomicU64,
    pub msg_bytes: AtomicU64,
    /// Message-handler invocations (MPI-style receives, active-directory
    /// ablation). Always zero for Argo's passive protocol.
    pub handler_invocations: AtomicU64,
}

/// A plain-old-data snapshot of [`NetStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    pub rdma_reads: u64,
    pub rdma_writes: u64,
    pub rdma_atomics: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub messages: u64,
    pub msg_bytes: u64,
    pub handler_invocations: u64,
}

impl NetStats {
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            rdma_reads: self.rdma_reads.load(Ordering::Relaxed),
            rdma_writes: self.rdma_writes.load(Ordering::Relaxed),
            rdma_atomics: self.rdma_atomics.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            msg_bytes: self.msg_bytes.load(Ordering::Relaxed),
            handler_invocations: self.handler_invocations.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter to zero (used between benchmark phases, e.g. to
    /// exclude initialization traffic as the paper does).
    pub fn reset(&self) {
        self.rdma_reads.store(0, Ordering::Relaxed);
        self.rdma_writes.store(0, Ordering::Relaxed);
        self.rdma_atomics.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.messages.store(0, Ordering::Relaxed);
        self.msg_bytes.store(0, Ordering::Relaxed);
        self.handler_invocations.store(0, Ordering::Relaxed);
    }
}

impl NetStatsSnapshot {
    /// Total bytes that crossed the network in any direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written + self.msg_bytes
    }
}

/// Per-node traffic accounting (who is hot?).
#[derive(Debug, Default)]
pub struct PerNodeStats {
    /// Bytes that entered this node's NIC (it was the transfer target).
    pub bytes_in: AtomicU64,
    /// Bytes that left this node's NIC (it was the transfer source).
    pub bytes_out: AtomicU64,
    /// One-sided/messaging operations that targeted this node.
    pub ops_in: AtomicU64,
}

/// Plain snapshot of [`PerNodeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerNodeSnapshot {
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub ops_in: u64,
}

impl PerNodeStats {
    pub fn snapshot(&self) -> PerNodeSnapshot {
        PerNodeSnapshot {
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            ops_in: self.ops_in.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.bytes_in.store(0, Ordering::Relaxed);
        self.bytes_out.store(0, Ordering::Relaxed);
        self.ops_in.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let s = NetStats::default();
        s.rdma_reads.fetch_add(3, Ordering::Relaxed);
        s.bytes_read.fetch_add(4096, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.rdma_reads, 3);
        assert_eq!(snap.total_bytes(), 4096);
        s.reset();
        assert_eq!(s.snapshot(), NetStatsSnapshot::default());
    }
}
