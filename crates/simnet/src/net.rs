//! The interconnect: per-node NIC occupancy timelines plus verb accounting.
//!
//! A verb between two machines reserves both endpoints' NICs for the
//! bandwidth term of the transfer; reservations are first-come-first-served
//! in virtual time via a CAS loop. This makes bandwidth saturation and
//! home-node hot-spotting emerge naturally: ten nodes hammering one home
//! node's directory serialize through that node's NIC.

use crate::cost::CostModel;
use crate::stats::{NetStats, PerNodeSnapshot, PerNodeStats};
use crate::topology::{ClusterTopology, NodeId, ThreadLoc};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Outcome of charging a verb: when the initiating thread may continue and
/// when the data is settled at the target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerbTiming {
    /// Virtual time at which the initiator unblocks.
    pub initiator_done: u64,
    /// Virtual time at which the payload is fully deposited at the target
    /// (relevant for posted writes, which unblock the initiator earlier).
    pub settled: u64,
}

/// Shared interconnect state: topology, cost constants, NIC timelines, stats.
#[derive(Debug)]
pub struct Interconnect {
    topology: ClusterTopology,
    cost: CostModel,
    /// `nic[i]` = virtual time until which node `i`'s NIC is busy.
    nic: Vec<AtomicU64>,
    /// Core/spine link timelines modelling fabric oversubscription (the
    /// paper's cluster has "a 2:1 oversubscribed QDR InfiniBand fabric"):
    /// with N nodes and oversubscription F there are ceil(N/F) spine links;
    /// an inter-node transfer occupies the spine statically routed for its
    /// (src, dst) pair in addition to both NICs. Empty = full bisection.
    spines: Vec<AtomicU64>,
    stats: NetStats,
    per_node: Vec<PerNodeStats>,
    /// Lyra flight recorder, attached once by the DSM layer before any
    /// endpoints are created. Threads spawned on this interconnect open a
    /// single-writer [`obs::Lane`] against it so hot-path recording needs
    /// no atomic read-modify-writes.
    recorder: OnceLock<Arc<obs::FlightRecorder>>,
}

impl Interconnect {
    /// A full-bisection fabric (no spine contention beyond the NICs).
    pub fn new(topology: ClusterTopology, cost: CostModel) -> Arc<Self> {
        Self::with_oversubscription(topology, cost, 1.0)
    }

    /// A fabric whose core is oversubscribed by `factor` (e.g. 2.0 for the
    /// paper's 2:1 fabric). `factor <= 1` means full bisection.
    ///
    /// # Panics
    /// Panics on a malformed shape; [`Self::try_with_oversubscription`]
    /// reports the same conditions as a [`crate::ConfigError`] instead.
    pub fn with_oversubscription(
        topology: ClusterTopology,
        cost: CostModel,
        factor: f64,
    ) -> Arc<Self> {
        Self::try_with_oversubscription(topology, cost, factor)
            .unwrap_or_else(|e| panic!("invalid interconnect config: {e}"))
    }

    /// Fallible flavor of [`Self::with_oversubscription`]: rejects
    /// sub-unity or non-finite oversubscription and empty topologies with a
    /// typed error instead of aborting.
    pub fn try_with_oversubscription(
        topology: ClusterTopology,
        cost: CostModel,
        factor: f64,
    ) -> Result<Arc<Self>, crate::ConfigError> {
        if !(factor >= 1.0 && factor.is_finite()) {
            return Err(crate::ConfigError::Oversubscription { factor });
        }
        topology.validate()?;
        let spines = if factor > 1.0 {
            ((topology.nodes as f64 / factor).ceil() as usize).max(1)
        } else {
            0
        };
        Ok(Arc::new(Interconnect {
            topology,
            cost,
            nic: (0..topology.nodes).map(|_| AtomicU64::new(0)).collect(),
            spines: (0..spines).map(|_| AtomicU64::new(0)).collect(),
            stats: NetStats::default(),
            per_node: (0..topology.nodes).map(|_| PerNodeStats::default()).collect(),
            recorder: OnceLock::new(),
        }))
    }

    #[inline]
    pub fn topology(&self) -> &ClusterTopology {
        &self.topology
    }

    #[inline]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    #[inline]
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Attach the Lyra flight recorder. First attach wins; later calls are
    /// ignored so re-wrapping transports can forward unconditionally.
    pub fn attach_recorder(&self, recorder: Arc<obs::FlightRecorder>) {
        let _ = self.recorder.set(recorder);
    }

    /// The attached Lyra recorder, if any.
    #[inline]
    pub fn recorder(&self) -> Option<&Arc<obs::FlightRecorder>> {
        self.recorder.get()
    }

    /// Per-node traffic snapshot (who is the hotspot?).
    pub fn per_node_stats(&self) -> Vec<PerNodeSnapshot> {
        self.per_node.iter().map(|p| p.snapshot()).collect()
    }

    /// Reset the per-node counters (the whole-net counters are reset via
    /// [`NetStats::reset`]).
    pub fn reset_per_node_stats(&self) {
        for p in &self.per_node {
            p.reset();
        }
    }

    /// Account a transfer of `bytes` from `src` into `dst`.
    fn account(&self, src: NodeId, dst: NodeId, bytes: u64) {
        if src == dst {
            return;
        }
        self.per_node[src.idx()]
            .bytes_out
            .fetch_add(bytes, Ordering::Relaxed);
        let d = &self.per_node[dst.idx()];
        d.bytes_in.fetch_add(bytes, Ordering::Relaxed);
        d.ops_in.fetch_add(1, Ordering::Relaxed);
    }

    /// Reserve a link timeline for `duration` cycles starting no earlier
    /// than `earliest`; returns the actual start time.
    ///
    /// Transfers whose virtual times overlap (within a contention window)
    /// serialize — that is bandwidth contention. But simulated threads run
    /// on real threads and can be *epochs* apart in virtual time at the
    /// same real instant; a reservation made far in the virtual future
    /// must not delay a transfer from the (actually idle) virtual past, or
    /// causality leaks backwards through the link. Such disjoint-epoch
    /// requests start at their own `earliest` and leave the timeline
    /// untouched.
    fn reserve_timeline(link: &AtomicU64, earliest: u64, duration: u64) -> u64 {
        // Window within which two transfers are considered concurrent.
        let window = 8 * duration + 10_000;
        let mut busy = link.load(Ordering::Relaxed);
        loop {
            if busy > earliest + window {
                // The queue ahead of us lives in a future epoch: the link
                // was idle at our time.
                return earliest;
            }
            let start = busy.max(earliest);
            match link.compare_exchange_weak(
                busy,
                start + duration,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return start,
                Err(cur) => busy = cur,
            }
        }
    }

    fn reserve_nic(&self, node: NodeId, earliest: u64, duration: u64) -> u64 {
        Self::reserve_timeline(&self.nic[node.idx()], earliest, duration)
    }

    /// Time at which `node`'s NIC has drained everything reserved so far.
    /// Used by SD fences to wait for posted writes to settle.
    pub fn nic_drained_at(&self, node: NodeId) -> u64 {
        self.nic[node.idx()].load(Ordering::Relaxed)
    }

    /// Charge the wire time of a transfer of `bytes` between `src` and `dst`
    /// machines, starting no earlier than `earliest` (initiator's clock).
    /// Returns the time the last byte leaves the wire. Intra-node transfers
    /// do not touch NICs.
    fn charge_wire(&self, src: NodeId, dst: NodeId, earliest: u64, bytes: u64) -> u64 {
        self.charge_wire_duration(src, dst, earliest, self.cost.transfer_cycles(bytes))
    }

    /// [`Self::charge_wire`] with an explicit serialization duration —
    /// batched writes reserve one contiguous window covering the sum of
    /// their pages' per-page transfer times.
    fn charge_wire_duration(&self, src: NodeId, dst: NodeId, earliest: u64, dur: u64) -> u64 {
        if src == dst {
            return earliest + dur;
        }
        // Reserve the source NIC first, then the destination starting no
        // earlier than the source's start: the packet occupies both ends.
        let s = self.reserve_nic(src, earliest, dur);
        let mid = if self.spines.is_empty() {
            s
        } else {
            // Static routing: a (src, dst) pair always uses the same spine.
            let spine = &self.spines[(src.idx() + dst.idx()) % self.spines.len()];
            Self::reserve_timeline(spine, s, dur)
        };
        let d = self.reserve_nic(dst, mid, dur);
        d + dur
    }

    /// One-sided read of `bytes` from `target` into `from`'s node: request
    /// propagation + transfer through both NICs + response propagation.
    /// The initiator blocks for the round trip.
    pub fn rdma_read(&self, from: ThreadLoc, target: NodeId, now: u64, bytes: u64) -> VerbTiming {
        self.stats.rdma_reads.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.account(target, from.node, bytes);
        let lat = self.propagation_to(from, target);
        let wire_done = self.charge_wire(target, from.node, now + lat, bytes);
        let done = wire_done + lat;
        VerbTiming {
            initiator_done: done,
            settled: done,
        }
    }

    /// One-sided posted write of `bytes` to `target`. The initiator unblocks
    /// once the payload is handed to its NIC; the data settles at the target
    /// after propagation + wire time. SD fences use [`Self::nic_drained_at`]
    /// plus the returned `settled` to wait for global visibility.
    pub fn rdma_write(&self, from: ThreadLoc, target: NodeId, now: u64, bytes: u64) -> VerbTiming {
        self.stats.rdma_writes.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.account(from.node, target, bytes);
        let lat = self.propagation_to(from, target);
        let wire_done = self.charge_wire(from.node, target, now, bytes);
        VerbTiming {
            initiator_done: now + self.cost.transfer_cycles(bytes),
            settled: wire_done + lat,
        }
    }

    /// Home-coalesced posted write: `sizes.len()` page payloads to the same
    /// `target`, posted with **one doorbell**. Counters tick exactly as the
    /// equivalent sequence of [`Self::rdma_write`]s would (one write + its
    /// bytes per page), but the wire is reserved once for the summed
    /// serialization time and the initiator pays one
    /// [`CostModel::batch_doorbell_cycles`] instead of per-page initiation.
    pub fn rdma_write_batch(
        &self,
        from: ThreadLoc,
        target: NodeId,
        now: u64,
        sizes: &[u64],
    ) -> VerbTiming {
        if sizes.is_empty() {
            return VerbTiming {
                initiator_done: now,
                settled: now,
            };
        }
        let total: u64 = sizes.iter().sum();
        // Per-page serialization, summed: the batch saves doorbells and
        // contention episodes, not payload bandwidth.
        let dur: u64 = sizes.iter().map(|&b| self.cost.transfer_cycles(b)).sum();
        self.stats
            .rdma_writes
            .fetch_add(sizes.len() as u64, Ordering::Relaxed);
        self.stats.bytes_written.fetch_add(total, Ordering::Relaxed);
        if from.node != target {
            self.per_node[from.node.idx()]
                .bytes_out
                .fetch_add(total, Ordering::Relaxed);
            let d = &self.per_node[target.idx()];
            d.bytes_in.fetch_add(total, Ordering::Relaxed);
            d.ops_in.fetch_add(sizes.len() as u64, Ordering::Relaxed);
        }
        let lat = self.propagation_to(from, target);
        let start = now + self.cost.batch_doorbell_cycles;
        let wire_done = self.charge_wire_duration(from.node, target, start, dur);
        VerbTiming {
            initiator_done: start + dur,
            settled: wire_done + lat,
        }
    }

    /// Remote atomic (fetch-and-add / CAS on a directory word). Blocks the
    /// initiator for a full round trip plus a small fixed wire footprint.
    pub fn rdma_atomic(&self, from: ThreadLoc, target: NodeId, now: u64) -> VerbTiming {
        self.stats.rdma_atomics.fetch_add(1, Ordering::Relaxed);
        self.account(target, from.node, self.cost.atomic_op_bytes);
        let lat = self.propagation_to(from, target);
        let wire_done =
            self.charge_wire(target, from.node, now + lat, self.cost.atomic_op_bytes);
        let done = wire_done + lat;
        VerbTiming {
            initiator_done: done,
            settled: done,
        }
    }

    /// Message-passing send (MPI baseline): wire time plus a software
    /// message-handler invocation charged at the receiver.
    pub fn message(&self, from: ThreadLoc, target: ThreadLoc, now: u64, bytes: u64) -> VerbTiming {
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.stats.msg_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.stats.handler_invocations.fetch_add(1, Ordering::Relaxed);
        self.account(from.node, target.node, bytes);
        let lat = self.cost.propagation(from, target);
        let wire_done = self.charge_wire(from.node, target.node, now, bytes);
        let settled = wire_done + lat + self.cost.handler_cycles;
        VerbTiming {
            initiator_done: now + self.cost.transfer_cycles(bytes),
            settled,
        }
    }

    /// Propagation latency from a thread to (any core of) a target machine.
    fn propagation_to(&self, from: ThreadLoc, target: NodeId) -> u64 {
        if from.node == target {
            // Local "remote op": home node is this machine; accessing the
            // home copy still costs a DRAM access.
            self.cost.dram_latency
        } else {
            self.cost.network_latency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<Interconnect>, ThreadLoc, ThreadLoc) {
        let net = crate::testkit::tiny_net(4);
        let topo = *net.topology();
        let a = topo.loc(NodeId(0), 0);
        let b = topo.loc(NodeId(1), 0);
        (net, a, b)
    }

    #[test]
    fn read_costs_round_trip_plus_transfer() {
        let (net, a, _) = setup();
        let t = net.rdma_read(a, NodeId(1), 0, 4096);
        let c = net.cost();
        assert_eq!(
            t.initiator_done,
            2 * c.network_latency + c.transfer_cycles(4096)
        );
    }

    #[test]
    fn local_read_costs_dram() {
        let (net, a, _) = setup();
        let t = net.rdma_read(a, NodeId(0), 100, 4096);
        let c = net.cost();
        assert_eq!(
            t.initiator_done,
            100 + 2 * c.dram_latency + c.transfer_cycles(4096)
        );
    }

    #[test]
    fn posted_write_unblocks_before_settling() {
        let (net, a, _) = setup();
        let t = net.rdma_write(a, NodeId(1), 0, 4096);
        assert!(t.initiator_done < t.settled);
        assert_eq!(t.initiator_done, net.cost().transfer_cycles(4096));
    }

    #[test]
    fn nic_contention_serializes_transfers() {
        let (net, a, b) = setup();
        // Two reads from different initiators targeting node 2 at the same
        // virtual instant must serialize through node 2's NIC.
        let c = net.cost();
        let t1 = net.rdma_read(a, NodeId(2), 0, 65536);
        let t2 = net.rdma_read(b, NodeId(2), 0, 65536);
        let xfer = c.transfer_cycles(65536);
        assert_eq!(t1.initiator_done, 2 * c.network_latency + xfer);
        assert_eq!(t2.initiator_done, 2 * c.network_latency + 2 * xfer);
    }

    #[test]
    fn message_charges_handler_at_receiver() {
        let (net, a, b) = setup();
        let t = net.message(a, b, 0, 1024);
        let c = net.cost();
        assert_eq!(
            t.settled,
            c.transfer_cycles(1024) + c.network_latency + c.handler_cycles
        );
        assert_eq!(net.stats().snapshot().handler_invocations, 1);
    }

    #[test]
    fn atomic_counts_and_blocks_round_trip() {
        let (net, a, _) = setup();
        let t = net.rdma_atomic(a, NodeId(3), 0);
        let c = net.cost();
        assert_eq!(
            t.initiator_done,
            2 * c.network_latency + c.transfer_cycles(c.atomic_op_bytes)
        );
        assert_eq!(net.stats().snapshot().rdma_atomics, 1);
    }

    #[test]
    fn oversubscribed_fabric_serializes_disjoint_pairs() {
        // 4 nodes, 2:1 oversubscription = 2 spines. Pairs (0->2) and
        // (1->3) collide on spine (0+2)%2 == (1+3)%2 == 0 and serialize;
        // on a full-bisection fabric they run concurrently.
        let topo = ClusterTopology::tiny(4);
        let c = CostModel::paper_2011();
        let bytes = 1 << 20;
        let xfer = c.transfer_cycles(bytes);

        let full = Interconnect::new(topo, c);
        let a = topo.loc(NodeId(0), 0);
        let b = topo.loc(NodeId(1), 0);
        let t1 = full.rdma_read(a, NodeId(2), 0, bytes);
        let t2 = full.rdma_read(b, NodeId(3), 0, bytes);
        assert_eq!(t1.initiator_done, t2.initiator_done); // disjoint NICs

        let over = Interconnect::with_oversubscription(topo, c, 2.0);
        let t1 = over.rdma_read(a, NodeId(2), 0, bytes);
        let t2 = over.rdma_read(b, NodeId(3), 0, bytes);
        let (first, second) = if t1.initiator_done < t2.initiator_done {
            (t1, t2)
        } else {
            (t2, t1)
        };
        assert!(second.initiator_done >= first.initiator_done + xfer);
    }

    #[test]
    #[should_panic(expected = "oversubscription")]
    fn oversubscription_below_one_rejected() {
        Interconnect::with_oversubscription(
            ClusterTopology::tiny(2),
            CostModel::paper_2011(),
            0.5,
        );
    }

    #[test]
    fn try_constructor_reports_bad_shapes_as_typed_errors() {
        for bad in [0.5, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                Interconnect::try_with_oversubscription(
                    ClusterTopology::tiny(2),
                    CostModel::paper_2011(),
                    bad,
                ),
                Err(crate::ConfigError::Oversubscription { .. })
            ));
        }
        let empty = ClusterTopology { nodes: 0, sockets_per_node: 1, cores_per_socket: 1 };
        assert!(matches!(
            Interconnect::try_with_oversubscription(empty, CostModel::paper_2011(), 1.0),
            Err(crate::ConfigError::EmptyTopology { .. })
        ));
        assert!(Interconnect::try_with_oversubscription(
            ClusterTopology::tiny(2),
            CostModel::paper_2011(),
            2.0,
        )
        .is_ok());
    }

    #[test]
    fn batched_write_counts_like_singles_but_posts_once() {
        let (net, a, _) = setup();
        let c = *net.cost();
        let sizes = [4096u64, 80, 1024];
        let t = net.rdma_write_batch(a, NodeId(1), 0, &sizes);
        // Counters match three individual writes.
        let s = net.stats().snapshot();
        assert_eq!(s.rdma_writes, 3);
        assert_eq!(s.bytes_written, 4096 + 80 + 1024);
        let per = net.per_node_stats();
        assert_eq!(per[1].bytes_in, 4096 + 80 + 1024);
        assert_eq!(per[1].ops_in, 3);
        // One doorbell + summed per-page serialization for the initiator.
        let dur: u64 = sizes.iter().map(|&b| c.transfer_cycles(b)).sum();
        assert_eq!(t.initiator_done, c.batch_doorbell_cycles + dur);
        assert_eq!(t.settled, c.batch_doorbell_cycles + dur + c.network_latency);
    }

    #[test]
    fn empty_batch_is_free_and_uncounted() {
        let (net, a, _) = setup();
        let t = net.rdma_write_batch(a, NodeId(1), 77, &[]);
        assert_eq!((t.initiator_done, t.settled), (77, 77));
        assert_eq!(net.stats().snapshot().rdma_writes, 0);
    }

    #[test]
    fn intra_node_transfer_skips_nics() {
        let (net, a, _) = setup();
        let before = net.nic_drained_at(NodeId(0));
        net.rdma_read(a, NodeId(0), 0, 4096);
        assert_eq!(net.nic_drained_at(NodeId(0)), before);
    }
}
