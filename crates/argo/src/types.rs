//! Typed views over global memory.
//!
//! Thin, copyable handles describing arrays of 8-byte elements in the
//! global address space. They hold no data — every access goes through the
//! coherence layer via an [`crate::ArgoCtx`].

use crate::ctx::ArgoCtx;
use carina::{Coherence, Dsm};
use mem::{GlobalAddr, PAGE_BYTES};
use rma::Transport;

/// An array of `u64` in global memory.
#[derive(Debug, Clone, Copy)]
pub struct GlobalU64Array {
    base: GlobalAddr,
    len: usize,
}

/// An array of `f64` in global memory.
#[derive(Debug, Clone, Copy)]
pub struct GlobalF64Array {
    base: GlobalAddr,
    len: usize,
}

macro_rules! array_common {
    ($ty:ident) => {
        impl $ty {
            /// Allocate page-aligned storage for `len` elements.
            pub fn alloc<T: Transport, C: Coherence>(dsm: &Dsm<T, C>, len: usize) -> Self {
                let bytes = (len as u64 * 8).div_ceil(PAGE_BYTES) * PAGE_BYTES;
                let base = dsm
                    .allocator()
                    .alloc(bytes, PAGE_BYTES)
                    .expect("out of global memory");
                $ty { base, len }
            }

            /// View an existing allocation as an array.
            pub fn at(base: GlobalAddr, len: usize) -> Self {
                $ty { base, len }
            }

            /// Allocate with pages block-distributed across nodes, so each
            /// node's block-partitioned chunk of the array is homed
            /// locally (see `Dsm::alloc_blocked`).
            pub fn alloc_blocked<T: Transport, C: Coherence>(dsm: &Dsm<T, C>, len: usize) -> Self {
                let bytes = (len as u64 * 8).div_ceil(PAGE_BYTES) * PAGE_BYTES;
                let base = dsm.alloc_blocked(bytes).expect("out of global memory");
                $ty { base, len }
            }

            #[inline]
            pub fn len(&self) -> usize {
                self.len
            }

            #[inline]
            pub fn is_empty(&self) -> bool {
                self.len == 0
            }

            #[inline]
            pub fn addr(&self, i: usize) -> GlobalAddr {
                assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
                self.base.offset(i as u64 * 8)
            }

            #[inline]
            pub fn base(&self) -> GlobalAddr {
                self.base
            }
        }
    };
}

array_common!(GlobalU64Array);
array_common!(GlobalF64Array);

impl GlobalU64Array {
    #[inline]
    pub fn get<T: Transport, C: Coherence>(&self, ctx: &mut ArgoCtx<T, C>, i: usize) -> u64 {
        ctx.read_u64(self.addr(i))
    }

    #[inline]
    pub fn set<T: Transport, C: Coherence>(&self, ctx: &mut ArgoCtx<T, C>, i: usize, v: u64) {
        ctx.write_u64(self.addr(i), v)
    }
}

impl GlobalF64Array {
    #[inline]
    pub fn get<T: Transport, C: Coherence>(&self, ctx: &mut ArgoCtx<T, C>, i: usize) -> f64 {
        ctx.read_f64(self.addr(i))
    }

    #[inline]
    pub fn set<T: Transport, C: Coherence>(&self, ctx: &mut ArgoCtx<T, C>, i: usize, v: f64) {
        ctx.write_f64(self.addr(i), v)
    }
}

/// A dense row-major matrix of `f64` in global memory.
#[derive(Debug, Clone, Copy)]
pub struct GlobalMatrix {
    data: GlobalF64Array,
    rows: usize,
    cols: usize,
}

impl GlobalMatrix {
    pub fn alloc<T: Transport, C: Coherence>(dsm: &Dsm<T, C>, rows: usize, cols: usize) -> Self {
        GlobalMatrix {
            data: GlobalF64Array::alloc(dsm, rows * cols),
            rows,
            cols,
        }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn get<T: Transport, C: Coherence>(&self, ctx: &mut ArgoCtx<T, C>, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        self.data.get(ctx, r * self.cols + c)
    }

    #[inline]
    pub fn set<T: Transport, C: Coherence>(&self, ctx: &mut ArgoCtx<T, C>, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of bounds");
        self.data.set(ctx, r * self.cols + c, v)
    }

    /// The backing array (for bulk/row-wise access patterns).
    #[inline]
    pub fn array(&self) -> GlobalF64Array {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{ArgoConfig, ArgoMachine};

    #[test]
    fn arrays_round_trip_values() {
        let m = ArgoMachine::new(ArgoConfig::small(2, 1));
        let arr = GlobalF64Array::alloc(m.dsm(), 100);
        let report = m.run(move |ctx| {
            if ctx.tid() == 0 {
                for i in 0..100 {
                    arr.set(ctx, i, i as f64 * 1.5);
                }
            }
            ctx.barrier();
            (0..100).map(|i| arr.get(ctx, i)).sum::<f64>()
        });
        let expect: f64 = (0..100).map(|i| i as f64 * 1.5).sum();
        for r in report.results {
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn matrix_indexing_is_row_major() {
        let m = ArgoMachine::new(ArgoConfig::small(1, 1));
        let mat = GlobalMatrix::alloc(m.dsm(), 3, 4);
        let report = m.run(move |ctx| {
            mat.set(ctx, 1, 2, 42.0);
            mat.array().get(ctx, 4 + 2)
        });
        assert_eq!(report.results[0], 42.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let m = ArgoMachine::new(ArgoConfig::small(1, 1));
        let arr = GlobalU64Array::alloc(m.dsm(), 4);
        arr.addr(4);
    }

    #[test]
    fn allocations_are_page_aligned_and_disjoint() {
        let m = ArgoMachine::new(ArgoConfig::small(1, 1));
        let a = GlobalU64Array::alloc(m.dsm(), 10);
        let b = GlobalU64Array::alloc(m.dsm(), 10);
        assert_eq!(a.base().0 % PAGE_BYTES, 0);
        assert_eq!(b.base().0 % PAGE_BYTES, 0);
        assert!(b.base().0 >= a.base().0 + PAGE_BYTES);
    }
}
