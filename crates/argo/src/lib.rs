//! # argo — the DSM system façade
//!
//! "The result is a software DSM system called Argo which localizes as many
//! decisions as possible." This crate is the user-facing API of the
//! reproduction:
//!
//! - [`ArgoMachine`](machine::ArgoMachine) — build a simulated cluster
//!   (topology + cost model + Carina config) and run parallel regions on
//!   it with real OS threads carrying virtual clocks.
//! - [`ArgoCtx`](ctx::ArgoCtx) — what each simulated thread programs
//!   against: typed global memory, the hierarchical barrier, explicit
//!   acquire/release fences, measurement control.
//! - [`types`] — typed array/matrix views over global memory.
//! - [`pgas`] — a UPC-like no-caching access mode used as the PGAS
//!   baseline in the evaluation.
//!
//! ```
//! use argo::{ArgoConfig, ArgoMachine};
//! use argo::types::GlobalF64Array;
//!
//! let machine = ArgoMachine::new(ArgoConfig::small(2, 2));
//! let data = GlobalF64Array::alloc(machine.dsm(), 64);
//! let report = machine.run(move |ctx| {
//!     for i in ctx.my_chunk(64) {
//!         data.set(ctx, i, i as f64);
//!     }
//!     ctx.barrier();
//!     let mut sum = 0.0;
//!     for i in 0..64 {
//!         sum += data.get(ctx, i);
//!     }
//!     sum
//! });
//! assert!(report.results.iter().all(|&s| s == 2016.0));
//! ```

pub mod ctx;
pub mod machine;
pub mod pgas;
pub mod report;
pub mod sync;
pub mod types;

pub use ctx::ArgoCtx;
pub use machine::{ArgoConfig, ArgoMachine, RunReport};
pub use pgas::PgasCtx;
pub use sync::{ArgoMutex, ArgoMutexGuard};
pub use types::{GlobalF64Array, GlobalMatrix, GlobalU64Array};
