//! Per-thread execution context for Argo programs.
//!
//! An [`ArgoCtx`] is what a simulated application thread programs against:
//! typed global memory accesses, the hierarchical barrier, explicit
//! acquire/release fences (for programs that synchronize through Vela locks
//! rather than barriers), and measurement control.

use crate::machine::ArgoConfig;
use carina::{CarinaSiSd, Coherence, Dsm};
use mem::GlobalAddr;
use rma::{Endpoint, SimTransport, Transport};
use std::sync::Arc;
use vela::{ClockBarrier, HierBarrier};

/// The handle each simulated thread receives in [`crate::ArgoMachine::run`].
pub struct ArgoCtx<T: Transport = SimTransport, C: Coherence = CarinaSiSd> {
    /// The thread's virtual clock and placement (an RMA endpoint). Public
    /// so workloads can charge their compute costs directly.
    pub thread: T::Endpoint,
    dsm: Arc<Dsm<T, C>>,
    barrier: Arc<HierBarrier<T, C>>,
    control: Arc<ClockBarrier>,
    tid: usize,
    nthreads: usize,
    config: ArgoConfig,
    measure_from: u64,
}

impl<T: Transport, C: Coherence> ArgoCtx<T, C> {
    pub(crate) fn new(
        thread: T::Endpoint,
        dsm: Arc<Dsm<T, C>>,
        barrier: Arc<HierBarrier<T, C>>,
        control: Arc<ClockBarrier>,
        tid: usize,
        nthreads: usize,
        config: ArgoConfig,
    ) -> Self {
        ArgoCtx {
            thread,
            dsm,
            barrier,
            control,
            tid,
            nthreads,
            config,
            measure_from: 0,
        }
    }

    /// Global thread id in `0..nthreads`.
    #[inline]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Total threads in the region.
    #[inline]
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// This thread's cluster node index.
    #[inline]
    pub fn node(&self) -> usize {
        self.thread.node().idx()
    }

    /// The cluster configuration the region runs under.
    #[inline]
    pub fn config(&self) -> &ArgoConfig {
        &self.config
    }

    /// The underlying DSM (for direct protocol access, e.g. Vela locks).
    #[inline]
    pub fn dsm(&self) -> &Arc<Dsm<T, C>> {
        &self.dsm
    }

    // --- memory ---

    #[inline]
    pub fn read_u64(&mut self, addr: GlobalAddr) -> u64 {
        self.dsm.read_u64(&mut self.thread, addr)
    }

    #[inline]
    pub fn write_u64(&mut self, addr: GlobalAddr, v: u64) {
        self.dsm.write_u64(&mut self.thread, addr, v)
    }

    #[inline]
    pub fn read_f64(&mut self, addr: GlobalAddr) -> f64 {
        self.dsm.read_f64(&mut self.thread, addr)
    }

    #[inline]
    pub fn write_f64(&mut self, addr: GlobalAddr, v: f64) {
        self.dsm.write_f64(&mut self.thread, addr, v)
    }

    /// Bulk read of consecutive f64s (see `Dsm::read_f64_slice`).
    #[inline]
    pub fn read_f64_slice(&mut self, addr: GlobalAddr, out: &mut [f64]) {
        self.dsm.read_f64_slice(&mut self.thread, addr, out)
    }

    /// Bulk write of consecutive f64s.
    #[inline]
    pub fn write_f64_slice(&mut self, addr: GlobalAddr, data: &[f64]) {
        self.dsm.write_f64_slice(&mut self.thread, addr, data)
    }

    /// Bulk read of consecutive u64s.
    #[inline]
    pub fn read_u64_slice(&mut self, addr: GlobalAddr, out: &mut [u64]) {
        self.dsm.read_u64_slice(&mut self.thread, addr, out)
    }

    /// Bulk write of consecutive u64s.
    #[inline]
    pub fn write_u64_slice(&mut self, addr: GlobalAddr, data: &[u64]) {
        self.dsm.write_u64_slice(&mut self.thread, addr, data)
    }

    // --- synchronization ---

    /// The hierarchical barrier over all region threads (paper §4.1).
    pub fn barrier(&mut self) {
        self.barrier.wait(&mut self.thread);
    }

    /// Acquire fence: self-invalidate (use after winning a data-race-free
    /// synchronization not expressed through Argo primitives).
    pub fn acquire(&mut self) {
        self.dsm.si_fence(&mut self.thread);
    }

    /// Release fence: self-downgrade.
    pub fn release(&mut self) {
        self.dsm.sd_fence(&mut self.thread);
    }

    // --- measurement ---

    /// Collective: end of initialization, start of the measured parallel
    /// section. Implements the paper's §3.4 rule — "initialization writes
    /// do not count": the reader/writer full maps are reset to null, caches
    /// are flushed home, and coherence/network statistics restart. The
    /// measured interval of [`crate::RunReport`] begins here.
    pub fn start_measurement(&mut self) {
        let dsm = self.dsm.clone();
        self.control.wait_leader(&mut self.thread, move |_| {
            dsm.reset_for_parallel_section();
            dsm.net().stats().reset();
        });
        self.measure_from = self.thread.now();
    }

    /// Collective: decay the classification so pages re-classify to the
    /// next phase's access pattern (the paper's adaptive extension,
    /// §3.2). All threads must call this together; the last arrival
    /// performs the charged cluster-wide sweep.
    pub fn adapt_classification(&mut self) {
        let dsm = self.dsm.clone();
        self.control.wait_leader(&mut self.thread, move |t| {
            dsm.decay_classification(t);
        });
    }

    /// Cycles of the measured section so far.
    pub fn measured_cycles(&self) -> u64 {
        self.thread.now().saturating_sub(self.measure_from)
    }

    // --- work distribution helpers ---

    /// This thread's contiguous chunk of `0..n` under block distribution.
    pub fn my_chunk(&self, n: usize) -> std::ops::Range<usize> {
        let per = n.div_ceil(self.nthreads);
        let lo = (self.tid * per).min(n);
        let hi = ((self.tid + 1) * per).min(n);
        lo..hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::ArgoMachine;

    #[test]
    fn chunks_partition_exactly() {
        let m = ArgoMachine::new(ArgoConfig::small(2, 2));
        let report = m.run(|ctx| ctx.my_chunk(10));
        let mut covered = [false; 10];
        for r in &report.results {
            for i in r.clone() {
                assert!(!covered[i], "overlap at {i}");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn measurement_excludes_prefix() {
        let m = ArgoMachine::new(ArgoConfig::small(1, 2));
        let report = m.run(|ctx| {
            ctx.thread.compute(1_000_000); // init, excluded
            ctx.start_measurement();
            ctx.thread.compute(500);
        });
        assert!(report.cycles >= 500);
        assert!(report.cycles < 1_000_000);
    }

    #[test]
    fn barrier_publishes_between_threads() {
        let m = ArgoMachine::new(ArgoConfig::small(2, 1));
        let dsm = m.dsm().clone();
        let addr = dsm.allocator().alloc_pages(4).unwrap();
        let report = m.run(move |ctx| {
            if ctx.tid() == 0 {
                ctx.write_u64(addr, 31);
            } else {
                let _ = ctx.read_u64(addr); // cache stale value
            }
            ctx.barrier();
            ctx.read_u64(addr)
        });
        assert!(report.results.iter().all(|&v| v == 31));
    }
}
