//! Human-readable run summaries and the machine-readable report export.
//!
//! [`RunReport::summary`] renders the timing, coherence, and network
//! profile of a parallel region the way the examples print it — one place
//! to keep the format consistent. [`RunReport::to_json`] serializes the
//! same data (plus latency histograms and per-lock delegation stats) for
//! scripts and CI artifacts.

use crate::machine::RunReport;
use obs::HistogramSnapshot;
use std::fmt::Write as _;

/// Compact histogram serialization: sample count, mean, the common tail
/// percentiles, and the upper edge of the largest occupied bucket.
fn hist_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
        h.count(),
        h.mean(),
        h.percentile(50.0),
        h.percentile(90.0),
        h.percentile(99.0),
        h.max_edge()
    )
}

impl<R> RunReport<R> {
    /// A multi-line human-readable summary of the run.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "virtual time : {:.3} ms ({} cycles), policy {}",
            self.seconds * 1e3,
            self.cycles,
            self.policy
        );
        let c = &self.coherence;
        let _ = writeln!(
            s,
            "coherence    : {} read misses, {} write faults, {} writebacks ({} KiB)",
            c.read_misses,
            c.write_faults,
            c.writebacks,
            c.writeback_bytes >> 10
        );
        let _ = writeln!(
            s,
            "classification: P->S {}, NW->SW {}, SW->MW {}; SI kept {} / invalidated {}",
            c.p_to_s, c.nw_to_sw, c.sw_to_mw, c.si_kept, c.si_invalidated
        );
        let _ = writeln!(
            s,
            "downgrades   : {} batched drains, {:.1} pages/batch mean, {:.0}% of writeback bytes diffed",
            c.downgrade_batches,
            c.mean_drain_batch(),
            100.0 * c.diff_efficiency()
        );
        let n = &self.net;
        let _ = writeln!(
            s,
            "network      : {} reads ({} KiB), {} writes ({} KiB), {} atomics, {} handlers",
            n.rdma_reads,
            n.bytes_read >> 10,
            n.rdma_writes,
            n.bytes_written >> 10,
            n.rdma_atomics,
            n.handler_invocations
        );
        if c.prefetch_issued > 0 {
            let _ = writeln!(
                s,
                "prefetch     : {} pages issued, {} hit, {} wasted ({:.0}% accurate)",
                c.prefetch_issued,
                c.prefetch_hits,
                c.prefetch_wasted,
                100.0 * c.prefetch_accuracy()
            );
        }
        if c.lease_renewals > 0 || c.lease_expiries > 0 || c.lease_kept > 0 {
            let _ = writeln!(
                s,
                "leases       : {} renewals, {} kept at SI, {} expired ({:.0}% kept)",
                c.lease_renewals,
                c.lease_kept,
                c.lease_expiries,
                100.0 * c.lease_keep_ratio()
            );
        }
        if c.mode_to_lease + c.mode_to_sisd + c.mode_lease_checks > 0 {
            let _ = writeln!(
                s,
                "modes        : {} →lease, {} →si/sd switches, {} reconciles ({:.0}% lease-governed)",
                c.mode_to_lease,
                c.mode_to_sisd,
                c.mode_reconciles,
                100.0 * c.lease_mode_occupancy()
            );
        }
        if c.verb_retries > 0 || c.verb_exhaustions > 0 {
            let _ = writeln!(
                s,
                "resilience   : {} verb retries, {} budgets exhausted",
                c.verb_retries, c.verb_exhaustions
            );
        }
        if self.membership_epoch > 0 {
            let _ = writeln!(
                s,
                "membership   : epoch {}, {} nodes alive, {} failovers, {} pages re-homed, {} shadow pages mirrored",
                self.membership_epoch,
                self.nodes_alive,
                c.failovers,
                c.pages_rehomed,
                c.shadow_mirrored
            );
        }
        if self.heat_total > 0 {
            let mut hot = String::new();
            for (i, (page, n)) in self.hot_pages.iter().enumerate() {
                if i > 0 {
                    hot.push_str(", ");
                }
                let _ = write!(hot, "#{page}:{n}");
            }
            let _ = writeln!(
                s,
                "heat         : {} misses over pages; hottest {}",
                self.heat_total, hot
            );
        }
        let rec = &self.recorder;
        let _ = writeln!(
            s,
            "recorder     : {} records kept / {} submitted, {} dropped, {} tail captures{}; tracer {} kept / {} dropped",
            rec.kept,
            rec.submitted,
            rec.dropped,
            rec.tail_captures,
            if rec.enabled { "" } else { " (disabled)" },
            self.tracer.recorded.saturating_sub(self.tracer.dropped),
            self.tracer.dropped
        );
        s
    }

    /// The full report as a JSON document: timing, every coherence and
    /// network counter, the merged latency histograms per site, and one
    /// entry per registered lock. Parsable by `obs::JsonValue` (and any
    /// real JSON parser).
    pub fn to_json(&self) -> String {
        let c = &self.coherence;
        let n = &self.net;
        let mut s = String::with_capacity(2048);
        s.push('{');
        let _ = write!(
            s,
            "\"cycles\":{},\"seconds\":{:.9},\"wall_seconds\":{:.6},\"threads\":{},\"policy\":\"{}\"",
            self.cycles,
            self.seconds,
            self.wall_seconds,
            self.results.len(),
            self.policy
        );
        let _ = write!(
            s,
            ",\"membership\":{{\"epoch\":{},\"nodes_alive\":{}}}",
            self.membership_epoch, self.nodes_alive
        );
        let _ = write!(
            s,
            ",\"coherence\":{{\"read_hits\":{},\"write_hits\":{},\"read_misses\":{},\
             \"write_faults\":{},\"si_invalidated\":{},\"si_kept\":{},\"writebacks\":{},\
             \"writeback_bytes\":{},\"twins_created\":{},\"diff_words\":{},\
             \"checkpoints\":{},\"p_to_s\":{},\"nw_to_sw\":{},\"sw_to_mw\":{},\
             \"evictions\":{},\"si_fences\":{},\"sd_fences\":{},\"decays\":{},\
             \"downgrade_batches\":{},\"downgrade_batch_pages\":{},\
             \"verb_retries\":{},\"verb_exhaustions\":{},\
             \"failovers\":{},\"pages_rehomed\":{},\"shadow_mirrored\":{},\
             \"prefetch_issued\":{},\"prefetch_hits\":{},\"prefetch_wasted\":{},\
             \"prefetch_accuracy\":{:.4},\
             \"lease_renewals\":{},\"lease_expiries\":{},\"lease_kept\":{},\
             \"lease_keep_ratio\":{:.4},\
             \"mode_to_lease\":{},\"mode_to_sisd\":{},\"mode_lease_checks\":{},\
             \"mode_classify_checks\":{},\"mode_reconciles\":{},\
             \"lease_mode_occupancy\":{:.4},\
             \"mean_drain_batch\":{:.3},\"diff_efficiency\":{:.4},\"si_keep_ratio\":{:.4}}}",
            c.read_hits,
            c.write_hits,
            c.read_misses,
            c.write_faults,
            c.si_invalidated,
            c.si_kept,
            c.writebacks,
            c.writeback_bytes,
            c.twins_created,
            c.diff_words,
            c.checkpoints,
            c.p_to_s,
            c.nw_to_sw,
            c.sw_to_mw,
            c.evictions,
            c.si_fences,
            c.sd_fences,
            c.decays,
            c.downgrade_batches,
            c.downgrade_batch_pages,
            c.verb_retries,
            c.verb_exhaustions,
            c.failovers,
            c.pages_rehomed,
            c.shadow_mirrored,
            c.prefetch_issued,
            c.prefetch_hits,
            c.prefetch_wasted,
            c.prefetch_accuracy(),
            c.lease_renewals,
            c.lease_expiries,
            c.lease_kept,
            c.lease_keep_ratio(),
            c.mode_to_lease,
            c.mode_to_sisd,
            c.mode_lease_checks,
            c.mode_classify_checks,
            c.mode_reconciles,
            c.lease_mode_occupancy(),
            c.mean_drain_batch(),
            c.diff_efficiency(),
            c.si_keep_ratio()
        );
        let _ = write!(
            s,
            ",\"network\":{{\"rdma_reads\":{},\"rdma_writes\":{},\"rdma_atomics\":{},\
             \"bytes_read\":{},\"bytes_written\":{},\"messages\":{},\"msg_bytes\":{},\
             \"handler_invocations\":{}}}",
            n.rdma_reads,
            n.rdma_writes,
            n.rdma_atomics,
            n.bytes_read,
            n.bytes_written,
            n.messages,
            n.msg_bytes,
            n.handler_invocations
        );
        s.push_str(",\"profile\":{");
        for (i, site) in obs::Site::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", site.name(), hist_json(self.profile.get(*site)));
        }
        s.push('}');
        s.push_str(",\"heat\":{");
        let _ = write!(s, "\"total\":{},\"hot_pages\":[", self.heat_total);
        for (i, (page, misses)) in self.hot_pages.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"page\":{page},\"misses\":{misses}}}");
        }
        s.push_str("]}");
        let rec = &self.recorder;
        let _ = write!(
            s,
            ",\"recorder\":{{\"submitted\":{},\"kept\":{},\"dropped\":{},\
             \"tail_captures\":{},\"capacity_per_node\":{},\"enabled\":{}}}",
            rec.submitted,
            rec.kept,
            rec.dropped,
            rec.tail_captures,
            rec.capacity_per_node,
            rec.enabled
        );
        let _ = write!(
            s,
            ",\"tracer\":{{\"recorded\":{},\"dropped\":{},\"buffered\":{}}}",
            self.tracer.recorded, self.tracer.dropped, self.tracer.buffered
        );
        s.push_str(",\"locks\":[");
        for (i, l) in self.locks.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"delegations\":{},\"executed_local\":{},\
                 \"executed_remote\":{},\"batches\":{},\"handovers\":{},\
                 \"mean_batch\":{:.3},\"queue_wait\":{},\"batch_size\":{},\"acquire\":{}}}",
                obs::json::escape(&l.name),
                l.delegations,
                l.executed_local,
                l.executed_remote,
                l.batches,
                l.handovers,
                l.mean_batch(),
                hist_json(&l.queue_wait),
                hist_json(&l.batch_size),
                hist_json(&l.acquire)
            );
        }
        s.push_str("]}");
        s
    }

    /// One-line headline: time plus the dominant coherence costs.
    pub fn headline(&self) -> String {
        format!(
            "{:.3} ms virtual, {} misses, {} writebacks, {} handler invocations",
            self.seconds * 1e3,
            self.coherence.read_misses,
            self.coherence.writebacks,
            self.net.handler_invocations
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::{ArgoConfig, ArgoMachine};
    use crate::types::GlobalU64Array;

    #[test]
    fn summary_mentions_the_traffic() {
        let m = ArgoMachine::new(ArgoConfig::small(2, 2));
        let arr = GlobalU64Array::alloc(m.dsm(), 2048);
        let report = m.run(move |ctx| {
            for i in ctx.my_chunk(2048) {
                arr.set(ctx, i, i as u64);
            }
            ctx.barrier();
            arr.get(ctx, 0)
        });
        let s = report.summary();
        assert!(s.contains("virtual time"));
        assert!(s.contains("read misses"));
        assert!(s.contains("batched drains"));
        assert!(s.contains("handlers"));
        // This workload misses across nodes, so the heatmap line renders
        // with the hottest pages, and the recorder line is always present.
        assert!(s.contains("heat         :"));
        assert!(s.contains("hottest #"));
        assert!(s.contains("recorder     :"));
        assert!(s.contains("tail captures"));
        assert!(report.headline().contains("ms virtual"));
    }

    #[test]
    fn to_json_round_trips_the_counters() {
        let m = ArgoMachine::new(ArgoConfig::small(2, 2));
        let arr = GlobalU64Array::alloc(m.dsm(), 1024);
        let report = m.run(move |ctx| {
            for i in ctx.my_chunk(1024) {
                arr.set(ctx, i, 1);
            }
            ctx.barrier();
            arr.get(ctx, 0)
        });
        let doc = obs::JsonValue::parse(&report.to_json()).expect("report JSON must parse");
        let coh = doc.get("coherence").unwrap();
        assert_eq!(
            coh.get("read_misses").unwrap().as_u64(),
            Some(report.coherence.read_misses)
        );
        // Healthy fabric: retry counters are present and zero.
        assert_eq!(coh.get("verb_retries").unwrap().as_u64(), Some(0));
        assert_eq!(coh.get("verb_exhaustions").unwrap().as_u64(), Some(0));
        // Static membership: epoch 0, everyone alive, no failover work.
        let mem = doc.get("membership").unwrap();
        assert_eq!(mem.get("epoch").unwrap().as_u64(), Some(0));
        assert_eq!(mem.get("nodes_alive").unwrap().as_u64(), Some(2));
        assert_eq!(coh.get("failovers").unwrap().as_u64(), Some(0));
        assert_eq!(coh.get("pages_rehomed").unwrap().as_u64(), Some(0));
        assert_eq!(
            doc.get("profile").unwrap().get("retry").unwrap().get("count").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(
            doc.get("network").unwrap().get("rdma_reads").unwrap().as_u64(),
            Some(report.net.rdma_reads)
        );
        assert_eq!(doc.get("threads").unwrap().as_u64(), Some(4));
        // The barrier ran, so its site has samples in the profile section.
        let bw = doc.get("profile").unwrap().get("barrier_wait").unwrap();
        assert_eq!(
            bw.get("count").unwrap().as_u64(),
            Some(report.profile.get(obs::Site::BarrierWait).count())
        );
        assert!(bw.get("count").unwrap().as_u64().unwrap() >= 4);
        // No locks registered: empty but present array.
        assert!(doc.get("locks").unwrap().as_arr().unwrap().is_empty());
        // Heatmap: total matches the snapshot, hottest-first ordering.
        let heat = doc.get("heat").unwrap();
        assert_eq!(heat.get("total").unwrap().as_u64(), Some(report.heat_total));
        let hot = heat.get("hot_pages").unwrap().as_arr().unwrap();
        assert!(!hot.is_empty(), "cross-node workload must have hot pages");
        let misses: Vec<u64> =
            hot.iter().map(|p| p.get("misses").unwrap().as_u64().unwrap()).collect();
        assert!(misses.windows(2).all(|w| w[0] >= w[1]), "hot pages sorted hottest-first");
        // Flight recorder ran alongside (always on) and lost nothing here.
        let rec = doc.get("recorder").unwrap();
        assert_eq!(rec.get("submitted").unwrap().as_u64(), Some(report.recorder.submitted));
        assert!(report.recorder.submitted > 0, "fences/misses must submit records");
        assert_eq!(
            rec.get("kept").unwrap().as_u64().unwrap()
                + rec.get("dropped").unwrap().as_u64().unwrap(),
            report.recorder.submitted
        );
        // Tracer is disabled by default: present, all zero.
        let tr = doc.get("tracer").unwrap();
        assert_eq!(tr.get("dropped").unwrap().as_u64(), Some(0));
    }
}
