//! Human-readable run summaries.
//!
//! [`RunReport::summary`] renders the timing, coherence, and network
//! profile of a parallel region the way the examples print it — one place
//! to keep the format consistent.

use crate::machine::RunReport;
use std::fmt::Write as _;

impl<R> RunReport<R> {
    /// A multi-line human-readable summary of the run.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "virtual time : {:.3} ms ({} cycles)",
            self.seconds * 1e3,
            self.cycles
        );
        let c = &self.coherence;
        let _ = writeln!(
            s,
            "coherence    : {} read misses, {} write faults, {} writebacks ({} KiB)",
            c.read_misses,
            c.write_faults,
            c.writebacks,
            c.writeback_bytes >> 10
        );
        let _ = writeln!(
            s,
            "classification: P->S {}, NW->SW {}, SW->MW {}; SI kept {} / invalidated {}",
            c.p_to_s, c.nw_to_sw, c.sw_to_mw, c.si_kept, c.si_invalidated
        );
        let n = &self.net;
        let _ = writeln!(
            s,
            "network      : {} reads ({} KiB), {} writes ({} KiB), {} atomics, {} handlers",
            n.rdma_reads,
            n.bytes_read >> 10,
            n.rdma_writes,
            n.bytes_written >> 10,
            n.rdma_atomics,
            n.handler_invocations
        );
        s
    }

    /// One-line headline: time plus the dominant coherence costs.
    pub fn headline(&self) -> String {
        format!(
            "{:.3} ms virtual, {} misses, {} writebacks, {} handler invocations",
            self.seconds * 1e3,
            self.coherence.read_misses,
            self.coherence.writebacks,
            self.net.handler_invocations
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::{ArgoConfig, ArgoMachine};
    use crate::types::GlobalU64Array;

    #[test]
    fn summary_mentions_the_traffic() {
        let m = ArgoMachine::new(ArgoConfig::small(2, 2));
        let arr = GlobalU64Array::alloc(m.dsm(), 2048);
        let report = m.run(move |ctx| {
            for i in ctx.my_chunk(2048) {
                arr.set(ctx, i, i as u64);
            }
            ctx.barrier();
            arr.get(ctx, 0)
        });
        let s = report.summary();
        assert!(s.contains("virtual time"));
        assert!(s.contains("read misses"));
        assert!(s.contains("handlers"));
        assert!(report.headline().contains("ms virtual"));
    }
}
