//! A PGAS-style (UPC-like) access mode, for the paper's UPC baselines.
//!
//! In PGAS there is **no remote caching** (paper §2.1): the address space
//! is partitioned, every access to a non-local element is a fine-grained
//! remote operation, and programmers move data in bulk to thread-local
//! space by hand. `PgasCtx` wraps a `SimThread` and provides exactly that
//! cost model over the same global memory layout — no page cache, no
//! directory, no fences.

use carina::{CarinaSiSd, Coherence, Dsm};
use mem::GlobalAddr;
use rma::{Endpoint, SimTransport, Transport, VerbClass, VerbError};
use simnet::NodeId;
use std::sync::Arc;

/// Fine-grained remote element size (UPC shared scalar access).
const ELEM_BYTES: u64 = 8;

/// PGAS access handle: same global memory, UPC cost semantics.
pub struct PgasCtx<T: Transport = SimTransport, C: Coherence = CarinaSiSd> {
    dsm: Arc<Dsm<T, C>>,
}

impl<T: Transport, C: Coherence> PgasCtx<T, C> {
    pub fn new(dsm: Arc<Dsm<T, C>>) -> Self {
        PgasCtx { dsm }
    }

    /// Reissue a fine-grained PGAS verb until it lands, charging backoff
    /// as local compute. PGAS has no coherence to fall back on, so an
    /// exhausted budget aborts (same contract as the DSM's panicking ops).
    fn insist(
        &self,
        t: &mut T::Endpoint,
        class: VerbClass,
        salt: u64,
        mut verb: impl FnMut(&mut T::Endpoint) -> Result<(), VerbError>,
    ) {
        let r = self.dsm.config().retry.run(class, salt, |a| {
            if a.step > 0 {
                t.compute(a.step);
            }
            verb(t)
        });
        if let Err(e) = r {
            panic!("unrecoverable DSM fault: {e}");
        }
    }

    fn charge(&self, t: &mut T::Endpoint, addr: GlobalAddr, write: bool) {
        let home = self.dsm.home_of(addr);
        if home == t.node().0 {
            t.dram_access();
        } else if write {
            self.insist(t, VerbClass::Downgrade, addr.0, |t| {
                t.rdma_write(NodeId(home), ELEM_BYTES).map(|_| ())
            });
        } else {
            self.insist(t, VerbClass::PageFetch, addr.0, |t| {
                t.rdma_read(NodeId(home), ELEM_BYTES)
            });
        }
    }

    /// Fine-grained shared read (remote unless the element is local).
    pub fn read_u64(&self, t: &mut T::Endpoint, addr: GlobalAddr) -> u64 {
        self.charge(t, addr, false);
        self.dsm.peek_u64(addr)
    }

    pub fn write_u64(&self, t: &mut T::Endpoint, addr: GlobalAddr, v: u64) {
        self.charge(t, addr, true);
        self.dsm.poke_u64(addr, v);
    }

    pub fn read_f64(&self, t: &mut T::Endpoint, addr: GlobalAddr) -> f64 {
        f64::from_bits(self.read_u64(t, addr))
    }

    pub fn write_f64(&self, t: &mut T::Endpoint, addr: GlobalAddr, v: f64) {
        self.write_u64(t, addr, v.to_bits())
    }

    /// Bulk transfer of `words` elements starting at `addr` into local
    /// space ("programmers are advised to cast such pointers to local
    /// pointers" / move data in bulk). One message per home node touched.
    pub fn bulk_read_f64(&self, t: &mut T::Endpoint, addr: GlobalAddr, words: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(words);
        // Charge one transfer per home-node run of the interleaved pages.
        let mut i = 0usize;
        while i < words {
            let a = addr.offset(i as u64 * 8);
            let home = self.dsm.home_of(a);
            // Extent of this run: to the end of the page.
            let page_end = (a.page().0 + 1) * mem::PAGE_BYTES;
            let run_words = (((page_end - a.0) / 8) as usize).min(words - i);
            if home == t.node().0 {
                t.dram_access();
            } else {
                self.insist(t, VerbClass::PageFetch, a.0, |t| {
                    t.rdma_read(NodeId(home), run_words as u64 * 8)
                });
            }
            for k in 0..run_words {
                out.push(f64::from_bits(self.dsm.peek_u64(addr.offset((i + k) as u64 * 8))));
            }
            i += run_words;
        }
        out
    }

    /// Bulk write of local data back to shared space.
    pub fn bulk_write_f64(&self, t: &mut T::Endpoint, addr: GlobalAddr, data: &[f64]) {
        let mut i = 0usize;
        while i < data.len() {
            let a = addr.offset(i as u64 * 8);
            let home = self.dsm.home_of(a);
            let page_end = (a.page().0 + 1) * mem::PAGE_BYTES;
            let run_words = (((page_end - a.0) / 8) as usize).min(data.len() - i);
            if home == t.node().0 {
                t.dram_access();
            } else {
                self.insist(t, VerbClass::Downgrade, a.0, |t| {
                    t.rdma_write(NodeId(home), run_words as u64 * 8).map(|_| ())
                });
            }
            for k in 0..run_words {
                self.dsm.poke_u64(addr.offset((i + k) as u64 * 8), data[i + k].to_bits());
            }
            i += run_words;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{ArgoConfig, ArgoMachine};
    use simnet::CostModel;

    #[test]
    fn fine_grained_remote_access_charges_round_trip() {
        let m = ArgoMachine::new(ArgoConfig::small(2, 1));
        let addr = m.dsm().allocator().alloc_pages(4).unwrap();
        let pgas = PgasCtx::new(m.dsm().clone());
        let report = m.run(move |ctx| {
            // Find an element homed on the *other* node.
            let mut a = addr;
            while pgas_home(ctx.dsm(), a) == ctx.node() as u16 {
                a = a.offset(mem::PAGE_BYTES);
            }
            let before = ctx.thread.now();
            let _ = pgas.read_u64(&mut ctx.thread, a);
            ctx.thread.now() - before
        });
        let c = CostModel::paper_2011();
        for cycles in report.results {
            assert!(cycles >= 2 * c.network_latency);
        }

        fn pgas_home(dsm: &Dsm, a: GlobalAddr) -> u16 {
            dsm.home_of(a)
        }
    }

    #[test]
    fn bulk_read_matches_values() {
        let m = ArgoMachine::new(ArgoConfig::small(2, 1));
        let addr = m.dsm().allocator().alloc_pages(2).unwrap();
        let report = m.run(move |ctx| {
            let pgas = PgasCtx::new(ctx.dsm().clone());
            if ctx.tid() == 0 {
                for i in 0..100 {
                    pgas.write_f64(&mut ctx.thread, addr.offset(i * 8), i as f64);
                }
            }
            ctx.barrier();
            let data = pgas.bulk_read_f64(&mut ctx.thread, addr, 100);
            data.iter().sum::<f64>()
        });
        assert!(report.results.iter().all(|&s| s == 4950.0));
    }
}
