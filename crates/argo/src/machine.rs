//! The Argo machine: a simulated cluster you can run DRF programs on.
//!
//! [`ArgoMachine`] bundles the interconnect, the Carina DSM, and a thread
//! team launcher. A parallel region is executed by real OS threads — one
//! per simulated core — each carrying a virtual clock; the region's
//! reported execution time is the maximum clock at region end, measured
//! from the last `start_measurement` barrier (so initialization can be
//! excluded, as the paper does).

use crate::ctx::ArgoCtx;
use carina::{CarinaConfig, CarinaSiSd, Coherence, CoherenceSnapshot, Dsm};
use rma::{NativeTransport, SimTransport, Transport};
use simnet::stats::NetStatsSnapshot;
use simnet::{ClusterTopology, CostModel, Interconnect, NodeId};
use std::sync::Arc;
use vela::{ClockBarrier, HierBarrier};

/// Configuration of a simulated Argo cluster.
#[derive(Debug, Clone, Copy)]
pub struct ArgoConfig {
    /// Cluster machines.
    pub nodes: usize,
    /// Worker threads per machine. The paper uses 15 of 16 cores ("leaving
    /// one to take the OS overhead").
    pub threads_per_node: usize,
    /// NUMA shape of each machine.
    pub sockets_per_node: usize,
    pub cores_per_socket: usize,
    /// Global memory contributed by each node.
    pub bytes_per_node: u64,
    /// Network/cost constants.
    pub cost: CostModel,
    /// Coherence configuration.
    pub carina: CarinaConfig,
}

impl ArgoConfig {
    /// A small cluster with the paper's cost constants; convenient default
    /// for examples and tests.
    pub fn small(nodes: usize, threads_per_node: usize) -> Self {
        ArgoConfig {
            nodes,
            threads_per_node,
            sockets_per_node: 4,
            cores_per_socket: 4,
            bytes_per_node: 16 << 20,
            cost: CostModel::paper_2011(),
            carina: CarinaConfig::default(),
        }
    }

    /// The paper's evaluation shape: 15 worker threads on 4×4-core nodes.
    pub fn paper(nodes: usize) -> Self {
        Self::small(nodes, 15)
    }

    pub fn topology(&self) -> ClusterTopology {
        ClusterTopology {
            nodes: self.nodes,
            sockets_per_node: self.sockets_per_node,
            cores_per_socket: self.cores_per_socket,
        }
    }

    pub fn total_threads(&self) -> usize {
        self.nodes * self.threads_per_node
    }
}

/// Result of running a parallel region.
#[derive(Debug, Clone)]
pub struct RunReport<R> {
    /// Virtual cycles of the measured section (max over threads, from the
    /// last `start_measurement` to region end). Always 0 on the native
    /// backend, which has no virtual clock.
    pub cycles: u64,
    /// The same in seconds at the model's CPU frequency.
    pub seconds: f64,
    /// Wall-clock seconds of the whole region (spawn to last join). This is
    /// the figure of merit on the native backend; on the simulator it only
    /// measures how fast the simulation ran.
    pub wall_seconds: f64,
    /// Per-thread return values, indexed by global thread id.
    pub results: Vec<R>,
    /// Coherence events during the region (including unmeasured prefix).
    pub coherence: CoherenceSnapshot,
    /// Network traffic during the region (including unmeasured prefix).
    pub net: NetStatsSnapshot,
    /// Latency histograms (all nodes merged): virtual cycles on the
    /// simulator, wall nanoseconds on the native backend.
    pub profile: obs::ProfileSnapshot,
    /// Per-lock delegation statistics, in lock-registration order.
    pub locks: Vec<obs::LockObsSnapshot>,
    /// Total read misses counted by the per-page heatmap.
    pub heat_total: u64,
    /// The hottest pages as `(page index, miss count)`, hottest first
    /// (top [`HOT_PAGES`] only; ties broken by page index).
    pub hot_pages: Vec<(usize, u64)>,
    /// Event-tracer health; non-zero `dropped` means the trace is partial.
    pub tracer: carina::TracerStats,
    /// Flight-recorder health: ring occupancy, drops, tail captures.
    pub recorder: carina::RecorderStats,
    /// Volans membership epoch at region end (0 = membership never
    /// changed: no failover, no join).
    pub membership_epoch: u64,
    /// Nodes alive in the Volans membership at region end.
    pub nodes_alive: usize,
    /// The coherence policy the region ran under (`Coherence::NAME`).
    pub policy: &'static str,
}

/// How many of the hottest pages a [`RunReport`] carries.
pub const HOT_PAGES: usize = 8;

/// An Argo cluster, generic over its RMA transport. The default transport
/// is the virtual-time simulator; [`ArgoMachine::native`] builds the same
/// machine on the wall-clock shared-memory backend.
pub struct ArgoMachine<T: Transport = SimTransport, C: Coherence = CarinaSiSd> {
    config: ArgoConfig,
    net: Arc<T>,
    dsm: Arc<Dsm<T, C>>,
}

fn check_shape(config: &ArgoConfig) {
    assert!(
        config.threads_per_node <= config.topology().cores_per_node(),
        "more threads per node ({}) than cores ({})",
        config.threads_per_node,
        config.topology().cores_per_node()
    );
}

impl ArgoMachine {
    /// A simulated cluster (virtual-time interconnect).
    pub fn new(config: ArgoConfig) -> Arc<Self> {
        Self::with_policy(config)
    }
}

impl<C: Coherence> ArgoMachine<SimTransport, C> {
    /// A simulated cluster running an explicit coherence policy, e.g.
    /// `ArgoMachine::<_, Tardis>::with_policy(cfg)`.
    pub fn with_policy(config: ArgoConfig) -> Arc<Self> {
        check_shape(&config);
        let net = Interconnect::new(config.topology(), config.cost);
        Self::on(config, net)
    }
}

impl ArgoMachine<NativeTransport> {
    /// The same machine on real shared memory: identical protocol engine,
    /// no virtual clock, wall-clock timing in [`RunReport::wall_seconds`].
    pub fn native(config: ArgoConfig) -> Arc<Self> {
        Self::native_with_policy(config)
    }
}

impl<C: Coherence> ArgoMachine<NativeTransport, C> {
    /// [`native`](ArgoMachine::native) with an explicit coherence policy.
    pub fn native_with_policy(config: ArgoConfig) -> Arc<Self> {
        check_shape(&config);
        let net = NativeTransport::with_cost(config.topology(), config.cost);
        Self::on(config, net)
    }
}

impl<T: Transport, C: Coherence> ArgoMachine<T, C> {
    /// Build a machine on an existing fabric (any transport).
    pub fn on(config: ArgoConfig, net: Arc<T>) -> Arc<Self> {
        check_shape(&config);
        assert_eq!(net.topology(), &config.topology(), "fabric/config shape mismatch");
        let dsm = Dsm::with_policy(net.clone(), config.bytes_per_node, config.carina);
        Arc::new(ArgoMachine { config, net, dsm })
    }

    pub fn config(&self) -> &ArgoConfig {
        &self.config
    }

    pub fn dsm(&self) -> &Arc<Dsm<T, C>> {
        &self.dsm
    }

    pub fn net(&self) -> &Arc<T> {
        &self.net
    }

    /// Run a parallel region: `f` is invoked once per simulated thread with
    /// an [`ArgoCtx`]. Blocks until every thread finishes; returns timing
    /// and per-thread results.
    ///
    /// The measured interval starts at 0 unless some thread calls
    /// [`ArgoCtx::start_measurement`] (a collective operation), in which
    /// case it starts at that barrier.
    pub fn run<R, F>(self: &Arc<Self>, f: F) -> RunReport<R>
    where
        R: Send + 'static,
        F: Fn(&mut ArgoCtx<T, C>) -> R + Send + Sync + 'static,
    {
        let cfg = self.config;
        let topo = cfg.topology();
        let total = cfg.total_threads();
        let barrier = Arc::new(HierBarrier::new(
            self.dsm.clone(),
            &vec![cfg.threads_per_node; cfg.nodes],
        ));
        let control = Arc::new(ClockBarrier::new(total, 0));
        let f = Arc::new(f);
        let wall_start = std::time::Instant::now();
        let mut handles = Vec::with_capacity(total);
        for tid in 0..total {
            let node = tid / cfg.threads_per_node;
            let core = tid % cfg.threads_per_node;
            let loc = topo.loc(NodeId(node as u16), core);
            let net = self.net.clone();
            let dsm = self.dsm.clone();
            let barrier = barrier.clone();
            let control = control.clone();
            let f = f.clone();
            let builder = std::thread::Builder::new()
                .name(format!("argo-n{node}c{core}"))
                .stack_size(1 << 20);
            handles.push(
                builder
                    .spawn(move || {
                        let thread = T::endpoint(&net, loc);
                        let mut ctx =
                            ArgoCtx::new(thread, dsm, barrier, control, tid, total, cfg);
                        let r = f(&mut ctx);
                        (r, ctx.measured_cycles(), tid)
                    })
                    .expect("failed to spawn simulated thread"),
            );
        }
        let mut results: Vec<Option<R>> = (0..total).map(|_| None).collect();
        let mut cycles = 0u64;
        for h in handles {
            let (r, c, tid) = h.join().expect("simulated thread panicked");
            results[tid] = Some(r);
            cycles = cycles.max(c);
        }
        RunReport {
            cycles,
            seconds: cfg.cost.cycles_to_secs(cycles),
            wall_seconds: wall_start.elapsed().as_secs_f64(),
            results: results.into_iter().map(|r| r.expect("missing result")).collect(),
            coherence: self.dsm.stats().snapshot(),
            net: self.net.stats().snapshot(),
            profile: self.dsm.profile().snapshot(),
            locks: self.dsm.lock_registry().snapshots(),
            heat_total: self.dsm.page_heat().total(),
            hot_pages: self.dsm.page_heat().top_k(HOT_PAGES),
            tracer: self.dsm.tracer().stats(),
            recorder: self.dsm.lyra().stats(),
            membership_epoch: self.dsm.membership().epoch(),
            nodes_alive: self.dsm.membership().nodes_alive(),
            policy: self.dsm.policy_name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_executes_every_thread_once() {
        let m = ArgoMachine::new(ArgoConfig::small(2, 3));
        let report = m.run(|ctx| ctx.tid());
        assert_eq!(report.results, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn report_times_the_slowest_thread() {
        let m = ArgoMachine::new(ArgoConfig::small(1, 4));
        let report = m.run(|ctx| {
            ctx.thread.compute(1000 * (ctx.tid() as u64 + 1));
        });
        assert_eq!(report.cycles, 4000);
    }

    #[test]
    #[should_panic(expected = "more threads per node")]
    fn rejects_oversubscription() {
        let mut cfg = ArgoConfig::small(1, 17);
        cfg.sockets_per_node = 4;
        cfg.cores_per_socket = 4;
        ArgoMachine::new(cfg);
    }
}
