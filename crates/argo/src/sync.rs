//! Pthreads-compatible synchronization for Argo programs.
//!
//! The paper: "It runs unmodified Pthreads (data-race-free) shared memory
//! programs" — a pthread mutex on Argo is a cluster-wide lock whose
//! acquire/release carry the Carina fences implicitly (SI on lock, SD on
//! unlock), so lock-protected data is coherent with no source changes.
//! (For lock-*intensive* code the paper recommends porting to HQDL —
//! `vela::Hqdl` — which is what Figure 12 measures.)

use crate::ctx::ArgoCtx;
use carina::{CarinaSiSd, Coherence, Dsm};
use rma::{Endpoint, SimTransport, Transport};
use simnet::NodeId;
use std::sync::Arc;
use vela::DsmGlobalLock;

/// A cluster-wide mutex with pthreads semantics (SI on lock, SD on unlock).
pub struct ArgoMutex<T: Transport = SimTransport, C: Coherence = CarinaSiSd> {
    dsm: Arc<Dsm<T, C>>,
    lock: Arc<DsmGlobalLock>,
    obs: Arc<obs::LockObs>,
}

impl<T: Transport, C: Coherence> ArgoMutex<T, C> {
    /// Create a mutex whose lock word lives on `home`.
    pub fn new(dsm: Arc<Dsm<T, C>>, home: u16) -> Arc<Self> {
        Self::new_named(dsm, home, "mutex")
    }

    /// [`new`](Self::new) with a name for per-lock statistics in run
    /// reports.
    pub fn new_named(dsm: Arc<Dsm<T, C>>, home: u16, name: &str) -> Arc<Self> {
        let obs = dsm.lock_registry().register(name);
        Arc::new(ArgoMutex {
            lock: DsmGlobalLock::new(NodeId(home)),
            dsm,
            obs,
        })
    }

    /// Acquire: take the global lock, then self-invalidate so this thread
    /// observes every earlier critical section's writes.
    pub fn lock(&self, ctx: &mut ArgoCtx<T, C>) -> ArgoMutexGuard<'_, T, C> {
        let t = &mut ctx.thread;
        let obs_start = t.obs_now();
        let switched = self.lock.acquire_tracked(t);
        let dur = t.obs_now().saturating_sub(obs_start);
        self.obs.acquire.record(dur);
        self.dsm
            .profile()
            .record(t.node().idx(), obs::Site::LockAcquire, dur);
        if switched {
            obs::LockObs::bump(&self.obs.handovers);
        }
        self.dsm.si_fence(t);
        ArgoMutexGuard { mutex: self }
    }

    /// Run `f` as a critical section (lock, f, unlock).
    pub fn with<R>(&self, ctx: &mut ArgoCtx<T, C>, f: impl FnOnce(&mut ArgoCtx<T, C>) -> R) -> R {
        let guard = self.lock(ctx);
        let r = f(ctx);
        guard.unlock(ctx);
        r
    }
}

/// Proof of ownership; must be explicitly released with the owning thread's
/// context (the context cannot be captured in the guard because the critical
/// section itself needs it mutably).
#[must_use = "the mutex stays locked until unlock(ctx) is called"]
pub struct ArgoMutexGuard<'a, T: Transport = SimTransport, C: Coherence = CarinaSiSd> {
    mutex: &'a ArgoMutex<T, C>,
}

impl<T: Transport, C: Coherence> ArgoMutexGuard<'_, T, C> {
    /// Release: self-downgrade (publish this section's writes), then free
    /// the global lock.
    pub fn unlock(self, ctx: &mut ArgoCtx<T, C>) {
        self.mutex.dsm.sd_fence(&mut ctx.thread);
        self.mutex.lock.release(&mut ctx.thread);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{ArgoConfig, ArgoMachine};
    use crate::types::GlobalU64Array;

    #[test]
    fn mutex_protects_cross_node_counter() {
        let m = ArgoMachine::new(ArgoConfig::small(3, 2));
        let arr = GlobalU64Array::alloc(m.dsm(), 8);
        let mutex = ArgoMutex::new(m.dsm().clone(), 0);
        let report = m.run(move |ctx| {
            for _ in 0..100 {
                mutex.with(ctx, |ctx| {
                    let v = arr.get(ctx, 0);
                    arr.set(ctx, 0, v + 1);
                });
            }
            ctx.barrier();
            arr.get(ctx, 0)
        });
        assert!(report.results.iter().all(|&v| v == 600));
        let locks = &report.locks;
        assert_eq!(locks.len(), 1);
        assert_eq!(locks[0].name, "mutex");
        assert_eq!(locks[0].acquire.count(), 600);
        assert!(locks[0].handovers >= 2, "three nodes contended");
        assert_eq!(report.profile.get(obs::Site::LockAcquire).count(), 600);
    }

    #[test]
    fn critical_sections_are_serialized_in_virtual_time() {
        // Time inside the mutex must be monotone across all acquisitions.
        let m = ArgoMachine::new(ArgoConfig::small(2, 2));
        let arr = GlobalU64Array::alloc(m.dsm(), 8);
        let mutex = ArgoMutex::new(m.dsm().clone(), 0);
        let report = m.run(move |ctx| {
            let mut ok = true;
            for _ in 0..50 {
                mutex.with(ctx, |ctx| {
                    let last = arr.get(ctx, 1);
                    ok &= ctx.thread.now() >= last;
                    arr.set(ctx, 1, ctx.thread.now());
                    ctx.thread.compute(100);
                });
            }
            ok
        });
        assert!(report.results.iter().all(|&ok| ok));
    }

    #[test]
    fn guard_requires_explicit_unlock() {
        let m = ArgoMachine::new(ArgoConfig::small(1, 1));
        let mutex = ArgoMutex::new(m.dsm().clone(), 0);
        let report = m.run(move |ctx| {
            let g = mutex.lock(ctx);
            ctx.thread.compute(10);
            g.unlock(ctx);
            ctx.thread.now()
        });
        assert!(report.results[0] > 0);
    }
}
