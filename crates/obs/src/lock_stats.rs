//! Per-lock HQDL observability: delegation counts, queue-wait and batch
//! distributions, holder handovers.
//!
//! Each Vela lock registers one [`LockObs`] in the DSM's [`LockRegistry`]
//! at construction; the hot paths bump it with relaxed atomics and the run
//! report collects [`LockObsSnapshot`]s after the workers join.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSnapshot};

/// Live counters + histograms for one lock.
#[derive(Debug)]
pub struct LockObs {
    pub name: String,
    /// Critical sections submitted for delegation.
    pub delegations: AtomicU64,
    /// Sections the delegating thread ended up running itself (it became
    /// the helper and drained its own request).
    pub executed_local: AtomicU64,
    /// Sections executed by a *different* thread than their delegator —
    /// true delegated execution.
    pub executed_remote: AtomicU64,
    /// Queue-open episodes (lock acquisitions by a helper).
    pub batches: AtomicU64,
    /// Lock acquisitions whose previous holder was a different node.
    pub handovers: AtomicU64,
    /// Delegation enqueue → execution start, in observability-clock units.
    pub queue_wait: Histogram,
    /// Sections drained per queue-open episode.
    pub batch_size: Histogram,
    /// Global-lock acquire latency as seen by helpers.
    pub acquire: Histogram,
}

impl LockObs {
    pub fn new(name: impl Into<String>) -> Self {
        LockObs {
            name: name.into(),
            delegations: AtomicU64::new(0),
            executed_local: AtomicU64::new(0),
            executed_remote: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            handovers: AtomicU64::new(0),
            queue_wait: Histogram::new(),
            batch_size: Histogram::new(),
            acquire: Histogram::new(),
        }
    }

    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> LockObsSnapshot {
        LockObsSnapshot {
            name: self.name.clone(),
            delegations: self.delegations.load(Ordering::Relaxed),
            executed_local: self.executed_local.load(Ordering::Relaxed),
            executed_remote: self.executed_remote.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            handovers: self.handovers.load(Ordering::Relaxed),
            queue_wait: self.queue_wait.snapshot(),
            batch_size: self.batch_size.snapshot(),
            acquire: self.acquire.snapshot(),
        }
    }

    pub fn reset(&self) {
        self.delegations.store(0, Ordering::Relaxed);
        self.executed_local.store(0, Ordering::Relaxed);
        self.executed_remote.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.handovers.store(0, Ordering::Relaxed);
        self.queue_wait.reset();
        self.batch_size.reset();
        self.acquire.reset();
    }
}

/// Plain-data snapshot of one lock's statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct LockObsSnapshot {
    pub name: String,
    pub delegations: u64,
    pub executed_local: u64,
    pub executed_remote: u64,
    pub batches: u64,
    pub handovers: u64,
    pub queue_wait: HistogramSnapshot,
    pub batch_size: HistogramSnapshot,
    pub acquire: HistogramSnapshot,
}

impl LockObsSnapshot {
    pub fn executed(&self) -> u64 {
        self.executed_local + self.executed_remote
    }

    /// Mean sections drained per queue-open episode.
    pub fn mean_batch(&self) -> f64 {
        self.batch_size.mean()
    }

    /// Fraction of executed sections that ran on a thread other than their
    /// delegator.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.executed();
        if total == 0 {
            0.0
        } else {
            self.executed_remote as f64 / total as f64
        }
    }

    /// One compact line for per-lock tables.
    pub fn render(&self) -> String {
        format!(
            "{:<12} deleg={:<7} local={:<7} remote={:<7} batches={:<6} \
             mean_batch={:<5.1} handovers={:<5} qwait_p50={:<8} acquire_p50={}",
            self.name,
            self.delegations,
            self.executed_local,
            self.executed_remote,
            self.batches,
            self.mean_batch(),
            self.handovers,
            self.queue_wait.percentile(50.0),
            self.acquire.percentile(50.0),
        )
    }
}

/// Registry of all locks created against one DSM instance.
#[derive(Debug, Default)]
pub struct LockRegistry {
    locks: Mutex<Vec<Arc<LockObs>>>,
}

impl LockRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Create, register, and hand back the observer for a new lock.
    pub fn register(&self, name: impl Into<String>) -> Arc<LockObs> {
        let obs = Arc::new(LockObs::new(name));
        self.locks.lock().unwrap().push(obs.clone());
        obs
    }

    pub fn len(&self) -> usize {
        self.locks.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn snapshots(&self) -> Vec<LockObsSnapshot> {
        self.locks
            .lock()
            .unwrap()
            .iter()
            .map(|l| l.snapshot())
            .collect()
    }

    pub fn reset(&self) {
        for l in self.locks.lock().unwrap().iter() {
            l.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_collects_snapshots_in_registration_order() {
        let reg = LockRegistry::new();
        let a = reg.register("alpha");
        let b = reg.register("beta");
        LockObs::bump(&a.delegations);
        LockObs::bump(&a.executed_remote);
        LockObs::bump(&b.delegations);
        LockObs::bump(&b.delegations);
        b.queue_wait.record(128);

        let snaps = reg.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].name, "alpha");
        assert_eq!(snaps[0].delegations, 1);
        assert_eq!(snaps[0].executed(), 1);
        assert_eq!(snaps[0].remote_fraction(), 1.0);
        assert_eq!(snaps[1].delegations, 2);
        assert_eq!(snaps[1].queue_wait.count(), 1);

        reg.reset();
        assert_eq!(reg.snapshots()[1].delegations, 0);
    }

    #[test]
    fn render_is_one_line_and_names_the_lock() {
        let obs = LockObs::new("counter");
        obs.batch_size.record(4);
        let line = obs.snapshot().render();
        assert!(line.starts_with("counter"));
        assert_eq!(line.lines().count(), 1);
    }
}
