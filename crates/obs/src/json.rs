//! Minimal JSON support: string escaping for the hand-rolled emitters
//! (chrome traces, run reports, bench records) and a small recursive-
//! descent parser used by the golden tests to validate what we emit.
//!
//! No external JSON crate is available in this build environment; this
//! module is deliberately tiny rather than general — numbers are `f64`,
//! objects are association lists (preserving emission order), and parse
//! errors carry a byte offset but no recovery.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape `s` for inclusion inside a JSON string literal (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    /// Key → value, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Group an array of objects by the value of string-or-number field
    /// `key` (useful for splitting trace events into per-track streams).
    pub fn group_by_field(&self, key: &str) -> BTreeMap<String, Vec<&JsonValue>> {
        let mut groups: BTreeMap<String, Vec<&JsonValue>> = BTreeMap::new();
        if let Some(items) = self.as_arr() {
            for item in items {
                let bucket = match item.get(key) {
                    Some(JsonValue::Str(s)) => s.clone(),
                    Some(JsonValue::Num(n)) => format!("{n}"),
                    _ => continue,
                };
                groups.entry(bucket).or_default().push(item);
            }
        }
        groups
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected {lit} at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("bad \\u{code:04x} escape"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn parse_roundtrips_a_trace_shaped_document() {
        let text = r#"{
            "displayTimeUnit": "ns",
            "otherData": {"recorded": 12, "dropped": 0},
            "traceEvents": [
                {"name": "fence \"si\"", "ph": "X", "ts": 10, "dur": 5, "pid": 0, "tid": 1},
                {"name": "p_to_s", "ph": "i", "ts": 1.5, "pid": 0, "tid": 2, "s": "t"}
            ]
        }"#;
        let doc = JsonValue::parse(text).unwrap();
        assert_eq!(doc.get("displayTimeUnit").unwrap().as_str(), Some("ns"));
        assert_eq!(
            doc.get("otherData").unwrap().get("dropped").unwrap().as_u64(),
            Some(0)
        );
        let events = doc.get("traceEvents").unwrap();
        assert_eq!(events.as_arr().unwrap().len(), 2);
        assert_eq!(
            events.as_arr().unwrap()[0].get("name").unwrap().as_str(),
            Some("fence \"si\"")
        );
        assert_eq!(
            events.as_arr().unwrap()[1].get("ts").unwrap().as_f64(),
            Some(1.5)
        );
        let tracks = events.group_by_field("tid");
        assert_eq!(tracks.len(), 2);
    }

    #[test]
    fn parse_rejects_trailing_garbage_and_bad_escapes() {
        assert!(JsonValue::parse("{} extra").is_err());
        assert!(JsonValue::parse("\"\\q\"").is_err());
        assert!(JsonValue::parse("[1,").is_err());
        assert!(JsonValue::parse("").is_err());
    }

    #[test]
    fn numbers_parse_with_sign_exponent_and_u64_guard() {
        let v = JsonValue::parse("[-2.5e3, 42, 0.5]").unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items[0].as_f64(), Some(-2500.0));
        assert_eq!(items[1].as_u64(), Some(42));
        assert_eq!(items[2].as_u64(), None);
    }
}
