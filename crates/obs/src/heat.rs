//! [`PageHeat`]: one relaxed counter per page, fed by the read-miss path
//! and read back by the census's top-K hottest-pages report.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-page miss counters for the whole global address space.
#[derive(Debug)]
pub struct PageHeat {
    counts: Box<[AtomicU64]>,
}

impl PageHeat {
    pub fn new(pages: usize) -> Self {
        PageHeat {
            counts: (0..pages).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub fn pages(&self) -> usize {
        self.counts.len()
    }

    /// Bump page `idx` by one. Out-of-range indices are ignored rather
    /// than panicking a protocol path.
    #[inline]
    pub fn bump(&self, idx: usize) {
        if let Some(c) = self.counts.get(idx) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn get(&self, idx: usize) -> u64 {
        self.counts
            .get(idx)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The `k` hottest pages as `(page, misses)`, hottest first; ties break
    /// toward the lower page number so output is deterministic.
    pub fn top_k(&self, k: usize) -> Vec<(usize, u64)> {
        let mut hot: Vec<(usize, u64)> = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.load(Ordering::Relaxed)))
            .filter(|&(_, n)| n > 0)
            .collect();
        hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hot.truncate(k);
        hot
    }

    pub fn reset(&self) {
        for c in self.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_is_sorted_and_deterministic() {
        let heat = PageHeat::new(8);
        for _ in 0..3 {
            heat.bump(5);
        }
        for _ in 0..3 {
            heat.bump(2);
        }
        heat.bump(7);
        heat.bump(100); // out of range: ignored
        assert_eq!(heat.total(), 7);
        assert_eq!(heat.get(100), 0);
        assert_eq!(heat.top_k(2), vec![(2, 3), (5, 3)]);
        assert_eq!(heat.top_k(10), vec![(2, 3), (5, 3), (7, 1)]);
        heat.reset();
        assert!(heat.top_k(10).is_empty());
    }
}
