//! [`MetricsSnapshot`]: a point-in-time, schema-free metrics exposition.
//!
//! The DSM fills one of these from its lock-free counters (coherence
//! stats, network stats, site histograms, recorder drop counters, page
//! heat) at any moment mid-run — every source is relaxed-atomic, so
//! snapshotting never blocks a protocol thread — and the snapshot renders
//! itself two ways: Prometheus text exposition format (for scraping) and
//! the in-tree JSON (for programmatic polling). Units follow the
//! observability clock: virtual cycles under the simulator, wall
//! nanoseconds under the native transport.

use crate::hist::HistogramSnapshot;
use crate::json::escape;

#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    /// count/mean plus the standard tail quantiles, from a
    /// [`HistogramSnapshot`].
    Summary {
        count: u64,
        mean: f64,
        p50: u64,
        p90: u64,
        p99: u64,
    },
}

#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Prometheus-style metric name (`argo_` prefix by convention).
    pub name: String,
    /// Label pairs, already in render order.
    pub labels: Vec<(String, String)>,
    pub value: MetricValue,
}

/// An append-only bag of metrics with deterministic render order (the
/// order the producer added them).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub metrics: Vec<Metric>,
}

impl MetricsSnapshot {
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.push(name, labels, MetricValue::Counter(value));
    }

    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.push(name, labels, MetricValue::Gauge(value));
    }

    pub fn summary(&mut self, name: &str, labels: &[(&str, &str)], h: &HistogramSnapshot) {
        self.push(
            name,
            labels,
            MetricValue::Summary {
                count: h.count(),
                mean: h.mean(),
                p50: h.percentile(50.0),
                p90: h.percentile(90.0),
                p99: h.percentile(99.0),
            },
        );
    }

    fn push(&mut self, name: &str, labels: &[(&str, &str)], value: MetricValue) {
        self.metrics.push(Metric {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        });
    }

    fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
        let mut parts: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        if let Some((k, v)) = extra {
            parts.push(format!("{k}=\"{v}\""));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    }

    /// Prometheus text exposition format, version 0.0.4. Summaries render
    /// as the conventional `_count`/`_mean` companions plus `quantile`
    /// series.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(self.metrics.len() * 64);
        for m in &self.metrics {
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        m.name,
                        Self::label_block(&m.labels, None)
                    ));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        m.name,
                        Self::label_block(&m.labels, None)
                    ));
                }
                MetricValue::Summary { count, mean, p50, p90, p99 } => {
                    let base = &m.name;
                    out.push_str(&format!(
                        "{base}_count{} {count}\n",
                        Self::label_block(&m.labels, None)
                    ));
                    out.push_str(&format!(
                        "{base}_mean{} {mean}\n",
                        Self::label_block(&m.labels, None)
                    ));
                    for (q, v) in [("0.5", p50), ("0.9", p90), ("0.99", p99)] {
                        out.push_str(&format!(
                            "{base}{} {v}\n",
                            Self::label_block(&m.labels, Some(("quantile", q)))
                        ));
                    }
                }
            }
        }
        out
    }

    /// JSON rendering: an array of `{name, labels, ...value}` objects that
    /// [`crate::json::JsonValue::parse`] round-trips.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":\"");
            out.push_str(&escape(&m.name));
            out.push_str("\",\"labels\":{");
            for (j, (k, v)) in m.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", escape(k), escape(v)));
            }
            out.push_str("},");
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("\"type\":\"counter\",\"value\":{v}}}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("\"type\":\"gauge\",\"value\":{v}}}"));
                }
                MetricValue::Summary { count, mean, p50, p90, p99 } => {
                    out.push_str(&format!(
                        "\"type\":\"summary\",\"count\":{count},\"mean\":{mean},\
                         \"p50\":{p50},\"p90\":{p90},\"p99\":{p99}}}"
                    ));
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::json::JsonValue;

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        s.counter("argo_read_misses_total", &[("node", "0")], 42);
        s.gauge("argo_recorder_enabled", &[], 1.0);
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        s.summary("argo_site_latency", &[("site", "read_miss")], &h.snapshot());
        s
    }

    #[test]
    fn prometheus_text_has_all_series() {
        let text = sample().to_prometheus();
        assert!(text.contains("argo_read_misses_total{node=\"0\"} 42"));
        assert!(text.contains("argo_recorder_enabled 1"));
        assert!(text.contains("argo_site_latency_count{site=\"read_miss\"} 5"));
        assert!(text.contains("quantile=\"0.99\""));
        // Every line is `name{labels} value` — no blank or malformed rows.
        for line in text.lines() {
            assert!(line.split_whitespace().count() == 2, "bad line: {line}");
        }
    }

    #[test]
    fn json_round_trips() {
        let s = sample();
        let v = JsonValue::parse(&s.to_json()).expect("valid JSON");
        let arr = v.get("metrics").and_then(|m| m.as_arr()).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(
            arr[0].get("name").and_then(|n| n.as_str()),
            Some("argo_read_misses_total")
        );
        assert_eq!(arr[0].get("value").and_then(|n| n.as_u64()), Some(42));
        assert_eq!(arr[2].get("type").and_then(|n| n.as_str()), Some("summary"));
        assert_eq!(arr[2].get("count").and_then(|n| n.as_u64()), Some(5));
    }
}
