//! # obs — Argoscope, the observability layer
//!
//! Every performance argument this repository makes — SI keeps vs
//! invalidations, writebacks vs buffer size, HQDL delegation batching — is
//! read off distributions and attributions, not cluster totals. This crate
//! is the shared substrate those measurements report through:
//!
//! - [`hist`] — lock-free per-node log2-bucketed latency [`Histogram`]s.
//!   Recording is two relaxed atomic adds; merging, percentiles, and a
//!   compact text rendering happen on plain snapshots after the fact.
//! - [`profile`] — [`LatencyProfile`], the fixed set of protocol hot-path
//!   [`Site`]s (read-miss service, write faults, fences, barrier waits,
//!   lock acquires) with one histogram per site per node. The read/write
//!   *hit* paths contain no recording code at all.
//! - [`lock_stats`] — [`LockObs`], per-lock HQDL delegation statistics
//!   (remote vs local execution, queue wait, batch sizes, handovers) and
//!   the [`LockRegistry`] a run report collects them from.
//! - [`heat`] — [`PageHeat`], per-page miss counters feeding the census's
//!   top-K hottest pages.
//! - [`json`] — the tiny JSON writer/parser used by the Perfetto trace
//!   emitter, `RunReport::to_json()`, and the golden tests (no external
//!   dependencies are available in this build environment).
//! - [`span`] — [`SpanId`], the causal handle minted at every protocol
//!   site and threaded through the verb layer's issue/poll/retry halves.
//! - [`lyra`] — the always-on [`FlightRecorder`]: per-node lock-free rings
//!   of fixed-size [`VerbRecord`]s with counted loss, tail-latency ring
//!   captures, and a flow-arrow Perfetto export. Compiled to a no-op by
//!   the `recorder-off` feature.
//! - [`metrics`] — [`MetricsSnapshot`], a live Prometheus-text + JSON
//!   metrics exposition pollable mid-run on both backends.
//!
//! Units are deliberately the caller's problem: histograms store whatever
//! the backend's observability clock counts — virtual cycles under the
//! simulator, wall nanoseconds under the native transport — and snapshots
//! carry the numbers through unchanged.

pub mod heat;
pub mod hist;
pub mod json;
pub mod lock_stats;
pub mod lyra;
pub mod metrics;
pub mod profile;
pub mod span;

pub use heat::PageHeat;
pub use hist::{Histogram, HistogramSnapshot, BUCKETS};
pub use json::JsonValue;
pub use lock_stats::{LockObs, LockObsSnapshot, LockRegistry};
pub use lyra::{
    Fate, FlightRecorder, Lane, RecordKind, RecorderStats, TailCapture, VerbRecord, NO_CLASS,
    NO_SITE, NO_TARGET,
};
pub use metrics::{Metric, MetricValue, MetricsSnapshot};
pub use profile::{LatencyProfile, ProfileSnapshot, Site};
pub use span::{SpanId, SpanMinter};
