//! Lock-free log2-bucketed latency histograms.
//!
//! A [`Histogram`] is 65 relaxed counters (one per power-of-two magnitude
//! of a `u64`, plus a zero bucket) and a running sum. [`Histogram::record`]
//! is exactly two relaxed `fetch_add`s — cheap enough for protocol slow
//! paths (miss service, fences), and never present on hit paths at all.
//! Everything with actual arithmetic — [`merge`](HistogramSnapshot::merge),
//! [`percentile`](HistogramSnapshot::percentile), rendering — operates on
//! plain [`HistogramSnapshot`]s taken after the threads of interest joined.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: bucket 0 holds the value 0; bucket `k` (1..=64) holds
/// values in `[2^(k-1), 2^k - 1]`.
pub const BUCKETS: usize = 65;

/// Upper edge of bucket `k` — the value [`HistogramSnapshot::percentile`]
/// reports for samples that landed there.
#[inline]
pub fn bucket_upper_edge(k: usize) -> u64 {
    match k {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << k) - 1,
    }
}

/// The bucket a value lands in.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// A concurrently-recordable log2 histogram.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample: two relaxed atomic adds, nothing else.
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total samples recorded so far (relaxed; exact after joins).
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Plain-data snapshot of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub counts: [u64; BUCKETS],
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Fold another snapshot into this one (per-node shards → cluster
    /// totals, or cross-run aggregation).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.sum += other.sum;
    }

    /// The `p`-th percentile (`0.0..=100.0`), reported as the **upper edge**
    /// of the bucket holding the sample of that rank — i.e. exact to log2
    /// resolution: the true sample `v` satisfies `v <= percentile(p) < 2v`
    /// (for `v > 0`). Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        // Rank of the p-th percentile sample, 1-based, nearest-rank method.
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
        let rank = rank.min(n);
        let mut seen = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_edge(k);
            }
        }
        bucket_upper_edge(BUCKETS - 1)
    }

    /// Upper edge of the highest non-empty bucket (log2-resolution max).
    pub fn max_edge(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(bucket_upper_edge)
            .unwrap_or(0)
    }

    /// Compact one-line text rendering: count, mean, key percentiles.
    pub fn render(&self) -> String {
        if self.is_empty() {
            return "n=0".to_string();
        }
        format!(
            "n={:<8} mean={:<10.0} p50={:<8} p90={:<8} p99={:<10} max<={}",
            self.count(),
            self.mean(),
            self.percentile(50.0),
            self.percentile(90.0),
            self.percentile(99.0),
            self.max_edge()
        )
    }

    /// Multi-line bar rendering of the non-empty bucket range.
    pub fn render_bars(&self) -> String {
        let total = self.count();
        if total == 0 {
            return "  (empty)\n".to_string();
        }
        let lo = self.counts.iter().position(|&c| c > 0).unwrap_or(0);
        let hi = self.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        let peak = *self.counts[lo..=hi].iter().max().unwrap_or(&1);
        let mut s = String::new();
        for k in lo..=hi {
            let c = self.counts[k];
            let bar = "#".repeat(((c * 40) / peak.max(1)) as usize);
            s.push_str(&format!(
                "  <=2^{:<2} {:>10}  {}\n",
                if k == 0 { 0 } else { k },
                c,
                bar
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for k in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_upper_edge(k)), k, "upper edge of {k}");
        }
    }

    #[test]
    fn record_and_snapshot_roundtrip() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum, 1011);
        assert_eq!(s.counts[0], 1);
        assert_eq!(s.counts[bucket_of(5)], 2);
        h.reset();
        assert!(h.snapshot().is_empty());
    }

    #[test]
    fn empty_histogram_is_calm() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.percentile(50.0), 0);
        assert_eq!(s.max_edge(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.render(), "n=0");
    }

    // `merge` + `percentile` agree with a sorted-vector oracle: the
    // reported percentile is exactly the upper edge of the bucket that the
    // oracle's nearest-rank sample lands in.
    proptest! {
        fn percentile_matches_sorted_oracle(
            a in proptest::collection::vec(any::<u64>(), 1..200),
            b in proptest::collection::vec(any::<u64>(), 0..200),
        ) {
            let ha = Histogram::new();
            let hb = Histogram::new();
            for &v in &a { ha.record(v >> 32); }
            for &v in &b { hb.record(v >> 32); }
            let mut merged = ha.snapshot();
            merged.merge(&hb.snapshot());

            let mut oracle: Vec<u64> =
                a.iter().chain(b.iter()).map(|&v| v >> 32).collect();
            oracle.sort_unstable();
            prop_assert_eq!(merged.count(), oracle.len() as u64);
            prop_assert_eq!(merged.sum, oracle.iter().sum::<u64>());
            for p in [0.0f64, 10.0, 50.0, 90.0, 99.0, 100.0] {
                let rank = ((p / 100.0) * oracle.len() as f64).ceil().max(1.0) as usize;
                let sample = oracle[rank.min(oracle.len()) - 1];
                prop_assert_eq!(
                    merged.percentile(p),
                    bucket_upper_edge(bucket_of(sample))
                );
            }
            prop_assert_eq!(
                merged.max_edge(),
                bucket_upper_edge(bucket_of(*oracle.last().unwrap()))
            );
        }
    }

    /// Parallel recording loses no counts and no sum.
    #[test]
    fn concurrent_recording_is_exact() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads = 8;
        let per = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        h.record(t * 1_000_000 + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count(), threads * per);
        let expect: u64 = (0..threads)
            .map(|t| (0..per).map(|i| t * 1_000_000 + i).sum::<u64>())
            .sum();
        assert_eq!(s.sum, expect);
    }
}
