//! [`LatencyProfile`]: the fixed set of protocol hot-path sites, one
//! [`Histogram`] per site per node.
//!
//! Per-node shards are cache-line-aligned so concurrent recording from
//! different nodes never false-shares; recording at a site is exactly the
//! two relaxed adds of [`Histogram::record`]. The read/write *hit* paths
//! never call into this module — only misses, faults, fences, barriers and
//! lock acquires do.

use crate::hist::{Histogram, HistogramSnapshot};

/// The instrumented protocol sites. Order is stable and indexes both
/// [`LatencyProfile`] shards and [`ProfileSnapshot::sites`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// Read-miss service: fault trap through page fetch + classification.
    ReadMiss,
    /// Write fault: twin creation + directory registration.
    WriteFault,
    /// Self-downgrade fence: write-buffer drain (diffs + writebacks).
    SdFence,
    /// Self-invalidation fence: resident-page sweep.
    SiFence,
    /// Full barrier wait (SD + global rendezvous + SI).
    BarrierWait,
    /// Global lock acquire (CAS loop + transfer latency).
    LockAcquire,
    /// A verb retry episode: total backoff charged before the verb finally
    /// succeeded (or the budget exhausted). Empty unless the fabric injects
    /// faults.
    Retry,
    /// The issue→poll window of an overlapped verb group (read-miss line
    /// fills, fence drain batches): time between posting the first verb of
    /// the group and completing the last poll.
    IssueToPoll,
}

impl Site {
    /// All sites, in index order.
    pub const ALL: [Site; 8] = [
        Site::ReadMiss,
        Site::WriteFault,
        Site::SdFence,
        Site::SiFence,
        Site::BarrierWait,
        Site::LockAcquire,
        Site::Retry,
        Site::IssueToPoll,
    ];

    pub const COUNT: usize = Self::ALL.len();

    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in text renderings and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            Site::ReadMiss => "read_miss",
            Site::WriteFault => "write_fault",
            Site::SdFence => "sd_fence",
            Site::SiFence => "si_fence",
            Site::BarrierWait => "barrier_wait",
            Site::LockAcquire => "lock_acquire",
            Site::Retry => "retry",
            Site::IssueToPoll => "issue_to_poll",
        }
    }
}

/// One node's worth of site histograms, padded to its own cache lines.
#[repr(align(128))]
#[derive(Debug)]
struct NodeShard {
    sites: [Histogram; Site::COUNT],
}

impl NodeShard {
    fn new() -> Self {
        NodeShard {
            sites: std::array::from_fn(|_| Histogram::new()),
        }
    }
}

/// Per-node latency histograms for every [`Site`].
#[derive(Debug)]
pub struct LatencyProfile {
    shards: Vec<NodeShard>,
}

impl LatencyProfile {
    pub fn new(nodes: usize) -> Self {
        LatencyProfile {
            shards: (0..nodes).map(|_| NodeShard::new()).collect(),
        }
    }

    pub fn nodes(&self) -> usize {
        self.shards.len()
    }

    /// Record one latency sample at `site` from `node`. Two relaxed adds.
    #[inline]
    pub fn record(&self, node: usize, site: Site, value: u64) {
        self.shards[node].sites[site.index()].record(value);
    }

    /// Cluster-wide snapshot: all node shards merged per site.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let mut sites: [HistogramSnapshot; Site::COUNT] =
            std::array::from_fn(|_| HistogramSnapshot::default());
        for shard in &self.shards {
            for (acc, h) in sites.iter_mut().zip(shard.sites.iter()) {
                acc.merge(&h.snapshot());
            }
        }
        ProfileSnapshot { sites }
    }

    /// Snapshot of a single node's shard.
    pub fn node_snapshot(&self, node: usize) -> ProfileSnapshot {
        ProfileSnapshot {
            sites: std::array::from_fn(|i| self.shards[node].sites[i].snapshot()),
        }
    }

    /// Zero every histogram (used when a run resets stats at the start of
    /// the measured parallel section).
    pub fn reset(&self) {
        for shard in &self.shards {
            for h in &shard.sites {
                h.reset();
            }
        }
    }
}

/// Plain-data snapshot of a [`LatencyProfile`], merged or per node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSnapshot {
    pub sites: [HistogramSnapshot; Site::COUNT],
}

impl Default for ProfileSnapshot {
    fn default() -> Self {
        ProfileSnapshot {
            sites: std::array::from_fn(|_| HistogramSnapshot::default()),
        }
    }
}

impl ProfileSnapshot {
    pub fn get(&self, site: Site) -> &HistogramSnapshot {
        &self.sites[site.index()]
    }

    pub fn merge(&mut self, other: &ProfileSnapshot) {
        for (a, b) in self.sites.iter_mut().zip(other.sites.iter()) {
            a.merge(b);
        }
    }

    /// Total samples across all sites.
    pub fn total_samples(&self) -> u64 {
        self.sites.iter().map(|s| s.count()).sum()
    }

    /// One line per non-empty site: name + compact histogram rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for site in Site::ALL {
            let h = self.get(site);
            if h.is_empty() {
                continue;
            }
            out.push_str(&format!("  {:<12} {}\n", site.name(), h.render()));
        }
        if out.is_empty() {
            out.push_str("  (no samples)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_indices_are_dense_and_stable() {
        for (i, site) in Site::ALL.iter().enumerate() {
            assert_eq!(site.index(), i);
        }
        assert_eq!(Site::COUNT, 8);
    }

    #[test]
    fn per_node_recording_merges_into_cluster_snapshot() {
        let p = LatencyProfile::new(3);
        p.record(0, Site::ReadMiss, 100);
        p.record(1, Site::ReadMiss, 200);
        p.record(2, Site::LockAcquire, 50);
        let merged = p.snapshot();
        assert_eq!(merged.get(Site::ReadMiss).count(), 2);
        assert_eq!(merged.get(Site::ReadMiss).sum, 300);
        assert_eq!(merged.get(Site::LockAcquire).count(), 1);
        assert_eq!(merged.get(Site::WriteFault).count(), 0);
        assert_eq!(merged.total_samples(), 3);

        let n0 = p.node_snapshot(0);
        assert_eq!(n0.get(Site::ReadMiss).count(), 1);
        assert_eq!(n0.get(Site::LockAcquire).count(), 0);

        p.reset();
        assert_eq!(p.snapshot().total_samples(), 0);
    }

    #[test]
    fn render_names_only_nonempty_sites() {
        let p = LatencyProfile::new(1);
        p.record(0, Site::BarrierWait, 7);
        let text = p.snapshot().render();
        assert!(text.contains("barrier_wait"));
        assert!(!text.contains("read_miss"));
    }
}
