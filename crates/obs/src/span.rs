//! [`SpanId`]: the causal handle Lyra threads through the verb layer.
//!
//! A span names one *protocol operation* — a read-miss service, a write
//! fault, a fence drain, a lock acquire — and every verb issued on its
//! behalf (including retries and injected fault fates) carries it. Ids are
//! minted from per-node relaxed counters (or, on the hot path, from an
//! endpoint's single-writer [`crate::Lane`], which needs no atomics at
//! all), and never synchronize anything: span ids flow only into
//! observability records, never back into protocol or timing decisions,
//! which is what keeps the simulator's determinism pin safe with tracing
//! on.
//!
//! Layout: the top 16 bits are the minting node, the low 48 bits a
//! per-node sequence starting at 1. Lane-minted spans additionally carry
//! a nonzero lane tag in bits 32..48 (see `Lane::mint`), which keeps them
//! disjoint from this module's [`SpanMinter`] sequences until a node
//! mints 2^32 spans. `SpanId::NONE` (all zeros) means "no enclosing
//! operation" and is what unattributed verbs carry.

use std::sync::atomic::{AtomicU64, Ordering};

const NODE_SHIFT: u32 = 48;
const SEQ_MASK: u64 = (1 << NODE_SHIFT) - 1;

/// Compact identifier of one protocol operation. `Copy`, 8 bytes, and
/// totally ordered within a node (mint order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span: no enclosing operation.
    pub const NONE: SpanId = SpanId(0);

    /// Pack a (node, sequence) pair. `seq` must be nonzero for a real span.
    pub fn pack(node: usize, seq: u64) -> SpanId {
        SpanId(((node as u64) << NODE_SHIFT) | (seq & SEQ_MASK))
    }

    /// The node that minted this span.
    pub fn node(self) -> usize {
        (self.0 >> NODE_SHIFT) as usize
    }

    /// The per-node mint sequence (1-based; 0 only for [`SpanId::NONE`]).
    pub fn seq(self) -> u64 {
        self.0 & SEQ_MASK
    }

    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// Per-node span id mints. One relaxed `fetch_add` per span; no ordering,
/// no allocation, safe to call from any thread of the owning node.
#[derive(Debug)]
pub struct SpanMinter {
    next: Box<[AtomicU64]>,
}

impl SpanMinter {
    pub fn new(nodes: usize) -> Self {
        SpanMinter {
            next: (0..nodes.max(1)).map(|_| AtomicU64::new(1)).collect(),
        }
    }

    pub fn nodes(&self) -> usize {
        self.next.len()
    }

    /// Mint a fresh span for `node`. Out-of-range nodes fold into the last
    /// counter rather than panicking an observability path.
    #[inline]
    pub fn mint(&self, node: usize) -> SpanId {
        let idx = node.min(self.next.len() - 1);
        let seq = self.next[idx].fetch_add(1, Ordering::Relaxed);
        SpanId::pack(node, seq)
    }

    /// How many spans `node` has minted so far.
    pub fn minted(&self, node: usize) -> u64 {
        self.next
            .get(node)
            .map(|c| c.load(Ordering::Relaxed) - 1)
            .unwrap_or(0)
    }

    pub fn reset(&self) {
        for c in self.next.iter() {
            c.store(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips_node_and_seq() {
        let s = SpanId::pack(5, 1234);
        assert_eq!(s.node(), 5);
        assert_eq!(s.seq(), 1234);
        assert!(!s.is_none());
        assert!(SpanId::NONE.is_none());
    }

    #[test]
    fn minter_is_per_node_and_monotonic() {
        let m = SpanMinter::new(3);
        let a = m.mint(0);
        let b = m.mint(0);
        let c = m.mint(2);
        assert_eq!(a.seq(), 1);
        assert_eq!(b.seq(), 2);
        assert!(b > a);
        assert_eq!(c.node(), 2);
        assert_eq!(c.seq(), 1);
        assert_eq!(m.minted(0), 2);
        assert_eq!(m.minted(1), 0);
        m.reset();
        assert_eq!(m.mint(0).seq(), 1);
    }
}
