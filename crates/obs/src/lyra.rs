//! Lyra: the always-on flight recorder.
//!
//! Per-node lock-free rings of fixed-size [`VerbRecord`]s capturing the
//! last N protocol operations — verb issues/polls, retries, injected fault
//! fates, coherence mode switches, lease expiries — each stamped with the
//! [`SpanId`] of the protocol site it served. Two ring flavors share one
//! node timeline:
//!
//! - **Lanes** ([`Lane`]) are *single-writer* rings handed to endpoints:
//!   the hot path is a plain head bump plus seqlock stores — **zero
//!   read-modify-write instructions** — because exclusive ownership (the
//!   `&mut` receiver) makes the claim protocol unnecessary. All protocol
//!   sites record through their endpoint's lane.
//! - The **shared ring** is the multi-writer fallback (one `fetch_add`
//!   ticket + a claim CAS behind a per-slot seqlock) for writers without
//!   an endpoint in hand: fault injectors, blocking-path retry summaries,
//!   tests driving [`FlightRecorder::record`] directly.
//!
//! Both allocate nothing per record and are closure-gated no-ops when
//! disabled: the timestamp/record closure is never invoked, so the
//! observability clock is never read. Loss is bounded and *counted*: every
//! submitted record is either resident in a ring, or accounted as dropped
//! (evicted by a later lap, or abandoned after being lapped mid-claim) —
//! `kept + dropped == submitted` holds at quiescence, and the proptests
//! pin it. Snapshots, tail captures, and the chrome-trace export merge a
//! node's shared ring and all its lanes into one timeline ordered by
//! record start time.
//!
//! The recorder is purely passive: it reads the observability clock the
//! caller hands it and writes side tables nobody on the protocol path ever
//! reads back, which is why the simulator's determinism probes stay
//! bit-identical with it enabled.
//!
//! Compile-out: building `obs` with the `recorder-off` feature turns
//! [`FlightRecorder::record`] and friends into empty inline bodies.

use crate::json::escape;
use crate::profile::Site;
use crate::span::{SpanId, SpanMinter};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// `target` value meaning "no remote node involved".
pub const NO_TARGET: u32 = u32::MAX;
/// `site` value meaning "not attributed to a profile site".
pub const NO_SITE: u8 = 0xFF;
/// `class` value meaning "no verb class".
pub const NO_CLASS: u8 = 0xFF;

/// What a [`VerbRecord`] describes. Stable `u8` encoding — new kinds
/// append only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RecordKind {
    /// A completed protocol site (read-miss, fence, lock acquire...):
    /// `site` names it, `dur` is its full latency.
    Site = 0,
    /// A verb posted to the fabric: `target` is the home, `arg` the bytes.
    VerbIssue = 1,
    /// A verb completion observed at poll/wait: `dur` is issue→poll.
    VerbPoll = 2,
    /// A reissue after a failed attempt: `attempt` is the new attempt
    /// index, `fate` the error that triggered it, `arg` the backoff paid.
    VerbRetry = 3,
    /// A retry budget ran dry: `attempt` is the attempt count, `fate` the
    /// final error.
    VerbExhausted = 4,
    /// Puppis decided a fate for an issued verb: `fate` says which.
    FaultInjected = 5,
    /// Pyxis moved pages between lease and SI/SD modes at a fence
    /// boundary: `arg` is how many switched, `site` the fence site.
    ModeSwitch = 6,
    /// Tardis/Pyxis lease expiries noticed at an SI fence: `arg` is the
    /// count.
    LeaseExpiry = 7,
    /// Volans advanced the membership epoch: `arg` is the new epoch,
    /// `target` the node whose departure (or join) caused it. Recorded
    /// under the span of the exhausted verb that triggered the declaration,
    /// so Perfetto draws a flow arrow from the failure to the failover.
    EpochBump = 8,
    /// Volans re-homed a departed node's pages: `arg` is how many pages
    /// moved, `target` the departed node.
    Rehome = 9,
}

impl RecordKind {
    pub fn from_u8(v: u8) -> RecordKind {
        match v {
            1 => RecordKind::VerbIssue,
            2 => RecordKind::VerbPoll,
            3 => RecordKind::VerbRetry,
            4 => RecordKind::VerbExhausted,
            5 => RecordKind::FaultInjected,
            6 => RecordKind::ModeSwitch,
            7 => RecordKind::LeaseExpiry,
            8 => RecordKind::EpochBump,
            9 => RecordKind::Rehome,
            _ => RecordKind::Site,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            RecordKind::Site => "site",
            RecordKind::VerbIssue => "verb_issue",
            RecordKind::VerbPoll => "verb_poll",
            RecordKind::VerbRetry => "verb_retry",
            RecordKind::VerbExhausted => "verb_exhausted",
            RecordKind::FaultInjected => "fault_injected",
            RecordKind::ModeSwitch => "mode_switch",
            RecordKind::LeaseExpiry => "lease_expiry",
            RecordKind::EpochBump => "epoch_bump",
            RecordKind::Rehome => "rehome",
        }
    }
}

/// How a verb (or attempt) ended up. Mirrors `rma::VerbError`'s vocabulary
/// plus the injector's duplicate/spike outcomes, without depending on
/// `rma` (the dependency points the other way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Fate {
    Ok = 0,
    Timeout = 1,
    NicStall = 2,
    Dropped = 3,
    Cancelled = 4,
    Duplicate = 5,
    Spike = 6,
    Exhausted = 7,
    /// The target left the membership view before the verb was issued
    /// (Volans fail-fast).
    Departed = 8,
}

impl Fate {
    pub fn from_u8(v: u8) -> Fate {
        match v {
            1 => Fate::Timeout,
            2 => Fate::NicStall,
            3 => Fate::Dropped,
            4 => Fate::Cancelled,
            5 => Fate::Duplicate,
            6 => Fate::Spike,
            7 => Fate::Exhausted,
            8 => Fate::Departed,
            _ => Fate::Ok,
        }
    }

    /// Map `rma::VerbError::name()` strings (the rma crate calls this so
    /// the two vocabularies can never skew silently).
    pub fn from_error_name(name: &str) -> Fate {
        match name {
            "timeout" => Fate::Timeout,
            "nic_stall" => Fate::NicStall,
            "dropped" => Fate::Dropped,
            "cancelled" => Fate::Cancelled,
            "departed" => Fate::Departed,
            _ => Fate::Ok,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Fate::Ok => "ok",
            Fate::Timeout => "timeout",
            Fate::NicStall => "nic_stall",
            Fate::Dropped => "dropped",
            Fate::Cancelled => "cancelled",
            Fate::Duplicate => "duplicate",
            Fate::Spike => "spike",
            Fate::Exhausted => "exhausted",
            Fate::Departed => "departed",
        }
    }
}

/// One fixed-size flight-recorder entry: 48 bytes, `Copy`, no pointers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerbRecord {
    /// The protocol operation this record belongs to ([`SpanId::NONE`] if
    /// unattributed).
    pub span: SpanId,
    /// Observability-clock timestamp (virtual cycles on the simulator,
    /// wall nanoseconds on the native backend).
    pub start: u64,
    /// Duration in the same units; 0 for instantaneous events.
    pub dur: u64,
    /// Kind-specific payload: bytes, backoff cycles, switch counts, page.
    pub arg: u64,
    /// Remote node involved, or [`NO_TARGET`].
    pub target: u32,
    /// The recording node.
    pub node: u16,
    /// Attempt index within the span's retry sequence (0 = first try).
    pub attempt: u16,
    pub kind: RecordKind,
    /// [`Site`] index, or [`NO_SITE`].
    pub site: u8,
    pub fate: Fate,
    /// `rma::VerbClass` index, or [`NO_CLASS`].
    pub class: u8,
}

impl VerbRecord {
    /// A blank record callers fill in with struct-update syntax.
    pub fn blank() -> VerbRecord {
        VerbRecord {
            span: SpanId::NONE,
            start: 0,
            dur: 0,
            arg: 0,
            target: NO_TARGET,
            node: 0,
            attempt: 0,
            kind: RecordKind::Site,
            site: NO_SITE,
            fate: Fate::Ok,
            class: NO_CLASS,
        }
    }

    pub const WORDS: usize = 6;

    #[cfg_attr(feature = "recorder-off", allow(dead_code))]
    #[inline]
    fn encode(&self) -> [u64; Self::WORDS] {
        [
            self.span.0,
            self.start,
            self.dur,
            self.arg,
            (self.target as u64)
                | ((self.node as u64) << 32)
                | ((self.attempt as u64) << 48),
            (self.kind as u64)
                | ((self.site as u64) << 8)
                | ((self.fate as u64) << 16)
                | ((self.class as u64) << 24),
        ]
    }

    #[inline]
    fn decode(w: [u64; Self::WORDS]) -> VerbRecord {
        VerbRecord {
            span: SpanId(w[0]),
            start: w[1],
            dur: w[2],
            arg: w[3],
            target: w[4] as u32,
            node: (w[4] >> 32) as u16,
            attempt: (w[4] >> 48) as u16,
            kind: RecordKind::from_u8(w[5] as u8),
            site: (w[5] >> 8) as u8,
            fate: Fate::from_u8((w[5] >> 16) as u8),
            class: (w[5] >> 24) as u8,
        }
    }

    /// The profile site this record is attributed to, if any.
    pub fn site_enum(&self) -> Option<Site> {
        Site::ALL.get(self.site as usize).copied()
    }
}

/// One ring slot: a seqlock over the six payload words. The sequence
/// encodes the owning ticket — `2t+1` while ticket `t`'s writer is
/// mid-record, `2t+2` once published, `0` never written — so readers can
/// both detect tears and recover the chronological order.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; VerbRecord::WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// One node's ring. `push` is lock-free: writers race only when the ring
/// laps itself, and then the *newest* ticket wins the slot while older
/// in-flight writers abandon (counted as drops).
struct NodeRing {
    head: AtomicU64,
    #[cfg_attr(feature = "recorder-off", allow(dead_code))]
    mask: usize,
    slots: Box<[Slot]>,
}

impl NodeRing {
    fn new(capacity: usize) -> NodeRing {
        let cap = capacity.next_power_of_two().max(8);
        NodeRing {
            head: AtomicU64::new(0),
            mask: cap - 1,
            slots: (0..cap).map(|_| Slot::new()).collect(),
        }
    }

    #[cfg_attr(feature = "recorder-off", allow(dead_code))]
    fn push(&self, rec: &VerbRecord, dropped: &AtomicU64) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize) & self.mask];
        let claim = 2 * ticket + 1;
        loop {
            let s = slot.seq.load(Ordering::Acquire);
            if s > claim {
                // A later lap already owns (or published into) this slot;
                // our record is the stale one. Never write — just account.
                dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if s.is_multiple_of(2) {
                // Previous occupant fully published (or slot untouched):
                // claim it. Claiming over a published record evicts it.
                if slot
                    .seq
                    .compare_exchange_weak(s, claim, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    if s != 0 {
                        dropped.fetch_add(1, Ordering::Relaxed);
                    }
                    break;
                }
            } else {
                // An older-lap writer is mid-record; it will publish in a
                // handful of stores. Newer writers wait so no two writers
                // ever store payload words concurrently (no torn records).
                std::hint::spin_loop();
            }
        }
        for (w, v) in slot.words.iter().zip(rec.encode()) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(claim + 1, Ordering::Release);
    }

    /// All published records with their tickets. Slots mid-write are
    /// skipped (they will be counted as kept or dropped once their writer
    /// lands).
    fn snapshot(&self) -> Vec<(u64, VerbRecord)> {
        snapshot_slots(&self.slots)
    }

    fn kept(&self) -> u64 {
        kept_slots(&self.slots)
    }

    fn reset(&self) {
        // Not concurrency-safe against in-flight writers; callers reset
        // only between parallel sections, like the rest of the stats.
        self.head.store(0, Ordering::Relaxed);
        for slot in self.slots.iter() {
            slot.seq.store(0, Ordering::Relaxed);
        }
    }
}

/// Seqlock-validated read of every published slot, with its ticket.
fn snapshot_slots(slots: &[Slot]) -> Vec<(u64, VerbRecord)> {
    let mut out: Vec<(u64, VerbRecord)> = Vec::with_capacity(slots.len());
    for slot in slots.iter() {
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 % 2 != 0 {
            continue;
        }
        let words = std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
        std::sync::atomic::fence(Ordering::Acquire);
        let s2 = slot.seq.load(Ordering::Acquire);
        if s1 != s2 {
            continue; // torn: a writer landed mid-read
        }
        out.push(((s1 - 2) / 2, VerbRecord::decode(words)));
    }
    out.sort_by_key(|&(ticket, _)| ticket);
    out
}

fn kept_slots(slots: &[Slot]) -> u64 {
    slots
        .iter()
        .filter(|s| {
            let v = s.seq.load(Ordering::Acquire);
            v != 0 && v % 2 == 0
        })
        .count() as u64
}

/// One lane's ring: identical slot format to [`NodeRing`], but with a
/// **single writer** (the owning [`Lane`]), so `push` needs no ticket
/// `fetch_add` and no claim CAS — the entire hot path is plain stores.
/// Tickets are still encoded in the slot seqs so snapshots recover push
/// order, and `span_next` lives here (not on the handle) so span ids stay
/// unique when a recycled ring gets a new owner.
struct LaneRing {
    node: u32,
    /// Per-node registration index; tags lane-minted span ids.
    id: u32,
    /// Next ticket. Written only by the owner (plain load + store), read
    /// by snapshotters for the submitted count.
    head: AtomicU64,
    mask: usize,
    slots: Box<[Slot]>,
    /// Next span sequence (1-based). Owner-only writes, like `head`.
    span_next: AtomicU64,
}

impl LaneRing {
    fn new(node: u32, id: u32, capacity: usize) -> LaneRing {
        let cap = capacity.next_power_of_two().max(8);
        LaneRing {
            node,
            id,
            head: AtomicU64::new(0),
            mask: cap - 1,
            slots: (0..cap).map(|_| Slot::new()).collect(),
            span_next: AtomicU64::new(1),
        }
    }

    #[cfg_attr(feature = "recorder-off", allow(dead_code))]
    #[inline]
    fn push(&self, rec: &VerbRecord) {
        let ticket = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize) & self.mask];
        // Seqlock writer: mark the slot mid-write, store the payload,
        // publish. The release fence orders the odd marker before the
        // payload stores so a racing snapshot can never accept a slot it
        // saw us half-overwrite; the release store orders the payload
        // before publication.
        slot.seq.store(2 * ticket + 1, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Release);
        for (w, v) in slot.words.iter().zip(rec.encode()) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(2 * ticket + 2, Ordering::Release);
        self.head.store(ticket + 1, Ordering::Relaxed);
    }

    fn submitted(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records evicted by ring laps. With a single writer nothing is ever
    /// abandoned mid-claim, so eviction is the only loss.
    fn dropped(&self) -> u64 {
        self.submitted().saturating_sub(self.slots.len() as u64)
    }

    fn reset(&self) {
        self.head.store(0, Ordering::Relaxed);
        self.span_next.store(1, Ordering::Relaxed);
        for slot in self.slots.iter() {
            slot.seq.store(0, Ordering::Relaxed);
        }
    }
}

/// A node's registered lanes plus the free list recycling feeds.
#[derive(Default)]
struct LaneSet {
    all: Vec<Arc<LaneRing>>,
    free: Vec<Arc<LaneRing>>,
}

/// An exclusive single-writer recording handle onto one node's timeline.
///
/// Endpoints own one lane each (the `&mut` receivers enforce the single
/// writer), which is what lets [`Lane::record`] skip every atomic
/// read-modify-write the shared ring's multi-writer claim protocol needs:
/// recording is a handful of plain stores, and minting a span is a plain
/// increment. Records land in the same per-node timeline as
/// [`FlightRecorder::record`] — snapshots and exports merge all sources.
///
/// **Cloning registers a sibling lane** (two owners may never share one);
/// dropping returns the ring to the node's free list so short-lived
/// endpoints don't grow memory without bound — a recycled ring keeps its
/// records (it is the same node's history) and its span counter (ids stay
/// unique across owners).
pub struct Lane {
    fr: Arc<FlightRecorder>,
    ring: Arc<LaneRing>,
}

/// Bit position of the lane tag inside a lane-minted [`SpanId`]: node in
/// the top 16 bits, `lane + 1` in bits 32..48, sequence below. The +1
/// keeps lane-minted ids disjoint from [`SpanMinter`]'s (whose bits 32..48
/// are zero until a node mints 2^32 spans).
#[cfg_attr(feature = "recorder-off", allow(dead_code))]
const LANE_TAG_SHIFT: u32 = 32;

impl Lane {
    /// The node this lane records for.
    #[inline]
    pub fn node(&self) -> usize {
        self.ring.node as usize
    }

    /// Mint a span id for an operation starting on this lane's endpoint.
    /// Disabled recorders mint [`SpanId::NONE`] (nothing will record it).
    #[inline]
    pub fn mint(&mut self) -> SpanId {
        #[cfg(feature = "recorder-off")]
        {
            SpanId::NONE
        }
        #[cfg(not(feature = "recorder-off"))]
        {
            if !self.fr.enabled.load(Ordering::Relaxed) {
                return SpanId::NONE;
            }
            let seq = self.ring.span_next.load(Ordering::Relaxed);
            self.ring.span_next.store(seq + 1, Ordering::Relaxed);
            let lane_tag = ((self.ring.id as u64 % 0xFFFF) + 1) << LANE_TAG_SHIFT;
            SpanId(((self.ring.node as u64) << 48) | lane_tag | (seq & 0xFFFF_FFFF))
        }
    }

    /// Record one entry. Same closure gating as [`FlightRecorder::record`]:
    /// a disabled recorder never runs `make`, so it never reads the clock.
    #[inline]
    pub fn record(&mut self, make: impl FnOnce() -> VerbRecord) {
        #[cfg(feature = "recorder-off")]
        {
            let _ = make;
        }
        #[cfg(not(feature = "recorder-off"))]
        {
            if !self.fr.enabled.load(Ordering::Relaxed) {
                return;
            }
            let rec = make();
            self.ring.push(&rec);
        }
    }
}

impl Clone for Lane {
    /// A lane has exactly one writer, so a clone is a *sibling* lane on
    /// the same node (fresh or recycled), never a second handle to this
    /// ring.
    fn clone(&self) -> Lane {
        FlightRecorder::lane(&self.fr, self.ring.node as usize)
    }
}

impl Drop for Lane {
    fn drop(&mut self) {
        let mut set = lock_lanes(&self.fr.lanes[self.ring.node as usize]);
        set.free.push(self.ring.clone());
    }
}

impl std::fmt::Debug for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lane")
            .field("node", &self.ring.node)
            .field("id", &self.ring.id)
            .field("submitted", &self.ring.submitted())
            .finish()
    }
}

fn lock_lanes(m: &Mutex<LaneSet>) -> std::sync::MutexGuard<'_, LaneSet> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// A ring snapshot taken because one operation crossed the tail-latency
/// threshold: the offender plus everything the node did around it.
#[derive(Debug, Clone)]
pub struct TailCapture {
    pub node: usize,
    /// [`Site`] index of the slow operation.
    pub site: u8,
    pub span: SpanId,
    pub start: u64,
    pub dur: u64,
    /// The node's ring contents at capture time, oldest first.
    pub records: Vec<VerbRecord>,
}

/// Counters a report surfaces so silent event loss is visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecorderStats {
    pub nodes: usize,
    pub capacity_per_node: usize,
    /// Records submitted across all nodes (ring writes attempted).
    pub submitted: u64,
    /// Records currently resident across all rings.
    pub kept: u64,
    /// Records lost: evicted by a later lap or abandoned after being
    /// lapped. At quiescence `kept + dropped == submitted`.
    pub dropped: u64,
    /// Tail-threshold crossings observed (captures stored is bounded).
    pub tail_captures: u64,
    pub enabled: bool,
}

/// The per-node flight recorder. See the module docs for the contract.
#[derive(Debug)]
pub struct FlightRecorder {
    rings: Box<[NodeRing]>,
    /// Per-node single-writer lane rings (see [`Lane`]); registration and
    /// snapshots take the mutex, recording never does.
    lanes: Box<[Mutex<LaneSet>]>,
    capacity: usize,
    minter: SpanMinter,
    enabled: AtomicBool,
    dropped: AtomicU64,
    tail_crossings: AtomicU64,
    captures: Mutex<Vec<TailCapture>>,
    #[cfg_attr(feature = "recorder-off", allow(dead_code))]
    max_captures: usize,
}

impl std::fmt::Debug for LaneSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneSet")
            .field("lanes", &self.all.len())
            .field("free", &self.free.len())
            .finish()
    }
}

impl std::fmt::Debug for NodeRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeRing")
            .field("capacity", &self.slots.len())
            .field("head", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// `capacity` is per node, rounded up to a power of two (min 8).
    pub fn new(nodes: usize, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            rings: (0..nodes.max(1)).map(|_| NodeRing::new(capacity)).collect(),
            lanes: (0..nodes.max(1)).map(|_| Mutex::new(LaneSet::default())).collect(),
            capacity,
            minter: SpanMinter::new(nodes.max(1)),
            enabled: AtomicBool::new(true),
            dropped: AtomicU64::new(0),
            tail_crossings: AtomicU64::new(0),
            captures: Mutex::new(Vec::new()),
            max_captures: 32,
        }
    }

    pub fn nodes(&self) -> usize {
        self.rings.len()
    }

    /// Register (or recycle) a single-writer [`Lane`] for `node`. Cold
    /// path: endpoints call this once at construction, never per record.
    /// Associated fn because `&Arc<Self>` is not a stable receiver.
    pub fn lane(fr: &Arc<FlightRecorder>, node: usize) -> Lane {
        let node = node.min(fr.rings.len() - 1);
        let mut set = lock_lanes(&fr.lanes[node]);
        let ring = set.free.pop().unwrap_or_else(|| {
            let ring = Arc::new(LaneRing::new(node as u32, set.all.len() as u32, fr.capacity));
            set.all.push(ring.clone());
            ring
        });
        drop(set);
        Lane { fr: fr.clone(), ring }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        #[cfg(feature = "recorder-off")]
        {
            false
        }
        #[cfg(not(feature = "recorder-off"))]
        {
            self.enabled.load(Ordering::Relaxed)
        }
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Mint a span for `node`. Span ids feed only observability records;
    /// with the recorder compiled out this is free and returns NONE.
    #[inline]
    pub fn mint(&self, node: usize) -> SpanId {
        #[cfg(feature = "recorder-off")]
        {
            let _ = node;
            SpanId::NONE
        }
        #[cfg(not(feature = "recorder-off"))]
        {
            self.minter.mint(node)
        }
    }

    /// Record one entry for `node`. The closure runs only when enabled —
    /// callers put the clock read inside it, so a disabled recorder never
    /// observes time. Clamps out-of-range nodes to the last ring.
    #[inline]
    pub fn record(&self, node: usize, make: impl FnOnce() -> VerbRecord) {
        #[cfg(feature = "recorder-off")]
        {
            let _ = (node, make);
        }
        #[cfg(not(feature = "recorder-off"))]
        {
            if !self.enabled.load(Ordering::Relaxed) {
                return;
            }
            let rec = make();
            let ring = &self.rings[node.min(self.rings.len() - 1)];
            ring.push(&rec, &self.dropped);
        }
    }

    /// Snapshot the ring around an operation that crossed the tail
    /// threshold. Crossings are always counted; at most `max_captures`
    /// full snapshots are kept (off the hot path: one mutex + one clone,
    /// paid only by already-slow operations).
    pub fn capture_tail(&self, node: usize, site: u8, span: SpanId, start: u64, dur: u64) {
        #[cfg(feature = "recorder-off")]
        {
            let _ = (node, site, span, start, dur);
        }
        #[cfg(not(feature = "recorder-off"))]
        {
            if !self.enabled.load(Ordering::Relaxed) {
                return;
            }
            self.tail_crossings.fetch_add(1, Ordering::Relaxed);
            let mut caps = match self.captures.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            if caps.len() >= self.max_captures {
                return;
            }
            let records = self.node_records(node);
            caps.push(TailCapture { node, site, span, start, dur, records });
        }
    }

    /// One node's resident records across the shared ring and every lane,
    /// merged into a single timeline: ordered by record start time, ties
    /// broken by source (shared ring first, then lanes in registration
    /// order) and push order within a source.
    fn node_records(&self, node: usize) -> Vec<VerbRecord> {
        let node = node.min(self.rings.len() - 1);
        let mut keyed: Vec<((u64, u32, u64), VerbRecord)> = self.rings[node]
            .snapshot()
            .into_iter()
            .map(|(ticket, rec)| ((rec.start, 0, ticket), rec))
            .collect();
        let set = lock_lanes(&self.lanes[node]);
        for ring in set.all.iter() {
            keyed.extend(
                snapshot_slots(&ring.slots)
                    .into_iter()
                    .map(|(ticket, rec)| ((rec.start, ring.id + 1, ticket), rec)),
            );
        }
        drop(set);
        keyed.sort_by_key(|&(key, _)| key);
        keyed.into_iter().map(|(_, r)| r).collect()
    }

    /// The stored tail captures, in trigger order.
    pub fn tail_captures(&self) -> Vec<TailCapture> {
        match self.captures.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        }
    }

    /// One node's resident records (shared ring + lanes), oldest first.
    pub fn snapshot(&self, node: usize) -> Vec<VerbRecord> {
        if node >= self.rings.len() {
            return Vec::new();
        }
        self.node_records(node)
    }

    pub fn stats(&self) -> RecorderStats {
        let mut submitted: u64 = self.rings.iter().map(|r| r.head.load(Ordering::Relaxed)).sum();
        let mut kept: u64 = self.rings.iter().map(|r| r.kept()).sum();
        let mut dropped = self.dropped.load(Ordering::Relaxed);
        for lanes in self.lanes.iter() {
            let set = lock_lanes(lanes);
            for ring in set.all.iter() {
                submitted += ring.submitted();
                kept += kept_slots(&ring.slots);
                dropped += ring.dropped();
            }
        }
        RecorderStats {
            nodes: self.rings.len(),
            capacity_per_node: self.rings[0].slots.len(),
            submitted,
            kept,
            dropped,
            tail_captures: self.tail_crossings.load(Ordering::Relaxed),
            enabled: self.enabled(),
        }
    }

    /// Clear rings (shared and lanes), drop counters, captures, and span
    /// mints (between parallel sections, alongside the other stats resets).
    pub fn reset(&self) {
        for ring in self.rings.iter() {
            ring.reset();
        }
        for lanes in self.lanes.iter() {
            let set = lock_lanes(lanes);
            for ring in set.all.iter() {
                ring.reset();
            }
        }
        self.minter.reset();
        self.dropped.store(0, Ordering::Relaxed);
        self.tail_crossings.store(0, Ordering::Relaxed);
        match self.captures.lock() {
            Ok(mut g) => g.clear(),
            Err(p) => p.into_inner().clear(),
        }
    }

    /// Chrome-trace (Perfetto) export of every node's ring, with flow
    /// arrows linking all records of a span — parent site → issue →
    /// retries → poll — and requester→home arrival marks on the target
    /// node's track. Same `displayTimeUnit` contract as the Carina
    /// tracer: timestamps are the observability clock, unscaled.
    pub fn to_chrome_trace(&self) -> String {
        // (tid, ts, order, json) — sorted so output is deterministic and
        // each flow chain appears in ts order.
        let mut events: Vec<(u64, u64, u64, String)> = Vec::new();
        let mut order: u64 = 0;
        for node in 0..self.rings.len() {
            events.push((
                node as u64,
                0,
                order,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{node},\
                     \"args\":{{\"name\":\"lyra node {node}\"}}}}"
                ),
            ));
            order += 1;
        }

        // Collect records per span for flow chains while emitting slices.
        // chain: span -> Vec<(ts, tid, order_of_slice)>
        let mut chains: std::collections::BTreeMap<u64, Vec<(u64, u64)>> =
            std::collections::BTreeMap::new();
        for node in 0..self.rings.len() {
            for rec in self.node_records(node) {
                let tid = node as u64;
                let name = match rec.kind {
                    RecordKind::Site => rec
                        .site_enum()
                        .map(|s| s.name())
                        .unwrap_or("site"),
                    k => k.name(),
                };
                let args = format!(
                    "\"span\":\"{:#x}\",\"attempt\":{},\"fate\":\"{}\",\"target\":{},\"arg\":{}",
                    rec.span.0,
                    rec.attempt,
                    rec.fate.name(),
                    if rec.target == NO_TARGET { -1i64 } else { rec.target as i64 },
                    rec.arg,
                );
                let body = if rec.dur > 0 {
                    format!(
                        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{},\
                         \"dur\":{},\"args\":{{{args}}}}}",
                        escape(name),
                        rec.start,
                        rec.dur,
                    )
                } else {
                    format!(
                        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{tid},\
                         \"ts\":{},\"args\":{{{args}}}}}",
                        escape(name),
                        rec.start,
                    )
                };
                events.push((tid, rec.start, order, body));
                order += 1;
                if !rec.span.is_none() {
                    chains.entry(rec.span.0).or_default().push((rec.start, tid));
                    // Cross-node hop: mark the verb's arrival on the home
                    // node's track and chain it, so requester→home draws
                    // as an arrow between the two tracks.
                    if rec.kind == RecordKind::VerbIssue && rec.target != NO_TARGET {
                        let home = rec.target as u64;
                        let at = rec.start + rec.dur;
                        events.push((
                            home,
                            at,
                            order,
                            format!(
                                "{{\"name\":\"arrive {}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\
                                 \"tid\":{home},\"ts\":{at},\"args\":{{\"span\":\"{:#x}\"}}}}",
                                escape(name),
                                rec.span.0,
                            ),
                        ));
                        order += 1;
                        chains.entry(rec.span.0).or_default().push((at, home));
                    }
                }
            }
        }

        // Flow arrows: one chain per span that produced 2+ records.
        for (span, mut hops) in chains {
            if hops.len() < 2 {
                continue;
            }
            hops.sort();
            let last = hops.len() - 1;
            for (i, (ts, tid)) in hops.into_iter().enumerate() {
                let ph = if i == 0 {
                    "s"
                } else if i == last {
                    "f"
                } else {
                    "t"
                };
                let bp = if ph == "s" { "" } else { ",\"bp\":\"e\"" };
                events.push((
                    tid,
                    ts,
                    order,
                    format!(
                        "{{\"name\":\"span\",\"cat\":\"lyra\",\"ph\":\"{ph}\",\"id\":\"{span:#x}\",\
                         \"pid\":0,\"tid\":{tid},\"ts\":{ts}{bp}}}"
                    ),
                ));
                order += 1;
            }
        }

        events.sort_by_key(|&(tid, ts, ord, _)| (tid, ts, ord));
        let stats = self.stats();
        let mut out = String::with_capacity(events.len() * 96 + 256);
        out.push_str(&format!(
            "{{\"displayTimeUnit\":\"ns\",\"otherData\":{{\"submitted\":{},\"kept\":{},\
             \"dropped\":{},\"tail_captures\":{},\"capacity_per_node\":{}}},\"traceEvents\":[",
            stats.submitted, stats.kept, stats.dropped, stats.tail_captures, stats.capacity_per_node,
        ));
        for (i, (_, _, _, body)) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(body);
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(all(test, not(feature = "recorder-off")))]
mod tests {
    use super::*;

    fn rec(span: SpanId, start: u64, kind: RecordKind) -> VerbRecord {
        VerbRecord { span, start, kind, node: 0, ..VerbRecord::blank() }
    }

    #[test]
    fn encode_decode_round_trips() {
        let r = VerbRecord {
            span: SpanId::pack(3, 77),
            start: 123_456,
            dur: 42,
            arg: 4096,
            target: 2,
            node: 3,
            attempt: 5,
            kind: RecordKind::VerbRetry,
            site: Site::ReadMiss.index() as u8,
            fate: Fate::Timeout,
            class: 4,
        };
        assert_eq!(VerbRecord::decode(r.encode()), r);
    }

    #[test]
    fn ring_keeps_the_newest_and_counts_evictions() {
        let fr = FlightRecorder::new(1, 8);
        for i in 0..20u64 {
            fr.record(0, || rec(SpanId::pack(0, i + 1), i, RecordKind::Site));
        }
        let snap = fr.snapshot(0);
        assert_eq!(snap.len(), 8);
        // Oldest-first, and only the last 8 survive.
        let starts: Vec<u64> = snap.iter().map(|r| r.start).collect();
        assert_eq!(starts, (12..20).collect::<Vec<_>>());
        let st = fr.stats();
        assert_eq!(st.submitted, 20);
        assert_eq!(st.kept, 8);
        assert_eq!(st.dropped, 12);
        assert_eq!(st.kept + st.dropped, st.submitted);
    }

    #[test]
    fn disabled_recorder_never_runs_the_closure() {
        let fr = FlightRecorder::new(1, 8);
        fr.set_enabled(false);
        fr.record(0, || panic!("closure must not run while disabled"));
        fr.capture_tail(0, NO_SITE, SpanId::NONE, 0, u64::MAX);
        assert_eq!(fr.stats().submitted, 0);
        assert_eq!(fr.stats().tail_captures, 0);
        assert!(!fr.stats().enabled);
    }

    #[test]
    fn tail_capture_stores_the_ring_and_counts_crossings() {
        let fr = FlightRecorder::new(2, 8);
        let span = fr.mint(1);
        fr.record(1, || rec(span, 10, RecordKind::VerbIssue));
        fr.record(1, || rec(span, 30, RecordKind::VerbPoll));
        fr.capture_tail(1, Site::SdFence.index() as u8, span, 10, 20);
        let caps = fr.tail_captures();
        assert_eq!(caps.len(), 1);
        assert_eq!(caps[0].node, 1);
        assert_eq!(caps[0].records.len(), 2);
        assert_eq!(caps[0].records[0].kind, RecordKind::VerbIssue);
        assert_eq!(fr.stats().tail_captures, 1);
    }

    #[test]
    fn reset_clears_everything() {
        let fr = FlightRecorder::new(1, 8);
        fr.record(0, || rec(fr.mint(0), 1, RecordKind::Site));
        fr.capture_tail(0, 0, SpanId::NONE, 0, 9);
        fr.reset();
        let st = fr.stats();
        assert_eq!((st.submitted, st.kept, st.dropped, st.tail_captures), (0, 0, 0, 0));
        assert!(fr.snapshot(0).is_empty());
        assert!(fr.tail_captures().is_empty());
        assert_eq!(fr.mint(0).seq(), 1);
    }

    #[test]
    fn lane_records_merge_into_the_node_timeline() {
        let fr = Arc::new(FlightRecorder::new(2, 8));
        let mut lane = FlightRecorder::lane(&fr, 1);
        let span = lane.mint();
        assert!(!span.is_none());
        assert_eq!(span.node(), 1);
        // Interleave lane and shared-ring records; the snapshot must merge
        // them by start time.
        lane.record(|| rec(span, 10, RecordKind::VerbIssue));
        fr.record(1, || rec(fr.mint(1), 20, RecordKind::FaultInjected));
        lane.record(|| rec(span, 30, RecordKind::VerbPoll));
        let snap = fr.snapshot(1);
        let starts: Vec<u64> = snap.iter().map(|r| r.start).collect();
        assert_eq!(starts, vec![10, 20, 30]);
        let st = fr.stats();
        assert_eq!(st.submitted, 3);
        assert_eq!(st.kept, 3);
        assert_eq!(st.dropped, 0);
    }

    #[test]
    fn lane_eviction_is_counted_loss() {
        let fr = Arc::new(FlightRecorder::new(1, 8));
        let mut lane = FlightRecorder::lane(&fr, 0);
        for i in 0..20u64 {
            lane.record(|| rec(SpanId::pack(0, i + 1), i, RecordKind::Site));
        }
        let snap = fr.snapshot(0);
        let starts: Vec<u64> = snap.iter().map(|r| r.start).collect();
        assert_eq!(starts, (12..20).collect::<Vec<_>>());
        let st = fr.stats();
        assert_eq!(st.submitted, 20);
        assert_eq!(st.kept, 8);
        assert_eq!(st.dropped, 12);
    }

    #[test]
    fn lane_spans_are_unique_across_siblings_and_the_shared_minter() {
        let fr = Arc::new(FlightRecorder::new(1, 8));
        let mut a = FlightRecorder::lane(&fr, 0);
        let mut b = a.clone(); // sibling lane, not a second writer
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10 {
            assert!(seen.insert(a.mint()));
            assert!(seen.insert(b.mint()));
            assert!(seen.insert(fr.mint(0)));
        }
        assert_eq!(seen.len(), 30);
    }

    #[test]
    fn dropped_lane_rings_are_recycled_with_their_history() {
        let fr = Arc::new(FlightRecorder::new(1, 8));
        let mut lane = FlightRecorder::lane(&fr, 0);
        lane.record(|| rec(SpanId::pack(0, 1), 1, RecordKind::Site));
        let first_span = lane.mint();
        drop(lane);
        // The recycled ring keeps its records and continues its span
        // sequence: no double-counting, no duplicate ids.
        let mut again = FlightRecorder::lane(&fr, 0);
        assert_ne!(again.mint(), first_span);
        again.record(|| rec(SpanId::pack(0, 2), 2, RecordKind::Site));
        assert_eq!(fr.stats().submitted, 2);
        assert_eq!(fr.snapshot(0).len(), 2);
    }

    #[test]
    fn disabled_recorder_skips_lane_closures_and_mints_none() {
        let fr = Arc::new(FlightRecorder::new(1, 8));
        let mut lane = FlightRecorder::lane(&fr, 0);
        fr.set_enabled(false);
        assert!(lane.mint().is_none());
        lane.record(|| panic!("closure must not run while disabled"));
        assert_eq!(fr.stats().submitted, 0);
    }

    #[test]
    fn chrome_trace_links_a_span_with_flow_arrows() {
        let fr = FlightRecorder::new(2, 16);
        let span = fr.mint(0);
        fr.record(0, || VerbRecord {
            span,
            start: 100,
            dur: 50,
            target: 1,
            kind: RecordKind::VerbIssue,
            class: 0,
            ..VerbRecord::blank()
        });
        fr.record(0, || VerbRecord {
            span,
            start: 160,
            attempt: 1,
            fate: Fate::Dropped,
            kind: RecordKind::VerbRetry,
            ..VerbRecord::blank()
        });
        fr.record(0, || VerbRecord {
            span,
            start: 400,
            dur: 300,
            site: Site::ReadMiss.index() as u8,
            kind: RecordKind::Site,
            ..VerbRecord::blank()
        });
        let trace = fr.to_chrome_trace();
        // Parses with the in-tree JSON parser.
        let v = crate::json::JsonValue::parse(&trace).expect("valid JSON");
        let evs = v.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        let phases: Vec<&str> = evs
            .iter()
            .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
            .collect();
        assert!(phases.contains(&"s"), "flow start missing: {phases:?}");
        assert!(phases.contains(&"f"), "flow finish missing: {phases:?}");
        // The cross-node arrival instant landed on the home's track.
        assert!(trace.contains("arrive verb_issue"));
        // Flow id is the span id.
        assert!(trace.contains(&format!("\"id\":\"{:#x}\"", span.0)));
    }
}
