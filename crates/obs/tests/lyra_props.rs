//! Property tests for the Lyra flight-recorder ring: under concurrent
//! writers, records are never torn and every submission is accounted —
//! `kept + dropped == submitted` at quiescence.

#![cfg(not(feature = "recorder-off"))]

use obs::lyra::{Fate, FlightRecorder, RecordKind, VerbRecord};
use obs::span::SpanId;
use proptest::prelude::*;
use std::sync::Arc;

/// A record whose fields are all derived from `(writer, i)` so a reader
/// can verify the whole payload is internally consistent: any mix of two
/// writers' words would break at least one of the checks below.
fn stamped(writer: u64, i: u64) -> VerbRecord {
    let tag = writer * 1_000_003 + i;
    VerbRecord {
        span: SpanId::pack(writer as usize, i + 1),
        start: tag,
        dur: tag ^ 0x5555_5555_5555_5555,
        arg: tag.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        target: (writer % 7) as u32,
        node: 0,
        attempt: (i % 17) as u16,
        kind: RecordKind::VerbIssue,
        site: (i % 8) as u8,
        fate: Fate::from_u8((i % 8) as u8),
        class: (writer % 7) as u8,
    }
}

fn assert_untorn(r: &VerbRecord) {
    let writer = r.span.node() as u64;
    let i = r.span.seq() - 1;
    let expect = stamped(writer, i);
    assert_eq!(r, &expect, "torn record: fields from different submissions");
}

proptest! {
    /// Hammer one ring from several threads; every surviving record must
    /// decode to exactly one writer's submission, and the accounting
    /// identity must hold exactly once the writers quiesce.
    #[test]
    fn prop_concurrent_writers_never_tear_and_loss_is_counted(
        capacity in 8usize..128,
        writers in 2usize..6,
        per_writer in 1u64..400,
    ) {
        let fr = Arc::new(FlightRecorder::new(1, capacity));
        let handles: Vec<_> = (0..writers as u64)
            .map(|w| {
                let fr = Arc::clone(&fr);
                std::thread::spawn(move || {
                    for i in 0..per_writer {
                        fr.record(0, || stamped(w, i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = fr.stats();
        prop_assert_eq!(stats.submitted, writers as u64 * per_writer);
        prop_assert_eq!(stats.kept + stats.dropped, stats.submitted);
        prop_assert!(stats.kept <= capacity.next_power_of_two().max(8) as u64);
        let snap = fr.snapshot(0);
        prop_assert_eq!(snap.len() as u64, stats.kept);
        for rec in &snap {
            assert_untorn(rec);
        }
    }

    /// The single-writer lane flavor: each thread owns its own lane (the
    /// endpoint model), a snapshotter races them, and at quiescence the
    /// merged per-node accounting identity must hold exactly.
    #[test]
    fn prop_lanes_never_tear_and_loss_is_counted(
        capacity in 8usize..128,
        writers in 2usize..6,
        per_writer in 1u64..400,
    ) {
        let fr = Arc::new(FlightRecorder::new(1, capacity));
        let handles: Vec<_> = (0..writers as u64)
            .map(|w| {
                let fr = Arc::clone(&fr);
                std::thread::spawn(move || {
                    let mut lane = FlightRecorder::lane(&fr, 0);
                    for i in 0..per_writer {
                        lane.record(|| stamped(w, i));
                    }
                    // Keep the lane alive until the writer is done; Drop
                    // recycles the ring for a later endpoint.
                })
            })
            .collect();
        for _ in 0..32 {
            for rec in fr.snapshot(0) {
                assert_untorn(&rec);
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        let cap = capacity.next_power_of_two().max(8) as u64;
        let stats = fr.stats();
        prop_assert_eq!(stats.submitted, writers as u64 * per_writer);
        prop_assert_eq!(stats.kept + stats.dropped, stats.submitted);
        prop_assert!(stats.kept <= writers as u64 * cap);
        let snap = fr.snapshot(0);
        prop_assert_eq!(snap.len() as u64, stats.kept);
        for rec in &snap {
            assert_untorn(rec);
        }
    }

    /// Readers racing writers: snapshots taken mid-hammer may miss
    /// in-flight slots but must never surface a torn record.
    #[test]
    fn prop_snapshots_during_writes_are_consistent(
        capacity in 8usize..64,
        per_writer in 64u64..512,
    ) {
        let fr = Arc::new(FlightRecorder::new(1, capacity));
        let writers: Vec<_> = (0..3u64)
            .map(|w| {
                let fr = Arc::clone(&fr);
                std::thread::spawn(move || {
                    for i in 0..per_writer {
                        fr.record(0, || stamped(w, i));
                    }
                })
            })
            .collect();
        for _ in 0..64 {
            for rec in fr.snapshot(0) {
                assert_untorn(&rec);
            }
        }
        for h in writers {
            h.join().unwrap();
        }
        for rec in fr.snapshot(0) {
            assert_untorn(&rec);
        }
    }
}
