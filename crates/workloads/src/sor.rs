//! Red-black successive over-relaxation (SOR) — the classic software-DSM
//! benchmark (TreadMarks' flagship workload; the paper's §2 positions Argo
//! against exactly that lineage).
//!
//! A 2D grid relaxes under the red-black checkerboard schedule: all "red"
//! cells update from black neighbours, barrier, all "black" from red,
//! barrier. Rows are block-distributed; only the halo rows at chunk
//! boundaries migrate between nodes — the sharing pattern page-based DSMs
//! were built for.


// Indexed loops below mirror the reference kernels (multi-array accesses
// keyed by one index); iterator rewrites would obscure them.
#![allow(clippy::needless_range_loop)]
use crate::harness::{outcome_of, Outcome};
use argo::types::GlobalF64Array;
use argo::ArgoMachine;
use std::sync::Arc;
use carina::Coherence;
use rma::{Endpoint, Transport};

#[derive(Debug, Clone, Copy)]
pub struct SorParams {
    /// Grid is `n x n`.
    pub n: usize,
    /// Red+black sweeps.
    pub iterations: usize,
    /// Over-relaxation factor in (0, 2).
    pub omega: f64,
}

impl Default for SorParams {
    fn default() -> Self {
        SorParams {
            n: 256,
            iterations: 10,
            omega: 1.25,
        }
    }
}

/// Deterministic initial grid: hot left edge, cold elsewhere.
#[inline]
pub fn initial(n: usize, i: usize, j: usize) -> f64 {
    if j == 0 {
        100.0
    } else if i == 0 || i == n - 1 || j == n - 1 {
        0.0
    } else {
        ((i * 7 + j * 13) % 10) as f64
    }
}

/// Sequential reference: identical schedule on a plain vector.
pub fn reference_checksum(p: SorParams) -> f64 {
    let n = p.n;
    let mut g: Vec<f64> = (0..n * n).map(|x| initial(n, x / n, x % n)).collect();
    for _ in 0..p.iterations {
        for colour in 0..2 {
            for i in 1..(n - 1) {
                for j in 1..(n - 1) {
                    if (i + j) % 2 == colour {
                        let nb = g[(i - 1) * n + j]
                            + g[(i + 1) * n + j]
                            + g[i * n + j - 1]
                            + g[i * n + j + 1];
                        g[i * n + j] += p.omega * (nb / 4.0 - g[i * n + j]);
                    }
                }
            }
        }
    }
    g.iter().sum()
}

/// Run on an Argo cluster.
pub fn run_argo<T: Transport, C: Coherence>(machine: &Arc<ArgoMachine<T, C>>, p: SorParams) -> Outcome {
    let n = p.n;
    let grid = GlobalF64Array::alloc(machine.dsm(), n * n);
    let omega = p.omega;
    let report = machine.run(move |ctx| {
        // Interior rows are block-distributed.
        let nt = ctx.nthreads();
        let per = (n - 2).div_ceil(nt);
        let lo = 1 + ctx.tid() * per;
        let hi = (lo + per).min(n - 1);
        // Initialize my rows (plus thread 0 takes the boundary rows).
        let mut init_rows: Vec<usize> = (lo..hi).collect();
        if ctx.tid() == 0 {
            init_rows.push(0);
            init_rows.push(n - 1);
        }
        for &i in &init_rows {
            let row: Vec<f64> = (0..n).map(|j| initial(n, i, j)).collect();
            ctx.write_f64_slice(grid.addr(i * n), &row);
        }
        ctx.start_measurement();
        ctx.barrier();
        let mut rows = [vec![0.0f64; n], vec![0.0f64; n], vec![0.0f64; n]];
        let mut out = vec![0.0f64; n];
        for _ in 0..p.iterations {
            for colour in 0..2usize {
                for i in lo..hi {
                    // Bulk halo reads: the off-colour neighbour cells the
                    // stencil consumes are stable this half-sweep (the
                    // same-colour words also fetched are unused).
                    for (k, r) in rows.iter_mut().enumerate() {
                        ctx.read_f64_slice(grid.addr((i - 1 + k) * n), r);
                    }
                    out.copy_from_slice(&rows[1]);
                    for j in 1..(n - 1) {
                        if (i + j) % 2 == colour {
                            let nb = rows[0][j] + rows[2][j] + rows[1][j - 1] + rows[1][j + 1];
                            out[j] += omega * (nb / 4.0 - rows[1][j]);
                        }
                    }
                    ctx.thread.compute(n as u64 * 4);
                    // Write back only this colour's cells — the others are
                    // read concurrently by neighbour threads.
                    for j in 1..(n - 1) {
                        if (i + j) % 2 == colour {
                            ctx.write_f64(grid.addr(i * n + j), out[j]);
                        }
                    }
                }
                ctx.barrier();
            }
        }
        // Checksum over my rows (+ boundary rows from thread 0).
        let mut sum = 0.0;
        let mut buf = vec![0.0f64; n];
        for &i in &init_rows {
            ctx.read_f64_slice(grid.addr(i * n), &mut buf);
            sum += buf.iter().sum::<f64>();
        }
        sum
    });
    outcome_of(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo::ArgoConfig;

    fn small() -> SorParams {
        SorParams {
            n: 48,
            iterations: 4,
            omega: 1.25,
        }
    }

    #[test]
    fn argo_matches_reference() {
        let m = ArgoMachine::new(ArgoConfig::small(2, 2));
        let out = run_argo(&m, small());
        let reference = reference_checksum(small());
        assert!(
            (out.checksum - reference).abs() < 1e-6 * reference.abs().max(1.0),
            "argo {} vs ref {}",
            out.checksum,
            reference
        );
    }

    #[test]
    fn relaxation_spreads_heat_inward() {
        // After enough sweeps the cell next to the hot edge must be warm.
        let p = SorParams {
            n: 32,
            iterations: 50,
            omega: 1.0,
        };
        let n = p.n;
        let mut g: Vec<f64> = (0..n * n).map(|x| initial(n, x / n, x % n)).collect();
        for _ in 0..p.iterations {
            for colour in 0..2 {
                for i in 1..(n - 1) {
                    for j in 1..(n - 1) {
                        if (i + j) % 2 == colour {
                            let nb = g[(i - 1) * n + j]
                                + g[(i + 1) * n + j]
                                + g[i * n + j - 1]
                                + g[i * n + j + 1];
                            g[i * n + j] += p.omega * (nb / 4.0 - g[i * n + j]);
                        }
                    }
                }
            }
        }
        let mid = n / 2;
        assert!(g[mid * n + 1] > 30.0, "heat did not spread: {}", g[mid * n + 1]);
        assert!(g[mid * n + n - 2] < 30.0, "far edge too hot");
    }

    #[test]
    fn scales_with_nodes() {
        let p = SorParams {
            n: 192,
            iterations: 6,
            omega: 1.25,
        };
        let seq = run_argo(&ArgoMachine::new(ArgoConfig::small(1, 1)), p);
        let par = run_argo(&ArgoMachine::new(ArgoConfig::small(4, 2)), p);
        assert!(par.checksum_matches(&seq, 1e-9));
        assert!(
            par.speedup_over(&seq) > 2.0,
            "speedup {}",
            par.speedup_over(&seq)
        );
    }
}

