//! Per-operation compute-cost constants (cycles on the reference CPU).
//!
//! The workloads really compute their answers (so checksums validate
//! against sequential references), but wall-clock compute time on the host
//! machine is meaningless for the simulation — instead each kernel charges
//! these documented virtual costs to its thread clock. Values are rough
//! flop counts × a few cycles per flop on a 2011-class core, which is all
//! the *shape* of the paper's figures needs.

/// One Black-Scholes option pricing (CNDs, logs, exps ≈ 100+ flops).
pub const BLACKSCHOLES_OPTION: u64 = 400;

/// One N-body pairwise interaction (distance, rsqrt, accumulate ≈ 20 flops).
pub const NBODY_INTERACTION: u64 = 30;

/// One fused multiply-add of the matrix-multiply inner loop.
pub const MATMUL_FMA: u64 = 2;

/// One multiply-subtract of the LU update kernels.
pub const LU_FLOP: u64 = 2;

/// One EP pair: two LCG draws, acceptance test, log/sqrt on acceptance.
pub const EP_PAIR: u64 = 60;

/// One nonzero of the CG sparse matrix-vector product (as shipped on Argo,
/// straight from the Pthreads code).
pub const CG_NONZERO: u64 = 8;

/// The same nonzero in the hand-optimized UPC/OpenMP port — the paper
/// notes the non-Pthreads CG and MM codes start with "a significant
/// [single-node] advantage" due to an optimized implementation.
pub const CG_NONZERO_OPTIMIZED: u64 = 4;

/// One vector element op (axpy, dot contribution).
pub const VEC_OP: u64 = 4;
