//! # workloads — the paper's benchmark applications
//!
//! The seven programs of the evaluation (§5), each computing real answers
//! validated against sequential references, with compute costs charged to
//! the virtual clock (see [`costs`]):
//!
//! | module | paper figure | variants |
//! |---|---|---|
//! | [`blackscholes`] | 13c | Argo, Pthreads (1-node Argo), MPI |
//! | [`nbody`] | 13b | Argo, Pthreads, MPI |
//! | [`matmul`] | 13d | Argo, Pthreads, MPI |
//! | [`lu`] | 13a | Argo, Pthreads |
//! | [`ep`] | 13e | Argo, OpenMP (1-node), UPC (PGAS mode) |
//! | [`cg`] | 13f | Argo, OpenMP (1-node), UPC (PGAS mode) |
//! | [`sor`] | extra (TreadMarks-lineage stencil) | Argo, sequential reference |
//! | [`tsp`] | extra (lock-structured branch & bound on HQDL) | Argo, exact reference |
//!
//! (The seventh "benchmark" is the priority-queue lock microbenchmark of
//! Figures 11/12, which lives in `vela` + `bench`.)
//!
//! [`harness`] provides the shared [`harness::Outcome`] type, the MPI rank
//! runner, and the hierarchical [`harness::GlobalReducer`].

pub mod blackscholes;
pub mod cg;
pub mod costs;
pub mod ep;
pub mod harness;
pub mod lu;
pub mod matmul;
pub mod nbody;
pub mod sor;
pub mod tsp;

pub use harness::Outcome;
