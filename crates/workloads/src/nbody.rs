//! N-body: iterative all-pairs gravitational simulation.
//!
//! Paper §5.4 / Figure 13b: "a simple iterative approach, separating
//! iteration steps with barriers. The additional cost of synchronization
//! over a network is barely noticeable for large problem sizes" — Argo
//! scales it to 32 nodes (512 cores), exceeding the MPI port.
//!
//! Positions are double-buffered: each step reads the previous buffer and
//! writes the next, with one hierarchical barrier per step.

use crate::costs;
use crate::harness::{outcome_of, run_mpi, MpiCtx, Outcome};
use argo::types::GlobalF64Array;
use argo::ArgoMachine;
use simnet::{CostModel, Tag};
use std::sync::Arc;
use carina::Coherence;
use rma::{Endpoint, Transport};

#[derive(Debug, Clone, Copy)]
pub struct NbodyParams {
    pub bodies: usize,
    pub steps: usize,
}

impl Default for NbodyParams {
    fn default() -> Self {
        NbodyParams {
            bodies: 2048,
            steps: 4,
        }
    }
}

const DT: f64 = 0.01;
const SOFTENING: f64 = 1e-3;

/// Deterministic initial (position, velocity, mass) of body `i`.
pub fn body_init(i: usize) -> ([f64; 3], [f64; 3], f64) {
    // Low-discrepancy-ish spread; avoids coincident bodies.
    let k = i as f64;
    let pos = [
        (k * 0.618_033_988_75).fract() * 10.0 - 5.0,
        (k * 0.414_213_562_37).fract() * 10.0 - 5.0,
        (k * 0.732_050_807_57).fract() * 10.0 - 5.0,
    ];
    let vel = [0.0, 0.0, 0.0];
    let mass = 1.0 + (k * 0.302_775_637_73).fract();
    (pos, vel, mass)
}

/// One step of the sequential reference on plain vectors.
fn step_reference(pos: &[[f64; 3]], vel: &mut [[f64; 3]], mass: &[f64]) -> Vec<[f64; 3]> {
    let n = pos.len();
    let mut next = vec![[0.0; 3]; n];
    for i in 0..n {
        let mut acc = [0.0f64; 3];
        for j in 0..n {
            if i == j {
                continue;
            }
            let dx = pos[j][0] - pos[i][0];
            let dy = pos[j][1] - pos[i][1];
            let dz = pos[j][2] - pos[i][2];
            let d2 = dx * dx + dy * dy + dz * dz + SOFTENING;
            let inv = mass[j] / (d2 * d2.sqrt());
            acc[0] += dx * inv;
            acc[1] += dy * inv;
            acc[2] += dz * inv;
        }
        for a in 0..3 {
            vel[i][a] += acc[a] * DT;
            next[i][a] = pos[i][a] + vel[i][a] * DT;
        }
    }
    next
}

/// Sequential reference checksum (sum of all final coordinates).
pub fn reference_checksum(p: NbodyParams) -> f64 {
    let n = p.bodies;
    let mut pos = Vec::with_capacity(n);
    let mut vel = Vec::with_capacity(n);
    let mut mass = Vec::with_capacity(n);
    for i in 0..n {
        let (x, v, m) = body_init(i);
        pos.push(x);
        vel.push(v);
        mass.push(m);
    }
    for _ in 0..p.steps {
        pos = step_reference(&pos, &mut vel, &mass);
    }
    pos.iter().flat_map(|x| x.iter()).sum()
}

/// Kernel shared by the Argo and MPI variants: compute the accelerations of
/// `chunk` against all bodies and step positions/velocities.
#[allow(clippy::too_many_arguments)]
fn step_chunk(
    chunk: std::ops::Range<usize>,
    px: &[f64],
    py: &[f64],
    pz: &[f64],
    mass: &[f64],
    vel: &mut [[f64; 3]],
    out: &mut [[f64; 3]],
) {
    let n = px.len();
    for (li, i) in chunk.enumerate() {
        let mut acc = [0.0f64; 3];
        for j in 0..n {
            if i == j {
                continue;
            }
            let dx = px[j] - px[i];
            let dy = py[j] - py[i];
            let dz = pz[j] - pz[i];
            let d2 = dx * dx + dy * dy + dz * dz + SOFTENING;
            let inv = mass[j] / (d2 * d2.sqrt());
            acc[0] += dx * inv;
            acc[1] += dy * inv;
            acc[2] += dz * inv;
        }
        for a in 0..3 {
            vel[li][a] += acc[a] * DT;
        }
        out[li][0] = px[i] + vel[li][0] * DT;
        out[li][1] = py[i] + vel[li][1] * DT;
        out[li][2] = pz[i] + vel[li][2] * DT;
    }
}

/// Run on an Argo cluster.
pub fn run_argo<T: Transport, C: Coherence>(machine: &Arc<ArgoMachine<T, C>>, p: NbodyParams) -> Outcome {
    let dsm = machine.dsm();
    let n = p.bodies;
    // Double-buffered positions (3 axes × 2 buffers) + masses.
    let bufs: [[GlobalF64Array; 3]; 2] =
        std::array::from_fn(|_| std::array::from_fn(|_| GlobalF64Array::alloc(dsm, n)));
    let mass_arr = GlobalF64Array::alloc(dsm, n);
    let report = machine.run(move |ctx| {
        let chunk = ctx.my_chunk(n);
        for i in chunk.clone() {
            let (pos, _, m) = body_init(i);
            for a in 0..3 {
                bufs[0][a].set(ctx, i, pos[a]);
            }
            mass_arr.set(ctx, i, m);
        }
        ctx.start_measurement();
        let mut vel = vec![[0.0f64; 3]; chunk.len()];
        let mut out = vec![[0.0f64; 3]; chunk.len()];
        let (mut px, mut py, mut pz) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let mut mass = vec![0.0; n];
        ctx.barrier(); // everyone's init visible
        ctx.read_f64_slice(mass_arr.addr(0), &mut mass);
        for step in 0..p.steps {
            let src = &bufs[step % 2];
            let dst = &bufs[(step + 1) % 2];
            ctx.read_f64_slice(src[0].addr(0), &mut px);
            ctx.read_f64_slice(src[1].addr(0), &mut py);
            ctx.read_f64_slice(src[2].addr(0), &mut pz);
            step_chunk(chunk.clone(), &px, &py, &pz, &mass, &mut vel, &mut out);
            ctx.thread
                .compute((chunk.len() * n) as u64 * costs::NBODY_INTERACTION);
            if !chunk.is_empty() {
                for a in 0..3 {
                    let col: Vec<f64> = out.iter().map(|b| b[a]).collect();
                    ctx.write_f64_slice(dst[a].addr(chunk.start), &col);
                }
            }
            ctx.barrier();
        }
        // Checksum of final positions (own chunk).
        let fin = &bufs[p.steps % 2];
        let mut sum = 0.0;
        for i in chunk {
            for arr in fin.iter() {
                sum += arr.get(ctx, i);
            }
        }
        sum
    });
    outcome_of(report)
}

/// MPI port: each rank owns a chunk; a ring all-gather exchanges positions
/// every step.
pub fn run_mpi_variant(nodes: usize, ranks_per_node: usize, p: NbodyParams) -> Outcome {
    let cost = CostModel::paper_2011();
    let n = p.bodies;
    let (cycles, results, net) = run_mpi(nodes, ranks_per_node, cost, move |ctx: &mut MpiCtx| {
        let ranks = ctx.ranks;
        let chunk = ctx.my_chunk(n);
        let per = n.div_ceil(ranks);
        // Global state assembled locally by the all-gather.
        let (mut px, mut py, mut pz) = (vec![0.0; n], vec![0.0; n], vec![0.0; n]);
        let mut mass = vec![0.0; n];
        for i in 0..n {
            let (pos, _, m) = body_init(i);
            px[i] = pos[0];
            py[i] = pos[1];
            pz[i] = pos[2];
            mass[i] = m;
        }
        let mut vel = vec![[0.0f64; 3]; chunk.len()];
        let mut out = vec![[0.0f64; 3]; chunk.len()];
        for step in 0..p.steps {
            step_chunk(chunk.clone(), &px, &py, &pz, &mass, &mut vel, &mut out);
            ctx.thread
                .compute((chunk.len() * n) as u64 * costs::NBODY_INTERACTION);
            // Write own chunk into the global arrays.
            for (li, i) in chunk.clone().enumerate() {
                px[i] = out[li][0];
                py[i] = out[li][1];
                pz[i] = out[li][2];
            }
            // Ring all-gather: (ranks-1) rounds, passing chunks around.
            let next = (ctx.rank + 1) % ranks;
            let prev = (ctx.rank + ranks - 1) % ranks;
            let mut carry = ctx.rank; // whose chunk we forward next
            for round in 0..ranks.saturating_sub(1) {
                let tag = Tag((step * ranks + round) as u32);
                let lo = (carry * per).min(n);
                let hi = ((carry + 1) * per).min(n);
                let mut payload = Vec::with_capacity((hi - lo) * 24);
                for i in lo..hi {
                    payload.extend_from_slice(&px[i].to_le_bytes());
                    payload.extend_from_slice(&py[i].to_le_bytes());
                    payload.extend_from_slice(&pz[i].to_le_bytes());
                }
                ctx.world.send(&mut ctx.thread, ctx.rank, next, tag, payload);
                let m = ctx.world.recv(&mut ctx.thread, ctx.rank, Some(prev), tag);
                carry = (carry + ranks - 1) % ranks;
                let lo = (carry * per).min(n);
                for (k, triple) in m.payload.chunks_exact(24).enumerate() {
                    let i = lo + k;
                    px[i] = f64::from_le_bytes(triple[0..8].try_into().expect("8"));
                    py[i] = f64::from_le_bytes(triple[8..16].try_into().expect("8"));
                    pz[i] = f64::from_le_bytes(triple[16..24].try_into().expect("8"));
                }
            }
        }
        let local: f64 = chunk.map(|i| px[i] + py[i] + pz[i]).sum();
        ctx.world.allreduce_sum(&mut ctx.thread, local)
    });
    Outcome {
        cycles,
        seconds: cost.cycles_to_secs(cycles),
        wall_seconds: 0.0,
        checksum: results[0],
        coherence: Default::default(),
        net,
        profile: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo::ArgoConfig;

    fn small() -> NbodyParams {
        NbodyParams {
            bodies: 120,
            steps: 3,
        }
    }

    #[test]
    fn argo_matches_reference() {
        let m = ArgoMachine::new(ArgoConfig::small(2, 2));
        let out = run_argo(&m, small());
        let reference = reference_checksum(small());
        assert!(
            (out.checksum - reference).abs() < 1e-6 * reference.abs().max(1.0),
            "argo {} vs ref {}",
            out.checksum,
            reference
        );
    }

    #[test]
    fn mpi_matches_reference() {
        let out = run_mpi_variant(3, 2, small());
        let reference = reference_checksum(small());
        assert!(
            (out.checksum - reference).abs() < 1e-6 * reference.abs().max(1.0),
            "mpi {} vs ref {}",
            out.checksum,
            reference
        );
    }

    #[test]
    fn energy_does_not_explode() {
        // Sanity on the physics: bounded positions for a few steps.
        let reference = reference_checksum(NbodyParams { bodies: 50, steps: 5 });
        assert!(reference.is_finite());
        assert!(reference.abs() < 50.0 * 3.0 * 100.0);
    }
}

#[cfg(test)]
mod invariant_tests {
    use super::*;

    /// Total momentum is (approximately) conserved by the symmetric
    /// pairwise forces: sum(m_i * v_i) stays near zero from a cold start.
    #[test]
    fn momentum_stays_bounded() {
        let n = 200;
        let mut pos = Vec::new();
        let mut vel = Vec::new();
        let mut mass = Vec::new();
        for i in 0..n {
            let (x, v, m) = body_init(i);
            pos.push(x);
            vel.push(v);
            mass.push(m);
        }
        for _ in 0..10 {
            pos = step_reference(&pos, &mut vel, &mass);
        }
        let mut p = [0.0f64; 3];
        let mut speed_sum = 0.0;
        for i in 0..n {
            for a in 0..3 {
                p[a] += mass[i] * vel[i][a];
            }
            speed_sum += vel[i].iter().map(|v| v.abs()).sum::<f64>();
        }
        // Momentum should be tiny relative to the total |velocity| scale.
        let pmag = (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
        assert!(speed_sum > 0.0, "nothing moved");
        assert!(
            pmag < 1e-9 * speed_sum.max(1.0),
            "momentum drift: {pmag} vs motion {speed_sum}"
        );
    }

    /// Determinism: the same configuration twice gives identical positions.
    #[test]
    fn reference_is_deterministic() {
        let a = reference_checksum(NbodyParams { bodies: 64, steps: 4 });
        let b = reference_checksum(NbodyParams { bodies: 64, steps: 4 });
        assert_eq!(a, b);
    }
}
