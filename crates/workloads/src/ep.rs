//! NAS EP (Embarrassingly Parallel): Gaussian deviates by acceptance-
//! rejection, tallied into annuli.
//!
//! Paper §5.5 / Figure 13e: EP scales linearly for Argo, OpenMP, and UPC
//! alike up to 128 nodes (2048 cores) — it only communicates in the final
//! reduction. "This shows that Argo can compete directly with PGAS systems
//! that require significant effort to program in."

use crate::costs;
use crate::harness::{outcome_of, GlobalReducer, Outcome};
use argo::{ArgoConfig, ArgoMachine, PgasCtx};
use simnet::CostModel;
use std::sync::Arc;
use vela::ClockBarrier;
use carina::Coherence;
use rma::{Endpoint, Transport};

#[derive(Debug, Clone, Copy)]
pub struct EpParams {
    /// Number of random pairs to generate.
    pub pairs: usize,
}

impl Default for EpParams {
    fn default() -> Self {
        EpParams { pairs: 1 << 18 }
    }
}

/// SplitMix64: deterministic per-index stream, so work can be partitioned
/// arbitrarily without changing results (the NAS EP property).
#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[inline]
fn uniform(seed: u64) -> f64 {
    (splitmix(seed) >> 11) as f64 / (1u64 << 53) as f64
}

/// Tally of one EP run: Gaussian sums and annulus counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpTally {
    pub sx: f64,
    pub sy: f64,
    pub q: [u64; 10],
}

impl EpTally {
    /// Combine partial tallies (exposed for partition tests and future
    /// multi-tally reductions).
    pub fn merge(&mut self, other: &EpTally) {
        self.sx += other.sx;
        self.sy += other.sy;
        for (a, b) in self.q.iter_mut().zip(other.q) {
            *a += b;
        }
    }

    /// Scalar checksum combining sums and counts.
    pub fn checksum(&self) -> f64 {
        self.sx + self.sy + self.q.iter().enumerate().map(|(i, &c)| (i as f64 + 1.0) * c as f64).sum::<f64>()
    }
}

/// Process pairs `[lo, hi)`.
pub fn ep_kernel(lo: usize, hi: usize) -> EpTally {
    let mut t = EpTally::default();
    for i in lo..hi {
        let x = 2.0 * uniform(2 * i as u64) - 1.0;
        let y = 2.0 * uniform(2 * i as u64 + 1) - 1.0;
        let s = x * x + y * y;
        if s <= 1.0 && s > 0.0 {
            let f = (-2.0 * s.ln() / s).sqrt();
            let (gx, gy) = (x * f, y * f);
            t.sx += gx;
            t.sy += gy;
            let m = gx.abs().max(gy.abs()) as usize;
            if m < 10 {
                t.q[m] += 1;
            }
        }
    }
    t
}

/// Sequential reference.
pub fn reference_tally(p: EpParams) -> EpTally {
    ep_kernel(0, p.pairs)
}

/// Run on an Argo cluster (with `nodes == 1` this is the OpenMP baseline).
pub fn run_argo<T: Transport, C: Coherence>(machine: &Arc<ArgoMachine<T, C>>, p: EpParams) -> Outcome {
    let dsm = machine.dsm();
    let cfg = *machine.config();
    let reducer = Arc::new(GlobalReducer::new(dsm, cfg.total_threads(), cfg.nodes));
    let report = machine.run(move |ctx| {
        ctx.start_measurement();
        let chunk = ctx.my_chunk(p.pairs);
        let tally = ep_kernel(chunk.start, chunk.end);
        ctx.thread.compute(chunk.len() as u64 * costs::EP_PAIR);
        // Reduce the scalar checksum across the cluster (the real kernel
        // reduces sx, sy and ten counts; one reduction per quantity).
        let total = reducer.sum(ctx, tally.checksum());
        // Every thread holds the same total; report it once.
        if ctx.tid() == 0 {
            total
        } else {
            0.0
        }
    });
    outcome_of(report)
}

/// UPC-style PGAS run: same kernel, but partial tallies are deposited with
/// fine-grained remote writes and rank 0 combines them — no caching layer.
pub fn run_pgas(nodes: usize, threads_per_node: usize, p: EpParams) -> Outcome {
    let cfg = ArgoConfig::small(nodes, threads_per_node);
    let machine = ArgoMachine::new(cfg);
    let dsm = machine.dsm().clone();
    let total = cfg.total_threads();
    let slots = dsm
        .allocator()
        .alloc(total as u64 * mem::PAGE_BYTES, mem::PAGE_BYTES)
        .expect("global memory");
    let result_slot = dsm.allocator().alloc_pages(1).expect("global memory");
    let rounds = (nodes.max(2) as u64).next_power_of_two().trailing_zeros() as u64;
    let barrier = Arc::new(ClockBarrier::new(
        total,
        2 * CostModel::paper_2011().network_latency * rounds,
    ));
    let report = machine.run(move |ctx| {
        let pgas = PgasCtx::new(ctx.dsm().clone());
        let chunk = ctx.my_chunk(p.pairs);
        let tally = ep_kernel(chunk.start, chunk.end);
        ctx.thread.compute(chunk.len() as u64 * costs::EP_PAIR);
        let my_slot = slots.offset(ctx.tid() as u64 * mem::PAGE_BYTES);
        pgas.write_f64(&mut ctx.thread, my_slot, tally.checksum());
        barrier.wait(&mut ctx.thread);
        if ctx.tid() == 0 {
            let mut total_sum = 0.0;
            for t in 0..ctx.nthreads() {
                total_sum +=
                    pgas.read_f64(&mut ctx.thread, slots.offset(t as u64 * mem::PAGE_BYTES));
            }
            pgas.write_f64(&mut ctx.thread, result_slot, total_sum);
        }
        barrier.wait(&mut ctx.thread);
        pgas.read_f64(&mut ctx.thread, result_slot)
    });
    let checksum = report.results[0];
    Outcome {
        cycles: report.cycles,
        seconds: report.seconds,
        wall_seconds: report.wall_seconds,
        checksum,
        coherence: report.coherence,
        net: report.net,
        profile: report.profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EpParams {
        EpParams { pairs: 20_000 }
    }

    #[test]
    fn kernel_is_partition_independent() {
        let whole = ep_kernel(0, 10_000);
        let mut parts = ep_kernel(0, 3_000);
        parts.merge(&ep_kernel(3_000, 7_500));
        parts.merge(&ep_kernel(7_500, 10_000));
        assert_eq!(whole.q, parts.q);
        assert!((whole.sx - parts.sx).abs() < 1e-9);
    }

    #[test]
    fn acceptance_rate_is_pi_over_four() {
        let t = ep_kernel(0, 100_000);
        let accepted: u64 = t.q.iter().sum();
        let rate = accepted as f64 / 100_000.0;
        assert!((rate - std::f64::consts::FRAC_PI_4).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn argo_matches_reference() {
        let m = ArgoMachine::new(ArgoConfig::small(2, 2));
        let out = run_argo(&m, small());
        let reference = reference_tally(small()).checksum();
        assert!(
            (out.checksum - reference).abs() < 1e-6 * reference.abs().max(1.0),
            "argo {} vs ref {}",
            out.checksum,
            reference
        );
    }

    #[test]
    fn pgas_matches_reference() {
        let out = run_pgas(2, 2, small());
        let reference = reference_tally(small()).checksum();
        assert!(
            (out.checksum - reference).abs() < 1e-6 * reference.abs().max(1.0),
            "pgas {} vs ref {}",
            out.checksum,
            reference
        );
    }
}
