//! Dense matrix multiply C = A × B.
//!
//! Paper §5.4 / Figure 13d ("a naïve Matrix Multiplication benchmark",
//! inputs 2000² and 5000²). Each thread owns a block of C rows; A and B
//! are read-only after initialization, so Carina classifies their pages
//! S,NW and they survive every synchronization — the ideal case for the
//! P/S3 classification.
//!
//! The MPI port "has an algorithmic advantage as it is already faster in a
//! single node": it computes on rank-local buffers with a hand-tuned inner
//! loop (modeled by a lower per-FMA cost) after a one-time broadcast of B
//! and scatter of A — but for the small input the broadcast/gather overhead
//! eats the advantage beyond one node.


// Indexed loops below mirror the reference kernels (multi-array accesses
// keyed by one index); iterator rewrites would obscure them.
#![allow(clippy::needless_range_loop)]
use crate::costs;
use crate::harness::{outcome_of, run_mpi, MpiCtx, Outcome};
use argo::types::GlobalF64Array;
use argo::ArgoMachine;
use simnet::{CostModel, Tag};
use std::sync::Arc;
use carina::Coherence;
use rma::{Endpoint, Transport};

#[derive(Debug, Clone, Copy)]
pub struct MatmulParams {
    pub n: usize,
}

impl Default for MatmulParams {
    fn default() -> Self {
        MatmulParams { n: 256 }
    }
}

/// Deterministic input element values.
#[inline]
pub fn a_elem(i: usize, j: usize) -> f64 {
    ((i * 31 + j * 17) % 13) as f64 * 0.25 - 1.0
}

#[inline]
pub fn b_elem(i: usize, j: usize) -> f64 {
    ((i * 7 + j * 23) % 11) as f64 * 0.5 - 2.0
}

/// Sequential reference checksum (sum of all C elements).
pub fn reference_checksum(p: MatmulParams) -> f64 {
    let n = p.n;
    // sum(C) = sum_k (sum_i A[i][k]) * (sum_j B[k][j]) — O(n²).
    let mut a_col_sums = vec![0.0f64; n];
    for i in 0..n {
        for k in 0..n {
            a_col_sums[k] += a_elem(i, k);
        }
    }
    let mut total = 0.0;
    for k in 0..n {
        let mut b_row_sum = 0.0;
        for j in 0..n {
            b_row_sum += b_elem(k, j);
        }
        total += a_col_sums[k] * b_row_sum;
    }
    total
}

/// Run on an Argo cluster. Row-block decomposition of C; the kernel is the
/// rank-1-update ("ikj") order so every DSM access is row-contiguous.
pub fn run_argo<T: Transport, C: Coherence>(machine: &Arc<ArgoMachine<T, C>>, p: MatmulParams) -> Outcome {
    let dsm = machine.dsm();
    let n = p.n;
    let a = GlobalF64Array::alloc(dsm, n * n);
    let b = GlobalF64Array::alloc(dsm, n * n);
    let c = GlobalF64Array::alloc(dsm, n * n);
    let report = machine.run(move |ctx| {
        let rows = ctx.my_chunk(n);
        for i in rows.clone() {
            let arow: Vec<f64> = (0..n).map(|j| a_elem(i, j)).collect();
            let brow: Vec<f64> = (0..n).map(|j| b_elem(i, j)).collect();
            ctx.write_f64_slice(a.addr(i * n), &arow);
            ctx.write_f64_slice(b.addr(i * n), &brow);
        }
        ctx.start_measurement();
        ctx.barrier();
        let mut checksum = 0.0;
        let mut arow = vec![0.0f64; n];
        let mut brow = vec![0.0f64; n];
        let mut crow = vec![0.0f64; n];
        for i in rows {
            ctx.read_f64_slice(a.addr(i * n), &mut arow);
            crow.iter_mut().for_each(|x| *x = 0.0);
            for k in 0..n {
                ctx.read_f64_slice(b.addr(k * n), &mut brow);
                let aik = arow[k];
                for j in 0..n {
                    crow[j] += aik * brow[j];
                }
            }
            ctx.thread.compute((n * n) as u64 * costs::MATMUL_FMA);
            ctx.write_f64_slice(c.addr(i * n), &crow);
            checksum += crow.iter().sum::<f64>();
        }
        ctx.barrier();
        checksum
    });
    outcome_of(report)
}

/// Optimized per-FMA cost of the hand-tuned MPI kernel.
const MATMUL_FMA_OPTIMIZED: u64 = 1;

/// MPI port: broadcast B, scatter A row blocks, compute locally, gather C.
pub fn run_mpi_variant(nodes: usize, ranks_per_node: usize, p: MatmulParams) -> Outcome {
    let cost = CostModel::paper_2011();
    let n = p.n;
    let (cycles, results, net) = run_mpi(nodes, ranks_per_node, cost, move |ctx: &mut MpiCtx| {
        let ranks = ctx.ranks;
        let rows = ctx.my_chunk(n);
        // Broadcast of B + scatter of A, modeled as data-sized messages
        // from rank 0 (contents are regenerated locally — deterministic
        // inputs — but the wire time is charged in full).
        if ctx.rank == 0 {
            for r in 1..ranks {
                let r_rows = {
                    let per = n.div_ceil(ranks);
                    ((r + 1) * per).min(n) - (r * per).min(n)
                };
                ctx.world
                    .send(&mut ctx.thread, 0, r, Tag(1), vec![0u8; n * n * 8]); // B
                ctx.world
                    .send(&mut ctx.thread, 0, r, Tag(2), vec![0u8; r_rows * n * 8]); // A block
            }
        } else {
            let _ = ctx.world.recv(&mut ctx.thread, ctx.rank, Some(0), Tag(1));
            let _ = ctx.world.recv(&mut ctx.thread, ctx.rank, Some(0), Tag(2));
        }
        // Local compute with the optimized kernel.
        let bmat: Vec<f64> = (0..n * n).map(|x| b_elem(x / n, x % n)).collect();
        let mut checksum = 0.0;
        let mut payload = Vec::with_capacity(rows.len() * n * 8);
        for i in rows.clone() {
            let mut crow = vec![0.0f64; n];
            for k in 0..n {
                let aik = a_elem(i, k);
                let brow = &bmat[k * n..(k + 1) * n];
                for j in 0..n {
                    crow[j] += aik * brow[j];
                }
            }
            checksum += crow.iter().sum::<f64>();
            for v in &crow {
                payload.extend_from_slice(&v.to_le_bytes());
            }
        }
        ctx.thread
            .compute((rows.len() * n * n) as u64 * MATMUL_FMA_OPTIMIZED);
        // Gather C at rank 0.
        if ctx.rank == 0 {
            for r in 1..ranks {
                let m = ctx.world.recv(&mut ctx.thread, 0, Some(r), Tag(3));
                for e in m.payload.chunks_exact(8) {
                    checksum += f64::from_le_bytes(e.try_into().expect("8"));
                }
            }
            checksum
        } else {
            ctx.world.send(&mut ctx.thread, ctx.rank, 0, Tag(3), payload);
            0.0
        }
    });
    Outcome {
        cycles,
        seconds: cost.cycles_to_secs(cycles),
        wall_seconds: 0.0,
        checksum: results[0],
        coherence: Default::default(),
        net,
        profile: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo::ArgoConfig;

    fn small() -> MatmulParams {
        MatmulParams { n: 48 }
    }

    #[test]
    fn reference_checksum_matches_direct_computation() {
        let n = 16;
        let mut direct = 0.0;
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += a_elem(i, k) * b_elem(k, j);
                }
                direct += s;
            }
        }
        let fast = reference_checksum(MatmulParams { n });
        assert!((direct - fast).abs() < 1e-9 * direct.abs().max(1.0));
    }

    #[test]
    fn argo_matches_reference() {
        let m = ArgoMachine::new(ArgoConfig::small(2, 2));
        let out = run_argo(&m, small());
        let reference = reference_checksum(small());
        assert!(
            (out.checksum - reference).abs() < 1e-6 * reference.abs().max(1.0),
            "argo {} vs ref {}",
            out.checksum,
            reference
        );
    }

    #[test]
    fn mpi_matches_reference() {
        let out = run_mpi_variant(2, 2, small());
        let reference = reference_checksum(small());
        assert!((out.checksum - reference).abs() < 1e-6 * reference.abs().max(1.0));
    }

    #[test]
    fn read_only_inputs_are_kept_across_barriers() {
        // A and B become S,NW: SI fences keep them (the P/S3 payoff).
        let m = ArgoMachine::new(ArgoConfig::small(2, 2));
        let out = run_argo(&m, small());
        assert!(out.coherence.si_kept > 0);
    }
}

