//! SPLASH-2 LU: blocked dense LU factorization (no pivoting).
//!
//! Paper §5.4 / Figure 13a: "this benchmark involves a lot of data
//! migration within the system, there is significant overhead when running
//! it on Argo. Still, using multiple nodes outperforms the Pthreads version
//! on a single machine, and continues to gain performance up to eight
//! nodes."
//!
//! The classic SPLASH kernel: the matrix is split into B×B blocks owned by
//! threads round-robin; step k factors the diagonal block, solves the
//! perimeter row/column, then updates the interior — three barriers per
//! step. Perimeter blocks are read by many threads each step (migratory,
//! multi-reader), which is what stresses the coherence layer.

use crate::costs;
use crate::harness::{outcome_of, Outcome};
use argo::types::GlobalF64Array;
use argo::{ArgoCtx, ArgoMachine};
use std::sync::Arc;
use carina::Coherence;
use rma::{Endpoint, Transport};

#[derive(Debug, Clone, Copy)]
pub struct LuParams {
    /// Matrix dimension (multiple of `block`).
    pub n: usize,
    /// Block edge.
    pub block: usize,
}

impl Default for LuParams {
    fn default() -> Self {
        LuParams { n: 256, block: 16 }
    }
}

/// Deterministic, diagonally dominant input (safe without pivoting).
#[inline]
pub fn lu_elem(n: usize, i: usize, j: usize) -> f64 {
    if i == j {
        n as f64 + 2.0
    } else {
        ((i * 13 + j * 7) % 19) as f64 / 19.0 - 0.25
    }
}

/// In-place LU of a B×B block (unit lower / upper packed).
fn factor_block(blk: &mut [f64], b: usize) {
    for k in 0..b {
        let pivot = blk[k * b + k];
        for i in (k + 1)..b {
            blk[i * b + k] /= pivot;
            let lik = blk[i * b + k];
            for j in (k + 1)..b {
                blk[i * b + j] -= lik * blk[k * b + j];
            }
        }
    }
}

/// Solve L_kk · X = A_kj for a perimeter-row block (in place).
fn solve_row_block(diag: &[f64], blk: &mut [f64], b: usize) {
    for k in 0..b {
        for i in (k + 1)..b {
            let lik = diag[i * b + k];
            for j in 0..b {
                blk[i * b + j] -= lik * blk[k * b + j];
            }
        }
    }
}

/// Solve X · U_kk = A_ik for a perimeter-column block (in place).
fn solve_col_block(diag: &[f64], blk: &mut [f64], b: usize) {
    for k in 0..b {
        let ukk = diag[k * b + k];
        for i in 0..b {
            blk[i * b + k] /= ukk;
            let xik = blk[i * b + k];
            for j in (k + 1)..b {
                blk[i * b + j] -= xik * diag[k * b + j];
            }
        }
    }
}

/// A_ij -= A_ik × A_kj.
fn update_block(aik: &[f64], akj: &[f64], aij: &mut [f64], b: usize) {
    for i in 0..b {
        for k in 0..b {
            let v = aik[i * b + k];
            for j in 0..b {
                aij[i * b + j] -= v * akj[k * b + j];
            }
        }
    }
}

/// Sequential reference: the same blocked algorithm on a plain vector.
/// Returns the factored matrix.
pub fn reference_factor(p: LuParams) -> Vec<f64> {
    let (n, b) = (p.n, p.block);
    assert_eq!(n % b, 0, "n must be a multiple of the block size");
    let nb = n / b;
    let mut m: Vec<f64> = (0..n * n).map(|x| lu_elem(n, x / n, x % n)).collect();
    let get = |m: &Vec<f64>, bi: usize, bj: usize| -> Vec<f64> {
        let mut blk = vec![0.0; b * b];
        for r in 0..b {
            let src = (bi * b + r) * n + bj * b;
            blk[r * b..(r + 1) * b].copy_from_slice(&m[src..src + b]);
        }
        blk
    };
    let put = |m: &mut Vec<f64>, bi: usize, bj: usize, blk: &[f64]| {
        for r in 0..b {
            let dst = (bi * b + r) * n + bj * b;
            m[dst..dst + b].copy_from_slice(&blk[r * b..(r + 1) * b]);
        }
    };
    for k in 0..nb {
        let mut diag = get(&m, k, k);
        factor_block(&mut diag, b);
        put(&mut m, k, k, &diag);
        for j in (k + 1)..nb {
            let mut blk = get(&m, k, j);
            solve_row_block(&diag, &mut blk, b);
            put(&mut m, k, j, &blk);
        }
        for i in (k + 1)..nb {
            let mut blk = get(&m, i, k);
            solve_col_block(&diag, &mut blk, b);
            put(&mut m, i, k, &blk);
        }
        for i in (k + 1)..nb {
            let aik = get(&m, i, k);
            for j in (k + 1)..nb {
                let akj = get(&m, k, j);
                let mut aij = get(&m, i, j);
                update_block(&aik, &akj, &mut aij, b);
                put(&mut m, i, j, &aij);
            }
        }
    }
    m
}

/// Sequential reference checksum (sum of the packed LU factors).
pub fn reference_checksum(p: LuParams) -> f64 {
    reference_factor(p).iter().sum()
}

fn load_block<T: Transport, C: Coherence>(ctx: &mut ArgoCtx<T, C>, mat: &GlobalF64Array, n: usize, b: usize, bi: usize, bj: usize) -> Vec<f64> {
    let mut blk = vec![0.0; b * b];
    for r in 0..b {
        let src = (bi * b + r) * n + bj * b;
        ctx.read_f64_slice(mat.addr(src), &mut blk[r * b..(r + 1) * b]);
    }
    blk
}

fn store_block<T: Transport, C: Coherence>(ctx: &mut ArgoCtx<T, C>, mat: &GlobalF64Array, n: usize, b: usize, bi: usize, bj: usize, blk: &[f64]) {
    for r in 0..b {
        let dst = (bi * b + r) * n + bj * b;
        ctx.write_f64_slice(mat.addr(dst), &blk[r * b..(r + 1) * b]);
    }
}

/// Run on an Argo cluster.
pub fn run_argo<T: Transport, C: Coherence>(machine: &Arc<ArgoMachine<T, C>>, p: LuParams) -> Outcome {
    let (n, b) = (p.n, p.block);
    assert_eq!(n % b, 0, "n must be a multiple of the block size");
    let nb = n / b;
    let mat = GlobalF64Array::alloc(machine.dsm(), n * n);
    let report = machine.run(move |ctx| {
        let nt = ctx.nthreads();
        // Block-*row* ownership: a thread's blocks are contiguous memory
        // (a block row spans whole matrix rows), so its writes stay on
        // pages no other thread writes — the single-writer classification
        // keeps them across barriers, and only the perimeter row/column of
        // step k migrates. (SPLASH-2's contiguous_blocks allocation has
        // the same goal.)
        let owner = |bi: usize, bj: usize| {
            let _ = bj;
            bi % nt
        };
        // Initialize my blocks.
        for bi in 0..nb {
            for bj in 0..nb {
                if owner(bi, bj) == ctx.tid() {
                    let blk: Vec<f64> = (0..b * b)
                        .map(|x| lu_elem(n, bi * b + x / b, bj * b + x % b))
                        .collect();
                    store_block(ctx, &mat, n, b, bi, bj, &blk);
                }
            }
        }
        ctx.start_measurement();
        ctx.barrier();
        for k in 0..nb {
            if owner(k, k) == ctx.tid() {
                let mut diag = load_block(ctx, &mat, n, b, k, k);
                factor_block(&mut diag, b);
                ctx.thread
                    .compute((b * b * b) as u64 / 3 * costs::LU_FLOP);
                store_block(ctx, &mat, n, b, k, k, &diag);
            }
            ctx.barrier();
            // Perimeter: everyone reads the diagonal block. Row blocks
            // stay with block-row k's owner (distributing them across
            // threads parallelizes the phase but turns block-row k's pages
            // multi-writer — measured slower at our scales).
            let diag = load_block(ctx, &mat, n, b, k, k);
            for j in (k + 1)..nb {
                if owner(k, j) == ctx.tid() {
                    let mut blk = load_block(ctx, &mat, n, b, k, j);
                    solve_row_block(&diag, &mut blk, b);
                    ctx.thread
                        .compute((b * b * b) as u64 / 2 * costs::LU_FLOP);
                    store_block(ctx, &mat, n, b, k, j, &blk);
                }
            }
            for i in (k + 1)..nb {
                if owner(i, k) == ctx.tid() {
                    let mut blk = load_block(ctx, &mat, n, b, i, k);
                    solve_col_block(&diag, &mut blk, b);
                    ctx.thread
                        .compute((b * b * b) as u64 / 2 * costs::LU_FLOP);
                    store_block(ctx, &mat, n, b, i, k, &blk);
                }
            }
            ctx.barrier();
            // Interior updates.
            for i in (k + 1)..nb {
                // Load A_ik once per owned row that needs it.
                let mut aik: Option<Vec<f64>> = None;
                for j in (k + 1)..nb {
                    if owner(i, j) == ctx.tid() {
                        let aik = aik.get_or_insert_with(|| load_block(ctx, &mat, n, b, i, k));
                        let akj = load_block(ctx, &mat, n, b, k, j);
                        let mut aij = load_block(ctx, &mat, n, b, i, j);
                        update_block(aik, &akj, &mut aij, b);
                        ctx.thread.compute((b * b * b) as u64 * costs::LU_FLOP);
                        store_block(ctx, &mat, n, b, i, j, &aij);
                    }
                }
            }
            ctx.barrier();
        }
        // Checksum over my blocks.
        let mut sum = 0.0;
        for bi in 0..nb {
            for bj in 0..nb {
                if owner(bi, bj) == ctx.tid() {
                    sum += load_block(ctx, &mat, n, b, bi, bj).iter().sum::<f64>();
                }
            }
        }
        sum
    });
    outcome_of(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo::ArgoConfig;

    fn small() -> LuParams {
        LuParams { n: 64, block: 8 }
    }

    #[test]
    fn factorization_reconstructs_input() {
        // L·U must equal A (no pivoting needed: diagonally dominant).
        let p = LuParams { n: 16, block: 4 };
        let f = reference_factor(p);
        let n = p.n;
        for i in 0..n {
            for j in 0..n {
                let mut lu = 0.0;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { f[i * n + k] };
                    let u = f[k * n + j];
                    if k < i {
                        lu += l * u;
                    } else {
                        lu += u; // l == 1 on the diagonal of L
                    }
                }
                let a = lu_elem(n, i, j);
                assert!(
                    (lu - a).abs() < 1e-8,
                    "A[{i}][{j}]: reconstructed {lu}, expected {a}"
                );
            }
        }
    }

    #[test]
    fn argo_matches_reference() {
        let m = ArgoMachine::new(ArgoConfig::small(2, 2));
        let out = run_argo(&m, small());
        let reference = reference_checksum(small());
        assert!(
            (out.checksum - reference).abs() < 1e-6 * reference.abs().max(1.0),
            "argo {} vs ref {}",
            out.checksum,
            reference
        );
    }

    #[test]
    fn argo_single_thread_matches_reference_tightly() {
        // Same arithmetic, same order — only the checksum summation order
        // differs (block-wise vs row-major), so the tolerance is tight.
        let m = ArgoMachine::new(ArgoConfig::small(1, 1));
        let out = run_argo(&m, small());
        let reference = reference_checksum(small());
        assert!(
            (out.checksum - reference).abs() < 1e-9 * reference.abs(),
            "argo {} vs ref {}",
            out.checksum,
            reference
        );
    }

    #[test]
    #[should_panic(expected = "multiple of the block size")]
    fn rejects_misaligned_block() {
        let m = ArgoMachine::new(ArgoConfig::small(1, 1));
        run_argo(&m, LuParams { n: 30, block: 8 });
    }
}
