//! Branch-and-bound travelling salesman — a lock-structured application
//! using HQDL end to end (the workload family §4 motivates: critical
//! sections all touching a common dataset, i.e. migratory data).
//!
//! A shared work queue of partial tours and a shared best-so-far bound
//! live under one delegation lock. Workers pop a partial tour, extend it
//! locally (pure compute), and push children / update the bound through
//! delegated critical sections — so the queue and bound stay hot on
//! whichever node currently helps, instead of ping-ponging.


// Indexed loops below mirror the reference kernels (multi-array accesses
// keyed by one index); iterator rewrites would obscure them.
#![allow(clippy::needless_range_loop)]
use crate::harness::Outcome;
use argo::{ArgoConfig, ArgoMachine};
use std::sync::Arc;
use vela::Hqdl;

#[derive(Debug, Clone, Copy)]
pub struct TspParams {
    pub cities: usize,
    pub seed: u64,
}

impl Default for TspParams {
    fn default() -> Self {
        TspParams { cities: 10, seed: 7 }
    }
}

/// Deterministic distance matrix (symmetric, positive).
pub fn distances(p: TspParams) -> Vec<Vec<u32>> {
    let n = p.cities;
    let mut d = vec![vec![0u32; n]; n];
    let mut state = p.seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..n {
        for j in (i + 1)..n {
            let w = (next() % 90 + 10) as u32;
            d[i][j] = w;
            d[j][i] = w;
        }
    }
    d
}

/// A partial tour in the branch-and-bound queue.
#[derive(Debug, Clone)]
struct Partial {
    path: Vec<u8>,
    visited: u32,
    cost: u32,
}

/// Shared search state, protected by one HQDL lock.
struct SearchState {
    queue: Vec<Partial>,
    best: u32,
    outstanding: usize,
}

/// Exact sequential solver (Held-Karp-free, plain DFS B&B) for reference.
pub fn reference_best(p: TspParams) -> u32 {
    let d = distances(p);
    let n = p.cities;
    let mut best = u32::MAX;
    fn dfs(d: &[Vec<u32>], n: usize, last: usize, visited: u32, cost: u32, best: &mut u32) {
        if cost >= *best {
            return;
        }
        if visited.count_ones() as usize == n {
            let total = cost + d[last][0];
            if total < *best {
                *best = total;
            }
            return;
        }
        for next in 1..n {
            if visited & (1 << next) == 0 {
                dfs(d, n, next, visited | (1 << next), cost + d[last][next], best);
            }
        }
    }
    dfs(&d, n, 0, 1, 0, &mut best);
    best
}

/// Parallel branch and bound on an Argo cluster with HQDL-protected shared
/// state. Returns the optimal tour cost as the checksum.
pub fn run_argo(nodes: usize, threads_per_node: usize, p: TspParams) -> Outcome {
    let machine = ArgoMachine::new(ArgoConfig::small(nodes, threads_per_node));
    let dsm = machine.dsm().clone();
    let lock = Hqdl::new(dsm.clone(), 512);
    let d = Arc::new(distances(p));
    let n = p.cities;
    // The search state is plain host data owned by the lock's critical
    // sections; its *access costs* are charged inside the delegated
    // closures (queue/bound words live on the helper's node in spirit).
    let state = Arc::new(parking_lot::Mutex::new(SearchState {
        queue: vec![Partial {
            path: vec![0],
            visited: 1,
            cost: 0,
        }],
        best: u32::MAX,
        outstanding: 1,
    }));

    let report = machine.run(move |ctx| {
        ctx.start_measurement();
        loop {
            // Pop one partial tour (delegated critical section).
            let st = state.clone();
            let popped = lock.delegate_wait(&mut ctx.thread, move |ht| {
                // Queue-touch cost: a few words of shared state.
                ht.compute(60);
                let mut s = st.lock();
                match s.queue.pop() {
                    Some(t) => Some((t, s.best)),
                    None => {
                        if s.outstanding == 0 {
                            None // search finished
                        } else {
                            Some((
                                Partial {
                                    path: Vec::new(),
                                    visited: 0,
                                    cost: 0,
                                },
                                s.best,
                            )) // spin marker: queue empty but work in flight
                        }
                    }
                }
            });
            let Some((partial, best)) = popped else { break };
            if partial.path.is_empty() {
                std::thread::yield_now();
                continue;
            }
            // Expand locally (pure compute, charged per child).
            let last = *partial.path.last().expect("nonempty") as usize;
            let mut children = Vec::new();
            let mut complete: Option<u32> = None;
            if partial.visited.count_ones() as usize == n {
                complete = Some(partial.cost + d[last][0]);
            } else {
                for next in 1..n {
                    if partial.visited & (1 << next) == 0 {
                        let cost = partial.cost + d[last][next];
                        if cost < best {
                            let mut path = partial.path.clone();
                            path.push(next as u8);
                            children.push(Partial {
                                path,
                                visited: partial.visited | (1 << next),
                                cost,
                            });
                        }
                    }
                }
            }
            ctx.thread.compute(40 * (n as u64));
            // Publish children / bound (delegated).
            let st = state.clone();
            lock.delegate_wait(&mut ctx.thread, move |ht| {
                ht.compute(40 + 20 * children.len() as u64);
                let mut s = st.lock();
                if let Some(total) = complete {
                    if total < s.best {
                        s.best = total;
                    }
                }
                let best_now = s.best;
                for c in children {
                    if c.cost < best_now {
                        s.outstanding += 1;
                        s.queue.push(c);
                    }
                }
                s.outstanding -= 1;
            });
        }
        // Everyone reads the final bound.
        let st = state.clone();
        lock.delegate_wait(&mut ctx.thread, move |ht| {
            ht.compute(20);
            st.lock().best as f64
        })
    });
    let best = report.results[0];
    Outcome {
        cycles: report.cycles,
        seconds: report.seconds,
        wall_seconds: report.wall_seconds,
        checksum: best,
        coherence: report.coherence,
        net: report.net,
        profile: report.profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_are_symmetric_and_deterministic() {
        let p = TspParams { cities: 8, seed: 3 };
        let a = distances(p);
        let b = distances(p);
        assert_eq!(a, b);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(a[i][j], a[j][i]);
                if i != j {
                    assert!(a[i][j] >= 10);
                }
            }
        }
    }

    #[test]
    fn parallel_finds_the_optimum() {
        let p = TspParams { cities: 9, seed: 11 };
        let expect = reference_best(p) as f64;
        let out = run_argo(2, 2, p);
        assert_eq!(out.checksum, expect, "wrong tour cost");
        assert!(out.cycles > 0);
    }

    #[test]
    fn different_shapes_agree() {
        let p = TspParams { cities: 8, seed: 5 };
        let expect = reference_best(p) as f64;
        for (nodes, tpn) in [(1, 1), (1, 4), (3, 2)] {
            let out = run_argo(nodes, tpn, p);
            assert_eq!(out.checksum, expect, "{nodes}x{tpn}");
        }
    }
}

