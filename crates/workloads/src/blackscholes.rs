//! Blackscholes (PARSEC): price a portfolio of European options.
//!
//! Paper §5.4 / Figure 13c. Embarrassingly parallel with "only a single
//! barrier synchronization at the end of each benchmark iteration" — the
//! best case for Argo, which scales it to 128 nodes (2048 cores) while the
//! MPI port stops scaling at 16 nodes because its scatter/gather funnels
//! the whole portfolio through rank 0 every iteration.

use crate::costs;
use crate::harness::{outcome_of, run_mpi, MpiCtx, Outcome};

use argo::types::GlobalF64Array;
use argo::ArgoMachine;
use simnet::{CostModel, Tag};
use std::sync::Arc;
use carina::Coherence;
use rma::{Endpoint, Transport};

/// Problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct BsParams {
    pub options: usize,
    pub iterations: usize,
}

impl Default for BsParams {
    fn default() -> Self {
        BsParams {
            options: 16_384,
            iterations: 4,
        }
    }
}

/// Deterministic input generator: option `i`'s (spot, strike, rate, vol,
/// time-to-expiry).
#[inline]
pub fn option_inputs(i: usize) -> (f64, f64, f64, f64, f64) {
    let k = i as f64;
    (
        90.0 + (k % 40.0),
        95.0 + (k % 30.0),
        0.02 + (k % 7.0) * 0.005,
        0.15 + (k % 11.0) * 0.02,
        0.25 + (k % 8.0) * 0.25,
    )
}

/// Cumulative normal distribution (Abramowitz & Stegun 26.2.17), the same
/// approximation the PARSEC kernel uses.
fn cnd(x: f64) -> f64 {
    let l = x.abs();
    let k = 1.0 / (1.0 + 0.2316419 * l);
    let poly = k
        * (0.319381530
            + k * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
    let w = 1.0 - 1.0 / (2.0 * std::f64::consts::PI).sqrt() * (-l * l / 2.0).exp() * poly;
    if x < 0.0 {
        1.0 - w
    } else {
        w
    }
}

/// Black-Scholes European call price.
pub fn bs_call(s: f64, k: f64, r: f64, v: f64, t: f64) -> f64 {
    let d1 = ((s / k).ln() + (r + v * v / 2.0) * t) / (v * t.sqrt());
    let d2 = d1 - v * t.sqrt();
    s * cnd(d1) - k * (-r * t).exp() * cnd(d2)
}

/// Sequential reference checksum (sum of all option prices).
pub fn reference_checksum(p: BsParams) -> f64 {
    (0..p.options)
        .map(|i| {
            let (s, k, r, v, t) = option_inputs(i);
            bs_call(s, k, r, v, t)
        })
        .sum()
}

/// Run on an Argo cluster (also serves as the "Pthreads" baseline when the
/// machine has a single node).
pub fn run_argo<T: Transport, C: Coherence>(machine: &Arc<ArgoMachine<T, C>>, p: BsParams) -> Outcome {
    run_argo_with(machine, p, false)
}

/// As [`run_argo`], optionally allocating the option arrays with
/// block-distributed homes (each thread's chunk mostly node-local) — the
/// per-allocation distribution hint explored by `ablation_distribution`.
pub fn run_argo_with<T: Transport, C: Coherence>(machine: &Arc<ArgoMachine<T, C>>, p: BsParams, blocked: bool) -> Outcome {
    let dsm = machine.dsm();
    let alloc = |dsm: &carina::Dsm<T, C>, len: usize| {
        if blocked {
            GlobalF64Array::alloc_blocked(dsm, len)
        } else {
            GlobalF64Array::alloc(dsm, len)
        }
    };
    let inputs: [GlobalF64Array; 5] = std::array::from_fn(|_| alloc(dsm, p.options));
    let out = alloc(dsm, p.options);
    let report = machine.run(move |ctx| {
        let chunk = ctx.my_chunk(p.options);
        // Distributed initialization (excluded from measurement).
        for i in chunk.clone() {
            let (s, k, r, v, t) = option_inputs(i);
            for (arr, val) in inputs.iter().zip([s, k, r, v, t]) {
                arr.set(ctx, i, val);
            }
        }
        ctx.start_measurement();
        let n = chunk.len();
        let mut bufs: Vec<Vec<f64>> = (0..5).map(|_| vec![0.0; n]).collect();
        let mut prices = vec![0.0; n];
        let mut checksum = 0.0;
        for _ in 0..p.iterations {
            if n > 0 {
                for (arr, buf) in inputs.iter().zip(bufs.iter_mut()) {
                    ctx.read_f64_slice(arr.addr(chunk.start), buf);
                }
                checksum = 0.0;
                for j in 0..n {
                    prices[j] = bs_call(bufs[0][j], bufs[1][j], bufs[2][j], bufs[3][j], bufs[4][j]);
                    checksum += prices[j];
                }
                ctx.thread.compute(n as u64 * costs::BLACKSCHOLES_OPTION);
                ctx.write_f64_slice(out.addr(chunk.start), &prices);
            }
            ctx.barrier();
        }
        checksum
    });
    outcome_of(report)
}

/// MPI port: rank 0 owns the portfolio; every iteration scatters input
/// chunks and gathers prices back (the PARSEC MPI port's structure).
pub fn run_mpi_variant(nodes: usize, ranks_per_node: usize, p: BsParams) -> Outcome {
    let cost = CostModel::paper_2011();
    let (cycles, results, net) = run_mpi(nodes, ranks_per_node, cost, move |ctx: &mut MpiCtx| {
        let ranks = ctx.ranks;
        let mut checksum = 0.0;
        for iter in 0..p.iterations {
            let tag_in = Tag(100 + iter as u32);
            let tag_out = Tag(200 + iter as u32);
            if ctx.rank == 0 {
                // Scatter: send each rank its input chunk (5 f64 per option).
                for r in 1..ranks {
                    let chunk = chunk_of(r, ranks, p.options);
                    let payload = vec![0u8; chunk.len() * 5 * 8];
                    ctx.world.send(&mut ctx.thread, 0, r, tag_in, payload);
                }
                // Compute own chunk.
                let own = chunk_of(0, ranks, p.options);
                ctx.thread.compute(own.len() as u64 * costs::BLACKSCHOLES_OPTION);
                checksum = own
                    .map(|i| {
                        let (s, k, r, v, t) = option_inputs(i);
                        bs_call(s, k, r, v, t)
                    })
                    .sum();
                // Gather: receive each rank's prices.
                for r in 1..ranks {
                    let m = ctx.world.recv(&mut ctx.thread, 0, Some(r), tag_out);
                    for price in m.payload.chunks_exact(8) {
                        checksum += f64::from_le_bytes(price.try_into().expect("8 bytes"));
                    }
                }
            } else {
                let _ = ctx.world.recv(&mut ctx.thread, ctx.rank, Some(0), tag_in);
                let chunk = chunk_of(ctx.rank, ranks, p.options);
                ctx.thread.compute(chunk.len() as u64 * costs::BLACKSCHOLES_OPTION);
                let mut payload = Vec::with_capacity(chunk.len() * 8);
                for i in chunk {
                    let (s, k, r, v, t) = option_inputs(i);
                    payload.extend_from_slice(&bs_call(s, k, r, v, t).to_le_bytes());
                }
                ctx.world.send(&mut ctx.thread, ctx.rank, 0, tag_out, payload);
            }
        }
        checksum
    });
    Outcome {
        cycles,
        seconds: cost.cycles_to_secs(cycles),
        wall_seconds: 0.0,
        checksum: results[0],
        coherence: Default::default(),
        net,
        profile: Default::default(),
    }
}

fn chunk_of(rank: usize, ranks: usize, n: usize) -> std::ops::Range<usize> {
    let per = n.div_ceil(ranks);
    (rank * per).min(n)..((rank + 1) * per).min(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo::ArgoConfig;

    const TOL: f64 = 1e-9;

    fn small() -> BsParams {
        BsParams {
            options: 600,
            iterations: 2,
        }
    }

    #[test]
    fn price_is_sane() {
        // At-the-money call with typical vol: positive, below spot.
        let c = bs_call(100.0, 100.0, 0.05, 0.2, 1.0);
        assert!(c > 5.0 && c < 20.0, "price {c}");
        // Deep in-the-money ≈ intrinsic value.
        let c = bs_call(200.0, 100.0, 0.05, 0.2, 0.5);
        assert!((c - 100.0).abs() < 10.0);
    }

    #[test]
    fn argo_matches_reference() {
        let m = ArgoMachine::new(ArgoConfig::small(2, 2));
        let out = run_argo(&m, small());
        let reference = reference_checksum(small());
        assert!(
            (out.checksum - reference).abs() / reference < TOL,
            "argo {} vs ref {}",
            out.checksum,
            reference
        );
        assert!(out.cycles > 0);
    }

    #[test]
    fn mpi_matches_reference() {
        let out = run_mpi_variant(2, 2, small());
        let reference = reference_checksum(small());
        assert!((out.checksum - reference).abs() / reference < TOL);
    }

    #[test]
    fn parallel_run_is_faster_than_sequential() {
        let p = small();
        let seq = run_argo(&ArgoMachine::new(ArgoConfig::small(1, 1)), p);
        let par = run_argo(&ArgoMachine::new(ArgoConfig::small(1, 8)), p);
        assert!(par.speedup_over(&seq) > 2.0, "speedup {}", par.speedup_over(&seq));
    }
}

#[cfg(test)]
mod invariant_tests {
    use super::*;

    /// Put-call parity: C - P = S - K·e^(-rT), with the put priced via the
    /// same CND machinery. A strong check on the pricing kernel.
    #[test]
    fn put_call_parity_holds() {
        fn bs_put(s: f64, k: f64, r: f64, v: f64, t: f64) -> f64 {
            // P = C - S + K e^{-rT}
            bs_call(s, k, r, v, t) - s + k * (-r * t).exp()
        }
        for i in 0..500 {
            let (s, k, r, v, t) = option_inputs(i);
            let c = bs_call(s, k, r, v, t);
            let p = bs_put(s, k, r, v, t);
            let parity = c - p - (s - k * (-r * t).exp());
            assert!(parity.abs() < 1e-9, "parity violated at {i}: {parity}");
            // Prices are nonnegative and bounded by their no-arbitrage caps.
            assert!(c >= -1e-12 && c <= s + 1e-9, "call bounds at {i}: {c}");
            assert!(p >= -1e-12 && p <= k + 1e-9, "put bounds at {i}: {p}");
        }
    }

    /// Monotonicity in spot: calls are non-decreasing in S.
    #[test]
    fn call_monotone_in_spot() {
        for s10 in 50..150 {
            let s = s10 as f64;
            let a = bs_call(s, 100.0, 0.03, 0.25, 1.0);
            let b = bs_call(s + 1.0, 100.0, 0.03, 0.25, 1.0);
            assert!(b >= a - 1e-12, "not monotone at S={s}");
        }
    }
}
