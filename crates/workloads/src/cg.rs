//! NAS CG: conjugate-gradient iterations on a sparse matrix.
//!
//! Paper §5.5 / Figure 13f: UPC's hand-optimized CG starts with "a
//! significant advantage" on one node, but "withers as the UPC version
//! stops scaling earlier than Argo (at eight nodes, 128 cores) whereas
//! Argo continues up to 32 nodes". The mechanism our simulation reproduces:
//! every UPC rank pulls the whole `p` vector to itself each iteration
//! (per-*thread* traffic), while Argo's per-*node* page cache fetches each
//! page once per node and the S,NW/S,SW classification keeps read-mostly
//! pages across barriers.


// Indexed loops below mirror the reference kernels (multi-array accesses
// keyed by one index); iterator rewrites would obscure them.
#![allow(clippy::needless_range_loop)]
use crate::costs;
use crate::harness::{outcome_of, GlobalReducer, Outcome};
use argo::types::{GlobalF64Array, GlobalU64Array};
use argo::{ArgoConfig, ArgoMachine, PgasCtx};
use simnet::CostModel;
use std::sync::Arc;
use vela::ClockBarrier;
use carina::Coherence;
use rma::{Endpoint, Transport};

#[derive(Debug, Clone, Copy)]
pub struct CgParams {
    /// Matrix dimension.
    pub n: usize,
    /// Nonzeros per row (including the diagonal).
    pub nnz_per_row: usize,
    /// CG iterations.
    pub iterations: usize,
}

impl Default for CgParams {
    fn default() -> Self {
        CgParams {
            n: 4096,
            nnz_per_row: 16,
            iterations: 8,
        }
    }
}

#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic sparse row `i`: `nnz` (column, value) pairs, diagonal
/// first and dominant (keeps the iteration numerically tame).
pub fn row_entries(i: usize, n: usize, nnz: usize) -> Vec<(usize, f64)> {
    let mut out = Vec::with_capacity(nnz);
    out.push((i, nnz as f64 + 2.0));
    for k in 1..nnz {
        let col = (mix((i * nnz + k) as u64) % n as u64) as usize;
        let val = ((mix((i * nnz + k) as u64 ^ 0xABCD) % 1000) as f64 / 1000.0) - 0.5;
        out.push((col, val));
    }
    out
}

/// Sequential reference: run the same CG iterations on plain vectors;
/// returns the checksum (sum of the final z).
pub fn reference_checksum(p: CgParams) -> f64 {
    let n = p.n;
    let rows: Vec<Vec<(usize, f64)>> =
        (0..n).map(|i| row_entries(i, n, p.nnz_per_row)).collect();
    let spmv = |x: &[f64]| -> Vec<f64> {
        rows.iter()
            .map(|r| r.iter().map(|&(c, v)| v * x[c]).sum())
            .collect()
    };
    let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();

    let x = vec![1.0f64; n];
    let mut z = vec![0.0f64; n];
    let mut r = x.clone();
    let mut pv = r.clone();
    let mut rho = dot(&r, &r);
    for _ in 0..p.iterations {
        let q = spmv(&pv);
        let alpha = rho / dot(&pv, &q);
        for i in 0..n {
            z[i] += alpha * pv[i];
            r[i] -= alpha * q[i];
        }
        let rho_new = dot(&r, &r);
        let beta = rho_new / rho;
        rho = rho_new;
        for i in 0..n {
            pv[i] = r[i] + beta * pv[i];
        }
    }
    z.iter().sum()
}

/// Run on an Argo cluster (with `nodes == 1` this is the OpenMP baseline).
pub fn run_argo<T: Transport, C: Coherence>(machine: &Arc<ArgoMachine<T, C>>, prm: CgParams) -> Outcome {
    let dsm = machine.dsm();
    let cfg = *machine.config();
    let n = prm.n;
    let nnz = n * prm.nnz_per_row;
    let rowptr = GlobalU64Array::alloc(dsm, n + 1);
    let colidx = GlobalU64Array::alloc(dsm, nnz);
    let vals = GlobalF64Array::alloc(dsm, nnz);
    let pvec = GlobalF64Array::alloc(dsm, n);
    let reducer = Arc::new(GlobalReducer::new(dsm, cfg.total_threads(), cfg.nodes));
    let report = machine.run(move |ctx| {
        let chunk = ctx.my_chunk(n);
        // Build my rows of the matrix (excluded from measurement).
        for i in chunk.clone() {
            let entries = row_entries(i, n, prm.nnz_per_row);
            ctx.write_u64(rowptr.addr(i), (i * prm.nnz_per_row) as u64);
            for (k, &(c, v)) in entries.iter().enumerate() {
                let at = i * prm.nnz_per_row + k;
                ctx.write_u64(colidx.addr(at), c as u64);
                ctx.write_f64(vals.addr(at), v);
            }
        }
        if ctx.tid() == 0 {
            ctx.write_u64(rowptr.addr(n), nnz as u64);
        }
        ctx.start_measurement();
        // Thread-local vector chunks (z, r, q live per owner; p is the
        // globally shared vector, rebuilt chunk-wise each iteration).
        let m = chunk.len();
        let mut z = vec![0.0f64; m];
        let mut r = vec![1.0f64; m]; // r = x = ones
        let mut q = vec![0.0f64; m];
        let mut p_local = r.clone();
        if m > 0 {
            ctx.write_f64_slice(pvec.addr(chunk.start), &p_local);
        }
        let mut rho = reducer.sum(ctx, r.iter().map(|v| v * v).sum());
        // (reducer.sum barriers make everyone's p visible)
        let mut vals_buf = vec![0.0f64; m * prm.nnz_per_row];
        let mut cols_buf = vec![0u64; m * prm.nnz_per_row];
        if m > 0 {
            ctx.read_f64_slice(vals.addr(chunk.start * prm.nnz_per_row),
                &mut vals_buf,
            );
            ctx.read_u64_slice(colidx.addr(chunk.start * prm.nnz_per_row),
                &mut cols_buf,
            );
        }
        for _ in 0..prm.iterations {
            // q = A p over my rows; p's remote elements come through the
            // page cache (fine-grained reads, the CG access pattern).
            for li in 0..m {
                let mut acc = 0.0;
                for k in 0..prm.nnz_per_row {
                    let at = li * prm.nnz_per_row + k;
                    let col = cols_buf[at] as usize;
                    let pv = if col >= chunk.start && col < chunk.end {
                        p_local[col - chunk.start]
                    } else {
                        ctx.read_f64(pvec.addr(col))
                    };
                    acc += vals_buf[at] * pv;
                }
                q[li] = acc;
            }
            ctx.thread
                .compute((m * prm.nnz_per_row) as u64 * costs::CG_NONZERO);
            let pq = reducer.sum(ctx, p_local.iter().zip(&q).map(|(a, b)| a * b).sum());
            let alpha = rho / pq;
            for li in 0..m {
                z[li] += alpha * p_local[li];
                r[li] -= alpha * q[li];
            }
            ctx.thread.compute(2 * m as u64 * costs::VEC_OP);
            let rho_new = reducer.sum(ctx, r.iter().map(|v| v * v).sum());
            let beta = rho_new / rho;
            rho = rho_new;
            for li in 0..m {
                p_local[li] = r[li] + beta * p_local[li];
            }
            ctx.thread.compute(m as u64 * costs::VEC_OP);
            if m > 0 {
                ctx.write_f64_slice(pvec.addr(chunk.start), &p_local);
            }
            ctx.barrier(); // publish p for the next SpMV
        }
        z.iter().sum::<f64>()
    });
    outcome_of(report)
}

/// UPC-style run: each rank keeps its vector chunks local, pulls the whole
/// `p` vector with a bulk transfer every iteration, and runs the
/// hand-optimized kernel.
pub fn run_pgas(nodes: usize, threads_per_node: usize, prm: CgParams) -> Outcome {
    let cfg = ArgoConfig::small(nodes, threads_per_node);
    let machine = ArgoMachine::new(cfg);
    let dsm = machine.dsm().clone();
    let n = prm.n;
    let total = cfg.total_threads();
    let pvec = GlobalF64Array::alloc(&dsm, n);
    let slots = dsm
        .allocator()
        .alloc(total as u64 * mem::PAGE_BYTES, mem::PAGE_BYTES)
        .expect("global memory");
    let sum_slot = dsm.allocator().alloc_pages(1).expect("global memory");
    let rounds = (nodes.max(2) as u64).next_power_of_two().trailing_zeros() as u64;
    let barrier = Arc::new(ClockBarrier::new(
        total,
        2 * CostModel::paper_2011().network_latency * rounds,
    ));
    let b2 = barrier.clone();
    // A tiny PGAS all-reduce built from fine-grained remote ops.
    let reduce = move |ctx: &mut argo::ArgoCtx, pgas: &PgasCtx, v: f64| -> f64 {
        let my = slots.offset(ctx.tid() as u64 * mem::PAGE_BYTES);
        pgas.write_f64(&mut ctx.thread, my, v);
        b2.wait(&mut ctx.thread);
        if ctx.tid() == 0 {
            let mut s = 0.0;
            for t in 0..ctx.nthreads() {
                s += pgas.read_f64(&mut ctx.thread, slots.offset(t as u64 * mem::PAGE_BYTES));
            }
            pgas.write_f64(&mut ctx.thread, sum_slot, s);
        }
        b2.wait(&mut ctx.thread);
        pgas.read_f64(&mut ctx.thread, sum_slot)
    };
    let report = machine.run(move |ctx| {
        let pgas = PgasCtx::new(ctx.dsm().clone());
        let chunk = ctx.my_chunk(n);
        let m = chunk.len();
        // Rank-local matrix rows (UPC keeps its share in private memory).
        let rows: Vec<Vec<(usize, f64)>> = chunk
            .clone()
            .map(|i| row_entries(i, n, prm.nnz_per_row))
            .collect();
        let mut z = vec![0.0f64; m];
        let mut r = vec![1.0f64; m];
        let mut q = vec![0.0f64; m];
        let mut p_local = r.clone();
        if m > 0 {
            pgas.bulk_write_f64(&mut ctx.thread, pvec.addr(chunk.start), &p_local);
        }
        let mut rho = reduce(ctx, &pgas, r.iter().map(|v| v * v).sum());
        for _ in 0..prm.iterations {
            // Pull the whole p vector (per-rank traffic — the UPC cost).
            let p_all = pgas.bulk_read_f64(&mut ctx.thread, pvec.addr(0), n);
            for li in 0..m {
                let mut acc = 0.0;
                for &(c, v) in &rows[li] {
                    acc += v * p_all[c];
                }
                q[li] = acc;
            }
            ctx.thread
                .compute((m * prm.nnz_per_row) as u64 * costs::CG_NONZERO_OPTIMIZED);
            let pq = reduce(ctx, &pgas, p_local.iter().zip(&q).map(|(a, b)| a * b).sum());
            let alpha = rho / pq;
            for li in 0..m {
                z[li] += alpha * p_local[li];
                r[li] -= alpha * q[li];
            }
            let rho_new = reduce(ctx, &pgas, r.iter().map(|v| v * v).sum());
            let beta = rho_new / rho;
            rho = rho_new;
            for li in 0..m {
                p_local[li] = r[li] + beta * p_local[li];
            }
            ctx.thread.compute(3 * m as u64 * costs::VEC_OP);
            if m > 0 {
                pgas.bulk_write_f64(&mut ctx.thread, pvec.addr(chunk.start), &p_local);
            }
            barrier.wait(&mut ctx.thread);
        }
        z.iter().sum::<f64>()
    });
    outcome_of(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CgParams {
        CgParams {
            n: 300,
            nnz_per_row: 6,
            iterations: 4,
        }
    }

    #[test]
    fn rows_are_deterministic_and_diagonal_heavy() {
        let r1 = row_entries(5, 100, 8);
        let r2 = row_entries(5, 100, 8);
        assert_eq!(r1, r2);
        assert_eq!(r1[0].0, 5);
        assert!(r1[0].1 > 8.0);
        assert!(r1.iter().all(|&(c, _)| c < 100));
    }

    #[test]
    fn argo_matches_reference() {
        let m = ArgoMachine::new(ArgoConfig::small(2, 2));
        let out = run_argo(&m, small());
        let reference = reference_checksum(small());
        assert!(
            (out.checksum - reference).abs() < 1e-6 * reference.abs().max(1.0),
            "argo {} vs ref {}",
            out.checksum,
            reference
        );
    }

    #[test]
    fn pgas_matches_reference() {
        let out = run_pgas(2, 2, small());
        let reference = reference_checksum(small());
        assert!(
            (out.checksum - reference).abs() < 1e-6 * reference.abs().max(1.0),
            "pgas {} vs ref {}",
            out.checksum,
            reference
        );
    }

    #[test]
    fn reference_iteration_reduces_residual() {
        // The diagonal-dominant system should make CG reduce r·r.
        let p = small();
        let n = p.n;
        let rows: Vec<Vec<(usize, f64)>> =
            (0..n).map(|i| row_entries(i, n, p.nnz_per_row)).collect();
        let spmv = |x: &[f64]| -> Vec<f64> {
            rows.iter()
                .map(|r| r.iter().map(|&(c, v)| v * x[c]).sum())
                .collect()
        };
        let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();
        let mut r = vec![1.0f64; n];
        let mut pv = r.clone();
        let mut rho = dot(&r, &r);
        let rho0 = rho;
        for _ in 0..p.iterations {
            let q = spmv(&pv);
            let alpha = rho / dot(&pv, &q);
            for i in 0..n {
                r[i] -= alpha * q[i];
            }
            let rho_new = dot(&r, &r);
            let beta = rho_new / rho;
            rho = rho_new;
            for i in 0..n {
                pv[i] = r[i] + beta * pv[i];
            }
        }
        assert!(rho < rho0, "residual grew: {rho} vs {rho0}");
    }
}

