//! Shared infrastructure for the benchmark applications: outcome types,
//! speedup math, an MPI-style rank runner, and a hierarchical global
//! reducer for Argo programs.

use argo::ArgoCtx;
use argo::types::GlobalF64Array;
use carina::{Coherence, CoherenceSnapshot};
use rma::Transport;
use simnet::stats::NetStatsSnapshot;
use simnet::{ClusterTopology, CostModel, Interconnect, MsgWorld, NodeId, SimThread};
use std::sync::Arc;

/// The outcome of one benchmark run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Virtual cycles of the measured section (0 on the native backend).
    pub cycles: u64,
    /// Seconds at the cost model's CPU frequency.
    pub seconds: f64,
    /// Wall-clock seconds of the parallel region.
    pub wall_seconds: f64,
    /// Workload-defined checksum for cross-variant validation.
    pub checksum: f64,
    pub coherence: CoherenceSnapshot,
    pub net: NetStatsSnapshot,
    /// Latency histograms of the run (merged across nodes).
    pub profile: obs::ProfileSnapshot,
}

impl Outcome {
    /// Speedup of `self` relative to a baseline run (typically sequential).
    pub fn speedup_over(&self, baseline: &Outcome) -> f64 {
        baseline.cycles as f64 / self.cycles as f64
    }

    /// Two checksums agree to a relative tolerance (floating-point sums
    /// reorder across thread counts).
    pub fn checksum_matches(&self, other: &Outcome, rel_tol: f64) -> bool {
        let denom = self.checksum.abs().max(other.checksum.abs()).max(1e-12);
        ((self.checksum - other.checksum).abs() / denom) < rel_tol
    }
}

/// Fold an Argo run report whose per-thread results are checksum partials
/// into an [`Outcome`] (checksum = sum of partials).
pub fn outcome_of(report: argo::RunReport<f64>) -> Outcome {
    Outcome {
        cycles: report.cycles,
        seconds: report.seconds,
        wall_seconds: report.wall_seconds,
        checksum: report.results.iter().sum(),
        coherence: report.coherence,
        net: report.net,
        profile: report.profile,
    }
}

/// Context handed to each rank of an MPI-style run.
pub struct MpiCtx {
    pub thread: SimThread,
    pub world: Arc<MsgWorld>,
    pub rank: usize,
    pub ranks: usize,
}

impl MpiCtx {
    /// This rank's contiguous chunk of `0..n`.
    pub fn my_chunk(&self, n: usize) -> std::ops::Range<usize> {
        let per = n.div_ceil(self.ranks);
        let lo = (self.rank * per).min(n);
        let hi = ((self.rank + 1) * per).min(n);
        lo..hi
    }
}

/// Run an MPI-style program: `ranks_per_node` ranks on each of `nodes`
/// machines, real threads, virtual clocks, message passing via `MsgWorld`.
/// Returns (max cycles, per-rank results).
pub fn run_mpi<R, F>(
    nodes: usize,
    ranks_per_node: usize,
    cost: CostModel,
    f: F,
) -> (u64, Vec<R>, NetStatsSnapshot)
where
    R: Send + 'static,
    F: Fn(&mut MpiCtx) -> R + Send + Sync + 'static,
{
    let topo = ClusterTopology {
        nodes,
        sockets_per_node: 4,
        cores_per_socket: ranks_per_node.div_ceil(4).max(1),
    };
    let net = Interconnect::new(topo, cost);
    let total = nodes * ranks_per_node;
    let locs: Vec<_> = (0..total)
        .map(|r| topo.loc(NodeId((r / ranks_per_node) as u16), r % ranks_per_node))
        .collect();
    let world = MsgWorld::new(net.clone(), locs.clone());
    let f = Arc::new(f);
    let handles: Vec<_> = (0..total)
        .map(|rank| {
            let world = world.clone();
            let net = net.clone();
            let f = f.clone();
            let loc = locs[rank];
            std::thread::Builder::new()
                .name(format!("mpi-r{rank}"))
                .stack_size(1 << 20)
                .spawn(move || {
                    let mut ctx = MpiCtx {
                        thread: SimThread::new(loc, net),
                        world,
                        rank,
                        ranks: total,
                    };
                    let r = f(&mut ctx);
                    (ctx.thread.now(), r)
                })
                .expect("spawn mpi rank")
        })
        .collect();
    let mut cycles = 0;
    let mut results = Vec::with_capacity(total);
    for h in handles {
        let (c, r) = h.join().expect("mpi rank panicked");
        cycles = cycles.max(c);
        results.push(r);
    }
    (cycles, results, net.stats().snapshot())
}

/// A hierarchical sum-reducer for Argo programs.
///
/// Each thread deposits its partial in a page-padded slot (avoiding false
/// sharing between writer nodes); after a barrier, thread 0 of each node
/// sums its node's slots locally-in-cache and publishes a node partial;
/// after another barrier, every thread reads the node partials and sums
/// them. Costs scale with node count, not thread count — reductions are
/// one of the things that bound CG's scaling in the paper.
pub struct GlobalReducer {
    /// One page-padded slot per thread.
    thread_slots: GlobalF64Array,
    /// One page-padded slot per node.
    node_slots: GlobalF64Array,
    threads_per_node: usize,
    nodes: usize,
}

/// f64 slots padded to one page so each lives on its own page.
const SLOT_STRIDE: usize = 512;

impl GlobalReducer {
    pub fn new<T: Transport, C: Coherence>(dsm: &carina::Dsm<T, C>, nthreads: usize, nodes: usize) -> Self {
        GlobalReducer {
            thread_slots: GlobalF64Array::alloc(dsm, nthreads * SLOT_STRIDE),
            node_slots: GlobalF64Array::alloc(dsm, nodes * SLOT_STRIDE),
            threads_per_node: nthreads / nodes,
            nodes,
        }
    }

    /// Collective sum across all region threads. Every thread receives the
    /// total. Involves two barriers.
    pub fn sum<T: Transport, C: Coherence>(&self, ctx: &mut ArgoCtx<T, C>, value: f64) -> f64 {
        let tid = ctx.tid();
        self.thread_slots.set(ctx, tid * SLOT_STRIDE, value);
        ctx.barrier();
        let node = ctx.node();
        if tid.is_multiple_of(self.threads_per_node) {
            // Node leader: sum this node's thread slots.
            let mut partial = 0.0;
            for i in 0..self.threads_per_node {
                let t = node * self.threads_per_node + i;
                partial += self.thread_slots.get(ctx, t * SLOT_STRIDE);
            }
            self.node_slots.set(ctx, node * SLOT_STRIDE, partial);
        }
        ctx.barrier();
        let mut total = 0.0;
        for n in 0..self.nodes {
            total += self.node_slots.get(ctx, n * SLOT_STRIDE);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argo::{ArgoConfig, ArgoMachine};
    use simnet::Tag;

    #[test]
    fn reducer_sums_across_cluster() {
        let m = ArgoMachine::new(ArgoConfig::small(2, 3));
        let red = Arc::new(GlobalReducer::new(m.dsm(), 6, 2));
        let report = m.run(move |ctx| red.sum(ctx, (ctx.tid() + 1) as f64));
        assert!(report.results.iter().all(|&s| s == 21.0));
    }

    #[test]
    fn mpi_runner_ring_exchange() {
        let (cycles, results, _) = run_mpi(3, 2, CostModel::paper_2011(), |ctx| {
            let next = (ctx.rank + 1) % ctx.ranks;
            let prev = (ctx.rank + ctx.ranks - 1) % ctx.ranks;
            ctx.world.send(
                &mut ctx.thread,
                ctx.rank,
                next,
                Tag(1),
                vec![ctx.rank as u8],
            );
            let m = ctx.world.recv(&mut ctx.thread, ctx.rank, Some(prev), Tag(1));
            m.payload[0] as usize
        });
        assert!(cycles > 0);
        assert_eq!(results, vec![5, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn outcome_math() {
        let mk = |cycles, checksum| Outcome {
            cycles,
            seconds: 0.0,
            wall_seconds: 0.0,
            checksum,
            coherence: Default::default(),
            net: Default::default(),
            profile: Default::default(),
        };
        let seq = mk(1000, 5.0);
        let par = mk(250, 5.0000001);
        assert_eq!(par.speedup_over(&seq), 4.0);
        assert!(par.checksum_matches(&seq, 1e-6));
        assert!(!mk(1, 6.0).checksum_matches(&seq, 1e-6));
    }
}
