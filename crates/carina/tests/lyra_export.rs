//! Golden tests for the Lyra flight-recorder export: the chrome trace must
//! parse, carry honest drop accounting, link every multi-hop span with a
//! well-formed flow-arrow chain (`s` → `t`* → `f`), and draw cross-node
//! requester→home arrows for remote verbs. The whole export must also be
//! byte-identical across identical simulated runs — the trace is itself an
//! artifact the determinism probes may diff.

use carina::{CarinaConfig, Dsm};
use mem::{GlobalAddr, PAGE_BYTES};
use obs::JsonValue;
use rma::{ClusterTopology, CostModel, NodeId, SimTransport, Transport};
use std::collections::BTreeMap;
use std::sync::Arc;

fn small_cluster() -> (Arc<SimTransport>, Arc<Dsm>) {
    let topo = ClusterTopology::tiny(2);
    let net = SimTransport::new(topo, CostModel::paper_2011());
    let dsm = Dsm::new(net.clone(), 1 << 20, CarinaConfig::default());
    (net, dsm)
}

/// Producer/consumer rounds: write faults and read misses against pages
/// homed on the *other* node, so every round issues remote verbs.
fn run_workload(net: &Arc<SimTransport>, dsm: &Dsm) {
    let topo = *net.topology();
    let mut a = <SimTransport as Transport>::endpoint(net, topo.loc(NodeId(0), 0));
    let mut b = <SimTransport as Transport>::endpoint(net, topo.loc(NodeId(1), 0));
    let base = dsm.total_bytes() / 2; // homed on node 1
    for round in 0..3u64 {
        for p in 0..4u64 {
            let addr = GlobalAddr(base + p * PAGE_BYTES);
            dsm.write_u64(&mut a, addr, round * 100 + p);
        }
        dsm.sd_fence(&mut a);
        dsm.si_fence(&mut b);
        for p in 0..4u64 {
            let addr = GlobalAddr(base + p * PAGE_BYTES);
            assert_eq!(dsm.read_u64(&mut b, addr), round * 100 + p);
        }
        dsm.sd_fence(&mut b);
        dsm.si_fence(&mut a);
    }
}

#[test]
fn flight_recorder_trace_links_spans_with_flow_arrows() {
    let (net, dsm) = small_cluster();
    run_workload(&net, &dsm);

    let json = dsm.lyra().to_chrome_trace();
    let doc = JsonValue::parse(&json).expect("lyra trace must be valid JSON");

    // Honest accounting in the header: nothing lost in this small run.
    let other = doc.get("otherData").expect("otherData metadata");
    let submitted = other.get("submitted").unwrap().as_u64().unwrap();
    let kept = other.get("kept").unwrap().as_u64().unwrap();
    let dropped = other.get("dropped").unwrap().as_u64().unwrap();
    assert!(submitted > 0, "workload must submit records");
    assert_eq!(kept + dropped, submitted);
    assert_eq!(dropped, 0, "ring sized to keep this whole run");

    let events = doc.get("traceEvents").expect("traceEvents array");
    let items = events.as_arr().unwrap();

    // Protocol sites appear as named slices carrying their span.
    for site in ["read_miss", "write_fault", "si_fence", "sd_fence"] {
        assert!(
            items.iter().any(|e| e.get("name").and_then(|n| n.as_str()) == Some(site)),
            "missing site slice {site}"
        );
    }

    // Group flow events by span id: each chain must open with exactly one
    // `s`, close with exactly one `f`, bind later hops with `bp:e`, and
    // run in non-decreasing ts order.
    let mut chains: BTreeMap<String, Vec<&JsonValue>> = BTreeMap::new();
    for ev in items {
        let ph = ev.get("ph").unwrap().as_str().unwrap();
        if matches!(ph, "s" | "t" | "f") {
            let id = ev.get("id").unwrap().as_str().unwrap().to_string();
            chains.entry(id).or_default().push(ev);
        }
    }
    assert!(!chains.is_empty(), "expected flow-arrow chains");
    for (id, evs) in &chains {
        assert!(evs.len() >= 2, "chain {id} must have 2+ hops");
        let phases: Vec<&str> =
            evs.iter().map(|e| e.get("ph").unwrap().as_str().unwrap()).collect();
        assert_eq!(phases.iter().filter(|p| **p == "s").count(), 1, "chain {id}: one start");
        assert_eq!(phases.iter().filter(|p| **p == "f").count(), 1, "chain {id}: one finish");
        let min_ts =
            evs.iter().map(|e| e.get("ts").unwrap().as_u64().unwrap()).min().unwrap();
        for ev in evs {
            let ts = ev.get("ts").unwrap().as_u64().unwrap();
            match ev.get("ph").unwrap().as_str().unwrap() {
                "s" => {
                    assert!(ev.get("bp").is_none(), "chain {id}: start has no bp");
                    assert_eq!(ts, min_ts, "chain {id}: start must be the earliest hop");
                }
                _ => assert_eq!(
                    ev.get("bp").unwrap().as_str(),
                    Some("e"),
                    "chain {id}: non-start hops bind to enclosing"
                ),
            }
        }
    }

    // Cross-node arrows: a remote read miss from node 1 against node 0's
    // directory (and vice versa) lands an `arrive` instant on the home
    // track, chained under the requester's span.
    let arrive: Vec<&JsonValue> = items
        .iter()
        .filter(|e| {
            e.get("name").and_then(|n| n.as_str()).is_some_and(|n| n.starts_with("arrive "))
        })
        .collect();
    assert!(!arrive.is_empty(), "remote verbs must mark arrival on the home track");
    for ev in &arrive {
        let span = ev.get("args").unwrap().get("span").unwrap().as_str().unwrap();
        let home = ev.get("tid").unwrap().as_u64().unwrap();
        let chain = chains.get(span).unwrap_or_else(|| panic!("arrive span {span} unchained"));
        assert!(
            chain.iter().any(|e| e.get("tid").unwrap().as_u64() == Some(home)),
            "chain {span} must hop through home track {home}"
        );
        // The issuing VerbIssue slice carries the same span on another
        // track: the arrow is genuinely cross-node.
        assert!(
            items.iter().any(|e| {
                e.get("name").and_then(|n| n.as_str()) == Some("verb_issue")
                    && e.get("args").and_then(|a| a.get("span")).and_then(|s| s.as_str())
                        == Some(span)
                    && e.get("tid").unwrap().as_u64() != Some(home)
            }),
            "span {span} needs a verb_issue slice on the requester track"
        );
    }
}

#[test]
fn flight_recorder_trace_is_deterministic_across_runs() {
    let export = || {
        let (net, dsm) = small_cluster();
        run_workload(&net, &dsm);
        dsm.lyra().to_chrome_trace()
    };
    let a = export();
    let b = export();
    assert_eq!(a, b, "identical simulated runs must export identical traces");
    assert!(a.len() > 512, "trace should be substantial, got {} bytes", a.len());
}

#[test]
fn disabled_recorder_exports_empty_trace_and_counts_nothing() {
    let (net, dsm) = small_cluster();
    dsm.lyra().set_enabled(false);
    run_workload(&net, &dsm);
    let stats = dsm.lyra().stats();
    assert_eq!(stats.submitted, 0, "disabled recorder must not count submissions");
    assert_eq!(stats.kept, 0);
    let doc = JsonValue::parse(&dsm.lyra().to_chrome_trace()).unwrap();
    // Only the per-node thread_name metadata survives.
    assert!(doc
        .get("traceEvents")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .all(|e| e.get("ph").unwrap().as_str() == Some("M")));
}
