//! Multi-threaded stress over the lock-free structures added for host
//! performance: the seqlock read fast path, occupancy-driven fence sweeps,
//! sharded statistics, and the ticketed write buffer. Real OS threads race
//! real fences and evictions; afterwards home memory, the statistics
//! totals, and the protocol invariants must all line up exactly.

use carina::{CarinaConfig, Dsm};
use mem::{CacheConfig, GlobalAddr, PAGE_BYTES};
use simnet::testkit::tiny_net;
use simnet::{ClusterTopology, CostModel, Interconnect, NodeId, SimThread};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Threads on several nodes hammer private stripes through write/fence/read
/// cycles. Every remote word write lands in exactly one of
/// `write_hits`/`write_faults`, every fence is counted by its issuer's
/// shard, and the final home contents are the DRF-deterministic last
/// values — none of which may be disturbed by racing sweeps.
#[test]
fn concurrent_stripes_account_every_access() {
    const NODES: u64 = 3;
    const THREADS: u64 = 6;
    const ROUNDS: u64 = 12;
    const SLOTS: u64 = 40;
    let net = tiny_net(NODES as usize);
    let cfg = CarinaConfig {
        write_buffer_pages: 4, // force overflow downgrades mid-round
        ..Default::default()
    };
    let dsm = Dsm::new(net.clone(), 8 << 20, cfg);

    // Thread `id`'s slot `s` lives at word (s*THREADS + id) of a page block
    // starting at page 64: stripes interleave within pages, so threads
    // genuinely share cache lines and directory entries without racing on
    // any single word (DRF).
    let addr_of = |id: u64, s: u64| GlobalAddr(64 * PAGE_BYTES + (s * THREADS + id) * 8);

    let handles: Vec<_> = (0..THREADS)
        .map(|id| {
            let dsm = dsm.clone();
            let net = net.clone();
            std::thread::spawn(move || {
                let node = (id % NODES) as u16;
                let mut t = simnet::testkit::thread(&net, node, (id / NODES) as usize);
                let mut remote_writes = 0u64;
                for round in 0..ROUNDS {
                    for s in 0..SLOTS {
                        let addr = addr_of(id, s);
                        if dsm.home_of(addr) != node {
                            remote_writes += 1;
                        }
                        dsm.write_u64(&mut t, addr, id << 32 | round << 8 | s);
                    }
                    dsm.sd_fence(&mut t);
                    dsm.si_fence(&mut t);
                    for s in 0..SLOTS {
                        // Our stripe is ours alone: reads must return our
                        // latest value no matter what other threads' fences
                        // and evictions are doing to shared slots.
                        assert_eq!(
                            dsm.read_u64(&mut t, addr_of(id, s)),
                            id << 32 | round << 8 | s,
                            "thread {id} round {round} slot {s}"
                        );
                    }
                }
                dsm.sd_fence(&mut t);
                remote_writes
            })
        })
        .collect();
    let total_remote_writes: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

    // Home memory: the deterministic last round survived.
    for id in 0..THREADS {
        for s in 0..SLOTS {
            assert_eq!(
                dsm.peek_u64(addr_of(id, s)),
                id << 32 | (ROUNDS - 1) << 8 | s,
                "thread {id} slot {s} final value"
            );
        }
    }

    // Stats totals (merged across shards) match the access counts exactly.
    let s = dsm.stats().snapshot();
    assert_eq!(
        s.write_hits + s.write_faults,
        total_remote_writes,
        "every remote word write is a hit or a fault: {s:?}"
    );
    assert_eq!(s.sd_fences, THREADS * (ROUNDS + 1));
    assert_eq!(s.si_fences, THREADS * ROUNDS);
    assert!(s.twins_created <= s.write_faults);
    assert!(s.writebacks > 0, "tiny write buffer must have overflowed");
    assert!(
        s.read_hits + s.read_misses >= THREADS * ROUNDS * SLOTS * 2 / NODES,
        "remote reads unaccounted: {s:?}"
    );

    // Quiescent: all internal invariants hold (write buffers match dirty
    // sets, registrations are subsets of home maps, ...).
    let problems = dsm.check_invariants();
    assert!(problems.is_empty(), "invariants violated: {problems:?}");
}

/// Sharded write-buffer torture: pusher threads feed disjoint page ranges
/// (with interleaved removals) while a fencer thread drains concurrently.
/// Accounting must be airtight — every push is resolved exactly once, as an
/// overflow victim, a successful removal, or a drained entry — and the
/// buffer must end empty. A lost downgrade here would be silent data loss
/// at the next SD fence.
#[test]
fn sharded_write_buffer_loses_nothing_under_contention() {
    use carina::WriteBuffer;
    use mem::PageNum;
    use std::collections::HashMap;

    const PUSHERS: u64 = 4;
    const PAGES_EACH: u64 = 3_000;
    let wb = Arc::new(WriteBuffer::with_shards(64, 8));
    let stop = Arc::new(AtomicBool::new(false));

    // Fencer: drains everything, repeatedly, while pushes are in flight.
    let drained = {
        let wb = wb.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut got = Vec::new();
            while !stop.load(Ordering::Acquire) {
                got.extend(wb.drain());
            }
            got.extend(wb.drain()); // sweep what raced the stop flag
            got
        })
    };

    // Pushers own disjoint ranges, so no page is ever live twice; each
    // removes every third page right after pushing it (the eviction path).
    let pushers: Vec<_> = (0..PUSHERS)
        .map(|id| {
            let wb = wb.clone();
            std::thread::spawn(move || {
                let mut victims = Vec::new();
                let mut removed = Vec::new();
                for i in 0..PAGES_EACH {
                    let page = PageNum(id * PAGES_EACH + i);
                    if let Some(v) = wb.push(page) {
                        victims.push(v);
                    }
                    if i % 3 == 0 && wb.remove(page) {
                        removed.push(page);
                    }
                }
                (victims, removed)
            })
        })
        .collect();

    let mut counts: HashMap<u64, u64> = HashMap::new();
    for h in pushers {
        let (victims, removed) = h.join().unwrap();
        for p in victims.into_iter().chain(removed) {
            *counts.entry(p.0).or_default() += 1;
        }
    }
    stop.store(true, Ordering::Release);
    for p in drained.join().unwrap() {
        *counts.entry(p.0).or_default() += 1;
    }

    assert!(wb.is_empty(), "buffer must end empty, len={}", wb.len());
    assert_eq!(
        counts.len() as u64,
        PUSHERS * PAGES_EACH,
        "some pushed pages were never resolved"
    );
    let dupes: Vec<_> = counts.iter().filter(|&(_, &c)| c != 1).collect();
    assert!(
        dupes.is_empty(),
        "pages resolved more than once (duplicate downgrade): {dupes:?}"
    );
}

/// Seqlock torture: two read-only pages fight over a single cache slot
/// while reader threads race the evict/refill churn on the lock-free fast
/// path. A reader must never observe page A's identity with page B's data,
/// no matter how the optimistic read interleaves with retags.
#[test]
fn seqlock_readers_never_mix_pages_under_eviction_churn() {
    let topo = ClusterTopology {
        nodes: 2,
        sockets_per_node: 2,
        cores_per_socket: 2,
    };
    let net = Interconnect::new(topo, CostModel::paper_2011());
    let cfg = CarinaConfig {
        cache: CacheConfig::new(1, 1), // every remote page shares the slot
        ..Default::default()
    };
    let dsm = Dsm::new(net.clone(), 1 << 20, cfg);

    // Two remote (odd ⇒ homed node 1) pages with distinct value patterns.
    let a = GlobalAddr(PAGE_BYTES);
    let b = GlobalAddr(3 * PAGE_BYTES);
    const VA: u64 = 0xA5A5_A5A5_A5A5_A5A5;
    const VB: u64 = 0x5B5B_5B5B_5B5B_5B5B;
    dsm.poke_u64(a, VA);
    dsm.poke_u64(b, VB);

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|core| {
            let dsm = dsm.clone();
            let net = net.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut t = SimThread::new(topo.loc(NodeId(0), core), net);
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    assert_eq!(dsm.read_u64(&mut t, a), VA, "page A returned foreign data");
                    assert_eq!(dsm.read_u64(&mut t, b), VB, "page B returned foreign data");
                    reads += 2;
                }
                reads
            })
        })
        .collect();

    // Churner: force A/B to alternate in the slot (retag + refill storms)
    // and sprinkle SI fences so occupancy flips too.
    let mut t = SimThread::new(topo.loc(NodeId(0), 3), net);
    for round in 0..20_000u64 {
        let _ = dsm.read_u64(&mut t, if round % 2 == 0 { a } else { b });
        if round % 64 == 0 {
            dsm.si_fence(&mut t);
        }
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0);

    let s = dsm.stats().snapshot();
    // The slot is shared by all of node 0's threads: the churn must have
    // produced both fast-path hits and refill misses.
    assert!(s.read_hits > 0 && s.read_misses > 0, "churn degenerate: {s:?}");
    let problems = dsm.check_invariants();
    assert!(problems.is_empty(), "invariants violated: {problems:?}");
}
