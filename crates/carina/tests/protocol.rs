//! Integration tests of the Carina protocol state machine: classification
//! transitions, deferred invalidation, diffs under false sharing, write
//! buffering, and the fence semantics that make DRF programs SC.

use carina::{CarinaConfig, ClassificationMode, Dsm, PageClass, WriterClass};
use mem::{CacheConfig, GlobalAddr, PAGE_BYTES};
use simnet::testkit::{thread, tiny_net};
use simnet::{CostModel, SimThread};
use std::sync::Arc;

fn cluster(nodes: usize, config: CarinaConfig) -> (Arc<Dsm>, Vec<SimThread>) {
    let net = tiny_net(nodes);
    let dsm = Dsm::new(net.clone(), 4 << 20, config);
    let threads = (0..nodes).map(|n| thread(&net, n as u16, 0)).collect();
    (dsm, threads)
}

/// An address on a page homed at `home` (page number ≡ home mod nodes),
/// skipping page 0 to avoid accidental offsets.
fn addr_homed_at(nodes: usize, home: u16, salt: u64) -> GlobalAddr {
    let page = home as u64 + nodes as u64 * (salt + 1);
    GlobalAddr(page * PAGE_BYTES)
}

#[test]
fn local_home_access_round_trips() {
    let (dsm, mut ts) = cluster(2, CarinaConfig::default());
    let a = addr_homed_at(2, 0, 0);
    let t0 = &mut ts[0];
    dsm.write_u64(t0, a, 42);
    assert_eq!(dsm.read_u64(t0, a), 42);
    // No network traffic for home accesses.
    assert_eq!(dsm.net().stats().snapshot().rdma_reads, 0);
}

#[test]
fn remote_read_fetches_home_data() {
    let (dsm, mut ts) = cluster(2, CarinaConfig::default());
    let a = addr_homed_at(2, 0, 0);
    dsm.write_u64(&mut ts[0], a, 7);
    // Node 1 reads: page cache miss, fetch from home.
    assert_eq!(dsm.read_u64(&mut ts[1], a, ), 7);
    let s = dsm.stats().snapshot();
    assert_eq!(s.read_misses, 1);
    assert!(dsm.net().stats().snapshot().rdma_reads >= 1);
    // Second read is a hit: no further misses.
    assert_eq!(dsm.read_u64(&mut ts[1], a), 7);
    assert_eq!(dsm.stats().snapshot().read_misses, 1);
    assert_eq!(dsm.stats().snapshot().read_hits, 1);
}

#[test]
fn producer_consumer_through_fences() {
    // The canonical DRF pattern: producer writes, releases (SD); consumer
    // acquires (SI), reads fresh data.
    let (dsm, mut ts) = cluster(2, CarinaConfig::default());
    let a = addr_homed_at(2, 0, 0);
    let (t0, rest) = ts.split_at_mut(1);
    let t0 = &mut t0[0];
    let t1 = &mut rest[0];

    // Consumer caches the old value first.
    assert_eq!(dsm.read_u64(t1, a), 0);
    // Producer (remote to the page's home) writes and releases.
    dsm.write_u64(t0, a, 99);
    dsm.sd_fence(t0);
    // Without an acquire, the consumer may still see its cached 0.
    assert_eq!(dsm.read_u64(t1, a), 0);
    // After SI, the consumer must see 99.
    dsm.si_fence(t1);
    assert_eq!(dsm.read_u64(t1, a), 99);
}

#[test]
fn p_to_s_transition_detected_and_deferred() {
    let (dsm, mut ts) = cluster(3, CarinaConfig::default());
    // Page homed at node 2; node 0 reads it first (private to node 0).
    let a = addr_homed_at(3, 2, 0);
    dsm.read_u64(&mut ts[0], a);
    assert_eq!(dsm.home_dir_view(a).page_class(), PageClass::Private);
    assert!(dsm.home_dir_view(a).is_private_to(0));

    // Node 1 joins: causes P→S and must notify node 0's directory cache.
    dsm.read_u64(&mut ts[1], a);
    assert_eq!(dsm.stats().snapshot().p_to_s, 1);
    assert_eq!(dsm.home_dir_view(a).page_class(), PageClass::Shared);
    // Deferred invalidation: node 0's *cached* view now shows both readers
    // even though node 0 took no action.
    assert_eq!(dsm.dir_view(0, a).page_class(), PageClass::Shared);
}

#[test]
fn private_pages_survive_si_fence_in_ps3() {
    let (dsm, mut ts) = cluster(2, CarinaConfig::default());
    let a = addr_homed_at(2, 1, 0); // homed remotely from node 0
    dsm.read_u64(&mut ts[0], a);
    dsm.si_fence(&mut ts[0]);
    let s = dsm.stats().snapshot();
    assert_eq!(s.si_invalidated, 0);
    assert_eq!(s.si_kept, 1);
    // Still a hit afterwards.
    dsm.read_u64(&mut ts[0], a);
    assert_eq!(dsm.stats().snapshot().read_misses, 1);
}

#[test]
fn all_shared_mode_invalidates_everything() {
    let (dsm, mut ts) = cluster(
        2,
        CarinaConfig::with_mode(ClassificationMode::AllShared),
    );
    let a = addr_homed_at(2, 1, 0);
    dsm.read_u64(&mut ts[0], a);
    dsm.si_fence(&mut ts[0]);
    let s = dsm.stats().snapshot();
    assert_eq!(s.si_invalidated, 1);
    assert_eq!(s.si_kept, 0);
    dsm.read_u64(&mut ts[0], a);
    assert_eq!(dsm.stats().snapshot().read_misses, 2);
}

#[test]
fn single_writer_keeps_page_others_invalidate() {
    // Producer/consumer classification: the single writer of a shared page
    // does not self-invalidate; consumers do (Figure 5, sync 2 vs sync 4).
    let (dsm, mut ts) = cluster(3, CarinaConfig::default());
    let a = addr_homed_at(3, 2, 0);
    let (a01, rest) = ts.split_at_mut(2);
    let (t0, t1) = a01.split_at_mut(1);
    let t0 = &mut t0[0];
    let t1 = &mut t1[0];
    let _ = rest;

    dsm.read_u64(t0, a); // node 0 reads
    dsm.read_u64(t1, a); // node 1 reads (S,NW)
    dsm.write_u64(t0, a, 5); // node 0 writes: NW→SW
    assert_eq!(dsm.home_dir_view(a).writer_class(), WriterClass::Single(0));
    assert_eq!(dsm.stats().snapshot().nw_to_sw, 1);
    // Node 1 was notified (passively).
    assert_eq!(dsm.dir_view(1, a).writer_class(), WriterClass::Single(0));

    dsm.sd_fence(t0);
    dsm.si_fence(t0); // writer keeps its copy
    dsm.si_fence(t1); // consumer invalidates
    let s = dsm.stats().snapshot();
    assert_eq!(s.si_kept, 1);
    assert_eq!(s.si_invalidated, 1);
    assert_eq!(dsm.read_u64(t1, a), 5);
}

#[test]
fn sw_to_mw_notifies_previous_writer() {
    let (dsm, mut ts) = cluster(3, CarinaConfig::default());
    let a = addr_homed_at(3, 2, 0);
    let (t01, _) = ts.split_at_mut(2);
    let (t0, t1) = t01.split_at_mut(1);
    let t0 = &mut t0[0];
    let t1 = &mut t1[0];

    dsm.write_u64(t0, a, 1);
    dsm.sd_fence(t0);
    dsm.write_u64(t1, a, 2);
    assert_eq!(dsm.home_dir_view(a).writer_class(), WriterClass::Multiple);
    // Node 0 (the previous single writer) learns of MW via its dir cache.
    assert_eq!(dsm.dir_view(0, a).writer_class(), WriterClass::Multiple);
    // p_to_s fires too (node 0 was the only accessor before node 1 wrote):
    let s = dsm.stats().snapshot();
    assert_eq!(s.p_to_s, 1);
    assert_eq!(s.sw_to_mw, 1);
}

#[test]
fn false_sharing_merges_through_diffs() {
    // Two nodes write disjoint words of the same page; diffs at downgrade
    // must preserve both updates at home.
    let (dsm, mut ts) = cluster(3, CarinaConfig::default());
    let page_base = addr_homed_at(3, 2, 0);
    let a0 = page_base; // word 0
    let a1 = page_base.offset(8); // word 1
    let (t01, rest) = ts.split_at_mut(2);
    let (t0, t1) = t01.split_at_mut(1);
    let t0 = &mut t0[0];
    let t1 = &mut t1[0];
    let t2 = &mut rest[0];

    dsm.write_u64(t0, a0, 10);
    dsm.write_u64(t1, a1, 20);
    dsm.sd_fence(t0);
    dsm.sd_fence(t1);
    dsm.si_fence(t2);
    assert_eq!(dsm.read_u64(t2, a0), 10);
    assert_eq!(dsm.read_u64(t2, a1), 20);
    assert!(dsm.stats().snapshot().twins_created >= 2);
    assert!(dsm.stats().snapshot().diff_words >= 2);
}

#[test]
fn write_buffer_overflow_downgrades_oldest() {
    let cfg = CarinaConfig::with_write_buffer(2);
    let (dsm, mut ts) = cluster(2, cfg);
    // Dirty three distinct pages homed at node 1 from node 0.
    for salt in 0..3 {
        let a = addr_homed_at(2, 1, salt);
        dsm.write_u64(&mut ts[0], a, salt);
    }
    // Third write overflowed the 2-entry buffer → oldest written back.
    let s = dsm.stats().snapshot();
    assert_eq!(s.writebacks, 1);
    // Home already has the first page's data without any fence.
    // (Read it from node 1's perspective — it is local there.)
    let first = addr_homed_at(2, 1, 0);
    assert_eq!(dsm.read_u64(&mut ts[1], first), 0); // page homed at 1, value 0
}

#[test]
fn sd_fence_drains_all_dirty_pages() {
    let (dsm, mut ts) = cluster(2, CarinaConfig::default());
    for salt in 0..5 {
        let a = addr_homed_at(2, 1, salt);
        dsm.write_u64(&mut ts[0], a, 100 + salt);
    }
    dsm.sd_fence(&mut ts[0]);
    assert_eq!(dsm.stats().snapshot().writebacks, 5);
    // All values visible at home.
    for salt in 0..5 {
        let a = addr_homed_at(2, 1, salt);
        assert_eq!(dsm.read_u64(&mut ts[1], a), 100 + salt);
    }
}

#[test]
fn eviction_flushes_dirty_conflicting_line() {
    // A 1-line cache forces every new page to evict the previous one.
    let cfg = CarinaConfig {
        cache: CacheConfig::new(1, 1),
        ..Default::default()
    };
    let (dsm, mut ts) = cluster(2, cfg);
    let a = addr_homed_at(2, 1, 0);
    let b = addr_homed_at(2, 1, 1);
    dsm.write_u64(&mut ts[0], a, 11);
    dsm.read_u64(&mut ts[0], b); // conflicts → evicts dirty page a
    let s = dsm.stats().snapshot();
    assert!(s.evictions >= 1);
    assert_eq!(s.writebacks, 1);
    assert_eq!(dsm.read_u64(&mut ts[1], a), 11);
}

#[test]
fn naive_ps_checkpoints_private_pages_every_sync() {
    let (dsm, mut ts) = cluster(2, CarinaConfig::with_mode(ClassificationMode::PsNaive));
    let a = addr_homed_at(2, 1, 0);
    dsm.write_u64(&mut ts[0], a, 3);
    dsm.sd_fence(&mut ts[0]);
    dsm.sd_fence(&mut ts[0]);
    let s = dsm.stats().snapshot();
    // Private page: no writebacks, but a checkpoint at *each* fence.
    assert_eq!(s.writebacks, 0);
    assert_eq!(s.checkpoints, 2);
    // Data still reaches a late joiner correctly.
    assert_eq!(dsm.read_u64(&mut ts[1], a), 3);
}

#[test]
fn ps3_self_downgrades_private_pages_without_checkpoints() {
    let (dsm, mut ts) = cluster(2, CarinaConfig::default());
    let a = addr_homed_at(2, 1, 0);
    dsm.write_u64(&mut ts[0], a, 3);
    dsm.sd_fence(&mut ts[0]);
    let s = dsm.stats().snapshot();
    assert_eq!(s.writebacks, 1);
    assert_eq!(s.checkpoints, 0);
}

#[test]
fn active_directory_ablation_invokes_handlers() {
    let cfg = CarinaConfig {
        active_directory: true,
        ..Default::default()
    };
    let (dsm, mut ts) = cluster(2, cfg);
    let a = addr_homed_at(2, 1, 0);
    dsm.read_u64(&mut ts[0], a);
    assert!(dsm.net().stats().snapshot().handler_invocations >= 1);

    // Passive default: zero handler invocations ever.
    let (dsm2, mut ts2) = cluster(2, CarinaConfig::default());
    dsm2.read_u64(&mut ts2[0], a);
    dsm2.write_u64(&mut ts2[1], a, 1);
    dsm2.sd_fence(&mut ts2[1]);
    assert_eq!(dsm2.net().stats().snapshot().handler_invocations, 0);
}

#[test]
fn prefetch_line_fills_neighbor_pages() {
    let cfg = CarinaConfig {
        cache: CacheConfig::new(1024, 4),
        ..Default::default()
    };
    let (dsm, mut ts) = cluster(2, cfg);
    // Pages 4..8 form one line; pages 5 and 7 are homed at node 1 (odd).
    // Node 0 reads page 5 → page 7 is prefetched.
    dsm.read_u64(&mut ts[0], GlobalAddr(5 * PAGE_BYTES));
    assert_eq!(dsm.stats().snapshot().read_misses, 1);
    dsm.read_u64(&mut ts[0], GlobalAddr(7 * PAGE_BYTES));
    assert_eq!(dsm.stats().snapshot().read_misses, 1); // hit via prefetch
}

#[test]
fn reset_for_parallel_section_clears_classification() {
    let (dsm, mut ts) = cluster(2, CarinaConfig::default());
    let a = addr_homed_at(2, 1, 0);
    dsm.write_u64(&mut ts[0], a, 77);
    dsm.reset_for_parallel_section();
    // Directory wiped, stats wiped, but data preserved at home.
    assert_eq!(dsm.home_dir_view(a).accessors(), 0);
    assert_eq!(dsm.stats().snapshot().read_misses, 0);
    assert_eq!(dsm.read_u64(&mut ts[1], a), 77);
}

#[test]
fn virtual_time_charges_remote_misses() {
    let (dsm, mut ts) = cluster(2, CarinaConfig::default());
    let a = addr_homed_at(2, 1, 0);
    let before = ts[0].now();
    dsm.read_u64(&mut ts[0], a);
    let cost = CostModel::paper_2011();
    // At least a fault trap + directory round trip + data round trip.
    assert!(ts[0].now() - before >= cost.fault_trap_cycles + 4 * cost.network_latency);
    // A subsequent hit is nearly free.
    let before = ts[0].now();
    dsm.read_u64(&mut ts[0], a);
    assert!(ts[0].now() - before < 100);
}

#[test]
fn sw_no_diff_extension_skips_diff_transmission() {
    let cfg = CarinaConfig {
        sw_no_diff: true,
        ..Default::default()
    };
    let (dsm, mut ts) = cluster(2, cfg);
    let a = addr_homed_at(2, 1, 0);
    dsm.write_u64(&mut ts[0], a, 9);
    dsm.sd_fence(&mut ts[0]);
    let s = dsm.stats().snapshot();
    assert_eq!(s.twins_created, 0); // single writer: no twin
    assert_eq!(s.diff_words, 0); // whole page transmitted
    assert_eq!(s.writeback_bytes, PAGE_BYTES);
    assert_eq!(dsm.read_u64(&mut ts[1], a), 9);
}

#[test]
fn concurrent_threads_same_node_share_cache() {
    // Two OS threads on the same simulated node: one fills, the other hits.
    let net = tiny_net(2);
    let dsm = Dsm::new(net.clone(), 1 << 20, CarinaConfig::default());
    let a = addr_homed_at(2, 1, 0);
    let d1 = dsm.clone();
    let n1 = net.clone();
    let h = std::thread::spawn(move || {
        let mut t = thread(&n1, 0, 0);
        d1.read_u64(&mut t, a)
    });
    h.join().unwrap();
    let mut t2 = thread(&net, 0, 1);
    dsm.read_u64(&mut t2, a);
    assert_eq!(dsm.stats().snapshot().read_misses, 1);
    assert_eq!(dsm.stats().snapshot().read_hits, 1);
}

#[test]
fn decay_allows_reclassification_to_new_owner() {
    // Phase 1: node 0 owns a page (writes it). Phase 2: node 1 takes over.
    // Without decay the page is stuck at S,MW and node 1 self-invalidates
    // it at every fence; after a decay it re-classifies as private to
    // node 1 and survives fences.
    let (dsm, mut ts) = cluster(2, CarinaConfig::default());
    let a = addr_homed_at(2, 0, 0); // homed at node 0, cached by node 1
    let (t0s, t1s) = ts.split_at_mut(1);
    let t0 = &mut t0s[0];
    let t1 = &mut t1s[0];

    // Phase 1: both nodes touch it; node 0 and node 1 both write → S,MW.
    dsm.write_u64(t0, a, 1);
    dsm.sd_fence(t0);
    dsm.si_fence(t1);
    dsm.write_u64(t1, a, 2);
    dsm.sd_fence(t1);
    assert_eq!(dsm.home_dir_view(a).writer_class(), carina::WriterClass::Multiple);

    // Without decay: node 1's fence invalidates its copy every time.
    dsm.si_fence(t1);
    let before = dsm.stats().snapshot().si_invalidated;
    assert!(before > 0);

    // Decay epoch (collective; t0 acts as the coordinator).
    dsm.decay_classification(t0);
    assert_eq!(dsm.stats().snapshot().decays, 1);
    assert_eq!(dsm.home_dir_view(a).accessors(), 0);

    // Phase 2: only node 1 uses the page — it re-classifies private (to
    // node 1) and now survives node 1's fences.
    assert_eq!(dsm.read_u64(t1, a), 2); // data survived the decay
    dsm.write_u64(t1, a, 3);
    let kept_before = dsm.stats().snapshot().si_kept;
    dsm.si_fence(t1);
    assert!(dsm.stats().snapshot().si_kept > kept_before, "page not kept after decay");
}

#[test]
fn decay_preserves_dirty_data() {
    let (dsm, mut ts) = cluster(2, CarinaConfig::default());
    let a = addr_homed_at(2, 1, 0);
    dsm.write_u64(&mut ts[0], a, 555); // dirty in node 0's cache
    let (t0s, _) = ts.split_at_mut(1);
    dsm.decay_classification(&mut t0s[0]);
    assert_eq!(dsm.peek_u64(a), 555, "decay lost a dirty page");
}

#[test]
fn tracer_captures_the_protocol_story() {
    use carina::trace::{Event, FenceKind};
    let (dsm, mut ts) = cluster(2, CarinaConfig::default());
    dsm.tracer().set_enabled(true);
    let a = addr_homed_at(2, 1, 0);
    let (t0s, t1s) = ts.split_at_mut(1);
    let t0 = &mut t0s[0];
    let t1 = &mut t1s[0];

    dsm.read_u64(t0, a); // miss
    dsm.write_u64(t0, a, 1); // write fault
    dsm.sd_fence(t0); // downgrade
    dsm.read_u64(t1, a); // P->S + notify

    let events: Vec<_> = dsm.tracer().events().into_iter().map(|e| e.event).collect();
    assert!(events.iter().any(|e| matches!(e, Event::ReadMiss { node: 0, .. })));
    assert!(events.iter().any(|e| matches!(e, Event::WriteFault { node: 0, .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::Fence { node: 0, kind: FenceKind::SelfDowngrade, .. })));
    assert!(events.iter().any(|e| matches!(e, Event::Downgrade { node: 0, .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::PToS { newcomer: 1, owner: 0, .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::Notify { from: 1, to: 0, .. })));
    // Sequence numbers are monotone; timestamps never decrease per node.
    let seqs: Vec<u64> = dsm.tracer().events().iter().map(|e| e.seq).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]));

    // Disabled tracer stops recording.
    dsm.tracer().set_enabled(false);
    let before = dsm.tracer().recorded();
    dsm.read_u64(t1, a);
    assert_eq!(dsm.tracer().recorded(), before);
}

#[test]
fn invariants_hold_through_a_protocol_workout() {
    let (dsm, mut ts) = cluster(3, CarinaConfig::default());
    assert!(dsm.check_invariants().is_empty());
    let (t01, rest) = ts.split_at_mut(2);
    let (t0s, t1s) = t01.split_at_mut(1);
    let t0 = &mut t0s[0];
    let t1 = &mut t1s[0];
    let t2 = &mut rest[0];

    for salt in 0..6 {
        let a = addr_homed_at(3, 2, salt);
        dsm.write_u64(t0, a, salt);
        dsm.read_u64(t1, a);
    }
    let v = dsm.check_invariants();
    assert!(v.is_empty(), "after writes: {v:?}");
    dsm.sd_fence(t0);
    dsm.si_fence(t1);
    dsm.write_u64(t1, addr_homed_at(3, 2, 0), 99);
    dsm.si_fence(t2);
    let v = dsm.check_invariants();
    assert!(v.is_empty(), "after fences: {v:?}");
    dsm.decay_classification(t0);
    let v = dsm.check_invariants();
    assert!(v.is_empty(), "after decay: {v:?}");
}

#[test]
fn stride_prefetcher_hides_miss_latency() {
    // Node 0 streams all pages; interleaved homing makes every odd page a
    // remote miss with a constant line stride of 2, which the predictor
    // locks onto after `prefetch_streak` repeats. The prefetched copies
    // must be consumed (hits), produce identical values, and make the run
    // cheaper in virtual time than the same stream without speculation.
    let run = |prefetch_lines: usize| {
        let (dsm, mut ts) = cluster(
            2,
            CarinaConfig {
                cache: CacheConfig::new(1024, 1),
                prefetch_lines,
                prefetch_streak: 2,
                ..CarinaConfig::default()
            },
        );
        for p in 0..200u64 {
            dsm.poke_u64(GlobalAddr(p * PAGE_BYTES), p + 1);
        }
        let t = &mut ts[0];
        let mut sum = 0u64;
        for p in 1..200u64 {
            sum += dsm.read_u64(t, GlobalAddr(p * PAGE_BYTES));
        }
        let v = dsm.check_invariants();
        assert!(v.is_empty(), "prefetch broke invariants: {v:?}");
        (sum, t.now(), dsm.stats().snapshot())
    };
    let (sum_off, clock_off, s_off) = run(0);
    let (sum_on, clock_on, s_on) = run(8);
    assert_eq!(sum_off, sum_on, "speculation must not change values");
    assert_eq!(s_off.prefetch_issued, 0);
    assert!(s_on.prefetch_issued > 0);
    assert!(s_on.prefetch_hits > 50, "stride stream must hit the ring: {s_on:?}");
    assert!(
        clock_on < clock_off,
        "prefetch hits must hide fetch latency: {clock_on} !< {clock_off}"
    );
}

#[test]
fn si_fence_flushes_speculation_and_counts_waste() {
    let (dsm, mut ts) = cluster(
        2,
        CarinaConfig {
            cache: CacheConfig::new(1024, 1),
            prefetch_lines: 8,
            prefetch_streak: 1,
            ..CarinaConfig::default()
        },
    );
    let t = &mut ts[0];
    // Misses on lines 1, 3, 5: the second confirms stride 2 (prefetching
    // line 5, which the third miss consumes), the third posts line 7 into
    // the ring where it sits unclaimed.
    for p in [1u64, 3, 5] {
        dsm.read_u64(t, GlobalAddr(p * PAGE_BYTES));
    }
    let before = dsm.stats().snapshot();
    assert!(
        before.prefetch_issued > before.prefetch_hits + before.prefetch_wasted,
        "a line should still be parked in the ring: {before:?}"
    );
    dsm.si_fence(t);
    let after = dsm.stats().snapshot();
    assert_eq!(
        after.prefetch_hits + after.prefetch_wasted,
        after.prefetch_issued,
        "the acquire must flush (and account) all parked speculation"
    );
    // The flush is what makes speculation sound across synchronization:
    // a value written before this node's acquire must be observed, not
    // shadowed by a pre-acquire snapshot.
    dsm.poke_u64(GlobalAddr(7 * PAGE_BYTES), 77);
    assert_eq!(dsm.read_u64(t, GlobalAddr(7 * PAGE_BYTES)), 77);
}

#[test]
fn auto_drain_coalesces_past_the_cutover() {
    let (dsm, mut ts) = cluster(
        2,
        CarinaConfig {
            cache: CacheConfig::new(1024, 1),
            batch_drain_cutover: 4,
            ..CarinaConfig::default()
        },
    );
    let t = &mut ts[0];
    // Three dirty pages: below the cutover, Auto keeps the simulator's
    // per-page path.
    for salt in 0..3 {
        dsm.write_u64(t, addr_homed_at(2, 1, salt), salt);
    }
    dsm.sd_fence(t);
    assert_eq!(dsm.stats().snapshot().downgrade_batches, 0);
    // Four dirty pages: at the cutover, the fence coalesces into one
    // batched verb per home even though the transport declines.
    for salt in 10..14 {
        dsm.write_u64(t, addr_homed_at(2, 1, salt), salt);
    }
    dsm.sd_fence(t);
    let s = dsm.stats().snapshot();
    assert_eq!(s.downgrade_batches, 1);
    assert_eq!(s.downgrade_batch_pages, 4);
}
