//! Golden tests for the observability layer's export path: the chrome
//! trace must be valid JSON with per-track monotonic timestamps and honest
//! drop accounting, and the read-hit fast path must never record into the
//! latency profile.

use carina::{CarinaConfig, Dsm};
use mem::{GlobalAddr, PAGE_BYTES};
use obs::{JsonValue, Site};
use rma::{ClusterTopology, CostModel, NodeId, SimTransport, Transport};
use std::sync::Arc;

fn small_cluster() -> (Arc<SimTransport>, Arc<Dsm>) {
    let topo = ClusterTopology::tiny(2);
    let net = SimTransport::new(topo, CostModel::paper_2011());
    let dsm = Dsm::new(net.clone(), 1 << 20, CarinaConfig::default());
    (net, dsm)
}

/// Drive a producer/consumer exchange so the trace holds misses, faults,
/// downgrades, transitions, and fences on both node tracks.
fn run_workload(net: &Arc<SimTransport>, dsm: &Dsm) {
    let topo = *net.topology();
    let mut a = <SimTransport as Transport>::endpoint(net, topo.loc(NodeId(0), 0));
    let mut b = <SimTransport as Transport>::endpoint(net, topo.loc(NodeId(1), 0));
    let base = dsm.total_bytes() / 2; // homed on node 1
    for round in 0..3u64 {
        for p in 0..4u64 {
            let addr = GlobalAddr(base + p * PAGE_BYTES);
            dsm.write_u64(&mut a, addr, round * 100 + p);
        }
        dsm.sd_fence(&mut a);
        dsm.si_fence(&mut b);
        for p in 0..4u64 {
            let addr = GlobalAddr(base + p * PAGE_BYTES);
            assert_eq!(dsm.read_u64(&mut b, addr), round * 100 + p);
        }
        dsm.sd_fence(&mut b);
        dsm.si_fence(&mut a);
    }
}

#[test]
fn chrome_trace_parses_with_monotonic_ts_per_track() {
    let (net, dsm) = small_cluster();
    dsm.tracer().set_enabled(true);
    run_workload(&net, &dsm);

    let json = dsm.tracer().to_chrome_trace();
    let doc = JsonValue::parse(&json).expect("trace must be valid JSON");

    let other = doc.get("otherData").expect("otherData metadata");
    assert_eq!(other.get("dropped").unwrap().as_u64(), Some(0));
    let recorded = other.get("recorded").unwrap().as_u64().unwrap();
    assert!(recorded > 0);

    let events = doc.get("traceEvents").expect("traceEvents array");
    let items = events.as_arr().unwrap();
    assert!(!items.is_empty());
    // Shape: every event has pid/tid/ph; fences are durations.
    let mut fences = 0;
    for ev in items {
        let ph = ev.get("ph").unwrap().as_str().unwrap();
        assert!(matches!(ph, "M" | "X" | "i"), "unexpected phase {ph}");
        assert!(ev.get("tid").is_some());
        if ph == "X" {
            fences += 1;
            assert!(ev.get("dur").unwrap().as_u64().is_some());
        }
    }
    assert!(fences >= 4, "expected fence slices on both tracks");

    // Both node tracks present, and ts non-decreasing within each.
    let tracks = events.group_by_field("tid");
    assert!(tracks.len() >= 2, "expected a track per node");
    for (tid, evs) in &tracks {
        let mut last = 0.0f64;
        for ev in evs {
            if ev.get("ph").unwrap().as_str() == Some("M") {
                continue;
            }
            let ts = ev.get("ts").unwrap().as_f64().unwrap();
            assert!(ts >= last, "track {tid}: ts went backwards: {last} -> {ts}");
            last = ts;
        }
    }
}

#[test]
fn trace_drops_are_surfaced_not_hidden() {
    let (net, dsm) = small_cluster();
    dsm.tracer().set_enabled(true);
    // 4096-capacity ring: run enough rounds to overflow it.
    let topo = *net.topology();
    let mut a = <SimTransport as Transport>::endpoint(&net, topo.loc(NodeId(0), 0));
    let mut b = <SimTransport as Transport>::endpoint(&net, topo.loc(NodeId(1), 0));
    let base = dsm.total_bytes() / 2;
    for round in 0..600u64 {
        for p in 0..4u64 {
            dsm.write_u64(&mut a, GlobalAddr(base + p * PAGE_BYTES), round);
        }
        dsm.sd_fence(&mut a);
        dsm.si_fence(&mut b);
        for p in 0..4u64 {
            dsm.read_u64(&mut b, GlobalAddr(base + p * PAGE_BYTES));
        }
        dsm.sd_fence(&mut b);
        dsm.si_fence(&mut a);
    }
    let stats = dsm.tracer().stats();
    assert!(stats.dropped > 0, "workload sized to overflow the ring");
    assert_eq!(stats.recorded, stats.dropped + stats.buffered);
    let doc = JsonValue::parse(&dsm.tracer().to_chrome_trace()).unwrap();
    assert_eq!(
        doc.get("otherData").unwrap().get("dropped").unwrap().as_u64(),
        Some(stats.dropped)
    );
}

/// The seqlock read-hit fast path must not touch the latency profile, the
/// heat counters, or the tracer: misses are the only recorded read events.
#[test]
fn read_hit_fast_path_records_nothing() {
    let (net, dsm) = small_cluster();
    dsm.tracer().set_enabled(true);
    let topo = *net.topology();
    let mut a = <SimTransport as Transport>::endpoint(&net, topo.loc(NodeId(0), 0));
    let addr = GlobalAddr(PAGE_BYTES); // odd page: interleaved home = node 1
    dsm.read_u64(&mut a, addr); // one miss

    let profile_after_miss = dsm.profile().snapshot();
    let heat_after_miss = dsm.page_heat().total();
    let traced_after_miss = dsm.tracer().recorded();
    assert_eq!(profile_after_miss.get(Site::ReadMiss).count(), 1);
    assert_eq!(heat_after_miss, 1);

    for _ in 0..10_000 {
        dsm.read_u64(&mut a, addr); // hits
    }

    assert_eq!(dsm.profile().snapshot(), profile_after_miss);
    assert_eq!(dsm.page_heat().total(), heat_after_miss);
    assert_eq!(dsm.tracer().recorded(), traced_after_miss);
    assert_eq!(dsm.stats().snapshot().read_hits, 10_000);
}

/// Batched drains land in the new coherence counters.
#[test]
fn batched_drain_counters_tick() {
    let topo = ClusterTopology::tiny(2);
    let net = SimTransport::new(topo, CostModel::paper_2011());
    let config = CarinaConfig {
        batch_drain: carina::BatchDrain::Always,
        ..Default::default()
    };
    let dsm: Arc<Dsm> = Dsm::new(net.clone(), 1 << 20, config);
    let mut a = <SimTransport as Transport>::endpoint(&net, topo.loc(NodeId(0), 0));
    for p in 0..5u64 {
        // Odd pages: all homed on node 1 under interleaved placement.
        dsm.write_u64(&mut a, GlobalAddr((2 * p + 1) * PAGE_BYTES), p);
    }
    dsm.sd_fence(&mut a);
    let snap = dsm.stats().snapshot();
    assert_eq!(snap.downgrade_batches, 1, "one home, one batch");
    assert_eq!(snap.downgrade_batch_pages, 5);
    assert!((snap.mean_drain_batch() - 5.0).abs() < 1e-12);
}
