//! Stress tests: pathological cache geometries, conflict storms, slice
//! boundary cases, and concurrent mixed workloads — the protocol must
//! stay correct (home memory converges to the DRF-expected values) no
//! matter how hostile the configuration.

use carina::{CarinaConfig, Dsm};
use mem::{CacheConfig, GlobalAddr, PAGE_BYTES};
use simnet::testkit::tiny_net;
use simnet::{ClusterTopology, CostModel, Interconnect, NodeId, SimThread};
use std::sync::Arc;

fn cluster_with(
    nodes: usize,
    cfg: CarinaConfig,
) -> (Arc<Dsm>, Arc<Interconnect>, ClusterTopology) {
    let net = tiny_net(nodes);
    let topo = *net.topology();
    let dsm = Dsm::new(net.clone(), 8 << 20, cfg);
    (dsm, net, topo)
}

#[test]
fn conflict_storm_tiny_cache_preserves_all_writes() {
    // A 2-slot cache with every page fighting for the same slots: constant
    // evictions with dirty flushes. Every written value must survive.
    let cfg = CarinaConfig {
        cache: CacheConfig::new(2, 1),
        write_buffer_pages: 1,
        ..Default::default()
    };
    let (dsm, net, topo) = cluster_with(2, cfg);
    let mut t = SimThread::new(topo.loc(NodeId(0), 0), net);
    // Write one word on each of 64 distinct pages (odd pages are remote).
    for p in 0..64u64 {
        let addr = GlobalAddr((2 * p + 1) * PAGE_BYTES); // all homed node 1
        dsm.write_u64(&mut t, addr, 7000 + p);
    }
    dsm.sd_fence(&mut t);
    for p in 0..64u64 {
        let addr = GlobalAddr((2 * p + 1) * PAGE_BYTES);
        assert_eq!(dsm.peek_u64(addr), 7000 + p, "lost write on page {p}");
    }
    let s = dsm.stats().snapshot();
    assert!(s.evictions > 0, "storm did not evict");
}

#[test]
fn prefetch_lines_with_evictions_stay_coherent() {
    // 2 slots × 4-page lines: any two distinct lines conflict. Interleave
    // reads and writes across lines so fills/evictions/flushes churn.
    let cfg = CarinaConfig {
        cache: CacheConfig::new(2, 4),
        ..Default::default()
    };
    let (dsm, net, topo) = cluster_with(2, cfg);
    let mut t = SimThread::new(topo.loc(NodeId(0), 0), net);
    for round in 0..4u64 {
        for line in 0..6u64 {
            // One odd (remote) page per line.
            let page = line * 4 + 1;
            let addr = GlobalAddr(page * PAGE_BYTES).offset(8 * round);
            dsm.write_u64(&mut t, addr, round * 100 + line);
        }
    }
    dsm.sd_fence(&mut t);
    for round in 0..4u64 {
        for line in 0..6u64 {
            let page = line * 4 + 1;
            let addr = GlobalAddr(page * PAGE_BYTES).offset(8 * round);
            assert_eq!(dsm.peek_u64(addr), round * 100 + line);
        }
    }
}

#[test]
fn slices_spanning_many_pages_round_trip() {
    let (dsm, net, topo) = cluster_with(3, CarinaConfig::default());
    let mut t = SimThread::new(topo.loc(NodeId(0), 0), net);
    // Start mid-page, span 5 pages, cross home boundaries (interleaved).
    let start = GlobalAddr(7 * PAGE_BYTES + 1000 * 8 % PAGE_BYTES);
    let n = (5 * 512) + 123;
    let data: Vec<f64> = (0..n).map(|i| i as f64 * 0.5 - 7.0).collect();
    dsm.write_f64_slice(&mut t, start, &data);
    let mut back = vec![0.0f64; n];
    dsm.read_f64_slice(&mut t, start, &mut back);
    assert_eq!(data, back);
    // And via single-element reads (different code path).
    for (i, &expect) in data.iter().enumerate().step_by(97) {
        assert_eq!(dsm.read_f64(&mut t, start.offset(i as u64 * 8)), expect);
    }
}

#[test]
fn slice_of_one_element_and_empty_slice() {
    let (dsm, net, topo) = cluster_with(2, CarinaConfig::default());
    let mut t = SimThread::new(topo.loc(NodeId(0), 0), net);
    let addr = GlobalAddr(3 * PAGE_BYTES);
    dsm.write_f64_slice(&mut t, addr, &[42.5]);
    let mut one = [0.0];
    dsm.read_f64_slice(&mut t, addr, &mut one);
    assert_eq!(one[0], 42.5);
    let mut empty: [f64; 0] = [];
    dsm.read_f64_slice(&mut t, addr, &mut empty); // must not panic
    dsm.write_f64_slice(&mut t, addr, &empty);
}

#[test]
fn concurrent_mixed_access_converges() {
    // 6 real threads across 3 nodes hammer disjoint striped slots with
    // barrier-free writes, then fence; home must hold exactly the last
    // value each thread wrote to each of its slots.
    let (dsm, net, topo) = cluster_with(3, CarinaConfig::default());
    let handles: Vec<_> = (0..6u64)
        .map(|id| {
            let dsm = dsm.clone();
            let net = net.clone();
            std::thread::spawn(move || {
                let node = (id % 3) as u16;
                let mut t = SimThread::new(topo.loc(NodeId(node), (id / 3) as usize), net);
                // 50 slots, strided so threads never share a word.
                for round in 0..20u64 {
                    for s in 0..50u64 {
                        let addr = GlobalAddr(((s * 6 + id) * 8) + 64 * PAGE_BYTES);
                        dsm.write_u64(&mut t, addr, id * 1_000_000 + round * 1000 + s);
                    }
                }
                dsm.sd_fence(&mut t);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for id in 0..6u64 {
        for s in 0..50u64 {
            let addr = GlobalAddr(((s * 6 + id) * 8) + 64 * PAGE_BYTES);
            assert_eq!(
                dsm.peek_u64(addr),
                id * 1_000_000 + 19 * 1000 + s,
                "thread {id} slot {s}"
            );
        }
    }
}

#[test]
fn single_page_cache_still_correct_under_producer_consumer() {
    let cfg = CarinaConfig {
        cache: CacheConfig::new(1, 1),
        ..Default::default()
    };
    let (dsm, net, topo) = cluster_with(2, cfg);
    let mut t0 = SimThread::new(topo.loc(NodeId(0), 0), net.clone());
    let mut t1 = SimThread::new(topo.loc(NodeId(1), 0), net);
    for round in 0..10u64 {
        // Producer writes two pages (they conflict in its 1-slot cache).
        let a = GlobalAddr(3 * PAGE_BYTES);
        let b = GlobalAddr(5 * PAGE_BYTES);
        dsm.write_u64(&mut t0, a, round);
        dsm.write_u64(&mut t0, b, round * 2);
        dsm.sd_fence(&mut t0);
        dsm.si_fence(&mut t1);
        assert_eq!(dsm.read_u64(&mut t1, a), round);
        assert_eq!(dsm.read_u64(&mut t1, b), round * 2);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "96-node cluster; run with --release")]
fn many_nodes_full_map_boundaries() {
    // 96 nodes exercises the second full-map word (nodes >= 64).
    let topo = ClusterTopology {
        nodes: 96,
        sockets_per_node: 1,
        cores_per_socket: 1,
    };
    let net = Interconnect::new(topo, CostModel::paper_2011());
    let dsm = Dsm::new(net.clone(), 1 << 20, CarinaConfig::default());
    let page = GlobalAddr(95 * PAGE_BYTES); // homed on node 95
    // Nodes 60..70 all read, then node 70 writes.
    let mut threads: Vec<SimThread> = (60..71)
        .map(|n| SimThread::new(topo.loc(NodeId(n), 0), net.clone()))
        .collect();
    for t in threads.iter_mut().take(10) {
        dsm.read_u64(t, page);
    }
    let v = dsm.home_dir_view(page);
    assert_eq!(v.readers.count_ones(), 10);
    dsm.write_u64(&mut threads[10], page, 9);
    assert_eq!(
        dsm.home_dir_view(page).writer_class(),
        carina::WriterClass::Single(70)
    );
    dsm.sd_fence(&mut threads[10]);
    // A reader from the low word re-reads after a fence.
    dsm.si_fence(&mut threads[0]);
    assert_eq!(dsm.read_u64(&mut threads[0], page), 9);
}
