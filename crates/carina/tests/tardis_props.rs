//! Property tests for the Tardis timestamp-lease coherence policy.
//!
//! The policy's safety rests on three timestamp invariants that must hold
//! under *every* interleaving of reads, writes, and fences — exactly the
//! kind of claim worth property-testing rather than example-testing:
//!
//! 1. `wts <= rts` for every page, always: a write is ordered at `wts`
//!    past every granted lease, and a read lease never moves `rts` below
//!    the version it was granted against.
//! 2. Lease renewal is monotone: `rts` never decreases, and a node's
//!    logical clock (`pts`) never runs backwards.
//! 3. Write-after-lease ordering: the downgrade that lands a write's
//!    bytes in home memory is timestamped strictly after every lease
//!    granted on the page before it, so no expired reader can observe the
//!    new version in its old lease window. (The write *fault* publishes
//!    no version at all — the bytes are not home yet.)
//!
//! The harness drives the policy exactly as the engine does: registration
//! is attempted only when the matching `*_registered` check fails, fences
//! call `begin_si_fence`/`end_sd_fence` around the invalidation predicate,
//! and — like the engine's drain paths — every page dirtied since the last
//! fence is `note_downgrade`d before the release hook (or before its
//! invalidation at an acquire).

use carina::{CarinaConfig, Coherence, StatShard, Tardis};
use mem::PageNum;
use proptest::prelude::*;

const NODES: usize = 4;
const PAGES: u64 = 8;

/// One step of a simulated DRF-ish schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    Read { node: u16, page: u64 },
    Write { node: u16, page: u64 },
    SiFence { node: u16 },
    SdFence { node: u16 },
}

/// The vendored proptest samples tuples, not enums: decode
/// `(node, page, kind)` into an [`Op`].
fn decode(raw: (u16, u64, u8)) -> Op {
    let (node, page, kind) = raw;
    match kind {
        0 => Op::Read { node, page },
        1 => Op::Write { node, page },
        2 => Op::SiFence { node },
        _ => Op::SdFence { node },
    }
}

fn op_strategy() -> (std::ops::Range<u16>, std::ops::Range<u64>, std::ops::Range<u8>) {
    (0u16..NODES as u16, 0u64..PAGES, 0u8..4)
}

/// Per-node dirty sets: the engine drains (and `note_downgrade`s) these
/// at fences; the harness mirrors that.
type Dirty = Vec<[bool; PAGES as usize]>;

fn new_dirty() -> Dirty {
    vec![[false; PAGES as usize]; NODES]
}

/// Drive one op through the policy the way `Dsm` would.
fn apply(t: &Tardis, shard: &StatShard, dirty: &mut Dirty, op: Op) {
    match op {
        Op::Read { node, page } => {
            let home = (page % NODES as u64) as u16;
            if !t.read_registered(node, home, PageNum(page)) {
                t.register_reader(node, home, PageNum(page), shard);
            }
        }
        Op::Write { node, page } => {
            let home = (page % NODES as u64) as u16;
            if !t.write_registered(node, home, PageNum(page)) {
                t.register_writer(node, home, PageNum(page), shard);
            }
            // Home pages are never cached at home: their stores hit home
            // memory directly and the policy bumps them at the release,
            // so only remote writes enter the drained dirty set.
            if home != node {
                dirty[node as usize][page as usize] = true;
            }
        }
        Op::SiFence { node } => {
            t.begin_si_fence(node, shard);
            for q in 0..PAGES {
                let inval = t.must_self_invalidate(node, PageNum(q), shard);
                // The engine downgrades a dirty page before invalidating.
                if inval && std::mem::take(&mut dirty[node as usize][q as usize]) {
                    t.note_downgrade(node, PageNum(q));
                }
            }
        }
        Op::SdFence { node } => {
            for q in 0..PAGES {
                if std::mem::take(&mut dirty[node as usize][q as usize]) {
                    t.note_downgrade(node, PageNum(q));
                }
            }
            t.end_sd_fence(node, shard);
        }
    }
}

proptest! {
    /// Invariant 1: `wts <= rts` on every page after every step of any
    /// schedule (a page's write version is always inside its read-valid
    /// window).
    #[test]
    fn prop_wts_never_exceeds_rts(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let t = Tardis::new(NODES, PAGES, &CarinaConfig::default());
        let shard = StatShard::default();
        let mut dirty = new_dirty();
        for op in ops.into_iter().map(decode) {
            apply(&t, &shard, &mut dirty, op);
            for q in 0..PAGES {
                let (wts, rts) = t.timestamps(PageNum(q));
                prop_assert!(wts <= rts, "page {q}: wts {wts} > rts {rts} after {op:?}");
            }
        }
    }

    /// Invariant 2: renewal monotonicity — `rts` per page and `pts` per
    /// node never decrease, no matter how ops interleave.
    #[test]
    fn prop_lease_renewal_is_monotone(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let t = Tardis::new(NODES, PAGES, &CarinaConfig::default());
        let shard = StatShard::default();
        let mut last_rts = vec![0u64; PAGES as usize];
        let mut last_pts = [0u64; NODES];
        let mut dirty = new_dirty();
        for op in ops.into_iter().map(decode) {
            apply(&t, &shard, &mut dirty, op);
            for q in 0..PAGES {
                let (_, rts) = t.timestamps(PageNum(q));
                prop_assert!(
                    rts >= last_rts[q as usize],
                    "page {q}: rts regressed {} -> {rts} after {op:?}",
                    last_rts[q as usize]
                );
                last_rts[q as usize] = rts;
            }
            for (n, last) in last_pts.iter_mut().enumerate() {
                let pts = t.clock(n as u16);
                prop_assert!(
                    pts >= *last,
                    "node {n}: pts regressed {} -> {pts} after {op:?}",
                    *last
                );
                *last = pts;
            }
        }
    }

    /// Invariant 3: write-after-lease ordering — every drain that lands a
    /// new version in home memory is timestamped strictly after the
    /// largest lease granted on the page before it, while the write fault
    /// itself publishes no version at all.
    #[test]
    fn prop_drains_order_after_granted_leases(
        ops in proptest::collection::vec(op_strategy(), 1..200)
    ) {
        let t = Tardis::new(NODES, PAGES, &CarinaConfig::default());
        let shard = StatShard::default();
        let mut dirty = new_dirty();
        for op in ops.into_iter().map(decode) {
            match op {
                Op::Write { node, page } => {
                    let home = (page % NODES as u64) as u16;
                    if !t.write_registered(node, home, PageNum(page)) {
                        let (wts_before, _) = t.timestamps(PageNum(page));
                        t.register_writer(node, home, PageNum(page), &shard);
                        let (wts_after, _) = t.timestamps(PageNum(page));
                        prop_assert!(
                            wts_after == wts_before,
                            "page {page}: fault moved the version {wts_before} -> {wts_after}"
                        );
                    }
                    if home != node {
                        dirty[node as usize][page as usize] = true;
                    }
                }
                Op::SdFence { node } => {
                    for q in 0..PAGES {
                        if std::mem::take(&mut dirty[node as usize][q as usize]) {
                            let (_, rts_before) = t.timestamps(PageNum(q));
                            t.note_downgrade(node, PageNum(q));
                            let (wts_after, _) = t.timestamps(PageNum(q));
                            prop_assert!(
                                wts_after > rts_before,
                                "page {q}: drain at {wts_after} not past granted rts {rts_before}"
                            );
                        }
                    }
                    t.end_sd_fence(node, &shard);
                }
                _ => apply(&t, &shard, &mut dirty, op),
            }
        }
    }

    /// A reader that still holds a valid (unexpired) lease is never told
    /// to self-invalidate; one whose lease expired always is — the
    /// predicate is exactly `granted rts < pts`.
    #[test]
    fn prop_invalidation_predicate_matches_lease_window(
        ops in proptest::collection::vec(op_strategy(), 1..200)
    ) {
        let t = Tardis::new(NODES, PAGES, &CarinaConfig::default());
        let shard = StatShard::default();
        let mut dirty = new_dirty();
        for op in ops.into_iter().map(decode) {
            if let Op::SiFence { node } = op {
                t.begin_si_fence(node, &shard);
                for q in 0..PAGES {
                    let granted = t.granted_lease(node, PageNum(q));
                    // Sampled per page: a drain earlier in this sweep
                    // advances the node's own clock.
                    let pts = t.clock(node);
                    let must = t.must_self_invalidate(node, PageNum(q), &shard);
                    // With no lease held there is nothing cached to keep,
                    // so only granted leases constrain the predicate.
                    if let Some(rts) = granted {
                        prop_assert!(
                            must == (rts < pts),
                            "node {} page {}: granted rts {} vs pts {}",
                            node, q, rts, pts
                        );
                    }
                    if must && std::mem::take(&mut dirty[node as usize][q as usize]) {
                        t.note_downgrade(node, PageNum(q));
                    }
                }
            } else {
                apply(&t, &shard, &mut dirty, op);
            }
        }
    }
}
