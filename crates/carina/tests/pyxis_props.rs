//! Property tests for the Pyxis hybrid coherence policy.
//!
//! Two claims carry the hybrid's correctness and must hold under *every*
//! schedule, not just the ones the examples happen to drive:
//!
//! 1. **Switches happen only at fence boundaries.** The access paths
//!    (reads, writes, registration, even the invalidation sweep itself)
//!    may only *accumulate* evidence; a page's mode epoch moves exclusively
//!    inside `begin_si_fence`/`end_sd_fence`. This is what lets mode
//!    transitions compose with the engine's issue/poll overlap, write
//!    buffer, and retry machinery without any engine changes.
//! 2. **No stale read survives a switch.** Whole-machine runs under
//!    randomized round schedules — with the switch threshold dropped to 1
//!    so modes flap as aggressively as the hysteresis allows — must
//!    produce bit-identical memory and read-back values to the same
//!    schedule replayed under pure SI/SD and pure Tardis. A page crossing
//!    lease→SI/SD (or back) with a stale copy alive anywhere would break
//!    the identity.
//!
//! The policy-level harness drives Pyxis exactly as the engine does:
//! registration only when the matching `*_registered` check fails, and the
//! invalidation predicate only between `begin_si_fence` and the end of the
//! sweep.

use carina::{CarinaConfig, Coherence, CoherenceStats, Dsm, Pyxis, Tardis};
use mem::{GlobalAddr, PageNum, PAGE_BYTES};
use proptest::prelude::*;
use simnet::{ClusterTopology, CostModel, Interconnect, NodeId, SimThread};
use std::sync::Arc;

const NODES: usize = 3;
const PAGES: u64 = 8;

#[derive(Debug, Clone, Copy)]
enum Op {
    Read { node: u16, page: u64 },
    Write { node: u16, page: u64 },
    SiFence { node: u16 },
    SdFence { node: u16 },
}

fn decode(raw: (u16, u64, u8)) -> Op {
    let (node, page, kind) = raw;
    match kind {
        0 | 1 => Op::Read { node, page },
        2 => Op::Write { node, page },
        3 => Op::SiFence { node },
        _ => Op::SdFence { node },
    }
}

fn op_strategy() -> (std::ops::Range<u16>, std::ops::Range<u64>, std::ops::Range<u8>) {
    (0u16..NODES as u16, 0u64..PAGES, 0u8..5)
}

/// Aggressive adaptation: one piece of evidence is enough to enqueue a
/// switch, so schedules of a couple hundred ops exercise both directions.
fn flappy_config() -> CarinaConfig {
    CarinaConfig {
        pyxis_switch_threshold: 1,
        pyxis_score_cap: 2,
        ..CarinaConfig::default()
    }
}

/// Drive one op through the policy the way `Dsm` would, recording the
/// mode-epoch table before and after to detect out-of-bound switches.
fn apply(t: &Pyxis, stats: &CoherenceStats, op: Op) {
    let shard = stats.shard(match op {
        Op::Read { node, .. } | Op::Write { node, .. } => node,
        Op::SiFence { node } | Op::SdFence { node } => node,
    });
    match op {
        Op::Read { node, page } => {
            let home = (page % NODES as u64) as u16;
            if !t.read_registered(node, home, PageNum(page)) {
                t.register_reader(node, home, PageNum(page), shard);
            }
        }
        Op::Write { node, page } => {
            let home = (page % NODES as u64) as u16;
            if !t.write_registered(node, home, PageNum(page)) {
                t.register_writer(node, home, PageNum(page), shard);
            }
            t.write_disposition(node, PageNum(page));
        }
        Op::SiFence { node } => {
            t.begin_si_fence(node, shard);
            for q in 0..PAGES {
                let _ = t.must_self_invalidate(node, PageNum(q), shard);
            }
        }
        Op::SdFence { node } => t.end_sd_fence(node, shard),
    }
}

fn switch_table(t: &Pyxis) -> Vec<u64> {
    (0..PAGES).map(|q| t.switch_count(PageNum(q))).collect()
}

proptest! {
    /// Invariant 1: the mode-epoch table is frozen everywhere except
    /// inside the two fence hooks — and the moment a hook runs, the
    /// stats ledger accounts for every flip it applied.
    #[test]
    fn prop_switches_only_at_fence_boundaries(
        ops in proptest::collection::vec(op_strategy(), 1..250)
    ) {
        let t = Pyxis::new(NODES, PAGES, &flappy_config());
        let stats = CoherenceStats::new(NODES);
        for op in ops.into_iter().map(decode) {
            let before = switch_table(&t);
            let switches_before = {
                let s = stats.snapshot();
                s.mode_to_lease + s.mode_to_sisd
            };
            apply(&t, &stats, op);
            let after = switch_table(&t);
            let switches_after = {
                let s = stats.snapshot();
                s.mode_to_lease + s.mode_to_sisd
            };
            let flips: u64 = before
                .iter()
                .zip(&after)
                .map(|(b, a)| a - b)
                .sum();
            match op {
                Op::SiFence { .. } | Op::SdFence { .. } => {
                    prop_assert!(
                        switches_after - switches_before == flips,
                        "fence hook applied {} flips but accounted {}",
                        flips, switches_after - switches_before
                    );
                }
                _ => {
                    prop_assert!(
                        flips == 0,
                        "mode switched outside a fence boundary after {:?}", op
                    );
                    prop_assert_eq!(switches_after, switches_before);
                }
            }
        }
    }

    /// Invariant 1b: evidence saturates at the cap and a switch resets the
    /// page's score, so the hysteresis bound is honored under every
    /// schedule.
    #[test]
    fn prop_score_stays_within_cap(
        ops in proptest::collection::vec(op_strategy(), 1..250)
    ) {
        let cfg = flappy_config();
        let t = Pyxis::new(NODES, PAGES, &cfg);
        let stats = CoherenceStats::new(NODES);
        for op in ops.into_iter().map(decode) {
            apply(&t, &stats, op);
            for q in 0..PAGES {
                let s = t.score_of(PageNum(q));
                prop_assert!(
                    s.abs() <= cfg.pyxis_score_cap,
                    "page {q}: score {s} escaped the ±{} cap",
                    cfg.pyxis_score_cap
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Whole-machine bit-identity under randomized switch schedules.
// ---------------------------------------------------------------------------

fn cluster<C: Coherence>(
    config: CarinaConfig,
) -> (Arc<Dsm<Interconnect, C>>, Vec<SimThread>) {
    let topo = ClusterTopology::tiny(NODES);
    let net = Interconnect::new(topo, CostModel::paper_2011());
    let dsm = Dsm::with_policy(net.clone(), 2 << 20, config);
    let threads = (0..NODES)
        .map(|n| SimThread::new(topo.loc(NodeId(n as u16), 0), net.clone()))
        .collect();
    (dsm, threads)
}

/// One randomized round: `writer` rewrites its pages and releases, then
/// every node acquires and reads the full region. Sequential driving makes
/// the schedule trivially DRF while still crossing real fences, so every
/// read must observe the latest release — under any policy and any mode
/// schedule.
fn run_rounds<C: Coherence>(
    config: CarinaConfig,
    rounds: &[(u16, u8)],
) -> (Vec<u64>, Vec<u64>) {
    let (dsm, mut ts) = cluster::<C>(config);
    let mut observed = Vec::new();
    for (r, &(writer, touch_mask)) in rounds.iter().enumerate() {
        let w = writer as usize % NODES;
        for p in 0..PAGES {
            if touch_mask & (1 << p) != 0 {
                let a = GlobalAddr((p + 1) * PAGE_BYTES + (p % 4) * 8);
                dsm.write_u64(&mut ts[w], a, (r as u64) << 16 | p << 4 | w as u64);
            }
        }
        dsm.sd_fence(&mut ts[w]);
        for t in ts.iter_mut() {
            dsm.si_fence(t);
            for p in 0..PAGES {
                let a = GlobalAddr((p + 1) * PAGE_BYTES + (p % 4) * 8);
                observed.push(dsm.read_u64(t, a));
            }
            dsm.sd_fence(t);
        }
    }
    let mem = (0..(PAGES + 1) * mem::WORDS_PER_PAGE as u64)
        .map(|w| dsm.peek_u64(GlobalAddr(w * 8)))
        .collect();
    (mem, observed)
}

proptest! {
    /// Invariant 2: with the hybrid flapping as fast as its hysteresis
    /// allows, every value read and every final memory word matches the
    /// pure policies bit for bit — a stale read surviving any
    /// lease↔SI/SD transition would break the identity.
    #[test]
    fn prop_randomized_switch_schedules_preserve_bit_identity(
        rounds in proptest::collection::vec((0u16..NODES as u16, 1u8..255u8), 2..10)
    ) {
        let (mem_pyxis, seen_pyxis) = run_rounds::<Pyxis>(flappy_config(), &rounds);
        let (mem_sisd, seen_sisd) =
            run_rounds::<carina::CarinaSiSd>(CarinaConfig::default(), &rounds);
        let (mem_tardis, seen_tardis) =
            run_rounds::<Tardis>(CarinaConfig::default(), &rounds);
        prop_assert!(seen_pyxis == seen_sisd, "pyxis read-back diverged from si/sd");
        prop_assert!(seen_pyxis == seen_tardis, "pyxis read-back diverged from tardis");
        prop_assert!(mem_pyxis == mem_sisd, "pyxis final memory diverged from si/sd");
        prop_assert!(mem_pyxis == mem_tardis, "pyxis final memory diverged from tardis");
    }
}
