//! Tardis: timestamp-lease coherence on the Carina engine.
//!
//! An adaptation of TARDIS (Yu & Devadas, PACT'15) to the DSM's
//! acquire/release fence model. Instead of Pyxis reader/writer full maps,
//! every page's home entry carries two logical timestamps:
//!
//! - `wts` — the write timestamp of the home copy's current version;
//! - `rts` — the time through which that version is *promised* valid (the
//!   max of every granted read lease).
//!
//! Each node keeps a logical clock `pts`. The protocol is four rules:
//!
//! 1. **Read fill**: `pts = max(pts, wts)`, then take a lease
//!    `rts = max(rts, pts + lease)` with the same one-sided directory
//!    atomic Carina uses for registration (timestamps ride in the entry,
//!    no extra verbs). The copy is valid through the granted `rts`.
//! 2. **Write fault**: bump `wts = max(wts, rts) + 1` — past every granted
//!    lease — and `pts = max(pts, wts)`. The writer grants itself a lease
//!    on the new version, so (like Table 1's S/SW row) its own fences keep
//!    the page it is writing.
//! 3. **Release** (`sd_fence`, after the drain settles): publish
//!    `gts = max(gts, pts)` to the global clock. The data is home by the
//!    time the timestamp moves, so any later acquirer that sees the clock
//!    also sees the data.
//! 4. **Acquire** (`si_fence`, before the sweep): `pts = max(pts, gts)`,
//!    then invalidate exactly the cached pages whose granted lease has
//!    `rts < pts` — *expired* leases. Unexpired leases are kept: that is
//!    the entire win on read-mostly pages, where SI/SD's MW class would
//!    have invalidated everything.
//!
//! Soundness (DRF programs): if node W writes page p and releases, and
//! node A subsequently acquires, then `wts_p > rts` held at W's bump for
//! every lease granted before it, W's release published `gts >= pts_W >=
//! wts_p`, and A's acquire merges `pts_A >= gts > rts(lease)` — so A's
//! stale lease on p is expired and A refetches. Conversely a page nobody
//! wrote keeps `rts >= pts` and survives.
//!
//! **Adaptive leases.** A fixed lease suffers amplification: every write
//! bumps `wts` past the max granted `rts`, so after one global clock jump
//! all same-round leases expire together and read-only pages thrash like
//! AllShared. Each page's home entry therefore carries its own lease
//! length: renewing a lease on an *unchanged* page (it expired only
//! because the clock moved past it) doubles the page's lease up to
//! `tardis_lease_max`; writing the page halves it down to
//! `tardis_lease_min`. Read-mostly pages quickly earn leases long enough
//! to ride out unrelated writers; write-hot pages keep short leases and
//! cheap bumps.
//!
//! Deviations from the paper's TARDIS, called out in DESIGN.md §12: a
//! single shared `gts` cell stands in for timestamp piggybacking on every
//! message (the DSM has no per-message metadata channel); leases are per
//! page rather than per cache line; and there is no speculative `pts`
//! advance on misses. Home-node reads take no lease at all — the home
//! copy is authoritative, which is the DSM analogue of TARDIS's owner
//! state.

use super::{Coherence, PageBitSet, RegisterOutcome, WriteDisposition};
use crate::classification::{node_bit, DirView};
use crate::config::CarinaConfig;
use crate::directory::DirEntry;
use crate::stats::{CoherenceStats, StatShard};
use mem::PageNum;
use std::sync::atomic::{AtomicU64, Ordering};

/// One page's home timestamp entry.
#[derive(Debug)]
struct TsEntry {
    /// Write timestamp of the home copy's version.
    wts: AtomicU64,
    /// Promise horizon: max granted read lease. Invariant: `wts <= rts`
    /// whenever `rts > 0`.
    rts: AtomicU64,
    /// This page's current lease length (adaptive, see module docs).
    lease: AtomicU64,
    /// Diagnostic accessor maps for the census and invariant checks.
    /// Never consulted by a protocol decision — Tardis's whole point is
    /// that it needs no sharer bitmap.
    diag: DirEntry,
}

/// One node's clock and lease table.
#[derive(Debug)]
struct NodeClock {
    /// The node's logical clock.
    pts: AtomicU64,
    /// Release epoch: bumped at every `end_sd_fence`, so a write fault
    /// re-bumps `wts` at most once per epoch (the version the next release
    /// publishes) instead of on every home-page store.
    epoch: AtomicU64,
    /// Pages this node holds a (possibly expired) lease on.
    granted: PageBitSet,
    /// The granted `rts` per page (valid where `granted` is set).
    lease_rts: Vec<AtomicU64>,
    /// The `wts` the lease was granted against (renewal-of-unchanged-page
    /// detection).
    lease_wts: Vec<AtomicU64>,
    /// Epoch of this node's last `wts` bump per page.
    wrote_epoch: Vec<AtomicU64>,
}

/// Timestamp-lease coherence (TARDIS-style).
#[derive(Debug)]
pub struct Tardis {
    entries: Vec<TsEntry>,
    nodes: Vec<NodeClock>,
    /// The global clock releases publish into and acquires merge from.
    gts: AtomicU64,
    lease_init: u64,
    lease_min: u64,
    lease_max: u64,
}

impl Tardis {
    #[inline]
    fn entry(&self, page: PageNum) -> &TsEntry {
        &self.entries[page.0 as usize]
    }

    /// Home `wts`/`rts` of `page` (tests and proptests).
    pub fn timestamps(&self, page: PageNum) -> (u64, u64) {
        let e = self.entry(page);
        (e.wts.load(Ordering::Acquire), e.rts.load(Ordering::Acquire))
    }

    /// `node`'s logical clock (tests and proptests).
    pub fn clock(&self, node: u16) -> u64 {
        self.nodes[node as usize].pts.load(Ordering::Acquire)
    }

    /// The lease `node` currently holds on `page`, if any (tests).
    pub fn granted_lease(&self, node: u16, page: PageNum) -> Option<u64> {
        let nc = &self.nodes[node as usize];
        nc.granted
            .get(page)
            .then(|| nc.lease_rts[page.0 as usize].load(Ordering::Relaxed))
    }

    /// The page's current adaptive lease length (tests and benches).
    pub fn lease_len(&self, page: PageNum) -> u64 {
        self.entry(page).lease.load(Ordering::Relaxed)
    }
}

impl Coherence for Tardis {
    const NAME: &'static str = "tardis";

    fn new(nodes: usize, total_pages: u64, config: &CarinaConfig) -> Self {
        let lease_init = config.tardis_lease.max(1);
        let lease_min = config.tardis_lease_min.max(1).min(lease_init);
        let lease_max = config.tardis_lease_max.max(lease_init);
        Tardis {
            entries: (0..total_pages)
                .map(|_| TsEntry {
                    wts: AtomicU64::new(0),
                    rts: AtomicU64::new(0),
                    lease: AtomicU64::new(lease_init),
                    diag: DirEntry::default(),
                })
                .collect(),
            nodes: (0..nodes)
                .map(|_| NodeClock {
                    pts: AtomicU64::new(0),
                    epoch: AtomicU64::new(1),
                    granted: PageBitSet::new(total_pages),
                    lease_rts: (0..total_pages).map(|_| AtomicU64::new(0)).collect(),
                    lease_wts: (0..total_pages).map(|_| AtomicU64::new(0)).collect(),
                    wrote_epoch: (0..total_pages).map(|_| AtomicU64::new(0)).collect(),
                })
                .collect(),
            gts: AtomicU64::new(0),
            lease_init,
            lease_min,
            lease_max,
        }
    }

    #[inline]
    fn read_registered(&self, me: u16, home: u16, page: PageNum) -> bool {
        if home == me {
            // The home copy is authoritative; home reads need no lease.
            return true;
        }
        let nc = &self.nodes[me as usize];
        nc.granted.get(page)
            && nc.lease_rts[page.0 as usize].load(Ordering::Relaxed)
                >= nc.pts.load(Ordering::Relaxed)
    }

    #[inline]
    fn write_registered(&self, me: u16, _home: u16, page: PageNum) -> bool {
        // One `wts` bump per page per release epoch covers every store of
        // the epoch: leases granted before the bump are already past; a
        // lease granted *during* our epoch on the page we are writing
        // would be a data race, which DRF excludes.
        let nc = &self.nodes[me as usize];
        nc.wrote_epoch[page.0 as usize].load(Ordering::Relaxed)
            == nc.epoch.load(Ordering::Relaxed)
    }

    fn register_reader(
        &self,
        me: u16,
        _home: u16,
        page: PageNum,
        shard: &StatShard,
    ) -> RegisterOutcome {
        let e = self.entry(page);
        let nc = &self.nodes[me as usize];
        let q = page.0 as usize;
        let renewal = nc.granted.get(page);
        let wts = e.wts.load(Ordering::Acquire);
        nc.pts.fetch_max(wts, Ordering::AcqRel);
        let pts = nc.pts.load(Ordering::Acquire);
        // Adaptive growth: renewing a lease on an unchanged version means
        // the lease expired only because unrelated writers moved the
        // clock — double it so the page rides out more of them.
        let lease = if renewal && nc.lease_wts[q].load(Ordering::Relaxed) == wts {
            let grown = (e.lease.load(Ordering::Relaxed) * 2).min(self.lease_max);
            e.lease.store(grown, Ordering::Relaxed);
            grown
        } else {
            e.lease.load(Ordering::Relaxed)
        };
        let grant = pts.saturating_add(lease);
        let prev = e.rts.fetch_max(grant, Ordering::AcqRel);
        nc.lease_rts[q].store(prev.max(grant), Ordering::Relaxed);
        nc.lease_wts[q].store(wts, Ordering::Relaxed);
        if renewal {
            CoherenceStats::bump(&shard.lease_renewals);
        } else {
            nc.granted.set(page);
        }
        e.diag.or_readers(node_bit(me));
        RegisterOutcome::quiet()
    }

    fn register_writer(
        &self,
        me: u16,
        _home: u16,
        page: PageNum,
        _shard: &StatShard,
    ) -> RegisterOutcome {
        let e = self.entry(page);
        let nc = &self.nodes[me as usize];
        let q = page.0 as usize;
        // Bump wts past every granted lease (CAS loop: concurrent writers
        // each get a distinct version).
        let mut w = e.wts.load(Ordering::Acquire);
        let new = loop {
            let r = e.rts.load(Ordering::Acquire);
            let next = w.max(r) + 1;
            match e
                .wts
                .compare_exchange_weak(w, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break next,
                Err(cur) => w = cur,
            }
        };
        // Shrink the page's lease: it is write-active, long promises on it
        // only inflate future bumps.
        let shrunk = (e.lease.load(Ordering::Relaxed) / 2).max(self.lease_min);
        e.lease.store(shrunk, Ordering::Relaxed);
        nc.pts.fetch_max(new, Ordering::AcqRel);
        // Self-lease on the new version (registered at home via rts so any
        // other writer's bump lands past it): our own fences keep the page
        // we are writing, mirroring Table 1's single-writer row.
        let grant = new.saturating_add(shrunk);
        e.rts.fetch_max(grant, Ordering::AcqRel);
        nc.lease_rts[q].fetch_max(grant, Ordering::Relaxed);
        nc.lease_wts[q].store(new, Ordering::Relaxed);
        nc.granted.set(page);
        nc.wrote_epoch[q].store(nc.epoch.load(Ordering::Relaxed), Ordering::Relaxed);
        e.diag.or_writers(node_bit(me));
        RegisterOutcome::quiet()
    }

    fn write_disposition(&self, _me: u16, _page: PageNum) -> WriteDisposition {
        // No sharer map means no single-writer proof: always twin (false
        // sharing is possible) and always buffer (every dirty page is
        // drained at the release that publishes its timestamp).
        WriteDisposition { need_twin: true, buffer: true }
    }

    fn begin_si_fence(&self, me: u16) {
        // Acquire: observe every published release.
        self.nodes[me as usize]
            .pts
            .fetch_max(self.gts.load(Ordering::Acquire), Ordering::AcqRel);
    }

    fn must_self_invalidate(&self, me: u16, page: PageNum, shard: &StatShard) -> bool {
        let nc = &self.nodes[me as usize];
        let pts = nc.pts.load(Ordering::Acquire);
        let held = nc.granted.get(page)
            && nc.lease_rts[page.0 as usize].load(Ordering::Relaxed) >= pts;
        if held {
            CoherenceStats::bump(&shard.lease_kept);
        } else {
            CoherenceStats::bump(&shard.lease_expiries);
        }
        !held
    }

    fn end_sd_fence(&self, me: u16) {
        let nc = &self.nodes[me as usize];
        // Publish after the drain settled: clock moves only once data is
        // home.
        self.gts
            .fetch_max(nc.pts.load(Ordering::Acquire), Ordering::AcqRel);
        nc.epoch.fetch_add(1, Ordering::AcqRel);
    }

    fn downgrade_skip_diff(&self, _me: u16, _page: PageNum) -> bool {
        false
    }

    fn census_view(&self, page: PageNum) -> DirView {
        // Diagnostic maps only (home reads take no lease and writers are
        // recorded at bump time); good enough for the census's heat and
        // sharing reports, never used for a protocol decision.
        self.entry(page).diag.view()
    }

    fn invariant_problems(&self, node: u16, dirty: &[PageNum]) -> Vec<String> {
        let mut problems = Vec::new();
        let n = node as usize;
        let nc = &self.nodes[n];
        for &page in dirty {
            if self.entry(page).diag.view().writers & node_bit(node) == 0 {
                problems.push(format!(
                    "n{n}: dirty page {} without a wts bump on record",
                    page.0
                ));
            }
            if !nc.granted.get(page) {
                problems.push(format!("n{n}: dirty page {} holds no lease", page.0));
            }
        }
        for (q, e) in self.entries.iter().enumerate() {
            let (wts, rts) = (
                e.wts.load(Ordering::Acquire),
                e.rts.load(Ordering::Acquire),
            );
            if rts < wts {
                problems.push(format!("page {q}: rts {rts} < wts {wts}"));
            }
            if nc.granted.get(PageNum(q as u64))
                && nc.lease_rts[q].load(Ordering::Relaxed) > rts
            {
                problems.push(format!(
                    "n{n}: lease on page {q} beyond home rts ({} > {rts})",
                    nc.lease_rts[q].load(Ordering::Relaxed)
                ));
            }
        }
        problems
    }

    fn reset_all(&self) {
        for e in &self.entries {
            e.wts.store(0, Ordering::Relaxed);
            e.rts.store(0, Ordering::Relaxed);
            e.lease.store(self.lease_init, Ordering::Relaxed);
            e.diag.reset();
        }
        for nc in &self.nodes {
            nc.pts.store(0, Ordering::Relaxed);
            nc.epoch.store(1, Ordering::Relaxed);
            nc.granted.clear_all();
            for a in &nc.lease_rts {
                a.store(0, Ordering::Relaxed);
            }
            for a in &nc.lease_wts {
                a.store(0, Ordering::Relaxed);
            }
            for a in &nc.wrote_epoch {
                a.store(0, Ordering::Relaxed);
            }
        }
        self.gts.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CoherenceStats;

    fn policy(nodes: usize) -> Tardis {
        Tardis::new(nodes, 8, &CarinaConfig::default())
    }

    #[test]
    fn lease_grant_and_expiry_cycle() {
        let c = policy(2);
        let s = CoherenceStats::new(2);
        let p = PageNum(3);
        // n0 reads p (homed on n1): lease granted, fence keeps it.
        assert!(!c.read_registered(0, 1, p));
        c.register_reader(0, 1, p, s.shard(0));
        assert!(c.read_registered(0, 1, p));
        c.begin_si_fence(0);
        assert!(!c.must_self_invalidate(0, p, s.shard(0)));
        // n1 writes p and releases: n0's next acquire expires the lease.
        c.register_writer(1, 1, p, s.shard(1));
        c.end_sd_fence(1);
        c.begin_si_fence(0);
        assert!(c.must_self_invalidate(0, p, s.shard(0)));
        assert!(!c.read_registered(0, 1, p));
        // Refetch = renewal.
        c.register_reader(0, 1, p, s.shard(0));
        assert!(c.read_registered(0, 1, p));
        let snap = s.snapshot();
        assert_eq!(snap.lease_renewals, 1);
        assert_eq!(snap.lease_expiries, 1);
        assert_eq!(snap.lease_kept, 1);
    }

    #[test]
    fn wts_never_exceeds_rts() {
        let c = policy(2);
        let s = CoherenceStats::new(2);
        let p = PageNum(0);
        for _ in 0..5 {
            c.register_reader(0, 1, p, s.shard(0));
            c.register_writer(1, 1, p, s.shard(1));
            c.end_sd_fence(1);
            c.begin_si_fence(0);
            let (wts, rts) = c.timestamps(p);
            assert!(wts <= rts, "wts {wts} > rts {rts}");
        }
    }

    #[test]
    fn unwritten_pages_survive_unrelated_writes_after_adaptation() {
        let c = policy(2);
        let s = CoherenceStats::new(2);
        let cold = PageNum(1); // read-only page
        let hot = PageNum(2); // write-hot page
        c.register_reader(0, 1, cold, s.shard(0));
        let mut kept_after_growth = false;
        for _ in 0..12 {
            c.register_writer(1, 1, hot, s.shard(1));
            c.end_sd_fence(1);
            c.begin_si_fence(0);
            if !c.must_self_invalidate(0, cold, s.shard(0)) {
                kept_after_growth = true;
            } else {
                c.register_reader(0, 1, cold, s.shard(0)); // renew, lease doubles
            }
        }
        assert!(
            kept_after_growth,
            "adaptive lease never outlived the hot page's writes"
        );
        assert!(c.lease_len(cold) > c.lease_len(hot));
    }

    #[test]
    fn write_epoch_gates_rebumps() {
        let c = policy(2);
        let s = CoherenceStats::new(2);
        let p = PageNum(4);
        assert!(!c.write_registered(0, 0, p));
        c.register_writer(0, 0, p, s.shard(0));
        assert!(c.write_registered(0, 0, p));
        let (w1, _) = c.timestamps(p);
        // Same epoch: no new bump needed.
        c.end_sd_fence(0);
        assert!(!c.write_registered(0, 0, p));
        c.register_writer(0, 0, p, s.shard(0));
        let (w2, _) = c.timestamps(p);
        assert!(w2 > w1);
    }

    #[test]
    fn home_reads_take_no_lease() {
        let c = policy(2);
        assert!(c.read_registered(0, 0, PageNum(5)));
        assert_eq!(c.granted_lease(0, PageNum(5)), None);
    }

    #[test]
    fn reset_restores_initial_state() {
        let c = policy(2);
        let s = CoherenceStats::new(2);
        c.register_reader(0, 1, PageNum(0), s.shard(0));
        c.register_writer(1, 1, PageNum(0), s.shard(1));
        c.end_sd_fence(1);
        c.reset_all();
        assert_eq!(c.timestamps(PageNum(0)), (0, 0));
        assert_eq!(c.clock(0), 0);
        assert_eq!(c.clock(1), 0);
        assert!(!c.read_registered(0, 1, PageNum(0)));
        assert!(c.invariant_problems(0, &[]).is_empty());
    }
}
