//! Tardis: timestamp-lease coherence on the Carina engine.
//!
//! An adaptation of TARDIS (Yu & Devadas, PACT'15) to the DSM's
//! acquire/release fence model. Instead of Pyxis reader/writer full maps,
//! every page's home entry carries two logical timestamps:
//!
//! - `wts` — the write timestamp of the home copy's current version;
//! - `rts` — the time through which that version is *promised* valid (the
//!   max of every granted read lease).
//!
//! Each node keeps a logical clock `pts`. The protocol is four rules:
//!
//! 1. **Read fill**: `pts = max(pts, wts)`, then take a lease
//!    `rts = max(rts, pts + lease)` with the same one-sided directory
//!    atomic Carina uses for registration (timestamps ride in the entry,
//!    no extra verbs). The copy is valid through the granted `rts`.
//! 2. **Write fault**: `pts = max(pts, wts)` and halve the page's lease.
//!    The version does not move yet — the new bytes exist only in the
//!    writer's cache — and the writer takes *no* lease: a lease asserts
//!    the whole copy is current, which a multi-writer diff protocol
//!    cannot prove for a written page (words another node wrote are as
//!    old as the last fill; hardware TARDIS writes under exclusive
//!    ownership, which is what makes its write-side leases sound).
//!    Written pages follow SI/SD discipline instead: drained at the
//!    release, self-invalidated at the writer's next acquire.
//! 3. **Downgrade** (the dirty copy lands in home memory — fence drain,
//!    buffer overflow, or eviction): bump `wts = max(wts, rts) + 1` — past
//!    every granted lease — keep `rts >= wts`, and
//!    `pts = max(pts, wts)`. Bumping here rather than at the fault is
//!    what makes rule 4's release argument sound: a version number never
//!    exists before its bytes are fetchable. (Bumping at fault time lets a
//!    concurrent read fill lease the *old* home bytes at a clock past the
//!    new version, and that stale copy would survive the writer's
//!    release.) The release (`end_sd_fence`, after every drain settled)
//!    then publishes `gts = max(gts, pts)`. Writes to pages homed at the
//!    writer never downgrade — the stores land in home memory directly —
//!    so their bump is deferred to the release itself, after every store
//!    of the epoch, via a per-epoch queue of home-written pages. Because
//!    threads of one node share the epoch, the release opens the next
//!    epoch *before* draining that queue and the engine re-checks
//!    registration after every home store: a store either precedes the
//!    bump (old epoch still visible) or re-queues its page for the
//!    storing thread's own release.
//! 4. **Acquire** (`si_fence`, before the sweep): `pts = max(pts, gts)`,
//!    then invalidate exactly the cached pages whose granted lease has
//!    `rts < pts` — *expired* leases. Unexpired leases are kept: that is
//!    the entire win on read-mostly pages, where SI/SD's MW class would
//!    have invalidated everything.
//!
//! Soundness (DRF programs): if node W writes page p and releases, and
//! node A subsequently acquires, then `wts_p > rts` held at W's drain-time
//! bump for every lease granted before it (grants and bumps serialize on
//! the entry lock below), W's release published `gts >= pts_W >= wts_p`,
//! and A's acquire merges `pts_A >= gts > rts(lease)` — so A's stale lease
//! on p is expired and A refetches. A lease granted *after* the bump is on
//! the new version, whose bytes are already home. Conversely a page nobody
//! wrote keeps `rts >= pts` and survives.
//!
//! The per-entry mutex stands in for the directory's serialization point:
//! a reader's grant (`read wts → extend rts`) and a drain's bump
//! (`read rts → advance wts`) are each two steps over two cells, and
//! interleaving them can grant a lease the bump never saw. Hardware TARDIS
//! gets this atomicity for free at the LLC; the lock is host-side only and
//! costs no modeled cycles.
//!
//! **Adaptive leases.** A fixed lease suffers amplification: every write
//! bumps `wts` past the max granted `rts`, so after one global clock jump
//! all same-round leases expire together and read-only pages thrash like
//! AllShared. Each page's home entry therefore carries its own lease
//! length: renewing a lease on an *unchanged* page (it expired only
//! because the clock moved past it) doubles the page's lease up to
//! `tardis_lease_max`; writing the page halves it down to
//! `tardis_lease_min`. Read-mostly pages quickly earn leases long enough
//! to ride out unrelated writers; write-hot pages keep short leases and
//! cheap bumps.
//!
//! Deviations from the paper's TARDIS, called out in DESIGN.md §12: a
//! single shared `gts` cell stands in for timestamp piggybacking on every
//! message (the DSM has no per-message metadata channel); leases are per
//! page rather than per cache line; and there is no speculative `pts`
//! advance on misses. Home-node reads take no lease at all — the home
//! copy is authoritative, which is the DSM analogue of TARDIS's owner
//! state.

use super::{Coherence, LeaseClock, PageBitSet, PageMode, RegisterOutcome, WriteDisposition};
use crate::classification::{node_bit, DirView};
use crate::config::CarinaConfig;
use crate::directory::DirEntry;
use crate::stats::{CoherenceStats, StatShard};
use mem::PageNum;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One page's home timestamp entry.
#[derive(Debug)]
struct TsEntry {
    /// Serializes lease grants against version bumps (see module docs);
    /// the fields stay atomics so fence predicates read them lock-free.
    lock: Mutex<()>,
    /// Write timestamp of the home copy's version.
    wts: AtomicU64,
    /// Promise horizon: max granted read lease. Invariant: `wts <= rts`
    /// whenever `rts > 0`.
    rts: AtomicU64,
    /// This page's current lease length (adaptive, see module docs).
    lease: AtomicU64,
    /// Diagnostic accessor maps for the census and invariant checks.
    /// Never consulted by a protocol decision — Tardis's whole point is
    /// that it needs no sharer bitmap.
    diag: DirEntry,
}

/// One node's clock and lease table.
#[derive(Debug)]
struct NodeClock {
    /// The node's logical clock.
    pts: AtomicU64,
    /// Release epoch: bumped at every `end_sd_fence`, so a write fault
    /// re-bumps `wts` at most once per epoch (the version the next release
    /// publishes) instead of on every home-page store.
    epoch: AtomicU64,
    /// Pages this node holds a (possibly expired) lease on.
    granted: PageBitSet,
    /// The granted `rts` per page (valid where `granted` is set).
    lease_rts: Vec<AtomicU64>,
    /// The `wts` the lease was granted against (renewal-of-unchanged-page
    /// detection).
    lease_wts: Vec<AtomicU64>,
    /// Epoch of this node's last `wts` bump per page.
    wrote_epoch: Vec<AtomicU64>,
    /// Pages homed *here* and written this epoch. Home stores land in home
    /// memory directly — no cached copy, no drain — so their version bump
    /// is deferred to `end_sd_fence` (after every store of the epoch) and
    /// this queue remembers which pages owe one.
    home_writes: Mutex<Vec<PageNum>>,
}

/// Timestamp-lease coherence (TARDIS-style).
#[derive(Debug)]
pub struct Tardis {
    entries: Vec<TsEntry>,
    nodes: Vec<NodeClock>,
    /// The global clock releases publish into and acquires merge from.
    gts: AtomicU64,
    /// The shared adaptive grow/shrink rule (see [`LeaseClock`]).
    clock: LeaseClock,
}

impl Tardis {
    #[inline]
    fn entry(&self, page: PageNum) -> &TsEntry {
        &self.entries[page.0 as usize]
    }

    /// Home `wts`/`rts` of `page` (tests and proptests).
    pub fn timestamps(&self, page: PageNum) -> (u64, u64) {
        let e = self.entry(page);
        (e.wts.load(Ordering::Acquire), e.rts.load(Ordering::Acquire))
    }

    /// `node`'s logical clock (tests and proptests).
    pub fn clock(&self, node: u16) -> u64 {
        self.nodes[node as usize].pts.load(Ordering::Acquire)
    }

    /// The lease `node` currently holds on `page`, if any (tests).
    pub fn granted_lease(&self, node: u16, page: PageNum) -> Option<u64> {
        let nc = &self.nodes[node as usize];
        nc.granted
            .get(page)
            .then(|| nc.lease_rts[page.0 as usize].load(Ordering::Relaxed))
    }

    /// The page's current adaptive lease length (tests and benches).
    pub fn lease_len(&self, page: PageNum) -> u64 {
        self.entry(page).lease.load(Ordering::Relaxed)
    }
}

impl Coherence for Tardis {
    const NAME: &'static str = "tardis";

    fn new(nodes: usize, total_pages: u64, config: &CarinaConfig) -> Self {
        let clock = LeaseClock::from_config(config);
        Tardis {
            entries: (0..total_pages)
                .map(|_| TsEntry {
                    lock: Mutex::new(()),
                    wts: AtomicU64::new(0),
                    rts: AtomicU64::new(0),
                    lease: AtomicU64::new(clock.initial()),
                    diag: DirEntry::default(),
                })
                .collect(),
            nodes: (0..nodes)
                .map(|_| NodeClock {
                    pts: AtomicU64::new(0),
                    epoch: AtomicU64::new(1),
                    granted: PageBitSet::new(total_pages),
                    lease_rts: (0..total_pages).map(|_| AtomicU64::new(0)).collect(),
                    lease_wts: (0..total_pages).map(|_| AtomicU64::new(0)).collect(),
                    wrote_epoch: (0..total_pages).map(|_| AtomicU64::new(0)).collect(),
                    home_writes: Mutex::new(Vec::new()),
                })
                .collect(),
            gts: AtomicU64::new(0),
            clock,
        }
    }

    #[inline]
    fn read_registered(&self, me: u16, home: u16, page: PageNum) -> bool {
        if home == me {
            // The home copy is authoritative; home reads need no lease.
            return true;
        }
        let nc = &self.nodes[me as usize];
        nc.granted.get(page)
            && nc.lease_rts[page.0 as usize].load(Ordering::Relaxed)
                >= nc.pts.load(Ordering::Relaxed)
    }

    #[inline]
    fn write_registered(&self, me: u16, _home: u16, page: PageNum) -> bool {
        // One `wts` bump per page per release epoch covers every store of
        // the epoch: leases granted before the bump are already past; a
        // lease granted *during* our epoch on the page we are writing
        // would be a data race, which DRF excludes. SeqCst pairs with the
        // epoch increment in `end_sd_fence`: a gate check that reads the
        // old epoch is totally ordered before the increment, hence before
        // the queue drain that bumps the page.
        let nc = &self.nodes[me as usize];
        nc.wrote_epoch[page.0 as usize].load(Ordering::Relaxed)
            == nc.epoch.load(Ordering::SeqCst)
    }

    fn register_reader(
        &self,
        me: u16,
        _home: u16,
        page: PageNum,
        shard: &StatShard,
    ) -> RegisterOutcome {
        let e = self.entry(page);
        let nc = &self.nodes[me as usize];
        let q = page.0 as usize;
        let _serial = e.lock.lock();
        let renewal = nc.granted.get(page);
        let wts = e.wts.load(Ordering::Acquire);
        nc.pts.fetch_max(wts, Ordering::AcqRel);
        let pts = nc.pts.load(Ordering::Acquire);
        // Adaptive growth: renewing a lease on an unchanged version means
        // the lease expired only because unrelated writers moved the
        // clock — double it so the page rides out more of them.
        let lease = if renewal && nc.lease_wts[q].load(Ordering::Relaxed) == wts {
            self.clock.grow(&e.lease)
        } else {
            e.lease.load(Ordering::Relaxed)
        };
        let grant = pts.saturating_add(lease);
        let prev = e.rts.fetch_max(grant, Ordering::AcqRel);
        nc.lease_rts[q].store(prev.max(grant), Ordering::Relaxed);
        nc.lease_wts[q].store(wts, Ordering::Relaxed);
        if renewal {
            CoherenceStats::bump(&shard.lease_renewals);
        } else {
            nc.granted.set(page);
        }
        e.diag.or_readers(node_bit(me));
        RegisterOutcome::quiet()
    }

    fn register_writer(
        &self,
        me: u16,
        home: u16,
        page: PageNum,
        _shard: &StatShard,
    ) -> RegisterOutcome {
        let e = self.entry(page);
        let nc = &self.nodes[me as usize];
        let q = page.0 as usize;
        let _serial = e.lock.lock();
        // Shrink the page's lease: it is write-active, and long promises
        // on it only inflate future bumps.
        self.clock.shrink(&e.lease);
        // No self-lease, in either branch. A lease asserts the *whole*
        // copy is current, and a multi-writer diff protocol cannot prove
        // that for a written page: words another node wrote are exactly as
        // old as the last fill. (Hardware TARDIS writes under exclusive
        // ownership, which is what makes its write-side leases sound.)
        // Written pages follow SI/SD discipline instead — drain at the
        // release, self-invalidate at the writer's next acquire — and
        // leases protect only read-filled copies.
        if home == me {
            // Home stores land in home memory directly — there is no
            // cached copy and no drain, so no `note_downgrade` will ever
            // fire for this page. The epoch's bytes become the published
            // version at the *release*, after every store of the epoch;
            // queue the bump for `end_sd_fence`. (Bumping now would mint a
            // version whose later same-epoch stores are still in flight —
            // the exact stale-lease window rule 3 closes for remote
            // writes.)
            nc.home_writes.lock().push(page);
        } else {
            // The version does not move here — the new bytes exist only in
            // this writer's cache until the downgrade (rule 3). Write at
            // the current clock: `pts = max(pts, wts)`.
            let wts = e.wts.load(Ordering::Acquire);
            nc.pts.fetch_max(wts, Ordering::AcqRel);
        }
        nc.wrote_epoch[q].store(nc.epoch.load(Ordering::Relaxed), Ordering::Relaxed);
        e.diag.or_writers(node_bit(me));
        RegisterOutcome::quiet()
    }

    fn write_disposition(&self, _me: u16, _page: PageNum) -> WriteDisposition {
        // No sharer map means no single-writer proof: always twin (false
        // sharing is possible) and always buffer (every dirty page is
        // drained at the release that publishes its timestamp).
        WriteDisposition { need_twin: true, buffer: true }
    }

    fn begin_si_fence(&self, me: u16, _shard: &StatShard) {
        // Acquire: observe every published release.
        self.nodes[me as usize]
            .pts
            .fetch_max(self.gts.load(Ordering::Acquire), Ordering::AcqRel);
    }

    fn must_self_invalidate(&self, me: u16, page: PageNum, shard: &StatShard) -> bool {
        let nc = &self.nodes[me as usize];
        let pts = nc.pts.load(Ordering::Acquire);
        let held = nc.granted.get(page)
            && nc.lease_rts[page.0 as usize].load(Ordering::Relaxed) >= pts;
        if held {
            CoherenceStats::bump(&shard.lease_kept);
        } else {
            CoherenceStats::bump(&shard.lease_expiries);
        }
        !held
    }

    fn end_sd_fence(&self, me: u16, _shard: &StatShard) {
        let nc = &self.nodes[me as usize];
        // Open the next epoch *before* draining the home-write queue. A
        // sibling thread's store is covered by the bumps below only if it
        // landed first — and the store path re-checks registration after
        // every home store, so a storer either still reads the old epoch
        // here (its store preceded this increment, hence the bumps) or
        // reads the new one and re-queues the page for its own release.
        nc.epoch.fetch_add(1, Ordering::SeqCst);
        // Home-written pages had no drain: their stores hit home memory
        // directly, and this release is the moment the epoch's bytes
        // become the published version.
        let pending = std::mem::take(&mut *nc.home_writes.lock());
        for page in pending {
            self.note_downgrade(me, page);
        }
        // Publish after the drain settled: clock moves only once data is
        // home.
        self.gts
            .fetch_max(nc.pts.load(Ordering::Acquire), Ordering::AcqRel);
    }

    fn downgrade_skip_diff(&self, _me: u16, _page: PageNum) -> bool {
        false
    }

    fn note_downgrade(&self, me: u16, page: PageNum) {
        let e = self.entry(page);
        let nc = &self.nodes[me as usize];
        let _serial = e.lock.lock();
        // The drained bytes are home: this is the moment the new version
        // exists. Bump past every granted lease — anyone still holding one
        // leased the old bytes, and the release about to publish our clock
        // will expire them at their next acquire.
        let v = e
            .wts
            .load(Ordering::Acquire)
            .max(e.rts.load(Ordering::Acquire))
            + 1;
        e.wts.store(v, Ordering::Release);
        // Keep `wts <= rts` (an rts below the version would promise the
        // previous version past its life). No self-lease: see
        // `register_writer` — written copies cannot be proven whole.
        e.rts.fetch_max(v, Ordering::AcqRel);
        nc.pts.fetch_max(v, Ordering::AcqRel);
        e.diag.or_writers(node_bit(me));
    }

    fn page_mode(&self, _page: PageNum) -> PageMode {
        PageMode::Lease
    }

    fn census_view(&self, page: PageNum) -> DirView {
        // Diagnostic maps only (home reads take no lease and writers are
        // recorded at bump time); good enough for the census's heat and
        // sharing reports, never used for a protocol decision.
        self.entry(page).diag.view()
    }

    fn invariant_problems(&self, node: u16, dirty: &[PageNum]) -> Vec<String> {
        let mut problems = Vec::new();
        let n = node as usize;
        let nc = &self.nodes[n];
        for &page in dirty {
            if self.entry(page).diag.view().writers & node_bit(node) == 0 {
                problems.push(format!(
                    "n{n}: dirty page {} without a writer on record",
                    page.0
                ));
            }
        }
        for (q, e) in self.entries.iter().enumerate() {
            let (wts, rts) = (
                e.wts.load(Ordering::Acquire),
                e.rts.load(Ordering::Acquire),
            );
            if rts < wts {
                problems.push(format!("page {q}: rts {rts} < wts {wts}"));
            }
            if nc.granted.get(PageNum(q as u64))
                && nc.lease_rts[q].load(Ordering::Relaxed) > rts
            {
                problems.push(format!(
                    "n{n}: lease on page {q} beyond home rts ({} > {rts})",
                    nc.lease_rts[q].load(Ordering::Relaxed)
                ));
            }
        }
        problems
    }

    fn on_membership_change(&self, rehomed: &[PageNum]) {
        // A re-homed page's timestamp entry lived on the departed node.
        // Drop every granted lease on it (the copies it vouched for were
        // scrubbed by the failover sweep) but keep `wts`/`rts` monotone —
        // the flat entry store survives the re-homing, and regressing a
        // clock could revalidate a lease some node still remembers.
        for &page in rehomed {
            let q = page.0 as usize;
            let e = self.entry(page);
            let _serial = e.lock.lock();
            for nc in &self.nodes {
                nc.granted.clear(page);
                nc.lease_rts[q].store(0, Ordering::Relaxed);
                nc.lease_wts[q].store(0, Ordering::Relaxed);
                nc.wrote_epoch[q].store(0, Ordering::Relaxed);
            }
            e.diag.reset();
        }
    }

    fn reset_all(&self) {
        for e in &self.entries {
            e.wts.store(0, Ordering::Relaxed);
            e.rts.store(0, Ordering::Relaxed);
            e.lease.store(self.clock.initial(), Ordering::Relaxed);
            e.diag.reset();
        }
        for nc in &self.nodes {
            nc.pts.store(0, Ordering::Relaxed);
            nc.epoch.store(1, Ordering::Relaxed);
            nc.granted.clear_all();
            for a in &nc.lease_rts {
                a.store(0, Ordering::Relaxed);
            }
            for a in &nc.lease_wts {
                a.store(0, Ordering::Relaxed);
            }
            for a in &nc.wrote_epoch {
                a.store(0, Ordering::Relaxed);
            }
            nc.home_writes.lock().clear();
        }
        self.gts.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CoherenceStats;

    fn policy(nodes: usize) -> Tardis {
        Tardis::new(nodes, 8, &CarinaConfig::default())
    }

    #[test]
    fn lease_grant_and_expiry_cycle() {
        let c = policy(2);
        let s = CoherenceStats::new(2);
        let p = PageNum(3);
        // n0 reads p (homed on n1): lease granted, fence keeps it.
        assert!(!c.read_registered(0, 1, p));
        c.register_reader(0, 1, p, s.shard(0));
        assert!(c.read_registered(0, 1, p));
        c.begin_si_fence(0, s.shard(0));
        assert!(!c.must_self_invalidate(0, p, s.shard(0)));
        // n1 writes p (homed at n1: the release itself bumps) and
        // releases: n0's next acquire expires the lease.
        c.register_writer(1, 1, p, s.shard(1));
        c.end_sd_fence(1, s.shard(1));
        c.begin_si_fence(0, s.shard(0));
        assert!(c.must_self_invalidate(0, p, s.shard(0)));
        assert!(!c.read_registered(0, 1, p));
        // Refetch = renewal.
        c.register_reader(0, 1, p, s.shard(0));
        assert!(c.read_registered(0, 1, p));
        let snap = s.snapshot();
        assert_eq!(snap.lease_renewals, 1);
        assert_eq!(snap.lease_expiries, 1);
        assert_eq!(snap.lease_kept, 1);
    }

    #[test]
    fn wts_never_exceeds_rts() {
        let c = policy(2);
        let s = CoherenceStats::new(2);
        let p = PageNum(0);
        for _ in 0..5 {
            c.register_reader(0, 1, p, s.shard(0));
            c.register_writer(1, 1, p, s.shard(1));
            c.end_sd_fence(1, s.shard(1));
            c.begin_si_fence(0, s.shard(0));
            let (wts, rts) = c.timestamps(p);
            assert!(wts <= rts, "wts {wts} > rts {rts}");
        }
    }

    #[test]
    fn unwritten_pages_survive_unrelated_writes_after_adaptation() {
        let c = policy(2);
        let s = CoherenceStats::new(2);
        let cold = PageNum(1); // read-only page
        let hot = PageNum(2); // write-hot page
        c.register_reader(0, 1, cold, s.shard(0));
        let mut kept_after_growth = false;
        for _ in 0..12 {
            if !c.write_registered(1, 1, hot) {
                c.register_writer(1, 1, hot, s.shard(1));
            }
            c.end_sd_fence(1, s.shard(1));
            c.begin_si_fence(0, s.shard(0));
            if !c.must_self_invalidate(0, cold, s.shard(0)) {
                kept_after_growth = true;
            } else {
                c.register_reader(0, 1, cold, s.shard(0)); // renew, lease doubles
            }
        }
        assert!(
            kept_after_growth,
            "adaptive lease never outlived the hot page's writes"
        );
        assert!(c.lease_len(cold) > c.lease_len(hot));
    }

    #[test]
    fn version_moves_at_drain_not_at_fault() {
        let c = policy(2);
        let s = CoherenceStats::new(2);
        let p = PageNum(4); // homed at n1, written by n0: the drained path
        assert!(!c.write_registered(0, 1, p));
        c.register_writer(0, 1, p, s.shard(0));
        assert!(c.write_registered(0, 1, p));
        let (w_fault, _) = c.timestamps(p);
        assert_eq!(w_fault, 0, "the write fault must not publish a version");
        // The drain creates the version, past every granted lease.
        let (_, rts_before) = c.timestamps(p);
        c.note_downgrade(0, p);
        let (w_drain, _) = c.timestamps(p);
        assert!(w_drain > rts_before);
        // Epoch gating: one self-lease registration per release epoch.
        c.end_sd_fence(0, s.shard(0));
        assert!(!c.write_registered(0, 1, p));
        c.register_writer(0, 1, p, s.shard(0));
        assert!(c.write_registered(0, 1, p));
    }

    #[test]
    fn home_writes_bump_at_release_not_before() {
        let c = policy(2);
        let s = CoherenceStats::new(2);
        let p = PageNum(2); // homed at n0, written by n0: no drain exists
        // n1 leases the page first.
        c.register_reader(1, 0, p, s.shard(1));
        c.begin_si_fence(1, s.shard(1));
        assert!(!c.must_self_invalidate(1, p, s.shard(1)));
        // The home write registers but must not mint a version: the
        // epoch's stores are still landing.
        c.register_writer(0, 0, p, s.shard(0));
        let (w_fault, _) = c.timestamps(p);
        assert_eq!(w_fault, 0, "home write published a version before release");
        // The release bumps past n1's lease and publishes the clock.
        c.end_sd_fence(0, s.shard(0));
        let (w_rel, rts) = c.timestamps(p);
        assert!(w_rel > 0 && w_rel <= rts);
        c.begin_si_fence(1, s.shard(1));
        assert!(c.must_self_invalidate(1, p, s.shard(1)));
        // One bump per epoch: the queue drained.
        let again = c.timestamps(p).0;
        c.end_sd_fence(0, s.shard(0));
        assert_eq!(c.timestamps(p).0, again, "release re-bumped a drained queue");
    }

    #[test]
    fn home_reads_take_no_lease() {
        let c = policy(2);
        assert!(c.read_registered(0, 0, PageNum(5)));
        assert_eq!(c.granted_lease(0, PageNum(5)), None);
    }

    #[test]
    fn reset_restores_initial_state() {
        let c = policy(2);
        let s = CoherenceStats::new(2);
        c.register_reader(0, 1, PageNum(0), s.shard(0));
        c.register_writer(1, 1, PageNum(0), s.shard(1));
        c.end_sd_fence(1, s.shard(1));
        c.reset_all();
        assert_eq!(c.timestamps(PageNum(0)), (0, 0));
        assert_eq!(c.clock(0), 0);
        assert_eq!(c.clock(1), 0);
        assert!(!c.read_registered(0, 1, PageNum(0)));
        assert!(c.invariant_problems(0, &[]).is_empty());
    }
}
