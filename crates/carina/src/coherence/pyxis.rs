//! Pyxis: census-driven hybrid coherence — leases on read-mostly pages,
//! SI/SD classification on write-shared ones.
//!
//! The head-to-head in EXPERIMENTS.md shows the two pure policies are
//! complementary: [`Tardis`] leases cut SI-fence invalidations ~28x on
//! read-mostly sharing but lose >2x on the write-heavy SOR stencil, while
//! [`CarinaSiSd`] does the reverse. Pyxis runs *both* protocols' metadata
//! and picks the governing one per page:
//!
//! - **Classification metadata is maintained for every page, always**
//!   (reader/writer full maps, directory-cache notifications). The
//!   maps are monotone and the notifications are the same bounded,
//!   once-per-transition verbs SI/SD posts, so the Table 1 predicate stays
//!   sound no matter how long a page spent in lease mode — and the census
//!   stays authoritative under the hybrid.
//! - **Timestamps are maintained only while a page is in lease mode.**
//!   Soundness across switches comes from the reconcile rule below, not
//!   from cross-mode clock upkeep, so classification-mode writes pay no
//!   per-epoch `wts` bumps.
//!
//! **Signals.** Tracking is O(1) per access on paths the engine already
//! exercises — never a page-table scan:
//! - `write_disposition` (every clean→dirty fault, once per page per
//!   epoch) bumps a per-page monotone *write version* and zeroes the
//!   page's reads-between-writes counter;
//! - `register_reader` (misses and lease renewals) bumps the
//!   reads-between-writes counter;
//! - each node remembers, per page, the write version it observed at its
//!   previous fence check. "Did anything change since I last looked?" is
//!   one compare — and it is independent of fence cadence and thread
//!   count, where a wall-clock or fence-tick decay window would not be;
//! - fence checks compare the governing predicate against the
//!   counterfactual: in lease mode the side-effect-free Table 1 predicate
//!   (writer-set cardinality straight from the census maps) prices each
//!   keep/expiry against what SI/SD would have done; in classification
//!   mode an invalidation of a page whose write version has *not* moved
//!   since this node's last check — yet which has been read since its
//!   last write — is the read-mostly waste leases exist to avoid.
//!
//! **Hysteresis.** Evidence accumulates in a saturating per-page score
//! (positive = leases are winning, negative = SI/SD is): +1 per avoided
//! invalidation / useless invalidation, -1 per regret event. A page
//! switches only when the score crosses `pyxis_switch_threshold`, and the
//! score resets to zero on every switch, so flapping needs a full
//! threshold's worth of contrary evidence each way.
//!
//! **Fence-boundary switches.** A crossing only *enqueues* the page; the
//! pending queue is applied in `begin_si_fence`/`end_sd_fence` — the
//! epoch-safe points — so modes never change under a fence sweep issued by
//! the same node, and the engine's issue/poll overlap, write buffer, and
//! retry machinery compose unchanged. A switch bumps the page's mode
//! epoch (parity = mode), and the first acquire on which a node observes a
//! new epoch unconditionally invalidates its copy and re-registers. That
//! reconcile rule is what makes transitions safe in both directions: no
//! lease grant from a previous lease stint and no stale directory-cache
//! view can keep stale data alive across a switch.

use super::{
    CarinaSiSd, Coherence, PageMode, RegisterOutcome, Tardis, WriteDisposition,
};
use crate::classification::DirView;
use crate::config::CarinaConfig;
use crate::stats::{CoherenceStats, StatShard};
use mem::PageNum;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Census-driven per-page hybrid of [`CarinaSiSd`] and [`Tardis`].
#[derive(Debug)]
pub struct Pyxis {
    sisd: CarinaSiSd,
    tardis: Tardis,
    /// Per page: switch count. Parity is the mode (even = classify,
    /// odd = lease); every page starts in classification mode.
    mode_epoch: Vec<AtomicU64>,
    /// Per node, per page: the mode epoch this node last reconciled at an
    /// acquire (mismatch ⇒ force-invalidate once).
    seen_epoch: Vec<Box<[AtomicU64]>>,
    /// Per page saturating evidence score (see module docs).
    score: Vec<AtomicI64>,
    /// Per page: monotone write version, bumped once per clean→dirty
    /// fault. Comparing against a node's remembered version answers "was
    /// this page written since I last checked it?" exactly, with no decay
    /// window to tune.
    write_version: Vec<AtomicU64>,
    /// Per page: reads since the page's last write (zeroed on every
    /// clean→dirty fault) — the reads-between-writes census signal.
    reads_since_write: Vec<AtomicU64>,
    /// Per node, per page: the write version this node observed at its
    /// previous fence check of the page.
    seen_version: Vec<Box<[AtomicU64]>>,
    /// Pages whose score crossed the threshold since the last fence hook;
    /// drained (and the switches applied) only at fence boundaries.
    pending: Mutex<Vec<PageNum>>,
    pending_len: AtomicUsize,
    threshold: i64,
    cap: i64,
}

impl Pyxis {
    /// Is `page` currently governed by timestamp leases?
    #[inline]
    pub fn in_lease_mode(&self, page: PageNum) -> bool {
        self.mode_epoch[page.0 as usize].load(Ordering::Relaxed) & 1 == 1
    }

    /// How many times `page` has switched modes (tests and proptests).
    pub fn switch_count(&self, page: PageNum) -> u64 {
        self.mode_epoch[page.0 as usize].load(Ordering::Relaxed)
    }

    /// The page's current evidence score (tests).
    pub fn score_of(&self, page: PageNum) -> i64 {
        self.score[page.0 as usize].load(Ordering::Relaxed)
    }

    /// Pages currently in lease mode (diagnostics; walks the mode table).
    pub fn lease_mode_pages(&self) -> u64 {
        self.mode_epoch
            .iter()
            .filter(|e| e.load(Ordering::Relaxed) & 1 == 1)
            .count() as u64
    }

    /// Add clamped evidence to the page's score; when the total crosses
    /// the switch threshold in the direction opposing the current mode,
    /// enqueue the page for a fence-boundary switch.
    fn add_score(&self, q: usize, delta: i64) {
        let cell = &self.score[q];
        // Saturated already: nothing to learn, skip the RMW.
        let cur = cell.load(Ordering::Relaxed);
        if (delta > 0 && cur >= self.cap) || (delta < 0 && cur <= -self.cap) {
            return;
        }
        let prev = cell
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some((s + delta).clamp(-self.cap, self.cap))
            })
            .unwrap_or(cur);
        let new = (prev + delta).clamp(-self.cap, self.cap);
        let lease = self.mode_epoch[q].load(Ordering::Relaxed) & 1 == 1;
        let crossed = if lease {
            prev > -self.threshold && new <= -self.threshold
        } else {
            prev < self.threshold && new >= self.threshold
        };
        if crossed {
            let mut pend = self.pending.lock();
            pend.push(PageNum(q as u64));
            self.pending_len.store(pend.len(), Ordering::Relaxed);
        }
    }

    /// Drain the pending queue and flip every page whose score still backs
    /// the switch. Called only from the fence hooks — the epoch-safe
    /// points — never from an access path.
    fn apply_pending(&self, shard: &StatShard) {
        if self.pending_len.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut pend = self.pending.lock();
        for page in pend.drain(..) {
            let q = page.0 as usize;
            let e = self.mode_epoch[q].load(Ordering::Relaxed);
            let s = self.score[q].load(Ordering::Relaxed);
            let flip = if e & 1 == 0 {
                s >= self.threshold
            } else {
                s <= -self.threshold
            };
            if !flip {
                continue;
            }
            self.mode_epoch[q].store(e + 1, Ordering::Relaxed);
            self.score[q].store(0, Ordering::Relaxed);
            if e & 1 == 0 {
                CoherenceStats::bump(&shard.mode_to_lease);
            } else {
                CoherenceStats::bump(&shard.mode_to_sisd);
            }
        }
        self.pending_len.store(0, Ordering::Relaxed);
    }
}

impl Coherence for Pyxis {
    const NAME: &'static str = "pyxis";

    fn new(nodes: usize, total_pages: u64, config: &CarinaConfig) -> Self {
        let threshold = config.pyxis_switch_threshold.max(1);
        Pyxis {
            sisd: CarinaSiSd::new(nodes, total_pages, config),
            tardis: Tardis::new(nodes, total_pages, config),
            mode_epoch: (0..total_pages).map(|_| AtomicU64::new(0)).collect(),
            seen_epoch: (0..nodes.max(1))
                .map(|_| (0..total_pages).map(|_| AtomicU64::new(0)).collect())
                .collect(),
            score: (0..total_pages).map(|_| AtomicI64::new(0)).collect(),
            write_version: (0..total_pages).map(|_| AtomicU64::new(0)).collect(),
            reads_since_write: (0..total_pages).map(|_| AtomicU64::new(0)).collect(),
            seen_version: (0..nodes.max(1))
                .map(|_| (0..total_pages).map(|_| AtomicU64::new(0)).collect())
                .collect(),
            pending: Mutex::new(Vec::new()),
            pending_len: AtomicUsize::new(0),
            threshold,
            cap: config.pyxis_score_cap.max(threshold),
        }
    }

    #[inline]
    fn read_registered(&self, me: u16, home: u16, page: PageNum) -> bool {
        let reg = self.sisd.read_registered(me, home, page);
        if !self.in_lease_mode(page) {
            return reg;
        }
        // Lease mode: a valid unexpired lease is required on top of the
        // map registration (renewals re-run the directory atomic, exactly
        // like pure Tardis).
        reg && self.tardis.read_registered(me, home, page)
    }

    #[inline]
    fn write_registered(&self, me: u16, home: u16, page: PageNum) -> bool {
        if self.in_lease_mode(page) {
            // Per-epoch wts bumps; the map bit is set by the same
            // register_writer call that bumps, so no separate check.
            self.tardis.write_registered(me, home, page)
        } else {
            self.sisd.write_registered(me, home, page)
        }
    }

    fn register_reader(
        &self,
        me: u16,
        home: u16,
        page: PageNum,
        shard: &StatShard,
    ) -> RegisterOutcome {
        let q = page.0 as usize;
        self.reads_since_write[q].fetch_add(1, Ordering::Relaxed);
        // The classification maps and directory caches are maintained in
        // both modes (idempotent after the first registration), so Table 1
        // stays sound across lease stints; its notifications are the
        // outcome the engine prices.
        let out = self.sisd.register_reader(me, home, page, shard);
        if self.in_lease_mode(page) && home != me {
            // Quiet by construction: leases ride the same directory atomic.
            let _ = self.tardis.register_reader(me, home, page, shard);
        }
        out
    }

    fn register_writer(
        &self,
        me: u16,
        home: u16,
        page: PageNum,
        shard: &StatShard,
    ) -> RegisterOutcome {
        let out = self.sisd.register_writer(me, home, page, shard);
        if self.in_lease_mode(page) {
            let _ = self.tardis.register_writer(me, home, page, shard);
        }
        out
    }

    fn write_disposition(&self, me: u16, page: PageNum) -> WriteDisposition {
        // Every clean→dirty fault lands here (once per page per epoch):
        // advance the page's write version and restart the
        // reads-between-writes count.
        let q = page.0 as usize;
        self.write_version[q].fetch_add(1, Ordering::Relaxed);
        self.reads_since_write[q].store(0, Ordering::Relaxed);
        if self.in_lease_mode(page) {
            self.tardis.write_disposition(me, page)
        } else {
            self.sisd.write_disposition(me, page)
        }
    }

    fn begin_si_fence(&self, me: u16, shard: &StatShard) {
        self.tardis.begin_si_fence(me, shard);
        self.sisd.begin_si_fence(me, shard);
        self.apply_pending(shard);
    }

    fn must_self_invalidate(&self, me: u16, page: PageNum, shard: &StatShard) -> bool {
        let q = page.0 as usize;
        let epoch = self.mode_epoch[q].load(Ordering::Relaxed);
        let seen = &self.seen_epoch[me as usize][q];
        let version = self.write_version[q].load(Ordering::Relaxed);
        if seen.load(Ordering::Relaxed) != epoch {
            // Reconcile: the first acquire that observes a page's new mode
            // drops the copy unconditionally, so no lease grant or stale
            // view from the old mode can keep stale data alive. Record the
            // write version too, so the next check scores the new mode on
            // post-switch evidence only.
            seen.store(epoch, Ordering::Relaxed);
            self.seen_version[me as usize][q].store(version, Ordering::Relaxed);
            CoherenceStats::bump(&shard.mode_reconciles);
            return true;
        }
        // One swap answers "was the page written since this node's last
        // check?" — exact, and independent of fence cadence or how many
        // threads share a node.
        let unchanged =
            self.seen_version[me as usize][q].swap(version, Ordering::Relaxed) == version;
        if epoch & 1 == 1 {
            CoherenceStats::bump(&shard.mode_lease_checks);
            let inval = self.tardis.must_self_invalidate(me, page, shard);
            // Counterfactual regret vs Table 1 (side-effect-free under
            // CarinaSiSd): every keep SI/SD would have invalidated is
            // evidence for leases; every expiry SI/SD would have kept is
            // evidence against.
            let sisd_would = self.sisd.must_self_invalidate(me, page, shard);
            if inval && !sisd_would {
                self.add_score(q, -1);
            } else if !inval && sisd_would {
                self.add_score(q, 1);
            }
            inval
        } else {
            CoherenceStats::bump(&shard.mode_classify_checks);
            let inval = self.sisd.must_self_invalidate(me, page, shard);
            if inval {
                // Invalidating a page nobody wrote since this node's last
                // look — but which *is* being read — is the read-mostly
                // waste leases avoid; invalidating a freshly written page
                // is classification doing its job.
                if unchanged && self.reads_since_write[q].load(Ordering::Relaxed) > 0 {
                    self.add_score(q, 1);
                } else {
                    self.add_score(q, -1);
                }
            }
            inval
        }
    }

    fn end_sd_fence(&self, me: u16, shard: &StatShard) {
        self.tardis.end_sd_fence(me, shard);
        self.sisd.end_sd_fence(me, shard);
        self.apply_pending(shard);
    }

    fn needs_checkpoint_sweep(&self) -> bool {
        self.sisd.needs_checkpoint_sweep()
    }

    fn private_in_cache(&self, me: u16, page: PageNum) -> bool {
        // Lease-mode pages always buffer (Tardis disposition), so they are
        // never checkpoint candidates.
        !self.in_lease_mode(page) && self.sisd.private_in_cache(me, page)
    }

    fn downgrade_skip_diff(&self, me: u16, page: PageNum) -> bool {
        if self.in_lease_mode(page) {
            return false;
        }
        // Sound in classification mode even after a lease stint: the
        // writer maps were maintained the whole time.
        self.sisd.downgrade_skip_diff(me, page)
    }

    fn note_downgrade(&self, me: u16, page: PageNum) {
        // Version bumps are lease-mode bookkeeping. A classify-mode drain
        // leaves the Tardis clocks stale, which is sound: a later switch
        // to lease mode starts with a reconcile-invalidate at every node,
        // so no lease can be granted against the missed versions' bytes.
        if self.in_lease_mode(page) {
            self.tardis.note_downgrade(me, page);
        }
    }

    fn buffers_every_dirty_page(&self) -> bool {
        self.sisd.buffers_every_dirty_page()
    }

    fn census_view(&self, page: PageNum) -> DirView {
        // Authoritative: the full maps are maintained in both modes.
        self.sisd.census_view(page)
    }

    fn page_mode(&self, page: PageNum) -> PageMode {
        if self.in_lease_mode(page) {
            PageMode::Lease
        } else {
            PageMode::Classify
        }
    }

    fn invariant_problems(&self, node: u16, dirty: &[PageNum]) -> Vec<String> {
        // The classification invariants hold unconditionally (maps are
        // maintained in both modes). Of the Tardis per-dirty-page checks
        // only the global timestamp ordering applies: a page can go dirty
        // in classification mode and switch before draining, so "dirty ⇒
        // holds a lease" is not a hybrid invariant.
        let mut problems = self.sisd.invariant_problems(node, dirty);
        for q in 0..self.mode_epoch.len() {
            let (wts, rts) = self.tardis.timestamps(PageNum(q as u64));
            if rts < wts {
                problems.push(format!("page {q}: rts {rts} < wts {wts}"));
            }
        }
        problems
    }

    fn on_membership_change(&self, rehomed: &[PageNum]) {
        // Both sub-protocols null their per-page metadata; the hybrid's own
        // census signals restart too, so post-failover mode decisions rest
        // on post-failover evidence only. The mode epoch itself is *not*
        // reset — bumping nothing keeps `seen_epoch` consistent, and the
        // membership-epoch invalidation in the engine already forces the
        // reconcile-style refetch.
        self.sisd.on_membership_change(rehomed);
        self.tardis.on_membership_change(rehomed);
        for &page in rehomed {
            let q = page.0 as usize;
            self.score[q].store(0, Ordering::Relaxed);
            self.reads_since_write[q].store(0, Ordering::Relaxed);
        }
    }

    fn reset_all(&self) {
        self.sisd.reset_all();
        self.tardis.reset_all();
        for a in &self.mode_epoch {
            a.store(0, Ordering::Relaxed);
        }
        for per_node in &self.seen_epoch {
            for a in per_node.iter() {
                a.store(0, Ordering::Relaxed);
            }
        }
        for a in &self.score {
            a.store(0, Ordering::Relaxed);
        }
        for a in &self.write_version {
            a.store(0, Ordering::Relaxed);
        }
        for a in &self.reads_since_write {
            a.store(0, Ordering::Relaxed);
        }
        for per_node in &self.seen_version {
            for a in per_node.iter() {
                a.store(0, Ordering::Relaxed);
            }
        }
        let mut pend = self.pending.lock();
        pend.clear();
        self.pending_len.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CoherenceStats;

    fn policy(nodes: usize) -> Pyxis {
        Pyxis::new(nodes, 16, &CarinaConfig::default())
    }

    /// Drive the read-mostly pattern: node 1 wrote once, node 0 re-reads
    /// across acquire fences while nothing changes.
    #[test]
    fn read_mostly_page_earns_lease_mode() {
        let c = policy(2);
        let s = CoherenceStats::new(2);
        let p = PageNum(3);
        c.register_writer(1, 1, p, s.shard(1));
        c.write_disposition(1, p);
        c.end_sd_fence(1, s.shard(1));
        c.register_reader(0, 1, p, s.shard(0));
        let mut switched_at = None;
        for round in 0..12 {
            // One barrier round per node: acquire, sweep, release.
            c.begin_si_fence(0, s.shard(0));
            let inval = c.must_self_invalidate(0, p, s.shard(0));
            if inval && !c.read_registered(0, 1, p) {
                c.register_reader(0, 1, p, s.shard(0));
            }
            c.end_sd_fence(0, s.shard(0));
            c.end_sd_fence(1, s.shard(1));
            if c.in_lease_mode(p) && switched_at.is_none() {
                switched_at = Some(round);
            }
        }
        assert!(
            switched_at.is_some(),
            "repeated useless invalidations must switch the page to leases"
        );
        // Steady state: the loop's post-switch rounds already reconciled
        // (forced one invalidation) and re-leased; now the lease holds.
        c.begin_si_fence(0, s.shard(0));
        assert!(!c.must_self_invalidate(0, p, s.shard(0)));
        let snap = s.snapshot();
        assert_eq!(snap.mode_to_lease, 1);
        assert_eq!(snap.mode_to_sisd, 0);
        assert!(snap.mode_reconciles >= 1);
        assert!(snap.mode_lease_checks > 0 && snap.mode_classify_checks > 0);
    }

    /// Write-hot pages stay in classification mode: every invalidation
    /// coincides with recent writes, so no lease evidence accumulates.
    #[test]
    fn write_hot_page_stays_in_classify_mode() {
        let c = policy(2);
        let s = CoherenceStats::new(2);
        let p = PageNum(5);
        c.register_writer(1, 1, p, s.shard(1));
        c.register_reader(0, 1, p, s.shard(0));
        for _ in 0..20 {
            // Writer dirties the page every round and releases.
            c.write_disposition(1, p);
            c.end_sd_fence(1, s.shard(1));
            c.begin_si_fence(0, s.shard(0));
            let _ = c.must_self_invalidate(0, p, s.shard(0));
        }
        assert!(!c.in_lease_mode(p), "write-hot page must not switch to leases");
        assert_eq!(s.snapshot().mode_to_lease, 0);
    }

    /// Mode switches are applied only by the fence hooks, never by the
    /// access paths that merely accumulate evidence.
    #[test]
    fn switches_happen_only_at_fence_boundaries() {
        let c = policy(2);
        let s = CoherenceStats::new(2);
        let p = PageNum(7);
        c.register_writer(1, 1, p, s.shard(1));
        c.end_sd_fence(1, s.shard(1));
        c.register_reader(0, 1, p, s.shard(0));
        // Accumulate far past the threshold without touching a fence hook:
        // must_self_invalidate runs inside a sweep, between hooks.
        for _ in 0..10 {
            let _ = c.must_self_invalidate(0, p, s.shard(0));
            c.register_reader(0, 1, p, s.shard(0));
            assert_eq!(c.switch_count(p), 0, "switch applied outside a fence hook");
        }
        assert!(c.score_of(p) >= 1);
        c.begin_si_fence(0, s.shard(0));
        assert_eq!(c.switch_count(p), 1, "pending switch must apply at the hook");
    }

    /// Hysteresis: after a switch the score resets, so one contrary event
    /// cannot flap the page back.
    #[test]
    fn score_resets_on_switch() {
        let c = policy(2);
        let s = CoherenceStats::new(2);
        let p = PageNum(2);
        c.register_writer(1, 1, p, s.shard(1));
        c.end_sd_fence(1, s.shard(1));
        c.register_reader(0, 1, p, s.shard(0));
        while !c.in_lease_mode(p) {
            c.begin_si_fence(0, s.shard(0));
            if c.must_self_invalidate(0, p, s.shard(0)) {
                c.register_reader(0, 1, p, s.shard(0));
            }
        }
        assert_eq!(c.score_of(p), 0);
    }

    #[test]
    fn reset_restores_initial_state() {
        let c = policy(2);
        let s = CoherenceStats::new(2);
        let p = PageNum(0);
        c.register_reader(0, 1, p, s.shard(0));
        c.register_writer(1, 1, p, s.shard(1));
        c.write_disposition(1, p);
        c.end_sd_fence(1, s.shard(1));
        c.reset_all();
        assert!(!c.in_lease_mode(p));
        assert_eq!(c.switch_count(p), 0);
        assert_eq!(c.score_of(p), 0);
        assert!(!c.read_registered(0, 1, p));
        assert!(c.invariant_problems(0, &[]).is_empty());
        assert_eq!(c.lease_mode_pages(), 0);
    }
}
