//! The adaptive lease clock shared by every lease-granting policy.
//!
//! A fixed lease length suffers amplification: each write bumps a page's
//! `wts` past the max granted `rts`, so one global clock jump expires every
//! same-round lease at once and read-only pages thrash like AllShared. The
//! fix (Tardis §5, adapted) is per-page lease adaptation:
//!
//! - renewing a lease on an *unchanged* page (it expired only because
//!   unrelated writers moved the clock) **doubles** the page's lease, up to
//!   `tardis_lease_max`;
//! - writing the page **halves** it, down to `tardis_lease_min` — long
//!   promises on a write-active page only inflate future `wts` bumps.
//!
//! [`Tardis`](super::Tardis) uses this for every page;
//! [`Pyxis`](super::Pyxis) reuses the identical clock for the pages it runs
//! in lease mode, so the hybrid's lease half adapts exactly like the pure
//! policy it borrows from.

use crate::config::CarinaConfig;
use std::sync::atomic::{AtomicU64, Ordering};

/// The grow/shrink rule for per-page adaptive leases (init, floor, ceiling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseClock {
    init: u64,
    min: u64,
    max: u64,
}

impl LeaseClock {
    /// Bounds from the config's `tardis_lease{,_min,_max}` knobs, clamped
    /// so `1 <= min <= init <= max` always holds.
    pub fn from_config(config: &CarinaConfig) -> Self {
        let init = config.tardis_lease.max(1);
        LeaseClock {
            init,
            min: config.tardis_lease_min.max(1).min(init),
            max: config.tardis_lease_max.max(init),
        }
    }

    /// The lease a page starts (and resets) with.
    #[inline]
    pub fn initial(&self) -> u64 {
        self.init
    }

    /// Renewal of an unchanged page: double `cell`'s lease up to the
    /// ceiling; returns the grown length.
    #[inline]
    pub fn grow(&self, cell: &AtomicU64) -> u64 {
        let grown = (cell.load(Ordering::Relaxed) * 2).min(self.max);
        cell.store(grown, Ordering::Relaxed);
        grown
    }

    /// Write to the page: halve `cell`'s lease down to the floor; returns
    /// the shrunk length.
    #[inline]
    pub fn shrink(&self, cell: &AtomicU64) -> u64 {
        let shrunk = (cell.load(Ordering::Relaxed) / 2).max(self.min);
        cell.store(shrunk, Ordering::Relaxed);
        shrunk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> LeaseClock {
        LeaseClock::from_config(&CarinaConfig::default())
    }

    #[test]
    fn grows_by_doubling_up_to_max() {
        let c = clock();
        let cell = AtomicU64::new(c.initial());
        assert_eq!(c.grow(&cell), c.initial() * 2);
        for _ in 0..20 {
            c.grow(&cell);
        }
        assert_eq!(cell.load(Ordering::Relaxed), 4096);
    }

    #[test]
    fn shrinks_by_halving_down_to_min() {
        let c = clock();
        let cell = AtomicU64::new(c.initial());
        assert_eq!(c.shrink(&cell), c.initial() / 2);
        for _ in 0..20 {
            c.shrink(&cell);
        }
        assert_eq!(cell.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn degenerate_config_is_clamped() {
        let cfg = CarinaConfig {
            tardis_lease: 0,
            tardis_lease_min: 100,
            tardis_lease_max: 0,
            ..Default::default()
        };
        let c = LeaseClock::from_config(&cfg);
        assert_eq!(c.initial(), 1);
        let cell = AtomicU64::new(c.initial());
        c.shrink(&cell);
        assert_eq!(cell.load(Ordering::Relaxed), 1);
        c.grow(&cell);
        // max clamps to init: the degenerate clock is a fixed lease of 1.
        assert_eq!(cell.load(Ordering::Relaxed), 1);
    }
}
