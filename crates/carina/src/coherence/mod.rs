//! Pluggable coherence policies.
//!
//! The Carina engine ([`crate::protocol::Dsm`]) owns the *mechanism*: the
//! data plane, transport verbs, retry/fault plumbing, write buffer, and
//! issue/poll overlap. Everything that is a protocol *decision* — what a
//! read miss registers, how a write fault classifies, what an SI fence must
//! invalidate, what an SD fence owes beyond the drain, and what metadata
//! the directory carries — lives behind the [`Coherence`] trait, so the
//! paper's SI/SD protocol ([`CarinaSiSd`]) can be compared head-to-head
//! against alternatives on the identical engine.
//!
//! Three policies ship:
//! - [`CarinaSiSd`] — the paper's protocol: Pyxis reader/writer full maps,
//!   P/S × NW/SW/MW classification (Table 1), deferred invalidation via
//!   directory-cache notifications.
//! - [`Tardis`] — a timestamp-lease protocol in the spirit of TARDIS
//!   (Yu & Devadas, PACT'15), adapted to the DSM's fence model: reads
//!   install a bounded lease (`rts = pts + lease`), writes bump `wts` past
//!   every granted lease, and an acquire fence invalidates only *expired*
//!   leases against the acquirer's logical clock. No sharer bitmap, no
//!   extra verbs — the same one-sided directory atomics carry timestamps
//!   instead of full maps.
//! - [`Pyxis`] — a census-driven hybrid that runs each page under
//!   whichever of the two fits its access pattern: leases on read-mostly
//!   pages, SI/SD classification on write-shared ones, switching per page
//!   at fence boundaries with hysteresis (DESIGN.md §13).
//!
//! Dispatch is static, mirroring the transport generic: `Dsm<T, C>` with
//! `C: Coherence` defaulting to [`CarinaSiSd`], so existing call sites
//! compile unchanged and any policy monomorphizes to straight-line code.

mod carina_sisd;
mod lease_clock;
mod pyxis;
mod tardis;

pub use carina_sisd::CarinaSiSd;
pub use lease_clock::LeaseClock;
pub use pyxis::Pyxis;
pub use tardis::Tardis;

use crate::classification::DirView;
use crate::config::CarinaConfig;
use crate::stats::StatShard;
use crate::trace::Event;
use mem::PageNum;
use std::sync::atomic::{AtomicU64, Ordering};

/// A lock-free page-indexed bitset: the fast-path mirror of "this node has
/// registered with the home directory", checked on every access.
#[derive(Debug)]
pub struct PageBitSet {
    words: Vec<AtomicU64>,
}

impl PageBitSet {
    pub fn new(pages: u64) -> Self {
        PageBitSet {
            words: (0..pages.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[inline]
    pub fn get(&self, page: PageNum) -> bool {
        let w = (page.0 / 64) as usize;
        self.words[w].load(Ordering::Relaxed) & (1 << (page.0 % 64)) != 0
    }

    #[inline]
    pub fn set(&self, page: PageNum) {
        let w = (page.0 / 64) as usize;
        self.words[w].fetch_or(1 << (page.0 % 64), Ordering::Relaxed);
    }

    #[inline]
    pub fn clear(&self, page: PageNum) {
        let w = (page.0 / 64) as usize;
        self.words[w].fetch_and(!(1 << (page.0 % 64)), Ordering::Relaxed);
    }

    pub fn clear_all(&self) {
        for w in &self.words {
            w.store(0, Ordering::Relaxed);
        }
    }
}

/// What a registration decided: wire work the engine must now perform on
/// the policy's behalf. The policy has already applied its local metadata
/// mutations and bumped its transition counters; the engine prices and
/// posts the verbs (with retry and settle tracking) and records the trace
/// events with its endpoint clock.
#[derive(Debug, Default)]
pub struct RegisterOutcome {
    /// Nodes whose directory caches this registration must update remotely
    /// (the passive notification mechanism). The engine posts one
    /// notification verb per target; the metadata itself was already
    /// deposited by the policy (host-side, like the real one-sided write).
    pub notify: Vec<u16>,
    /// Service this fill from `owner`'s checkpoint with one extra page
    /// fetch (the naïve P/S scheme's P→S obligation, §3.4.2).
    pub fetch_from: Option<u16>,
    /// Classification-transition events to trace.
    pub events: Vec<Event>,
}

impl RegisterOutcome {
    /// A registration that caused no transition: nothing to post or trace.
    #[inline]
    pub fn quiet() -> Self {
        RegisterOutcome::default()
    }

    /// True if the engine has no wire or trace work to do — the common
    /// case, kept cheap (no allocation ever happened for a quiet outcome).
    #[inline]
    pub fn is_quiet(&self) -> bool {
        self.notify.is_empty() && self.fetch_from.is_none() && self.events.is_empty()
    }
}

/// Which protocol family governs a page right now — the census's per-page
/// mode column. Single-protocol policies answer uniformly; [`Pyxis`]
/// answers per page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PageMode {
    /// SI/SD classification: Table 1 fence predicates over the sharer maps.
    #[default]
    Classify,
    /// Timestamp leases: expiry against the acquirer's logical clock.
    Lease,
}

impl PageMode {
    pub fn name(self) -> &'static str {
        match self {
            PageMode::Classify => "si/sd",
            PageMode::Lease => "lease",
        }
    }
}

/// What a write fault must set up for the faulting page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteDisposition {
    /// Snapshot a twin for diffing at downgrade time. Policies that can
    /// prove single-writer ownership may skip it (the `sw_no_diff`
    /// extension); everyone else diffs to tolerate false sharing.
    pub need_twin: bool,
    /// Enter the page in the FIFO write buffer so fences (and overflow)
    /// drain it. Policies that self-downgrade everything say `true`;
    /// the naïve P/S scheme exempts private pages and checkpoints instead.
    pub buffer: bool,
}

/// A coherence policy: every protocol *decision* point of the engine.
///
/// Methods take `me` (the acting node) and, where the distinction matters
/// for cost or semantics, the page's `home`. The engine guarantees:
///
/// - `register_reader` / `register_writer` are only called when the
///   corresponding `*_registered` check returned `false`, and the
///   directory access (local DRAM or remote atomic verb) has already been
///   charged/performed — the policy applies pure metadata mutations.
/// - `write_disposition` is called after `register_writer` for the same
///   page (under the page's slot lock).
/// - `begin_si_fence` runs before any `must_self_invalidate` query of that
///   fence; `end_sd_fence` runs after the fence's drain has settled.
/// - `reset_all` is only called at quiescent points.
pub trait Coherence: std::fmt::Debug + Send + Sync + Sized + 'static {
    /// Short lowercase name (CLI value, bench ids, report labels).
    const NAME: &'static str;

    /// Build policy state for `nodes` nodes over `total_pages` pages.
    fn new(nodes: usize, total_pages: u64, config: &CarinaConfig) -> Self;

    // --- fast-path registration checks -------------------------------

    /// Is `me`'s read registration for `page` still current (no directory
    /// access needed before serving the fill)?
    fn read_registered(&self, me: u16, home: u16, page: PageNum) -> bool;

    /// Is `me`'s write registration for `page` still current?
    fn write_registered(&self, me: u16, home: u16, page: PageNum) -> bool;

    // --- registration (read-miss fill / write-fault classification) --

    /// Deposit `me`'s read registration for `page` and decide the fallout.
    fn register_reader(
        &self,
        me: u16,
        home: u16,
        page: PageNum,
        shard: &StatShard,
    ) -> RegisterOutcome;

    /// Deposit `me`'s write registration for `page` and decide the fallout.
    fn register_writer(
        &self,
        me: u16,
        home: u16,
        page: PageNum,
        shard: &StatShard,
    ) -> RegisterOutcome;

    /// Twin/buffer decision for the write fault that just registered.
    fn write_disposition(&self, me: u16, page: PageNum) -> WriteDisposition;

    // --- fences --------------------------------------------------------

    /// Acquire-side hook, before the invalidation sweep. Fence hooks are
    /// the protocol's epoch-safe points: adaptive policies apply their
    /// deferred per-page decisions (mode switches) here and nowhere else.
    fn begin_si_fence(&self, me: u16, shard: &StatShard);

    /// Must `me` invalidate its cached copy of `page` at this acquire?
    /// Called once per resident page per SI fence.
    fn must_self_invalidate(&self, me: u16, page: PageNum, shard: &StatShard) -> bool;

    /// Release-side hook, after the drain has settled.
    fn end_sd_fence(&self, me: u16, shard: &StatShard);

    /// Does the release side owe a checkpoint sweep over dirty private
    /// pages (the naïve P/S scheme's obligation)?
    fn needs_checkpoint_sweep(&self) -> bool {
        false
    }

    /// During a checkpoint sweep: is `page` (dirty in `me`'s cache)
    /// private, i.e. checkpointed locally rather than downgraded?
    fn private_in_cache(&self, _me: u16, _page: PageNum) -> bool {
        false
    }

    // --- downgrades ------------------------------------------------------

    /// May `me` skip the twin diff and ship the whole page when
    /// downgrading `page` (only sound when no other node can have written
    /// it)? The engine additionally gates this on `sw_no_diff`.
    fn downgrade_skip_diff(&self, me: u16, page: PageNum) -> bool;

    /// `me`'s dirty copy of `page` just landed in home memory (fence
    /// drain, write-buffer overflow, or eviction). This — not the write
    /// fault — is the moment a new version of the page exists anywhere
    /// another node can fetch it, so timestamp policies advance the page's
    /// version here: bumping at fault time would stamp a version whose
    /// bytes are not home yet, and a concurrent read fill could be granted
    /// a lease on stale data that outlives the writer's release.
    fn note_downgrade(&self, _me: u16, _page: PageNum) {}

    // --- diagnostics & invariants -----------------------------------

    /// Does the write buffer hold exactly the dirty set at quiescent
    /// points (invariant 3)? Policies that exempt pages from buffering
    /// (naïve P/S privates) answer `false`.
    fn buffers_every_dirty_page(&self) -> bool {
        true
    }

    /// A best-effort accessor view of `page` for the census and tests.
    /// Authoritative under [`CarinaSiSd`]; synthesized from grant state
    /// under timestamp policies (documented per policy).
    fn census_view(&self, page: PageNum) -> DirView;

    /// The protocol family currently governing `page` (the census's mode
    /// column). Static for single-protocol policies, per page for hybrids.
    fn page_mode(&self, _page: PageNum) -> PageMode {
        PageMode::Classify
    }

    /// Policy-specific invariant violations for `node`, given its dirty
    /// page set at a quiescent point. Appended to the engine's own checks.
    fn invariant_problems(&self, node: u16, dirty: &[PageNum]) -> Vec<String>;

    /// Volans membership change: `rehomed` pages just moved to new home
    /// nodes (their old home departed). The policy must null every piece of
    /// per-page metadata tied to the old home — registrations, directory
    /// caches, granted leases — so the first access under the new epoch
    /// re-registers from scratch, exactly like the Pyxis mode-epoch
    /// reconcile. Called under the engine's membership-transition lock,
    /// after the re-homed pages' cached copies have been scrubbed.
    fn on_membership_change(&self, _rehomed: &[PageNum]) {}

    /// Null all policy metadata (end-of-initialization reset, decay).
    fn reset_all(&self);
}

/// Which coherence policy to instantiate — the dynamic counterpart of the
/// static `C: Coherence` parameter, for CLI surfaces (`--coherence
/// {sisd,tardis,pyxis}`) that pick a monomorphized code path at startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// The paper's SI/SD protocol with Pyxis classification.
    #[default]
    SiSd,
    /// Timestamp leases (TARDIS-style).
    Tardis,
    /// The census-driven per-page hybrid of the two.
    Pyxis,
}

impl PolicyKind {
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::SiSd => CarinaSiSd::NAME,
            PolicyKind::Tardis => Tardis::NAME,
            PolicyKind::Pyxis => Pyxis::NAME,
        }
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sisd" | "carina" | "si-sd" => Ok(PolicyKind::SiSd),
            "tardis" | "lease" => Ok(PolicyKind::Tardis),
            "pyxis" | "hybrid" => Ok(PolicyKind::Pyxis),
            other => Err(format!(
                "unknown coherence policy {other:?} (try sisd|tardis|pyxis)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_set_get_clear() {
        let b = PageBitSet::new(130);
        assert!(!b.get(PageNum(129)));
        b.set(PageNum(129));
        b.set(PageNum(0));
        assert!(b.get(PageNum(129)));
        assert!(b.get(PageNum(0)));
        assert!(!b.get(PageNum(64)));
        b.clear(PageNum(0));
        assert!(!b.get(PageNum(0)));
        assert!(b.get(PageNum(129)), "clear only drops its own bit");
        b.clear_all();
        assert!(!b.get(PageNum(129)));
    }

    #[test]
    fn policy_kind_parses() {
        assert_eq!("sisd".parse::<PolicyKind>().unwrap(), PolicyKind::SiSd);
        assert_eq!("tardis".parse::<PolicyKind>().unwrap(), PolicyKind::Tardis);
        assert_eq!("pyxis".parse::<PolicyKind>().unwrap(), PolicyKind::Pyxis);
        assert_eq!("hybrid".parse::<PolicyKind>().unwrap(), PolicyKind::Pyxis);
        assert!("mesi".parse::<PolicyKind>().is_err());
        assert_eq!(PolicyKind::SiSd.name(), "sisd");
        assert_eq!(PolicyKind::Tardis.name(), "tardis");
        assert_eq!(PolicyKind::Pyxis.name(), "pyxis");
    }

    #[test]
    fn quiet_outcome_is_quiet() {
        assert!(RegisterOutcome::quiet().is_quiet());
        let oc = RegisterOutcome {
            notify: vec![1],
            ..Default::default()
        };
        assert!(!oc.is_quiet());
    }
}
