//! The paper's protocol as a [`Coherence`] policy: Pyxis reader/writer
//! full maps, P/S × NW/SW/MW classification, Table 1 fence predicates, and
//! deferred invalidation through per-node directory caches.
//!
//! This file is the *decision* half of what used to be hard-wired into the
//! engine: registration transitions (§3.3, §3.5), the SI predicate (Table
//! 1), the naïve P/S checkpoint obligation (§3.4.2), and the single-writer
//! no-diff extension. The engine still owns every verb.

use super::{Coherence, PageBitSet, RegisterOutcome, WriteDisposition};
use crate::classification::{node_bit, ClassificationMode, DirView, PageClass};
use crate::config::CarinaConfig;
use crate::directory::{DirCaches, Pyxis};
use crate::stats::{CoherenceStats, StatShard};
use crate::trace::Event;
use mem::PageNum;

/// The shipped Argo protocol (self-invalidation / self-downgrade with
/// passive Pyxis classification).
#[derive(Debug)]
pub struct CarinaSiSd {
    mode: ClassificationMode,
    sw_no_diff: bool,
    pyxis: Pyxis,
    dir_caches: DirCaches,
    /// Fast-path mirrors of "this node's bit is already in the home maps".
    reg_read: Vec<PageBitSet>,
    reg_write: Vec<PageBitSet>,
}

impl CarinaSiSd {
    /// The directory view `node` currently holds for `page`.
    #[inline]
    pub(crate) fn node_view(&self, node: u16, page: PageNum) -> DirView {
        self.dir_caches.entry(node, page).view()
    }

    /// The authoritative home directory view for `page`.
    #[inline]
    pub(crate) fn home_view(&self, page: PageNum) -> DirView {
        self.pyxis.entry(page).view()
    }

    /// Detect a P→S transition caused by `me` joining `prior`'s accessors:
    /// the single prior owner must be notified (and under naïve P/S, a
    /// read newcomer must fetch the owner's checkpoint).
    fn private_owner(prior: u128, me: u16) -> Option<u16> {
        if prior != 0 && prior & node_bit(me) == 0 && prior.count_ones() == 1 {
            Some(prior.trailing_zeros() as u16)
        } else {
            None
        }
    }
}

impl Coherence for CarinaSiSd {
    const NAME: &'static str = "sisd";

    fn new(nodes: usize, total_pages: u64, config: &CarinaConfig) -> Self {
        CarinaSiSd {
            mode: config.mode,
            sw_no_diff: config.sw_no_diff,
            pyxis: Pyxis::new(total_pages),
            dir_caches: DirCaches::new(nodes, total_pages),
            reg_read: (0..nodes).map(|_| PageBitSet::new(total_pages)).collect(),
            reg_write: (0..nodes).map(|_| PageBitSet::new(total_pages)).collect(),
        }
    }

    #[inline]
    fn read_registered(&self, me: u16, _home: u16, page: PageNum) -> bool {
        self.reg_read[me as usize].get(page)
    }

    #[inline]
    fn write_registered(&self, me: u16, _home: u16, page: PageNum) -> bool {
        self.reg_write[me as usize].get(page)
    }

    fn register_reader(
        &self,
        me: u16,
        _home: u16,
        page: PageNum,
        shard: &StatShard,
    ) -> RegisterOutcome {
        let before = self.pyxis.entry(page).or_readers(node_bit(me));
        let after = DirView {
            readers: before.readers | node_bit(me),
            writers: before.writers,
        };
        self.dir_caches.entry(me, page).store_view(after);
        self.reg_read[me as usize].set(page);
        // P→S caused by our read (§3.3): we notify the private owner.
        let Some(owner) = Self::private_owner(before.accessors(), me) else {
            return RegisterOutcome::quiet();
        };
        CoherenceStats::bump(&shard.p_to_s);
        self.dir_caches.entry(owner, page).or_view(after);
        RegisterOutcome {
            notify: vec![owner],
            fetch_from: (self.mode == ClassificationMode::PsNaive).then_some(owner),
            events: vec![Event::PToS { page, newcomer: me, owner }],
        }
    }

    fn register_writer(
        &self,
        me: u16,
        _home: u16,
        page: PageNum,
        shard: &StatShard,
    ) -> RegisterOutcome {
        let before = self.pyxis.entry(page).or_writers(node_bit(me));
        let after = DirView {
            readers: before.readers,
            writers: before.writers | node_bit(me),
        };
        self.dir_caches.entry(me, page).store_view(after);
        self.reg_write[me as usize].set(page);

        let mut out = RegisterOutcome::quiet();
        let prior = before.accessors();
        // P→S caused by a write from a new node (§3.5 "Private, but
        // written by a new node").
        if let Some(owner) = Self::private_owner(prior, me) {
            CoherenceStats::bump(&shard.p_to_s);
            self.dir_caches.entry(owner, page).or_view(after);
            out.notify.push(owner);
            out.events.push(Event::PToS { page, newcomer: me, owner });
        }
        // Writer-class transitions.
        match before.writers.count_ones() {
            0
                // NW→SW. If the page is shared, every node caching it must
                // learn there is now a writer (§3.5 "Shared, NW").
                if (prior.count_ones() > 1 || (prior != 0 && prior & node_bit(me) == 0)) => {
                    CoherenceStats::bump(&shard.nw_to_sw);
                    out.events.push(Event::NwToSw { page, writer: me });
                    let mut others = prior & !node_bit(me);
                    while others != 0 {
                        let n = others.trailing_zeros() as u16;
                        others &= others - 1;
                        if n != me {
                            self.dir_caches.entry(n, page).or_view(after);
                            out.notify.push(n);
                        }
                    }
                }
            1 if before.writers & node_bit(me) == 0 => {
                // SW→MW: only the previous single writer needs to know
                // (§3.5 "Shared, SW"); for everyone else SW and MW are
                // equivalent.
                CoherenceStats::bump(&shard.sw_to_mw);
                let w = before.writers.trailing_zeros() as u16;
                out.events.push(Event::SwToMw { page, new_writer: me, old_writer: w });
                if w != me {
                    self.dir_caches.entry(w, page).or_view(after);
                    out.notify.push(w);
                }
            }
            _ => {}
        }
        out
    }

    fn write_disposition(&self, me: u16, page: PageNum) -> WriteDisposition {
        let view = self.dir_caches.entry(me, page).view();
        WriteDisposition {
            // A single writer may skip twin/diff (the sw_no_diff
            // extension): no other node can have written the page.
            need_twin: !(self.sw_no_diff && view.writers == node_bit(me)),
            buffer: view.must_self_downgrade(self.mode, me),
        }
    }

    fn begin_si_fence(&self, _me: u16, _shard: &StatShard) {}

    fn must_self_invalidate(&self, me: u16, page: PageNum, _shard: &StatShard) -> bool {
        self.dir_caches
            .entry(me, page)
            .view()
            .must_self_invalidate(self.mode, me)
    }

    fn end_sd_fence(&self, _me: u16, _shard: &StatShard) {}

    fn needs_checkpoint_sweep(&self) -> bool {
        self.mode == ClassificationMode::PsNaive
    }

    fn private_in_cache(&self, me: u16, page: PageNum) -> bool {
        self.dir_caches.entry(me, page).view().page_class() == PageClass::Private
    }

    fn downgrade_skip_diff(&self, me: u16, page: PageNum) -> bool {
        self.dir_caches.entry(me, page).view().writers == node_bit(me)
    }

    fn buffers_every_dirty_page(&self) -> bool {
        self.mode != ClassificationMode::PsNaive
    }

    fn census_view(&self, page: PageNum) -> DirView {
        self.pyxis.entry(page).view()
    }

    fn invariant_problems(&self, node: u16, dirty: &[PageNum]) -> Vec<String> {
        let mut problems = Vec::new();
        let me = node;
        let n = node as usize;
        for &page in dirty {
            let home = self.pyxis.entry(page).view();
            if home.writers & node_bit(me) == 0 {
                problems.push(format!(
                    "n{n}: dirty page {} without writer registration",
                    page.0
                ));
            }
        }
        // Fast-path bitsets must be a subset of the home maps.
        for q in 0..self.pyxis.total_pages() {
            let page = PageNum(q);
            let home = self.pyxis.entry(page).view();
            if self.reg_read[n].get(page) && home.readers & node_bit(me) == 0 {
                problems.push(format!("n{n}: reg_read bit for {q} not in home map"));
            }
            if self.reg_write[n].get(page) && home.writers & node_bit(me) == 0 {
                problems.push(format!("n{n}: reg_write bit for {q} not in home map"));
            }
        }
        problems
    }

    fn on_membership_change(&self, rehomed: &[PageNum]) {
        // A re-homed page's directory entry lived on the departed node and
        // is gone with it: null the home maps, every node's cached copy,
        // and the fast-path registration mirrors, so the first access under
        // the new epoch re-registers at the rendezvous home from scratch.
        for &page in rehomed {
            self.pyxis.entry(page).reset();
            for n in 0..self.reg_read.len() {
                self.dir_caches.entry(n as u16, page).reset();
                self.reg_read[n].clear(page);
                self.reg_write[n].clear(page);
            }
        }
    }

    fn reset_all(&self) {
        self.pyxis.reset_all();
        self.dir_caches.reset_all();
        for b in &self.reg_read {
            b.clear_all();
        }
        for b in &self.reg_write {
            b.clear_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CoherenceStats;

    fn policy(nodes: usize) -> CarinaSiSd {
        CarinaSiSd::new(nodes, 16, &CarinaConfig::default())
    }

    #[test]
    fn read_then_write_transitions() {
        let c = policy(3);
        let stats = CoherenceStats::new(3);
        let p = PageNum(3);
        // n0 reads: private, quiet.
        assert!(c.register_reader(0, 1, p, stats.shard(0)).is_quiet());
        assert!(c.read_registered(0, 1, p));
        // n1 reads: P→S, owner n0 notified.
        let oc = c.register_reader(1, 1, p, stats.shard(1));
        assert_eq!(oc.notify, vec![0]);
        assert!(oc.fetch_from.is_none()); // Ps3: no checkpoint service
        // n2 writes: NW→SW, both sharers notified.
        let oc = c.register_writer(2, 1, p, stats.shard(2));
        assert!(oc.notify.contains(&0) && oc.notify.contains(&1));
        // n0 writes: SW→MW, only prior writer n2 notified.
        let oc = c.register_writer(0, 1, p, stats.shard(0));
        assert_eq!(oc.notify, vec![2]);
        let s = stats.snapshot();
        assert_eq!((s.p_to_s, s.nw_to_sw, s.sw_to_mw), (1, 1, 1));
    }

    #[test]
    fn ps_naive_read_newcomer_fetches_checkpoint() {
        let cfg = CarinaConfig::with_mode(ClassificationMode::PsNaive);
        let c = CarinaSiSd::new(2, 16, &cfg);
        let stats = CoherenceStats::new(2);
        let p = PageNum(1);
        c.register_writer(0, 1, p, stats.shard(0));
        let oc = c.register_reader(1, 1, p, stats.shard(1));
        assert_eq!(oc.fetch_from, Some(0));
    }

    #[test]
    fn disposition_tracks_table1() {
        let c = policy(2);
        let stats = CoherenceStats::new(2);
        let p = PageNum(2);
        c.register_writer(0, 1, p, stats.shard(0));
        let d = c.write_disposition(0, p);
        assert!(d.need_twin && d.buffer); // Ps3 buffers everything
        assert!(!c.must_self_invalidate(0, p, stats.shard(0))); // private
        c.register_reader(1, 1, p, stats.shard(1));
        // n1 shares a single-writer page: n1 invalidates, writer n0 keeps.
        assert!(c.must_self_invalidate(1, p, stats.shard(1)));
        assert!(!c.must_self_invalidate(0, p, stats.shard(0)));
    }

    #[test]
    fn reset_clears_everything() {
        let c = policy(2);
        let stats = CoherenceStats::new(2);
        c.register_reader(0, 1, PageNum(0), stats.shard(0));
        c.reset_all();
        assert!(!c.read_registered(0, 1, PageNum(0)));
        assert_eq!(c.census_view(PageNum(0)), DirView::default());
    }
}
