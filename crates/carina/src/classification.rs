//! Page classification: the decision logic of the paper's Table 1.
//!
//! Pyxis tracks, per page, the full map of reader nodes and writer nodes.
//! From those maps each node *locally* derives the page's class and — given
//! the configured classification mode — whether the page must be
//! self-invalidated at a synchronization point and whether its dirty copy
//! must be self-downgraded. No message handlers are involved: the maps are
//! plain data deposited via remote atomics.

/// Which classification scheme Carina runs (the three columns of Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClassificationMode {
    /// No classification: every page is treated as shared — SI and SD
    /// everything ("S" in the paper).
    AllShared,
    /// The naïve P/S scheme: private pages skip SI but are *not*
    /// self-downgraded, so every sync point must checkpoint all modified
    /// private pages to be able to service P→S transitions ("P/S").
    PsNaive,
    /// Full Carina classification: P/S plus writer classification
    /// (NW/SW/MW), with private pages self-downgraded ("P/S3"). This is
    /// what Argo ships.
    #[default]
    Ps3,
}

/// Private/Shared component of a page's class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageClass {
    /// At most one node accesses the page ("temporary privacy", §3.2).
    Private,
    Shared,
}

/// Writer-count component of a page's class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriterClass {
    /// No writers registered (read-only so far).
    None,
    /// Exactly one writer node.
    Single(u16),
    /// More than one writer.
    Multiple,
}

/// A decoded directory entry: who reads and who writes a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirView {
    pub readers: u128,
    pub writers: u128,
}

impl DirView {
    /// All nodes that touched the page in any way.
    #[inline]
    pub fn accessors(&self) -> u128 {
        self.readers | self.writers
    }

    #[inline]
    pub fn page_class(&self) -> PageClass {
        if self.accessors().count_ones() <= 1 {
            PageClass::Private
        } else {
            PageClass::Shared
        }
    }

    #[inline]
    pub fn writer_class(&self) -> WriterClass {
        match self.writers.count_ones() {
            0 => WriterClass::None,
            1 => WriterClass::Single(self.writers.trailing_zeros() as u16),
            _ => WriterClass::Multiple,
        }
    }

    /// True if `node` is the only accessor (the "private owner").
    #[inline]
    pub fn is_private_to(&self, node: u16) -> bool {
        self.accessors() == node_bit(node)
    }

    /// Table 1: must `node` self-invalidate its cached copy at a
    /// synchronization point, under `mode`?
    pub fn must_self_invalidate(&self, mode: ClassificationMode, node: u16) -> bool {
        match mode {
            ClassificationMode::AllShared => true,
            ClassificationMode::PsNaive | ClassificationMode::Ps3 => {
                if self.page_class() == PageClass::Private {
                    // Private pages never self-invalidate. A page this node
                    // caches always counts the node among accessors, so
                    // Private here means private *to us*.
                    return false;
                }
                match mode {
                    ClassificationMode::PsNaive => true,
                    ClassificationMode::Ps3 => match self.writer_class() {
                        // Shared, no writers: nothing to observe, keep it.
                        WriterClass::None => false,
                        // Shared, single writer: the writer itself keeps its
                        // copy (there are no other updates to miss); every
                        // other node invalidates.
                        WriterClass::Single(w) => w != node,
                        WriterClass::Multiple => true,
                    },
                    ClassificationMode::AllShared => unreachable!(),
                }
            }
        }
    }

    /// Table 1: must a dirty copy of this page be self-downgraded at a
    /// synchronization point? Only the naïve P/S scheme exempts private
    /// pages (and pays for it with checkpointing).
    pub fn must_self_downgrade(&self, mode: ClassificationMode, _node: u16) -> bool {
        match mode {
            ClassificationMode::AllShared | ClassificationMode::Ps3 => true,
            ClassificationMode::PsNaive => self.page_class() == PageClass::Shared,
        }
    }
}

/// Bit for `node` in a 128-node full map.
#[inline]
pub fn node_bit(node: u16) -> u128 {
    assert!(node < 128, "full maps support up to 128 nodes");
    1u128 << node
}

#[cfg(test)]
mod tests {
    use super::*;
    use ClassificationMode::*;

    fn view(readers: &[u16], writers: &[u16]) -> DirView {
        DirView {
            readers: readers.iter().fold(0, |a, &n| a | node_bit(n)),
            writers: writers.iter().fold(0, |a, &n| a | node_bit(n)),
        }
    }

    #[test]
    fn classes_follow_accessor_counts() {
        assert_eq!(view(&[], &[]).page_class(), PageClass::Private);
        assert_eq!(view(&[3], &[]).page_class(), PageClass::Private);
        assert_eq!(view(&[3], &[3]).page_class(), PageClass::Private);
        assert_eq!(view(&[0, 1], &[]).page_class(), PageClass::Shared);
        // A pure writer also counts as an accessor.
        assert_eq!(view(&[0], &[1]).page_class(), PageClass::Shared);
        assert_eq!(view(&[0, 1], &[]).writer_class(), WriterClass::None);
        assert_eq!(view(&[0, 1], &[1]).writer_class(), WriterClass::Single(1));
        assert_eq!(view(&[0, 1], &[0, 1]).writer_class(), WriterClass::Multiple);
    }

    // The four data rows of Table 1, for both SI and SD.
    #[test]
    fn table1_all_shared_mode() {
        let private = view(&[0], &[0]);
        assert!(private.must_self_invalidate(AllShared, 0));
        assert!(private.must_self_downgrade(AllShared, 0));
    }

    #[test]
    fn table1_private_rows() {
        let private = view(&[0], &[0]);
        // P: no SI in both P/S and P/S3.
        assert!(!private.must_self_invalidate(PsNaive, 0));
        assert!(!private.must_self_invalidate(Ps3, 0));
        // P/S3 self-downgrades private pages ("SD to avoid P→S forced
        // downgrade"); naïve P/S does not (it checkpoints instead).
        assert!(private.must_self_downgrade(Ps3, 0));
        assert!(!private.must_self_downgrade(PsNaive, 0));
    }

    #[test]
    fn table1_shared_rows_ps_naive() {
        // Naïve P/S does not discriminate writers: every shared page SIs.
        for v in [view(&[0, 1], &[]), view(&[0, 1], &[0]), view(&[0, 1], &[0, 1])] {
            assert!(v.must_self_invalidate(PsNaive, 0));
            assert!(v.must_self_downgrade(PsNaive, 0));
        }
    }

    #[test]
    fn table1_shared_rows_ps3() {
        // S,NW: no SI.
        assert!(!view(&[0, 1], &[]).must_self_invalidate(Ps3, 0));
        // S,SW: the single writer keeps its copy, other nodes invalidate.
        let sw = view(&[0, 1], &[0]);
        assert!(!sw.must_self_invalidate(Ps3, 0));
        assert!(sw.must_self_invalidate(Ps3, 1));
        // S,MW: everyone invalidates.
        let mw = view(&[0, 1], &[0, 1]);
        assert!(mw.must_self_invalidate(Ps3, 0));
        assert!(mw.must_self_invalidate(Ps3, 1));
        // All shared rows self-downgrade in P/S3.
        assert!(sw.must_self_downgrade(Ps3, 0));
        assert!(mw.must_self_downgrade(Ps3, 1));
    }

    #[test]
    fn private_ownership() {
        assert!(view(&[2], &[]).is_private_to(2));
        assert!(!view(&[2], &[]).is_private_to(0));
        assert!(!view(&[0, 2], &[]).is_private_to(2));
        assert!(!view(&[], &[]).is_private_to(0));
    }

    #[test]
    #[should_panic(expected = "128 nodes")]
    fn node_bit_bounds() {
        node_bit(128);
    }
}
