//! Coherence event counters.
//!
//! These drive the paper's protocol-characterization figures: Figure 8
//! (self-invalidations avoided per classification mode) and Figure 10
//! (writebacks vs write-buffer size), plus the ablation benches.
//!
//! Counters are sharded per node: every protocol operation bumps counters,
//! and a single cluster-wide set would put all nodes' hot increments on the
//! same cache lines. Each node writes its own [`StatShard`] (padded to its
//! own cache lines); [`CoherenceStats::snapshot`] merges the shards into
//! the same cluster-wide totals a single set would have produced.

use std::sync::atomic::{AtomicU64, Ordering};

/// One node's coherence event counters (Relaxed; read after joins).
///
/// Aligned to 128 bytes so adjacent nodes' shards never share a cache line
/// (two lines covers adjacent-line prefetchers).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct StatShard {
    pub read_hits: AtomicU64,
    pub write_hits: AtomicU64,
    pub read_misses: AtomicU64,
    /// Protection faults on a valid page (first write after a downgrade).
    pub write_faults: AtomicU64,
    /// Pages invalidated by SI fences.
    pub si_invalidated: AtomicU64,
    /// Pages an SI fence kept because classification said so.
    pub si_kept: AtomicU64,
    /// Dirty pages written back to their home (buffer overflow, fence, or
    /// eviction).
    pub writebacks: AtomicU64,
    /// Bytes of downgrade traffic (diffs or whole pages).
    pub writeback_bytes: AtomicU64,
    /// Twin snapshots created on write faults.
    pub twins_created: AtomicU64,
    /// Words carried by diffs (vs whole-page transfers).
    pub diff_words: AtomicU64,
    /// Private-page checkpoints taken at sync points (naïve P/S only).
    pub checkpoints: AtomicU64,
    /// Classification transitions observed.
    pub p_to_s: AtomicU64,
    pub nw_to_sw: AtomicU64,
    pub sw_to_mw: AtomicU64,
    /// Lines evicted with live contents due to direct-map conflicts.
    pub evictions: AtomicU64,
    /// SI fences executed.
    pub si_fences: AtomicU64,
    /// SD fences executed.
    pub sd_fences: AtomicU64,
    /// Collective classification decays performed (adaptive extension).
    pub decays: AtomicU64,
    /// Home-coalesced fence drains posted (one batched verb per home).
    pub downgrade_batches: AtomicU64,
    /// Write-backs carried inside those batches.
    pub downgrade_batch_pages: AtomicU64,
    /// Verb reissues after a fabric failure (0 on a healthy fabric).
    pub verb_retries: AtomicU64,
    /// Retry budgets exhausted — each one surfaced a `DsmError`.
    pub verb_exhaustions: AtomicU64,
    /// Pages fetched speculatively by the stride prefetcher.
    pub prefetch_issued: AtomicU64,
    /// Prefetched pages a demand miss later consumed.
    pub prefetch_hits: AtomicU64,
    /// Prefetched pages dropped unconsumed (ring overflow, fence flush, or
    /// a failed speculative verb).
    pub prefetch_wasted: AtomicU64,
    /// Leases re-granted on a page the node already held (Tardis only).
    pub lease_renewals: AtomicU64,
    /// Cached pages an SI fence dropped because their lease expired
    /// (Tardis only).
    pub lease_expiries: AtomicU64,
    /// Cached pages an SI fence kept because their lease was still valid —
    /// the invalidations the timestamp protocol avoided (Tardis only).
    pub lease_kept: AtomicU64,
    /// Pages the hybrid switched classify→lease at a fence boundary
    /// (Pyxis only).
    pub mode_to_lease: AtomicU64,
    /// Pages the hybrid switched lease→classify at a fence boundary
    /// (Pyxis only).
    pub mode_to_sisd: AtomicU64,
    /// SI-fence page examinations governed by lease mode (Pyxis only).
    pub mode_lease_checks: AtomicU64,
    /// SI-fence page examinations governed by classification mode (Pyxis
    /// only).
    pub mode_classify_checks: AtomicU64,
    /// Forced invalidations at the first acquire observing a page's mode
    /// switch — the reconcile rule that keeps transitions sound (Pyxis
    /// only).
    pub mode_reconciles: AtomicU64,
    /// Nodes this node declared dead after a retry budget exhausted
    /// (Volans failover).
    pub failovers: AtomicU64,
    /// Pages re-homed from departed nodes to rendezvous survivors (Volans).
    pub pages_rehomed: AtomicU64,
    /// SD-fence drains mirrored to a page's rendezvous successor (Volans
    /// shadow homes; counts mirrored pages).
    pub shadow_mirrored: AtomicU64,
}

impl StatShard {
    fn add_into(&self, out: &mut CoherenceSnapshot) {
        let l = |c: &AtomicU64| c.load(Ordering::Relaxed);
        out.read_hits += l(&self.read_hits);
        out.write_hits += l(&self.write_hits);
        out.read_misses += l(&self.read_misses);
        out.write_faults += l(&self.write_faults);
        out.si_invalidated += l(&self.si_invalidated);
        out.si_kept += l(&self.si_kept);
        out.writebacks += l(&self.writebacks);
        out.writeback_bytes += l(&self.writeback_bytes);
        out.twins_created += l(&self.twins_created);
        out.diff_words += l(&self.diff_words);
        out.checkpoints += l(&self.checkpoints);
        out.p_to_s += l(&self.p_to_s);
        out.nw_to_sw += l(&self.nw_to_sw);
        out.sw_to_mw += l(&self.sw_to_mw);
        out.evictions += l(&self.evictions);
        out.si_fences += l(&self.si_fences);
        out.sd_fences += l(&self.sd_fences);
        out.decays += l(&self.decays);
        out.downgrade_batches += l(&self.downgrade_batches);
        out.downgrade_batch_pages += l(&self.downgrade_batch_pages);
        out.verb_retries += l(&self.verb_retries);
        out.verb_exhaustions += l(&self.verb_exhaustions);
        out.prefetch_issued += l(&self.prefetch_issued);
        out.prefetch_hits += l(&self.prefetch_hits);
        out.prefetch_wasted += l(&self.prefetch_wasted);
        out.lease_renewals += l(&self.lease_renewals);
        out.lease_expiries += l(&self.lease_expiries);
        out.lease_kept += l(&self.lease_kept);
        out.mode_to_lease += l(&self.mode_to_lease);
        out.mode_to_sisd += l(&self.mode_to_sisd);
        out.mode_lease_checks += l(&self.mode_lease_checks);
        out.mode_classify_checks += l(&self.mode_classify_checks);
        out.mode_reconciles += l(&self.mode_reconciles);
        out.failovers += l(&self.failovers);
        out.pages_rehomed += l(&self.pages_rehomed);
        out.shadow_mirrored += l(&self.shadow_mirrored);
    }

    fn reset(&self) {
        let z = |c: &AtomicU64| c.store(0, Ordering::Relaxed);
        z(&self.read_hits);
        z(&self.write_hits);
        z(&self.read_misses);
        z(&self.write_faults);
        z(&self.si_invalidated);
        z(&self.si_kept);
        z(&self.writebacks);
        z(&self.writeback_bytes);
        z(&self.twins_created);
        z(&self.diff_words);
        z(&self.checkpoints);
        z(&self.p_to_s);
        z(&self.nw_to_sw);
        z(&self.sw_to_mw);
        z(&self.evictions);
        z(&self.si_fences);
        z(&self.sd_fences);
        z(&self.decays);
        z(&self.downgrade_batches);
        z(&self.downgrade_batch_pages);
        z(&self.verb_retries);
        z(&self.verb_exhaustions);
        z(&self.prefetch_issued);
        z(&self.prefetch_hits);
        z(&self.prefetch_wasted);
        z(&self.lease_renewals);
        z(&self.lease_expiries);
        z(&self.lease_kept);
        z(&self.mode_to_lease);
        z(&self.mode_to_sisd);
        z(&self.mode_lease_checks);
        z(&self.mode_classify_checks);
        z(&self.mode_reconciles);
        z(&self.failovers);
        z(&self.pages_rehomed);
        z(&self.shadow_mirrored);
    }
}

/// Cluster-wide coherence event counters, sharded per node.
#[derive(Debug)]
pub struct CoherenceStats {
    shards: Box<[StatShard]>,
}

/// Plain snapshot of [`CoherenceStats`]: cluster-wide totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceSnapshot {
    pub read_hits: u64,
    pub write_hits: u64,
    pub read_misses: u64,
    pub write_faults: u64,
    pub si_invalidated: u64,
    pub si_kept: u64,
    pub writebacks: u64,
    pub writeback_bytes: u64,
    pub twins_created: u64,
    pub diff_words: u64,
    pub checkpoints: u64,
    pub p_to_s: u64,
    pub nw_to_sw: u64,
    pub sw_to_mw: u64,
    pub evictions: u64,
    pub si_fences: u64,
    pub sd_fences: u64,
    pub decays: u64,
    pub downgrade_batches: u64,
    pub downgrade_batch_pages: u64,
    pub verb_retries: u64,
    pub verb_exhaustions: u64,
    pub prefetch_issued: u64,
    pub prefetch_hits: u64,
    pub prefetch_wasted: u64,
    pub lease_renewals: u64,
    pub lease_expiries: u64,
    pub lease_kept: u64,
    pub mode_to_lease: u64,
    pub mode_to_sisd: u64,
    pub mode_lease_checks: u64,
    pub mode_classify_checks: u64,
    pub mode_reconciles: u64,
    pub failovers: u64,
    pub pages_rehomed: u64,
    pub shadow_mirrored: u64,
}

impl CoherenceStats {
    /// Counters for a cluster of `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        CoherenceStats {
            shards: (0..nodes.max(1)).map(|_| StatShard::default()).collect(),
        }
    }

    /// The shard that `node`'s events are counted in.
    #[inline]
    pub fn shard(&self, node: u16) -> &StatShard {
        &self.shards[node as usize]
    }

    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Cluster-wide totals (all shards merged).
    pub fn snapshot(&self) -> CoherenceSnapshot {
        let mut out = CoherenceSnapshot::default();
        for s in self.shards.iter() {
            s.add_into(&mut out);
        }
        out
    }

    /// One node's totals.
    pub fn node_snapshot(&self, node: u16) -> CoherenceSnapshot {
        let mut out = CoherenceSnapshot::default();
        self.shards[node as usize].add_into(&mut out);
        out
    }

    pub fn reset(&self) {
        for s in self.shards.iter() {
            s.reset();
        }
    }
}

impl CoherenceSnapshot {
    /// Fraction of SI-fence page examinations that resulted in keeping the
    /// page — the benefit classification buys (higher is better).
    pub fn si_keep_ratio(&self) -> f64 {
        let total = self.si_invalidated + self.si_kept;
        if total == 0 {
            return 0.0;
        }
        self.si_kept as f64 / total as f64
    }

    /// Mean write-backs carried per home-coalesced drain batch.
    pub fn mean_drain_batch(&self) -> f64 {
        if self.downgrade_batches == 0 {
            return 0.0;
        }
        self.downgrade_batch_pages as f64 / self.downgrade_batches as f64
    }

    /// Fraction of speculatively fetched pages a demand miss later
    /// consumed (the stride predictor's accuracy; 0.0 when prefetching is
    /// off or nothing resolved yet).
    pub fn prefetch_accuracy(&self) -> f64 {
        let resolved = self.prefetch_hits + self.prefetch_wasted;
        if resolved == 0 {
            return 0.0;
        }
        self.prefetch_hits as f64 / resolved as f64
    }

    /// Fraction of lease-held pages an SI fence kept because their lease
    /// was still valid — the invalidations Tardis avoided (0.0 under
    /// policies that grant no leases).
    pub fn lease_keep_ratio(&self) -> f64 {
        let total = self.lease_expiries + self.lease_kept;
        if total == 0 {
            return 0.0;
        }
        self.lease_kept as f64 / total as f64
    }

    /// Fraction of SI-fence page examinations governed by lease mode — how
    /// much of the hybrid's footprint timestamps ended up covering (0.0
    /// under the pure policies, which never tick the mode counters).
    pub fn lease_mode_occupancy(&self) -> f64 {
        let total = self.mode_lease_checks + self.mode_classify_checks;
        if total == 0 {
            return 0.0;
        }
        self.mode_lease_checks as f64 / total as f64
    }

    /// Fraction of write-back wire bytes that were diffed words — how much
    /// of the downgrade traffic the twin/diff machinery compressed into
    /// word-granular payloads instead of whole pages (higher = diffs doing
    /// more of the work).
    pub fn diff_efficiency(&self) -> f64 {
        if self.writeback_bytes == 0 {
            return 0.0;
        }
        (self.diff_words * 8) as f64 / self.writeback_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_merges_shards() {
        let s = CoherenceStats::new(3);
        CoherenceStats::bump(&s.shard(0).read_misses);
        CoherenceStats::bump(&s.shard(2).read_misses);
        CoherenceStats::add(&s.shard(1).writeback_bytes, 4096);
        let snap = s.snapshot();
        assert_eq!(snap.read_misses, 2);
        assert_eq!(snap.writeback_bytes, 4096);
        assert_eq!(s.node_snapshot(0).read_misses, 1);
        assert_eq!(s.node_snapshot(1).read_misses, 0);
        s.reset();
        assert_eq!(s.snapshot(), CoherenceSnapshot::default());
    }

    #[test]
    fn shards_do_not_share_cache_lines() {
        assert!(std::mem::align_of::<StatShard>() >= 128);
        assert!(std::mem::size_of::<StatShard>() >= 128);
    }

    #[test]
    fn keep_ratio_handles_zero() {
        assert_eq!(CoherenceSnapshot::default().si_keep_ratio(), 0.0);
        let s = CoherenceSnapshot {
            si_kept: 3,
            si_invalidated: 1,
            ..Default::default()
        };
        assert!((s.si_keep_ratio() - 0.75).abs() < 1e-12);
    }
}
