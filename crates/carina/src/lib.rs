//! # carina — Argo's coherence layer
//!
//! The paper's first contribution: a coherence protocol for data-race-free
//! programs built entirely from **self-invalidation**, **self-downgrade**,
//! and a **passive classification directory** (Pyxis) that is only ever
//! accessed by one-sided operations initiated by requesting nodes — no
//! message handlers, no home-node agents, no indirection.
//!
//! Module map:
//! - [`classification`] — page classes (P/S × NW/SW/MW) and the Table 1
//!   decision logic for what self-invalidates and self-downgrades.
//! - [`directory`] — Pyxis home entries (reader/writer full maps) and the
//!   per-node directory caches that transitions are remotely reflected into.
//! - [`write_buffer`] — the FIFO that drains dirty pages between syncs.
//! - [`config`] / [`stats`] — tunables and event counters.
//! - [`protocol`] — [`Dsm`], the engine: typed access path, miss handling,
//!   transitions and notifications, SI/SD fences.
//!
//! The memory model is the paper's: SC for DRF, provided every
//! synchronization point issues the appropriate fences — SI on acquire, SD
//! on release (both for a full fence). The `argo` crate's synchronization
//! primitives do this implicitly.

pub mod census;
pub mod classification;
pub mod coherence;
pub mod config;
pub mod directory;
pub mod error;
pub mod protocol;
pub mod stats;
pub mod trace;
pub mod write_buffer;

pub use census::{Census, HotPage};
pub use classification::{ClassificationMode, DirView, PageClass, WriterClass};
pub use coherence::{
    CarinaSiSd, Coherence, LeaseClock, PageMode, PolicyKind, Pyxis, RegisterOutcome, Tardis,
    WriteDisposition,
};
pub use config::{BatchDrain, CarinaConfig};
pub use error::DsmError;
pub use protocol::Dsm;
pub use stats::{CoherenceSnapshot, CoherenceStats, StatShard};

// Re-exported so programs handling DSM errors can name the fault and retry
// vocabulary without depending on `rma` directly.
pub use rma::{RetryPolicy, VerbClass, VerbError};
pub use trace::{Event as TraceEvent, TracedEvent, Tracer, TracerStats};
pub use write_buffer::WriteBuffer;

// Lyra observability surface, re-exported so DSM users need not name `obs`.
pub use obs::{
    Fate, FlightRecorder, MetricsSnapshot, RecordKind, RecorderStats, SpanId, TailCapture,
    VerbRecord,
};
