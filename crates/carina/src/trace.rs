//! Protocol event tracing.
//!
//! A bounded ring buffer of coherence events for debugging and teaching
//! (the `protocol_tour` example prints one). Disabled by default — the
//! enabled check is a single relaxed atomic load on the hot path, and no
//! event is materialized unless tracing is on.

use mem::PageNum;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// One protocol event. `node` is the acting node; virtual timestamps come
/// from the acting thread's clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    ReadMiss { node: u16, page: PageNum },
    WriteFault { node: u16, page: PageNum },
    Downgrade { node: u16, page: PageNum, bytes: u64 },
    /// A home-coalesced fence drain posted `pages` write-backs to `home`
    /// with a single batched verb.
    DowngradeBatch { node: u16, home: u16, pages: u64, bytes: u64 },
    SiInvalidate { node: u16, page: PageNum },
    SiKeep { node: u16, page: PageNum },
    PToS { page: PageNum, newcomer: u16, owner: u16 },
    NwToSw { page: PageNum, writer: u16 },
    SwToMw { page: PageNum, new_writer: u16, old_writer: u16 },
    Notify { from: u16, to: u16, page: PageNum },
    Checkpoint { node: u16, page: PageNum },
    Fence { node: u16, kind: FenceKind },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FenceKind {
    SelfInvalidate,
    SelfDowngrade,
}

/// A traced event with its global sequence number and virtual timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedEvent {
    pub seq: u64,
    pub at_cycles: u64,
    pub event: Event,
}

/// Bounded protocol trace.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    seq: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<TracedEvent>>,
}

impl Tracer {
    pub fn new(capacity: usize) -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1 << 16))),
        }
    }

    /// Turn tracing on or off (off by default; safe at any time).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record an event if tracing is on. `make` is only invoked when
    /// enabled, so the hot path pays one relaxed load.
    #[inline]
    pub fn record(&self, at_cycles: u64, make: impl FnOnce() -> Event) {
        if !self.is_enabled() {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ev = TracedEvent {
            seq,
            at_cycles,
            event: make(),
        };
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// Snapshot the buffered events, oldest first.
    pub fn events(&self) -> Vec<TracedEvent> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Drop all buffered events.
    pub fn clear(&self) {
        self.ring.lock().clear();
    }

    /// Total events recorded since creation (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

impl std::fmt::Display for TracedEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:>6}] @{:<10} ", self.seq, self.at_cycles)?;
        match &self.event {
            Event::ReadMiss { node, page } => write!(f, "n{node} read-miss  p{}", page.0),
            Event::WriteFault { node, page } => write!(f, "n{node} write-fault p{}", page.0),
            Event::Downgrade { node, page, bytes } => {
                write!(f, "n{node} downgrade   p{} ({bytes} B)", page.0)
            }
            Event::DowngradeBatch { node, home, pages, bytes } => {
                write!(f, "n{node} batch->n{home} {pages} pages ({bytes} B)")
            }
            Event::SiInvalidate { node, page } => write!(f, "n{node} SI-inval    p{}", page.0),
            Event::SiKeep { node, page } => write!(f, "n{node} SI-keep     p{}", page.0),
            Event::PToS { page, newcomer, owner } => {
                write!(f, "P->S        p{} (n{newcomer} joins n{owner})", page.0)
            }
            Event::NwToSw { page, writer } => write!(f, "NW->SW      p{} (n{writer})", page.0),
            Event::SwToMw { page, new_writer, old_writer } => write!(
                f,
                "SW->MW      p{} (n{new_writer} joins n{old_writer})",
                page.0
            ),
            Event::Notify { from, to, page } => {
                write!(f, "n{from} notify->n{to} p{}", page.0)
            }
            Event::Checkpoint { node, page } => write!(f, "n{node} checkpoint  p{}", page.0),
            Event::Fence { node, kind } => match kind {
                FenceKind::SelfInvalidate => write!(f, "n{node} SI-fence"),
                FenceKind::SelfDowngrade => write!(f, "n{node} SD-fence"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(8);
        t.record(0, || Event::Fence {
            node: 0,
            kind: FenceKind::SelfInvalidate,
        });
        assert!(t.events().is_empty());
        assert_eq!(t.recorded(), 0);
    }

    #[test]
    fn ring_evicts_oldest() {
        let t = Tracer::new(3);
        t.set_enabled(true);
        for n in 0..5u16 {
            t.record(n as u64, || Event::ReadMiss {
                node: n,
                page: PageNum(n as u64),
            });
        }
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].seq, 2);
        assert_eq!(evs[2].seq, 4);
        assert_eq!(t.recorded(), 5);
        t.clear();
        assert!(t.events().is_empty());
    }

    #[test]
    fn display_is_stable() {
        let ev = TracedEvent {
            seq: 1,
            at_cycles: 42,
            event: Event::PToS {
                page: PageNum(7),
                newcomer: 1,
                owner: 0,
            },
        };
        let s = format!("{ev}");
        assert!(s.contains("P->S"));
        assert!(s.contains("p7"));
    }
}
