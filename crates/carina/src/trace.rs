//! Protocol event tracing.
//!
//! A bounded ring buffer of coherence events for debugging, teaching (the
//! `protocol_tour` example prints one), and timeline export: a filled
//! tracer renders itself as Perfetto-loadable Chrome-trace JSON via
//! [`Tracer::to_chrome_trace`]. Disabled by default — the enabled check is
//! a single relaxed atomic load on the hot path, and neither the event nor
//! its timestamp is materialized unless tracing is on.
//!
//! Timestamps come from the acting endpoint's *observability* clock
//! (`Endpoint::obs_now`): virtual cycles on the simulator, wall nanoseconds
//! on the native backend (whose protocol clock is pinned at 0 and would
//! flatten every trace onto one instant).
//!
//! When the ring is full, recording a new event evicts the oldest one; the
//! eviction is **counted**, and [`Tracer::stats`] /
//! [`Tracer::to_chrome_trace`] surface the drop count so a truncated trace
//! never masquerades as a complete one.

use mem::PageNum;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// One protocol event. `node` is the acting node; timestamps come from the
/// acting thread's observability clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    ReadMiss { node: u16, page: PageNum },
    WriteFault { node: u16, page: PageNum },
    Downgrade { node: u16, page: PageNum, bytes: u64 },
    /// A home-coalesced fence drain posted `pages` write-backs to `home`
    /// with a single batched verb.
    DowngradeBatch { node: u16, home: u16, pages: u64, bytes: u64 },
    SiInvalidate { node: u16, page: PageNum },
    SiKeep { node: u16, page: PageNum },
    PToS { page: PageNum, newcomer: u16, owner: u16 },
    NwToSw { page: PageNum, writer: u16 },
    SwToMw { page: PageNum, new_writer: u16, old_writer: u16 },
    Notify { from: u16, to: u16, page: PageNum },
    Checkpoint { node: u16, page: PageNum },
    /// A completed fence. Recorded at fence *end* with `at_cycles` set to
    /// the fence start, so `dur_cycles` spans the whole sweep/drain and the
    /// trace renders it as a duration slice.
    Fence { node: u16, kind: FenceKind, dur_cycles: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FenceKind {
    SelfInvalidate,
    SelfDowngrade,
}

/// A traced event with its global sequence number and timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedEvent {
    pub seq: u64,
    pub at_cycles: u64,
    pub event: Event,
}

/// Counters describing how faithful the current trace buffer is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TracerStats {
    /// Events recorded since creation (including later-evicted ones).
    pub recorded: u64,
    /// Events evicted because the ring was full: the trace is incomplete
    /// whenever this is non-zero.
    pub dropped: u64,
    /// Events currently buffered.
    pub buffered: u64,
    /// Ring capacity.
    pub capacity: u64,
}

/// Bounded protocol trace.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    seq: AtomicU64,
    dropped: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<TracedEvent>>,
}

impl Tracer {
    pub fn new(capacity: usize) -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1 << 16))),
        }
    }

    /// Turn tracing on or off (off by default; safe at any time).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record an event if tracing is on. Both `at` and `make` are only
    /// invoked when enabled, so the hot path pays one relaxed load — in
    /// particular the native backend's `obs_now()` (a wall-clock read) is
    /// never taken for a disabled tracer.
    #[inline]
    pub fn record(&self, at: impl FnOnce() -> u64, make: impl FnOnce() -> Event) {
        if !self.is_enabled() {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ev = TracedEvent {
            seq,
            at_cycles: at(),
            event: make(),
        };
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }

    /// Snapshot the buffered events, oldest first.
    pub fn events(&self) -> Vec<TracedEvent> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Drop all buffered events (does not count as drops: clearing is the
    /// caller's choice, eviction is not).
    pub fn clear(&self) {
        self.ring.lock().clear();
    }

    /// Total events recorded since creation (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events silently evicted by ring overflow since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Fidelity counters for the current buffer.
    pub fn stats(&self) -> TracerStats {
        TracerStats {
            recorded: self.recorded(),
            dropped: self.dropped(),
            buffered: self.ring.lock().len() as u64,
            capacity: self.capacity as u64,
        }
    }

    /// Render the buffered events as Chrome-trace JSON (the "JSON Array
    /// Format" with metadata), loadable in Perfetto / `chrome://tracing`.
    ///
    /// One track per node (`pid` 0, `tid` = node): fences are duration
    /// (`"ph":"X"`) slices, everything else — misses, faults, downgrades,
    /// classification transitions — thread-scoped instants (`"ph":"i"`).
    /// Events are sorted by timestamp within each track (sequence number
    /// breaks ties), so `ts` is monotonically non-decreasing per track.
    /// `otherData` carries the recorded/dropped counters; a non-zero
    /// `dropped` means the window is truncated.
    pub fn to_chrome_trace(&self) -> String {
        let events = self.events();
        let stats = self.stats();

        // Partition into per-node tracks, then order each track by time.
        let max_node = events.iter().map(|e| track_of(&e.event)).max().unwrap_or(0);
        let mut tracks: Vec<Vec<&TracedEvent>> = vec![Vec::new(); max_node as usize + 1];
        for ev in &events {
            tracks[track_of(&ev.event) as usize].push(ev);
        }
        for track in &mut tracks {
            track.sort_by_key(|e| (e.at_cycles, e.seq));
        }

        let mut out = String::with_capacity(events.len() * 96 + 256);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"otherData\":{");
        let _ = write!(
            out,
            "\"recorded\":{},\"dropped\":{},\"buffered\":{},\"capacity\":{}",
            stats.recorded, stats.dropped, stats.buffered, stats.capacity
        );
        out.push_str("},\"traceEvents\":[");
        let mut first = true;
        for (node, track) in tracks.iter().enumerate() {
            if track.is_empty() {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{node},\
                 \"args\":{{\"name\":\"node {node}\"}}}}"
            );
            for ev in track {
                out.push(',');
                emit_event(&mut out, node, ev);
            }
        }
        out.push_str("]}");
        out
    }
}

/// The node whose track an event belongs to — the acting node.
fn track_of(event: &Event) -> u16 {
    match event {
        Event::ReadMiss { node, .. }
        | Event::WriteFault { node, .. }
        | Event::Downgrade { node, .. }
        | Event::DowngradeBatch { node, .. }
        | Event::SiInvalidate { node, .. }
        | Event::SiKeep { node, .. }
        | Event::Checkpoint { node, .. }
        | Event::Fence { node, .. } => *node,
        Event::PToS { newcomer, .. } => *newcomer,
        Event::NwToSw { writer, .. } => *writer,
        Event::SwToMw { new_writer, .. } => *new_writer,
        Event::Notify { from, .. } => *from,
    }
}

fn emit_event(out: &mut String, tid: usize, ev: &TracedEvent) {
    let ts = ev.at_cycles;
    match &ev.event {
        Event::Fence { kind, dur_cycles, .. } => {
            let name = match kind {
                FenceKind::SelfInvalidate => "si_fence",
                FenceKind::SelfDowngrade => "sd_fence",
            };
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur_cycles},\
                 \"pid\":0,\"tid\":{tid}}}"
            );
        }
        other => {
            let (name, args) = instant_payload(other);
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                 \"pid\":0,\"tid\":{tid},\"args\":{{{args}}}}}"
            );
        }
    }
}

fn instant_payload(event: &Event) -> (&'static str, String) {
    match event {
        Event::ReadMiss { page, .. } => ("read_miss", format!("\"page\":{}", page.0)),
        Event::WriteFault { page, .. } => ("write_fault", format!("\"page\":{}", page.0)),
        Event::Downgrade { page, bytes, .. } => {
            ("downgrade", format!("\"page\":{},\"bytes\":{bytes}", page.0))
        }
        Event::DowngradeBatch { home, pages, bytes, .. } => (
            "downgrade_batch",
            format!("\"home\":{home},\"pages\":{pages},\"bytes\":{bytes}"),
        ),
        Event::SiInvalidate { page, .. } => ("si_invalidate", format!("\"page\":{}", page.0)),
        Event::SiKeep { page, .. } => ("si_keep", format!("\"page\":{}", page.0)),
        Event::PToS { page, owner, .. } => {
            ("p_to_s", format!("\"page\":{},\"owner\":{owner}", page.0))
        }
        Event::NwToSw { page, .. } => ("nw_to_sw", format!("\"page\":{}", page.0)),
        Event::SwToMw { page, old_writer, .. } => (
            "sw_to_mw",
            format!("\"page\":{},\"old_writer\":{old_writer}", page.0),
        ),
        Event::Notify { to, page, .. } => {
            ("notify", format!("\"to\":{to},\"page\":{}", page.0))
        }
        Event::Checkpoint { page, .. } => ("checkpoint", format!("\"page\":{}", page.0)),
        Event::Fence { .. } => unreachable!("fences are duration events"),
    }
}

impl std::fmt::Display for TracedEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:>6}] @{:<10} ", self.seq, self.at_cycles)?;
        match &self.event {
            Event::ReadMiss { node, page } => write!(f, "n{node} read-miss  p{}", page.0),
            Event::WriteFault { node, page } => write!(f, "n{node} write-fault p{}", page.0),
            Event::Downgrade { node, page, bytes } => {
                write!(f, "n{node} downgrade   p{} ({bytes} B)", page.0)
            }
            Event::DowngradeBatch { node, home, pages, bytes } => {
                write!(f, "n{node} batch->n{home} {pages} pages ({bytes} B)")
            }
            Event::SiInvalidate { node, page } => write!(f, "n{node} SI-inval    p{}", page.0),
            Event::SiKeep { node, page } => write!(f, "n{node} SI-keep     p{}", page.0),
            Event::PToS { page, newcomer, owner } => {
                write!(f, "P->S        p{} (n{newcomer} joins n{owner})", page.0)
            }
            Event::NwToSw { page, writer } => write!(f, "NW->SW      p{} (n{writer})", page.0),
            Event::SwToMw { page, new_writer, old_writer } => write!(
                f,
                "SW->MW      p{} (n{new_writer} joins n{old_writer})",
                page.0
            ),
            Event::Notify { from, to, page } => {
                write!(f, "n{from} notify->n{to} p{}", page.0)
            }
            Event::Checkpoint { node, page } => write!(f, "n{node} checkpoint  p{}", page.0),
            Event::Fence { node, kind, dur_cycles } => match kind {
                FenceKind::SelfInvalidate => write!(f, "n{node} SI-fence ({dur_cycles} cyc)"),
                FenceKind::SelfDowngrade => write!(f, "n{node} SD-fence ({dur_cycles} cyc)"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(8);
        let mut clock_reads = 0u32;
        t.record(
            || {
                clock_reads += 1;
                0
            },
            || Event::Fence {
                node: 0,
                kind: FenceKind::SelfInvalidate,
                dur_cycles: 0,
            },
        );
        assert!(t.events().is_empty());
        assert_eq!(t.recorded(), 0);
        assert_eq!(clock_reads, 0, "disabled tracer must not read the clock");
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let t = Tracer::new(3);
        t.set_enabled(true);
        for n in 0..5u16 {
            t.record(
                || n as u64,
                || Event::ReadMiss {
                    node: n,
                    page: PageNum(n as u64),
                },
            );
        }
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].seq, 2);
        assert_eq!(evs[2].seq, 4);
        let stats = t.stats();
        assert_eq!(stats.recorded, 5);
        assert_eq!(stats.dropped, 2);
        assert_eq!(stats.buffered, 3);
        assert_eq!(stats.capacity, 3);
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 2, "clear() is not a drop");
    }

    #[test]
    fn display_is_stable() {
        let ev = TracedEvent {
            seq: 1,
            at_cycles: 42,
            event: Event::PToS {
                page: PageNum(7),
                newcomer: 1,
                owner: 0,
            },
        };
        let s = format!("{ev}");
        assert!(s.contains("P->S"));
        assert!(s.contains("p7"));
    }

    #[test]
    fn chrome_trace_shape() {
        let t = Tracer::new(16);
        t.set_enabled(true);
        // Deliberately record node 1 before node 0 and out of time order
        // within node 0: the emitter must still sort each track.
        t.record(
            || 50,
            || Event::SiKeep {
                node: 1,
                page: PageNum(3),
            },
        );
        t.record(
            || 40,
            || Event::Fence {
                node: 0,
                kind: FenceKind::SelfDowngrade,
                dur_cycles: 17,
            },
        );
        t.record(
            || 10,
            || Event::ReadMiss {
                node: 0,
                page: PageNum(9),
            },
        );
        let json = t.to_chrome_trace();
        assert!(json.contains("\"dropped\":0"));
        assert!(json.contains("\"recorded\":3"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":17"));
        assert!(json.contains("\"name\":\"node 0\""));
        assert!(json.contains("\"name\":\"node 1\""));
        // Track 0 must emit the miss (ts 10) before the fence (ts 40).
        let miss = json.find("\"name\":\"read_miss\"").unwrap();
        let fence = json.find("\"name\":\"sd_fence\"").unwrap();
        assert!(miss < fence);
    }
}
