//! Carina configuration knobs.

use crate::classification::ClassificationMode;
use mem::addr::HomePolicy;
use mem::CacheConfig;
use rma::RetryPolicy;

/// Whether SD fences drain the write buffer with one home-coalesced
/// `rdma_write_batch` per home node, or with one `rdma_write` per page.
///
/// Both paths move the same diffs in the same global FIFO order and tick
/// the same counters; they differ in verb timing (the batch pays one
/// doorbell per home, the per-page path prices each write independently)
/// and in host-side issue cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchDrain {
    /// Defer to the transport (`Transport::prefers_batched_drain`): the
    /// simulator keeps its calibrated, bit-reproducible per-page path, the
    /// native backend coalesces.
    #[default]
    Auto,
    /// Always coalesce (equivalence tests force this on the simulator).
    Always,
    /// Never coalesce.
    Never,
}

/// All tunables of the coherence layer. Defaults match the paper's shipped
/// configuration (P/S3, passive directory, prefetching off unless asked).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarinaConfig {
    /// Classification scheme (the Figure 8 sweep).
    pub mode: ClassificationMode,
    /// Page-cache geometry (lines × pages per line).
    pub cache: CacheConfig,
    /// How pages map to home nodes (paper: interleaved).
    pub home_policy: HomePolicy,
    /// Write-buffer capacity in pages (the Figure 9/10 sweep). When the
    /// buffer exceeds this, the oldest dirty page is downgraded.
    pub write_buffer_pages: usize,
    /// Lock stripes of the write buffer (clean→dirty pushes from a node's
    /// threads serialize per stripe, not globally). Purely host-side:
    /// global FIFO victim order is preserved by push tickets.
    pub write_buffer_shards: usize,
    /// How SD fences post the drained pages home (see [`BatchDrain`]).
    pub batch_drain: BatchDrain,
    /// Under [`BatchDrain::Auto`], coalesce anyway — even on transports
    /// that price per-page drains well — once a fence drains at least this
    /// many pages. Small drains keep the per-page path (one doorbell per
    /// home is pure overhead when a home only holds a page or two); big
    /// drains amortize it. The `sd_fence_drain` benchmark puts break-even
    /// at ~8 buffered pages: batching is host-cost-neutral there and wins
    /// on both wall and virtual time above it.
    pub batch_drain_cutover: usize,
    /// Read-miss stride prefetcher: capacity of the per-node prefetch ring
    /// in *lines*. `0` (the default) disables prefetching entirely.
    /// Prefetched lines live in a side ring — never in the page cache —
    /// until a demand miss consumes them, so coherence invariants are
    /// untouched; SI fences and parallel-section resets flush the ring.
    pub prefetch_lines: usize,
    /// How many consecutive same-stride line misses a core must take
    /// before the predictor starts issuing speculative line fetches.
    pub prefetch_streak: u32,
    /// Ablation: charge a software message-handler invocation at the home
    /// node for every directory operation and notification, as a
    /// traditional *active* directory would. Argo's contribution is that
    /// this is `false`.
    pub active_directory: bool,
    /// Extension (paper future work §3.2): a single writer skips twin/diff
    /// creation and downgrades by transmitting the whole page — no false
    /// sharing is possible with one writer.
    pub sw_no_diff: bool,
    /// Cycles for a page-cache hit (TLB + local cache access).
    pub hit_cycles: u64,
    /// Cycles to copy one 4 KiB page that is hot in the CPU cache (twin
    /// creation at a write fault: the faulting access just touched it).
    pub page_copy_cycles: u64,
    /// Cycles to copy one *cold* 4 KiB page during a sync-point checkpoint
    /// sweep (naïve P/S only): every line misses on the way in and out, so
    /// this is an order of magnitude more than a hot copy — the cost that
    /// makes the paper's naïve P/S "no better than S" (§5.1).
    pub checkpoint_cycles: u64,
    /// Cycles to examine one cached page during a fence sweep.
    pub fence_scan_cycles: u64,
    /// Cycles to flip protection on one page (the mprotect analogue).
    pub protect_cycles: u64,
    /// Initial per-page lease length for the Tardis timestamp policy
    /// (logical-clock ticks a read grant stays valid). Ignored by SI/SD.
    pub tardis_lease: u64,
    /// Adaptive-lease floor: writes halve a page's lease no lower than
    /// this (Tardis only).
    pub tardis_lease_min: u64,
    /// Adaptive-lease ceiling: renewals of an unchanged page double its
    /// lease no higher than this (Tardis only).
    pub tardis_lease_max: u64,
    /// Evidence score a page must accumulate before the Pyxis hybrid
    /// switches its mode at the next fence boundary (higher = more
    /// hysteresis, slower adaptation). Ignored by the pure policies.
    pub pyxis_switch_threshold: i64,
    /// Saturation bound for the Pyxis per-page evidence score; caps how
    /// much history a page can hold against a phase change (Pyxis only).
    pub pyxis_score_cap: i64,
    /// How failed verbs are reissued (backoff, jitter, per-class budgets).
    /// Irrelevant on a healthy fabric — no verb ever fails there.
    pub retry: RetryPolicy,
    /// Volans: when a verb's retry budget exhausts, declare the target dead,
    /// re-home its pages to survivors by rendezvous hashing, and reissue the
    /// verb against the new home — instead of surfacing the `DsmError`.
    /// Off by default: the error-surfacing contract of the chaos tests (and
    /// any caller that wants to see failures) is unchanged.
    pub volans_failover: bool,
    /// Volans: how many of the cluster's trailing node ids start *outside*
    /// the membership (latent). Their interleaved home pages are re-homed
    /// to the initially-alive set at construction; `Dsm::join_node` brings
    /// a latent node in at an epoch bump, and it warms purely by
    /// demand-faulting — no bulk transfer.
    pub volans_latent_nodes: usize,
    /// Volans: mirror each SD-fence write-batch drain to the page's
    /// rendezvous successor (the node that would inherit it on failover).
    /// Off the hot path — coalesced at fence boundaries, one batched verb
    /// per successor — and purely a shadow: the successor's copy only
    /// matters after a failover re-homes the page there.
    pub volans_shadow: bool,
    /// Per-node capacity (records) of the Lyra flight-recorder ring,
    /// rounded up to a power of two. The recorder is always on; recording
    /// is purely passive (it never feeds back into protocol or timing), so
    /// the determinism probes pin bit-identical output with any capacity.
    pub lyra_ring: usize,
    /// Tail-capture threshold in observability-clock units (virtual cycles
    /// on the simulator, wall nanoseconds on native): when a protocol
    /// site's latency crosses it, the node's ring is snapshotted around the
    /// offender. `0` disables tail capture.
    pub lyra_tail_threshold: u64,
}

impl Default for CarinaConfig {
    fn default() -> Self {
        CarinaConfig {
            mode: ClassificationMode::Ps3,
            cache: CacheConfig::default(),
            home_policy: HomePolicy::Interleaved,
            write_buffer_pages: 8192,
            write_buffer_shards: crate::write_buffer::DEFAULT_SHARDS,
            batch_drain: BatchDrain::Auto,
            batch_drain_cutover: 8,
            prefetch_lines: 0,
            prefetch_streak: 2,
            active_directory: false,
            sw_no_diff: false,
            hit_cycles: 4,
            page_copy_cycles: 430, // ~170 DRAM + 4096 B at 16 B/cycle (hot)
            checkpoint_cycles: 4200, // 2×64 cache lines of cold DRAM traffic
            fence_scan_cycles: 6,
            protect_cycles: 150,
            tardis_lease: 64,
            tardis_lease_min: 8,
            tardis_lease_max: 4096,
            pyxis_switch_threshold: 3,
            pyxis_score_cap: 8,
            retry: RetryPolicy::default(),
            volans_failover: false,
            volans_latent_nodes: 0,
            volans_shadow: false,
            lyra_ring: 1024,
            lyra_tail_threshold: 0,
        }
    }
}

impl CarinaConfig {
    /// Convenience: default config with a specific classification mode.
    pub fn with_mode(mode: ClassificationMode) -> Self {
        CarinaConfig {
            mode,
            ..Default::default()
        }
    }

    /// Convenience: default config with a specific write-buffer size.
    pub fn with_write_buffer(pages: usize) -> Self {
        CarinaConfig {
            write_buffer_pages: pages,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_ps3_passive() {
        let c = CarinaConfig::default();
        assert_eq!(c.mode, ClassificationMode::Ps3);
        assert!(!c.active_directory);
        assert!(!c.sw_no_diff);
    }

    #[test]
    fn builders_override_one_field() {
        assert_eq!(
            CarinaConfig::with_mode(ClassificationMode::AllShared).mode,
            ClassificationMode::AllShared
        );
        assert_eq!(CarinaConfig::with_write_buffer(32).write_buffer_pages, 32);
    }
}
