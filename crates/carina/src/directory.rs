//! Pyxis: the passive classification directory.
//!
//! A directory entry is nothing but four 64-bit words of home-node memory —
//! a 128-bit reader full map and a 128-bit writer full map. Requesting nodes
//! deposit their ID with a remote fetch-or (the paper uses MPI `Fetch&Add`)
//! and receive the updated maps; **no code ever runs at the home node**.
//!
//! Each node additionally keeps a *directory cache*: a local copy of every
//! remote entry it has consulted. When a node causes a classification
//! transition, it is that node's burden to notify the affected node(s) — by
//! remotely OR-ing the new bits into *their* directory caches (again plain
//! RDMA, no handler). The affected node observes the change at its next
//! synchronization or request: *deferred invalidation* (paper §3.4.1).

use crate::classification::DirView;
use mem::PageNum;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

/// One directory entry: reader and writer full maps for up to 128 nodes.
#[derive(Debug, Default)]
pub struct DirEntry {
    readers: [AtomicU64; 2],
    writers: [AtomicU64; 2],
}

#[inline]
fn split(map: u128) -> (u64, u64) {
    (map as u64, (map >> 64) as u64)
}

#[inline]
fn join(lo: u64, hi: u64) -> u128 {
    lo as u128 | ((hi as u128) << 64)
}

impl DirEntry {
    /// Decode the current maps.
    pub fn view(&self) -> DirView {
        DirView {
            readers: join(
                self.readers[0].load(Ordering::Acquire),
                self.readers[1].load(Ordering::Acquire),
            ),
            writers: join(
                self.writers[0].load(Ordering::Acquire),
                self.writers[1].load(Ordering::Acquire),
            ),
        }
    }

    /// Atomically OR `bits` into the reader map; returns the view *before*
    /// this update (what the initiating node uses to detect transitions).
    pub fn or_readers(&self, bits: u128) -> DirView {
        let before = self.view();
        let (lo, hi) = split(bits);
        if lo != 0 {
            self.readers[0].fetch_or(lo, Ordering::AcqRel);
        }
        if hi != 0 {
            self.readers[1].fetch_or(hi, Ordering::AcqRel);
        }
        before
    }

    /// Atomically OR `bits` into the writer map; returns the prior view.
    pub fn or_writers(&self, bits: u128) -> DirView {
        let before = self.view();
        let (lo, hi) = split(bits);
        if lo != 0 {
            self.writers[0].fetch_or(lo, Ordering::AcqRel);
        }
        if hi != 0 {
            self.writers[1].fetch_or(hi, Ordering::AcqRel);
        }
        before
    }

    /// Overwrite with a full view (used to refresh a directory cache copy).
    pub fn store_view(&self, v: DirView) {
        let (rlo, rhi) = split(v.readers);
        let (wlo, whi) = split(v.writers);
        self.readers[0].store(rlo, Ordering::Release);
        self.readers[1].store(rhi, Ordering::Release);
        self.writers[0].store(wlo, Ordering::Release);
        self.writers[1].store(whi, Ordering::Release);
    }

    /// OR both maps (remote notification of a transition).
    pub fn or_view(&self, v: DirView) {
        if v.readers != 0 {
            self.or_readers(v.readers);
        }
        if v.writers != 0 {
            self.or_writers(v.writers);
        }
    }

    /// Reset to empty maps (end-of-initialization reset, paper §3.4).
    pub fn reset(&self) {
        self.store_view(DirView::default());
    }
}

/// The home-side directory: one entry per page, living in the page's home
/// node's memory (like the data pages, the placement is timing metadata in
/// the simulator; the entries themselves are stored flat).
#[derive(Debug)]
pub struct Pyxis {
    entries: Vec<DirEntry>,
}

impl Pyxis {
    pub fn new(total_pages: u64) -> Self {
        Pyxis {
            entries: (0..total_pages).map(|_| DirEntry::default()).collect(),
        }
    }

    /// The home entry for `page`.
    #[inline]
    pub fn entry(&self, page: PageNum) -> &DirEntry {
        &self.entries[page.0 as usize]
    }

    /// How many pages the directory covers.
    #[inline]
    pub fn total_pages(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Reset every entry — the paper's "initialization writes do not count"
    /// rule: reader/writer maps are nulled when the parallel section starts.
    pub fn reset_all(&self) {
        for e in &self.entries {
            e.reset();
        }
    }
}

/// Per-node directory caches: `caches[node]` holds that node's local copy of
/// every directory entry it has consulted, indexed by global page number.
///
/// Other nodes write into these remotely on classification transitions; the
/// owner reads them locally at fences. That asymmetry is the whole point:
/// the *causing* node pays, the affected node stays passive.
///
/// Every protocol operation consults a directory cache, so the lookup is a
/// hot path: a flat page-indexed table of entries, grown lazily in
/// fixed-size chunks that are published with a compare-and-swap. Lookups
/// are two dependent loads and return a plain `&DirEntry` — no locks, no
/// reference-count traffic. Laziness matters at scale: a 128-node cluster
/// over a large address space would otherwise need gigabytes of
/// always-resident metadata for pages most nodes never touch.
#[derive(Debug)]
pub struct DirCaches {
    caches: Vec<NodeDirCache>,
}

/// Entries per lazily-allocated chunk (32 KiB of `DirEntry`s).
const DIR_CHUNK: usize = 1024;

type DirChunk = [DirEntry; DIR_CHUNK];

fn new_chunk() -> Box<DirChunk> {
    let entries: Box<[DirEntry]> = (0..DIR_CHUNK).map(|_| DirEntry::default()).collect();
    // Infallible: the slice has exactly DIR_CHUNK elements.
    entries.try_into().unwrap()
}

#[derive(Debug)]
struct NodeDirCache {
    chunks: Box<[AtomicPtr<DirChunk>]>,
}

impl NodeDirCache {
    fn new(total_pages: u64) -> Self {
        let n = (total_pages as usize).div_ceil(DIR_CHUNK);
        NodeDirCache {
            chunks: (0..n).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect(),
        }
    }

    #[inline]
    fn entry(&self, page: PageNum) -> &DirEntry {
        let (c, o) = (page.0 as usize / DIR_CHUNK, page.0 as usize % DIR_CHUNK);
        let ptr = self.chunks[c].load(Ordering::Acquire);
        let chunk = if ptr.is_null() {
            self.alloc_chunk(c)
        } else {
            // Safety: non-null chunk pointers are only installed by
            // `alloc_chunk` below and stay valid until `Drop`.
            unsafe { &*ptr }
        };
        &chunk[o]
    }

    #[cold]
    fn alloc_chunk(&self, c: usize) -> &DirChunk {
        let fresh = Box::into_raw(new_chunk());
        match self.chunks[c].compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            // Safety: we just installed `fresh`; it is never removed or
            // freed before `Drop`.
            Ok(_) => unsafe { &*fresh },
            Err(existing) => {
                // Lost the race: free ours, use the winner's.
                // Safety: `fresh` came from Box::into_raw above and was
                // never shared; `existing` is a published chunk.
                unsafe {
                    drop(Box::from_raw(fresh));
                    &*existing
                }
            }
        }
    }

    fn reset(&self) {
        for chunk in self.chunks.iter() {
            let ptr = chunk.load(Ordering::Acquire);
            if !ptr.is_null() {
                // Safety: published chunks stay valid until `Drop`.
                for e in unsafe { &*ptr }.iter() {
                    e.reset();
                }
            }
        }
    }
}

impl Drop for NodeDirCache {
    fn drop(&mut self) {
        for chunk in self.chunks.iter_mut() {
            let ptr = *chunk.get_mut();
            if !ptr.is_null() {
                // Safety: exclusively owned at drop time; installed via
                // Box::into_raw.
                unsafe { drop(Box::from_raw(ptr)) };
            }
        }
    }
}

impl DirCaches {
    pub fn new(nodes: usize, total_pages: u64) -> Self {
        DirCaches {
            caches: (0..nodes).map(|_| NodeDirCache::new(total_pages)).collect(),
        }
    }

    /// `node`'s cached copy of the entry for `page` (created empty on first
    /// touch).
    #[inline]
    pub fn entry(&self, node: u16, page: PageNum) -> &DirEntry {
        self.caches[node as usize].entry(page)
    }

    pub fn reset_all(&self) {
        for node in &self.caches {
            node.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classification::node_bit;

    #[test]
    fn or_returns_prior_view() {
        let e = DirEntry::default();
        let before = e.or_readers(node_bit(3));
        assert_eq!(before.readers, 0);
        let before = e.or_readers(node_bit(70));
        assert_eq!(before.readers, node_bit(3));
        assert_eq!(e.view().readers, node_bit(3) | node_bit(70));
    }

    #[test]
    fn high_node_ids_use_second_word() {
        let e = DirEntry::default();
        e.or_writers(node_bit(127));
        assert_eq!(e.view().writers, 1u128 << 127);
    }

    #[test]
    fn store_view_overwrites() {
        let e = DirEntry::default();
        e.or_readers(node_bit(1));
        e.store_view(DirView {
            readers: node_bit(5),
            writers: node_bit(6),
        });
        let v = e.view();
        assert_eq!(v.readers, node_bit(5));
        assert_eq!(v.writers, node_bit(6));
        e.reset();
        assert_eq!(e.view(), DirView::default());
    }

    #[test]
    fn pyxis_shards_like_data_pages() {
        let p = Pyxis::new(32);
        // Pages 1 and 5 both live on home node 1; distinct entries.
        p.entry(PageNum(1)).or_readers(node_bit(0));
        assert_eq!(p.entry(PageNum(5)).view().readers, 0);
        assert_eq!(p.entry(PageNum(1)).view().readers, node_bit(0));
        p.reset_all();
        assert_eq!(p.entry(PageNum(1)).view().readers, 0);
    }

    #[test]
    fn dir_caches_are_per_node() {
        let d = DirCaches::new(2, 16);
        d.entry(0, PageNum(3)).or_view(DirView {
            readers: node_bit(1),
            writers: 0,
        });
        assert_eq!(d.entry(0, PageNum(3)).view().readers, node_bit(1));
        assert_eq!(d.entry(1, PageNum(3)).view().readers, 0);
    }

    #[test]
    fn concurrent_or_preserves_all_bits() {
        use std::sync::Arc;
        let e = Arc::new(DirEntry::default());
        let handles: Vec<_> = (0..16u16)
            .map(|n| {
                let e = e.clone();
                std::thread::spawn(move || {
                    e.or_readers(node_bit(n));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(e.view().readers.count_ones(), 16);
    }
}
