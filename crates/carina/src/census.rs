//! The page census: an on-demand walk of the Pyxis directory reporting
//! the cluster's pages by classification (P/S × NW/SW/MW) and the top-K
//! hottest pages by read-miss count.
//!
//! The walk is read-only over directory words and the heat counters, so it
//! is safe at any quiescent point (between phases, after a run) and costs
//! nothing until asked for. `examples/argoscope.rs` prints one after every
//! workload.

use crate::classification::{PageClass, WriterClass};
use crate::coherence::PageMode;
use crate::protocol::Dsm;
use mem::PageNum;
use rma::Transport;

/// Classification cell indices for [`Census::by_class`]:
/// `[page_class][writer_class]` with P=0/S=1 and NW=0/SW=1/MW=2.
pub const CLASS_NAMES: [&str; 2] = ["private", "shared"];
/// Writer-class axis labels (see [`CLASS_NAMES`]).
pub const WRITER_NAMES: [&str; 3] = ["nw", "sw", "mw"];

/// One hot page in the census's top-K list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotPage {
    pub page: PageNum,
    /// Read misses recorded against this page since the last reset.
    pub misses: u64,
    pub home: u16,
    pub class: PageClass,
    pub writers: WriterClass,
    /// Which protocol governs the page right now: fixed under the pure
    /// policies, per-page under the Pyxis hybrid.
    pub mode: PageMode,
}

/// Snapshot of directory-wide classification state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Census {
    pub total_pages: u64,
    /// Pages no node has ever registered an access to.
    pub untouched: u64,
    /// Touched pages by `[page_class][writer_class]` (see [`CLASS_NAMES`]).
    pub by_class: [[u64; 3]; 2],
    /// Touched pages by governing protocol: `[classify, lease]`. Pure
    /// policies land every touched page in one cell; Pyxis splits them.
    pub by_mode: [u64; 2],
    /// Total read misses across all pages.
    pub total_misses: u64,
    /// The `top_k` hottest pages, most-missed first.
    pub hottest: Vec<HotPage>,
}

impl Census {
    /// Touched pages (total minus untouched).
    pub fn touched(&self) -> u64 {
        self.total_pages - self.untouched
    }

    /// Multi-line text rendering: the P/S × NW/SW/MW matrix plus the
    /// hottest-pages table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "pages: {} total, {} touched, {} untouched, {} read misses\n",
            self.total_pages,
            self.touched(),
            self.untouched,
            self.total_misses
        ));
        out.push_str(&format!(
            "  mode: {} si/sd, {} lease\n",
            self.by_mode[0], self.by_mode[1]
        ));
        out.push_str("  class       nw         sw         mw\n");
        for (pi, row) in self.by_class.iter().enumerate() {
            out.push_str(&format!(
                "  {:<9} {:>8}   {:>8}   {:>8}\n",
                CLASS_NAMES[pi], row[0], row[1], row[2]
            ));
        }
        if !self.hottest.is_empty() {
            out.push_str("  hottest pages:\n");
            for hp in &self.hottest {
                out.push_str(&format!(
                    "    p{:<8} misses={:<8} home=n{:<3} {}/{} mode={}\n",
                    hp.page.0,
                    hp.misses,
                    hp.home,
                    CLASS_NAMES[class_idx(hp.class)],
                    WRITER_NAMES[writer_idx(hp.writers)],
                    hp.mode.name()
                ));
            }
        }
        out
    }
}

fn class_idx(c: PageClass) -> usize {
    match c {
        PageClass::Private => 0,
        PageClass::Shared => 1,
    }
}

fn writer_idx(w: WriterClass) -> usize {
    match w {
        WriterClass::None => 0,
        WriterClass::Single(_) => 1,
        WriterClass::Multiple => 2,
    }
}

fn mode_idx(m: PageMode) -> usize {
    match m {
        PageMode::Classify => 0,
        PageMode::Lease => 1,
    }
}

impl<T: Transport, C: crate::coherence::Coherence> Dsm<T, C> {
    /// Walk the policy's accessor views and the heat counters into a
    /// [`Census`], listing the `top_k` hottest pages. Read-only; intended
    /// for quiescent points. Authoritative under SI/SD; under timestamp
    /// policies the views are diagnostic (see [`crate::coherence::Coherence::census_view`]).
    pub fn census(&self, top_k: usize) -> Census {
        let total_pages = self.total_pages();
        let mut by_class = [[0u64; 3]; 2];
        let mut by_mode = [0u64; 2];
        let mut untouched = 0u64;
        for q in 0..total_pages {
            let page = PageNum(q);
            let view = self.home_dir_view_of_page(page);
            if view.accessors() == 0 {
                untouched += 1;
                continue;
            }
            by_class[class_idx(view.page_class())][writer_idx(view.writer_class())] += 1;
            by_mode[mode_idx(self.page_mode_of(page))] += 1;
        }
        let heat = self.page_heat();
        let hottest = heat
            .top_k(top_k)
            .into_iter()
            .map(|(q, misses)| {
                let page = PageNum(q as u64);
                let view = self.home_dir_view_of_page(page);
                HotPage {
                    page,
                    misses,
                    home: self.home_of(mem::GlobalAddr(q as u64 * mem::PAGE_BYTES)),
                    class: view.page_class(),
                    writers: view.writer_class(),
                    mode: self.page_mode_of(page),
                }
            })
            .collect();
        Census {
            total_pages,
            untouched,
            by_class,
            by_mode,
            total_misses: heat.total(),
            hottest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CarinaConfig;
    use mem::{GlobalAddr, PAGE_BYTES};
    use rma::{ClusterTopology, CostModel, NodeId, SimTransport};

    #[test]
    fn census_counts_classes_and_heat() {
        let topo = ClusterTopology::tiny(2);
        let net = SimTransport::new(topo, CostModel::paper_2011());
        let dsm = Dsm::new(net.clone(), 1 << 20, CarinaConfig::default());
        let mut a = <SimTransport as Transport>::endpoint(&net, topo.loc(NodeId(0), 0));
        let mut b = <SimTransport as Transport>::endpoint(&net, topo.loc(NodeId(1), 0));

        // Page homed on node 1: node 0 reads (P), then node 1 writes its
        // own home page (still one accessor each).
        let shared = GlobalAddr(dsm.total_bytes() / 2 + 3 * PAGE_BYTES);
        dsm.write_u64(&mut b, shared, 1); // home write: private to n1
        dsm.sd_fence(&mut b);
        dsm.si_fence(&mut a);
        dsm.read_u64(&mut a, shared); // n0 joins: P->S
        // A page only n0 ever reads stays private/NW.
        let private = GlobalAddr(dsm.total_bytes() / 2 + 9 * PAGE_BYTES);
        dsm.read_u64(&mut a, private);

        let census = dsm.census(4);
        assert_eq!(census.total_pages, dsm.total_bytes() / PAGE_BYTES);
        assert!(census.untouched > 0);
        assert_eq!(census.touched(), census.by_class.iter().flatten().sum::<u64>());
        // shared page: S/SW (one writer, two accessors).
        assert_eq!(census.by_class[1][1], 1);
        // private read-only page: P/NW.
        assert!(census.by_class[0][0] >= 1);
        assert!(census.total_misses >= 2);
        assert!(!census.hottest.is_empty());
        assert!(census.hottest[0].misses >= census.hottest.last().unwrap().misses);
        let text = census.render();
        assert!(text.contains("hottest pages"));
        assert!(text.contains("private"));
    }
}
