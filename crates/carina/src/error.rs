//! [`DsmError`]: what the DSM reports when the fabric stays broken.
//!
//! Transient verb failures are absorbed by the retry machinery and are
//! invisible to programs (beyond virtual time and the `verb_retries`
//! counter). Only an *exhausted* retry budget surfaces, as a `DsmError`
//! from the `try_*` flavor of whichever public operation was underway; the
//! panicking flavors translate it into an abort with the same message.

use rma::{RetryExhausted, SpanId, VerbClass, VerbError};
use std::fmt;

/// A remote verb kept failing until its retry budget ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsmError {
    /// Which protocol verb class gave up.
    pub class: VerbClass,
    /// Verb issues attempted (the class budget).
    pub attempts: u32,
    /// The failure observed on the final attempt.
    pub last_error: VerbError,
    /// Node that was issuing the verb.
    pub node: u16,
    /// Node the verb targeted.
    pub target: u16,
    /// The Lyra span the failing verb ran under ([`SpanId::NONE`] when the
    /// failure happened outside a traced verb). Volans failover records its
    /// epoch bump under this span, so the trace draws a flow arrow from the
    /// exhausted verb to the membership change it triggered.
    pub span: SpanId,
}

impl DsmError {
    pub(crate) fn new(e: RetryExhausted, node: u16, target: u16) -> Self {
        DsmError {
            class: e.class,
            attempts: e.attempts,
            last_error: e.last_error,
            node,
            target,
            span: SpanId::NONE,
        }
    }

    pub(crate) fn with_span(mut self, span: SpanId) -> Self {
        self.span = span;
        self
    }
}

impl fmt::Display for DsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} verb from n{} to n{} failed after {} attempts (last error: {})",
            self.class, self.node, self.target, self.attempts, self.last_error
        )
    }
}

impl std::error::Error for DsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_route_and_class() {
        let e = DsmError {
            class: VerbClass::PageFetch,
            attempts: 10,
            last_error: VerbError::NicStall,
            node: 2,
            target: 0,
            span: SpanId::NONE,
        };
        let s = e.to_string();
        assert!(s.contains("page_fetch"));
        assert!(s.contains("n2"));
        assert!(s.contains("n0"));
        assert!(s.contains("10 attempts"));
        assert!(s.contains("nic_stall"));
    }
}
