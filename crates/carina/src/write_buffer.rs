//! The per-node FIFO write buffer (paper §3.6.1).
//!
//! Downgrading only at synchronization points would make SD fences flush an
//! unbounded pile of dirty pages at once. Instead, dirty pages enter a FIFO
//! of configurable capacity that "drains slowly": each push beyond capacity
//! downgrades the *oldest* dirty page, bounding both steady-state write
//! traffic and the worst-case fence latency. This is the knob swept by
//! Figures 9 and 10.
//!
//! Removal must be O(1): evictions and SI fences pull pages out of the
//! middle of the queue on the access fast path. The FIFO therefore pairs an
//! append-only deque of `(page, sequence)` tickets with a page→sequence
//! membership map; `remove` just deletes the map entry, and stale tickets
//! (whose sequence no longer matches the map) are lazily discarded when the
//! deque head is consumed. Victim order is bit-for-bit what a plain deque
//! with mid-queue deletion would produce.

use mem::PageNum;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};

#[derive(Debug, Default)]
struct Fifo {
    /// Insertion tickets, oldest first. May contain stale entries for
    /// removed pages; `live` is authoritative.
    queue: VecDeque<(PageNum, u64)>,
    /// Buffered pages → the ticket that represents them.
    live: HashMap<u64, u64>,
    next_ticket: u64,
}

impl Fifo {
    /// Drop stale head tickets, then pop the oldest live page.
    fn pop_oldest(&mut self) -> Option<PageNum> {
        while let Some(&(page, ticket)) = self.queue.front() {
            self.queue.pop_front();
            if self.live.get(&page.0) == Some(&ticket) {
                self.live.remove(&page.0);
                return Some(page);
            }
        }
        None
    }
}

/// FIFO of dirty pages awaiting downgrade.
#[derive(Debug)]
pub struct WriteBuffer {
    inner: Mutex<Fifo>,
    capacity: usize,
}

impl WriteBuffer {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "write buffer needs capacity >= 1");
        WriteBuffer {
            inner: Mutex::new(Fifo::default()),
            capacity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record that `page` became dirty. Returns the overflow victim (the
    /// oldest entry) if the buffer exceeded capacity — the caller must
    /// downgrade it. Pages are only pushed on a clean→dirty transition, so
    /// entries are unique.
    #[must_use]
    pub fn push(&self, page: PageNum) -> Option<PageNum> {
        let mut q = self.inner.lock();
        let ticket = q.next_ticket;
        q.next_ticket += 1;
        q.queue.push_back((page, ticket));
        q.live.insert(page.0, ticket);
        // Keep stale tickets from accumulating across push/remove churn:
        // compact when they outnumber live entries (amortized O(1)).
        if q.queue.len() > 2 * q.live.len() + 16 {
            let Fifo { queue, live, .. } = &mut *q;
            queue.retain(|(page, ticket)| live.get(&page.0) == Some(ticket));
        }
        if q.live.len() > self.capacity {
            q.pop_oldest()
        } else {
            None
        }
    }

    /// Remove a specific page (it was downgraded or invalidated out of
    /// band, e.g. by an eviction). O(1). Returns true if it was present.
    pub fn remove(&self, page: PageNum) -> bool {
        self.inner.lock().live.remove(&page.0).is_some()
    }

    /// Take everything, oldest first (SD-fence drain).
    pub fn drain(&self) -> Vec<PageNum> {
        let mut q = self.inner.lock();
        let q = &mut *q;
        let out = q
            .queue
            .drain(..)
            .filter(|(page, ticket)| q.live.get(&page.0) == Some(ticket))
            .map(|(page, _)| page)
            .collect();
        q.live.clear();
        q.next_ticket = 0;
        out
    }

    /// The buffered pages, oldest first, without consuming them (invariant
    /// checking).
    pub fn snapshot(&self) -> Vec<PageNum> {
        let q = self.inner.lock();
        q.queue
            .iter()
            .filter(|(page, ticket)| q.live.get(&page.0) == Some(ticket))
            .map(|(page, _)| *page)
            .collect()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().live.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().live.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_overflow_returns_oldest() {
        let wb = WriteBuffer::new(2);
        assert_eq!(wb.push(PageNum(1)), None);
        assert_eq!(wb.push(PageNum(2)), None);
        assert_eq!(wb.push(PageNum(3)), Some(PageNum(1)));
        assert_eq!(wb.len(), 2);
    }

    #[test]
    fn drain_is_oldest_first_and_empties() {
        let wb = WriteBuffer::new(8);
        for p in [5, 6, 7] {
            let _ = wb.push(PageNum(p));
        }
        assert_eq!(wb.drain(), vec![PageNum(5), PageNum(6), PageNum(7)]);
        assert!(wb.is_empty());
    }

    #[test]
    fn remove_deletes_mid_queue() {
        let wb = WriteBuffer::new(8);
        for p in [1, 2, 3] {
            let _ = wb.push(PageNum(p));
        }
        assert!(wb.remove(PageNum(2)));
        assert!(!wb.remove(PageNum(2)));
        assert_eq!(wb.drain(), vec![PageNum(1), PageNum(3)]);
    }

    #[test]
    fn removed_pages_do_not_count_toward_overflow() {
        let wb = WriteBuffer::new(2);
        let _ = wb.push(PageNum(1));
        let _ = wb.push(PageNum(2));
        assert!(wb.remove(PageNum(1)));
        // Only page 2 is live: pushing two more overflows once, victim 2.
        assert_eq!(wb.push(PageNum(3)), None);
        assert_eq!(wb.push(PageNum(4)), Some(PageNum(2)));
        assert_eq!(wb.snapshot(), vec![PageNum(3), PageNum(4)]);
    }

    #[test]
    fn repushed_page_takes_queue_position_of_newest_ticket() {
        // Remove then re-push: the page's FIFO position is its newest push,
        // exactly as a deque with mid-queue deletion would behave.
        let wb = WriteBuffer::new(8);
        for p in [1, 2, 3] {
            let _ = wb.push(PageNum(p));
        }
        assert!(wb.remove(PageNum(1)));
        let _ = wb.push(PageNum(1));
        assert_eq!(wb.drain(), vec![PageNum(2), PageNum(3), PageNum(1)]);
    }

    #[test]
    fn snapshot_is_nondestructive() {
        let wb = WriteBuffer::new(4);
        for p in [9, 4] {
            let _ = wb.push(PageNum(p));
        }
        assert_eq!(wb.snapshot(), vec![PageNum(9), PageNum(4)]);
        assert_eq!(wb.len(), 2);
        assert_eq!(wb.drain(), vec![PageNum(9), PageNum(4)]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        WriteBuffer::new(0);
    }
}
