//! The per-node FIFO write buffer (paper §3.6.1).
//!
//! Downgrading only at synchronization points would make SD fences flush an
//! unbounded pile of dirty pages at once. Instead, dirty pages enter a FIFO
//! of configurable capacity that "drains slowly": each push beyond capacity
//! downgrades the *oldest* dirty page, bounding both steady-state write
//! traffic and the worst-case fence latency. This is the knob swept by
//! Figures 9 and 10.

use mem::PageNum;
use parking_lot::Mutex;
use std::collections::VecDeque;

/// FIFO of dirty pages awaiting downgrade.
#[derive(Debug)]
pub struct WriteBuffer {
    inner: Mutex<VecDeque<PageNum>>,
    capacity: usize,
}

impl WriteBuffer {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "write buffer needs capacity >= 1");
        WriteBuffer {
            inner: Mutex::new(VecDeque::with_capacity(capacity.min(1 << 16))),
            capacity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record that `page` became dirty. Returns the overflow victim (the
    /// oldest entry) if the buffer exceeded capacity — the caller must
    /// downgrade it. Pages are only pushed on a clean→dirty transition, so
    /// entries are unique.
    #[must_use]
    pub fn push(&self, page: PageNum) -> Option<PageNum> {
        let mut q = self.inner.lock();
        q.push_back(page);
        if q.len() > self.capacity {
            q.pop_front()
        } else {
            None
        }
    }

    /// Remove a specific page (it was downgraded or invalidated out of
    /// band, e.g. by an eviction). Returns true if it was present.
    pub fn remove(&self, page: PageNum) -> bool {
        let mut q = self.inner.lock();
        if let Some(pos) = q.iter().position(|&p| p == page) {
            q.remove(pos);
            true
        } else {
            false
        }
    }

    /// Take everything, oldest first (SD-fence drain).
    pub fn drain(&self) -> Vec<PageNum> {
        self.inner.lock().drain(..).collect()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_overflow_returns_oldest() {
        let wb = WriteBuffer::new(2);
        assert_eq!(wb.push(PageNum(1)), None);
        assert_eq!(wb.push(PageNum(2)), None);
        assert_eq!(wb.push(PageNum(3)), Some(PageNum(1)));
        assert_eq!(wb.len(), 2);
    }

    #[test]
    fn drain_is_oldest_first_and_empties() {
        let wb = WriteBuffer::new(8);
        for p in [5, 6, 7] {
            let _ = wb.push(PageNum(p));
        }
        assert_eq!(wb.drain(), vec![PageNum(5), PageNum(6), PageNum(7)]);
        assert!(wb.is_empty());
    }

    #[test]
    fn remove_deletes_mid_queue() {
        let wb = WriteBuffer::new(8);
        for p in [1, 2, 3] {
            let _ = wb.push(PageNum(p));
        }
        assert!(wb.remove(PageNum(2)));
        assert!(!wb.remove(PageNum(2)));
        assert_eq!(wb.drain(), vec![PageNum(1), PageNum(3)]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        WriteBuffer::new(0);
    }
}
