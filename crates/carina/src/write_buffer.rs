//! The per-node FIFO write buffer (paper §3.6.1).
//!
//! Downgrading only at synchronization points would make SD fences flush an
//! unbounded pile of dirty pages at once. Instead, dirty pages enter a FIFO
//! of configurable capacity that "drains slowly": each push beyond capacity
//! downgrades the *oldest* dirty page, bounding both steady-state write
//! traffic and the worst-case fence latency. This is the knob swept by
//! Figures 9 and 10.
//!
//! Removal must be O(1): evictions and SI fences pull pages out of the
//! middle of the queue on the access fast path. Each shard therefore pairs
//! an append-only deque of `(page, ticket)` entries with a page→ticket
//! membership map; `remove` just deletes the map entry, and stale tickets
//! (whose ticket no longer matches the map) are lazily discarded when a
//! deque head is consumed.
//!
//! **Sharding.** Every clean→dirty store on a node funnels through this
//! structure, so one global mutex is the protocol's worst host-side
//! serialization point. The buffer is striped by page number across
//! independently locked shards; a process-wide atomic ticket counter stamps
//! each push. Tickets make global FIFO order recoverable at any merge
//! point: overflow pops the minimum live head ticket across shards, and
//! drains merge shard queues by ticket. On a single thread, tickets are
//! handed out in push order, so victim order is bit-for-bit what the old
//! single-queue buffer produced; concurrent pushers get some valid
//! interleaving of their stores, exactly as they would racing one mutex.

use mem::PageNum;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Default shard count: enough to spread a node's worker threads with
/// negligible memory cost.
pub const DEFAULT_SHARDS: usize = 8;

#[derive(Debug, Default)]
struct Fifo {
    /// Insertion tickets, oldest first. May contain stale entries for
    /// removed pages; `live` is authoritative.
    queue: VecDeque<(PageNum, u64)>,
    /// Buffered pages → the ticket that represents them.
    live: HashMap<u64, u64>,
}

impl Fifo {
    /// Drop stale entries from the head so `queue.front()` is live (or the
    /// queue is empty).
    fn prune_head(&mut self) {
        while let Some(&(page, ticket)) = self.queue.front() {
            if self.live.get(&page.0) == Some(&ticket) {
                return;
            }
            self.queue.pop_front();
        }
    }
}

/// FIFO of dirty pages awaiting downgrade, striped over independently
/// locked shards.
#[derive(Debug)]
pub struct WriteBuffer {
    shards: Box<[Mutex<Fifo>]>,
    /// Process-wide push stamp; defines the global FIFO order that shard
    /// merges reconstruct.
    next_ticket: AtomicU64,
    /// Live pages across all shards (the overflow trigger).
    live_count: AtomicUsize,
    capacity: usize,
}

impl WriteBuffer {
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_SHARDS)
    }

    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "write buffer needs capacity >= 1");
        assert!(shards > 0, "write buffer needs shards >= 1");
        WriteBuffer {
            shards: (0..shards).map(|_| Mutex::new(Fifo::default())).collect(),
            next_ticket: AtomicU64::new(0),
            live_count: AtomicUsize::new(0),
            capacity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    fn shard_of(&self, page: PageNum) -> &Mutex<Fifo> {
        &self.shards[(page.0 % self.shards.len() as u64) as usize]
    }

    /// Record that `page` became dirty. Returns the overflow victim (the
    /// globally oldest entry) if the buffer exceeded capacity — the caller
    /// must downgrade it. Pages are only pushed on a clean→dirty
    /// transition, so entries are unique.
    #[must_use]
    pub fn push(&self, page: PageNum) -> Option<PageNum> {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        {
            let mut q = self.shard_of(page).lock();
            q.queue.push_back((page, ticket));
            if q.live.insert(page.0, ticket).is_none() {
                self.live_count.fetch_add(1, Ordering::Relaxed);
            }
            // Keep stale tickets from accumulating across push/remove churn:
            // compact when they outnumber live entries (amortized O(1)).
            if q.queue.len() > 2 * q.live.len() + 16 {
                let Fifo { queue, live } = &mut *q;
                queue.retain(|(page, ticket)| live.get(&page.0) == Some(ticket));
            }
        }
        if self.live_count.load(Ordering::Relaxed) > self.capacity {
            self.pop_oldest()
        } else {
            None
        }
    }

    /// Pop the live entry with the globally smallest ticket. Locks every
    /// shard (in index order — the only multi-shard lock pattern, so there
    /// is no deadlock) — overflow is the rare path by construction.
    fn pop_oldest(&self) -> Option<PageNum> {
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        let mut best: Option<(usize, u64)> = None;
        for (i, g) in guards.iter_mut().enumerate() {
            g.prune_head();
            if let Some(&(_, ticket)) = g.queue.front() {
                if best.is_none_or(|(_, t)| ticket < t) {
                    best = Some((i, ticket));
                }
            }
        }
        let (i, _) = best?;
        let g = &mut guards[i];
        let (page, _) = g.queue.pop_front().expect("pruned head is live");
        g.live.remove(&page.0);
        self.live_count.fetch_sub(1, Ordering::Relaxed);
        Some(page)
    }

    /// Remove a specific page (it was downgraded or invalidated out of
    /// band, e.g. by an eviction). O(1), touches one shard. Returns true if
    /// it was present.
    pub fn remove(&self, page: PageNum) -> bool {
        let removed = self.shard_of(page).lock().live.remove(&page.0).is_some();
        if removed {
            self.live_count.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    /// Take everything, globally oldest first (SD-fence drain): shard
    /// queues are emptied under all shard locks and merged by ticket.
    pub fn drain(&self) -> Vec<PageNum> {
        // Fences on clean nodes are the common case: don't touch any shard
        // lock for an empty buffer. A racing push that misses this check
        // merely waits for its own fence, same as racing the old mutex.
        if self.live_count.load(Ordering::Relaxed) == 0 {
            return Vec::new();
        }
        let mut guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        let mut entries = Vec::new();
        for g in guards.iter_mut() {
            let Fifo { queue, live } = &mut **g;
            entries.extend(
                queue
                    .drain(..)
                    .filter(|(page, ticket)| live.get(&page.0) == Some(ticket)),
            );
            live.clear();
        }
        self.live_count.fetch_sub(entries.len(), Ordering::Relaxed);
        entries.sort_unstable_by_key(|&(_, ticket)| ticket);
        entries.into_iter().map(|(page, _)| page).collect()
    }

    /// The buffered pages, globally oldest first, without consuming them
    /// (invariant checking).
    pub fn snapshot(&self) -> Vec<PageNum> {
        let guards: Vec<_> = self.shards.iter().map(|s| s.lock()).collect();
        let mut entries = Vec::new();
        for g in guards.iter() {
            entries.extend(
                g.queue
                    .iter()
                    .filter(|(page, ticket)| g.live.get(&page.0) == Some(ticket))
                    .copied(),
            );
        }
        entries.sort_unstable_by_key(|&(_, ticket)| ticket);
        entries.into_iter().map(|(page, _)| page).collect()
    }

    pub fn len(&self) -> usize {
        self.live_count.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_overflow_returns_oldest() {
        let wb = WriteBuffer::new(2);
        assert_eq!(wb.push(PageNum(1)), None);
        assert_eq!(wb.push(PageNum(2)), None);
        assert_eq!(wb.push(PageNum(3)), Some(PageNum(1)));
        assert_eq!(wb.len(), 2);
    }

    #[test]
    fn drain_is_oldest_first_and_empties() {
        let wb = WriteBuffer::new(8);
        for p in [5, 6, 7] {
            let _ = wb.push(PageNum(p));
        }
        assert_eq!(wb.drain(), vec![PageNum(5), PageNum(6), PageNum(7)]);
        assert!(wb.is_empty());
    }

    #[test]
    fn remove_deletes_mid_queue() {
        let wb = WriteBuffer::new(8);
        for p in [1, 2, 3] {
            let _ = wb.push(PageNum(p));
        }
        assert!(wb.remove(PageNum(2)));
        assert!(!wb.remove(PageNum(2)));
        assert_eq!(wb.drain(), vec![PageNum(1), PageNum(3)]);
    }

    #[test]
    fn removed_pages_do_not_count_toward_overflow() {
        let wb = WriteBuffer::new(2);
        let _ = wb.push(PageNum(1));
        let _ = wb.push(PageNum(2));
        assert!(wb.remove(PageNum(1)));
        // Only page 2 is live: pushing two more overflows once, victim 2.
        assert_eq!(wb.push(PageNum(3)), None);
        assert_eq!(wb.push(PageNum(4)), Some(PageNum(2)));
        assert_eq!(wb.snapshot(), vec![PageNum(3), PageNum(4)]);
    }

    #[test]
    fn repushed_page_takes_queue_position_of_newest_ticket() {
        // Remove then re-push: the page's FIFO position is its newest push,
        // exactly as a deque with mid-queue deletion would behave.
        let wb = WriteBuffer::new(8);
        for p in [1, 2, 3] {
            let _ = wb.push(PageNum(p));
        }
        assert!(wb.remove(PageNum(1)));
        let _ = wb.push(PageNum(1));
        assert_eq!(wb.drain(), vec![PageNum(2), PageNum(3), PageNum(1)]);
    }

    #[test]
    fn snapshot_is_nondestructive() {
        let wb = WriteBuffer::new(4);
        for p in [9, 4] {
            let _ = wb.push(PageNum(p));
        }
        assert_eq!(wb.snapshot(), vec![PageNum(9), PageNum(4)]);
        assert_eq!(wb.len(), 2);
        assert_eq!(wb.drain(), vec![PageNum(9), PageNum(4)]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        WriteBuffer::new(0);
    }

    #[test]
    #[should_panic(expected = "shards")]
    fn zero_shards_rejected() {
        WriteBuffer::with_shards(4, 0);
    }

    #[test]
    fn order_is_global_fifo_across_shards() {
        // Consecutive page numbers land in different shards; tickets must
        // still reconstruct exact push order at every observation point.
        for shards in [1, 2, 3, 8] {
            let wb = WriteBuffer::with_shards(64, shards);
            let pages: Vec<u64> = (0..32).map(|i| (i * 7) % 64).collect();
            for &p in &pages {
                let _ = wb.push(PageNum(p));
            }
            let want: Vec<PageNum> = pages.iter().map(|&p| PageNum(p)).collect();
            assert_eq!(wb.snapshot(), want, "shards={shards}");
            assert_eq!(wb.drain(), want, "shards={shards}");
        }
    }

    #[test]
    fn overflow_victims_follow_global_order_across_shards() {
        let wb = WriteBuffer::with_shards(3, 2);
        for p in [10, 11, 12] {
            assert_eq!(wb.push(PageNum(p)), None);
        }
        assert_eq!(wb.push(PageNum(13)), Some(PageNum(10)));
        assert_eq!(wb.push(PageNum(14)), Some(PageNum(11)));
        assert_eq!(wb.snapshot(), vec![PageNum(12), PageNum(13), PageNum(14)]);
    }
}
