//! The Carina protocol engine.
//!
//! [`Dsm`] ties together the global memory, a pluggable [`Coherence`]
//! policy, page caches and write buffers, and implements the access path of
//! the paper's §3:
//!
//! - **Read miss** (§3.3): fetch a whole cache line of pages from their
//!   homes, depositing our registration in each page's directory entry with
//!   a remote fetch-or. What the registration *means* — reader full-map
//!   bits and P→S detection under [`CarinaSiSd`], a timestamp lease under
//!   [`crate::coherence::Tardis`] — is the policy's decision; the engine
//!   posts whatever notification or fetch verbs the policy's
//!   [`RegisterOutcome`] asks for (no handler runs anywhere).
//! - **Write fault** (§3.5): first write to a page registers us as a
//!   writer; the policy classifies the fault (possibly asking the engine to
//!   notify sharers) and decides twin and buffering via
//!   [`crate::coherence::WriteDisposition`]; the page enters the FIFO write
//!   buffer (§3.6.1) whose overflow downgrades the oldest dirty page.
//! - **SI fence** (§3.1): sweep the page cache and invalidate exactly the
//!   pages the policy's predicate names (Table 1 under SI/SD; expired
//!   leases under Tardis).
//! - **SD fence** (§3.1): drain the write buffer, diffing dirty pages
//!   against their twins and posting the result to their homes; wait for
//!   all posted writes to settle, then give the policy its release hook.
//!
//! The split is mechanism vs decision: the engine owns transport verbs,
//! retry/fault plumbing, issue/poll overlap, prefetching, and the write
//! buffer; the policy owns every *what-to-do* question. Both axes dispatch
//! statically: `Dsm<T, C>` defaults to `SimTransport` + `CarinaSiSd`.
//!
//! Pages whose home is the accessing node are read and written directly in
//! home memory (they are local); they still register with the policy so
//! remote sharers classify them correctly.

use crate::coherence::{CarinaSiSd, Coherence, RegisterOutcome};
use crate::classification::DirView;
use crate::config::{BatchDrain, CarinaConfig};
use crate::error::DsmError;
use crate::stats::CoherenceStats;
use crate::write_buffer::WriteBuffer;
use mem::{
    GlobalAddr, GlobalAllocator, GlobalMemory, PageCache, PageData, PageNum, SlotGuard,
    CHUNK_WORDS, PAGE_BYTES,
};
use rma::{
    rendezvous_home, Attempt, AttemptSeq, Completion, Endpoint, Membership, Retried,
    RetryExhausted, SimTransport, Transport, VerbClass, VerbError, VerbToken,
};

/// An issued-but-unpolled verb: its token, the resumable remainder of the
/// retry schedule, and the schedule entry that issued it.
type IssuedVerb = (VerbToken, AttemptSeq, Attempt);
use simnet::NodeId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Wire overhead of a downgrade message header (address + length).
const DOWNGRADE_HEADER_BYTES: u64 = 32;
/// Wire bytes per diffed word (8 data + 2 index).
const DIFF_WORD_BYTES: u64 = 10;
/// Wire footprint of a directory-cache notification (one entry).
const NOTIFY_BYTES: u64 = 32;
/// Per-word compute charge of bulk (streaming) slice access.
const STREAM_WORD_CYCLES: u64 = 1;

/// One core's stride predictor: the last line it missed on, the stride of
/// that miss relative to the one before, and how many consecutive misses
/// have repeated the stride.
#[derive(Debug, Default, Clone, Copy)]
struct StridePredictor {
    last_line: u64,
    stride: i64,
    streak: u32,
    /// False until the core's first miss seeds `last_line`.
    primed: bool,
}

/// A speculatively fetched line parked outside the page cache until a
/// demand miss claims it.
#[derive(Debug)]
struct PrefetchedLine {
    line: u64,
    /// Virtual time the speculative reads complete. Never merged into the
    /// *issuing* thread's clock — only a consuming demand miss pays it.
    ready_at: u64,
    /// Remote pages of the line with their home contents as snapshotted at
    /// prefetch time.
    pages: Vec<(PageNum, PageData)>,
}

/// Per-node speculation state: per-core stride predictors plus the ring of
/// prefetched lines. Lives entirely outside the page cache (and therefore
/// outside every coherence invariant); SI fences, section resets, and
/// classification decays flush it, which is what makes consuming a stale
/// snapshot sound under the DSM's acquire semantics.
#[derive(Debug, Default)]
struct Prefetcher {
    cores: Vec<StridePredictor>,
    ring: VecDeque<PrefetchedLine>,
}

/// Per-node engine state (registration fast paths live in the policy).
#[derive(Debug)]
struct NodeState {
    cache: PageCache,
    wbuf: WriteBuffer,
    /// Max settle time of writes this node has posted but not yet fenced.
    pending_settle: AtomicU64,
    /// Stride-prefetch state (inert unless `CarinaConfig::prefetch_lines`
    /// is nonzero).
    prefetch: Mutex<Prefetcher>,
}

/// The distributed shared memory: data plane plus a pluggable coherence
/// protocol.
///
/// Generic over the RMA [`Transport`] backend and the [`Coherence`] policy;
/// defaults to the virtual-time [`SimTransport`] running the paper's
/// [`CarinaSiSd`]. All dispatch is static — instantiating with
/// `rma::NativeTransport` runs the identical protocol at wall-clock speed,
/// and instantiating with [`crate::coherence::Tardis`] runs timestamp
/// leases on the identical engine.
///
/// ```
/// use carina::{CarinaConfig, Dsm};
/// use mem::{GlobalAddr, PAGE_BYTES};
/// use rma::{ClusterTopology, CostModel, NodeId, SimTransport, Transport};
///
/// let topo = ClusterTopology::tiny(2);
/// let net = SimTransport::new(topo, CostModel::paper_2011());
/// let dsm = Dsm::new(net.clone(), 1 << 20, CarinaConfig::default());
/// let mut producer = SimTransport::endpoint(&net, topo.loc(NodeId(0), 0));
/// let mut consumer = SimTransport::endpoint(&net, topo.loc(NodeId(1), 0));
///
/// let addr = GlobalAddr(3 * PAGE_BYTES);
/// dsm.write_u64(&mut producer, addr, 7);
/// dsm.sd_fence(&mut producer); // release
/// dsm.si_fence(&mut consumer); // acquire
/// assert_eq!(dsm.read_u64(&mut consumer, addr), 7);
/// ```
#[derive(Debug)]
pub struct Dsm<T: Transport = SimTransport, C: Coherence = CarinaSiSd> {
    global: GlobalMemory,
    coherence: C,
    allocator: GlobalAllocator,
    net: Arc<T>,
    config: CarinaConfig,
    stats: CoherenceStats,
    tracer: crate::trace::Tracer,
    /// Latency histograms for the protocol slow paths (always on; recording
    /// is two relaxed adds and the hit paths never touch it).
    profile: obs::LatencyProfile,
    /// Per-lock HQDL statistics; Vela locks register themselves here.
    lock_obs: obs::LockRegistry,
    /// Per-page read-miss counters feeding [`Dsm::census`]'s hottest-pages
    /// report.
    heat: obs::PageHeat,
    /// The Lyra flight recorder: per-node rings of the last N verb records,
    /// the span minter, and tail captures. Always on; purely passive (it
    /// reads the observability clock and writes side tables nothing on the
    /// protocol path reads back), so determinism probes pin bit-identical
    /// output with it enabled. `Arc` because fault-injecting transports
    /// share it to attribute injected fates to spans.
    lyra: Arc<obs::FlightRecorder>,
    /// Volans: the cluster membership view — epoch, alive set, per-node
    /// observations. Epoch 0 means no membership change has ever happened;
    /// every verb-path check is gated on that one relaxed load, so a
    /// cluster that never loses a node pays nothing.
    membership: Membership,
    /// Serializes membership transitions (failover sweeps, joins). Never
    /// touched on access paths.
    transition: Mutex<()>,
    nodes: Vec<NodeState>,
}

impl<T: Transport> Dsm<T> {
    /// Build a DSM over `net`'s topology with `bytes_per_node` of global
    /// memory contributed by each node, running the paper's SI/SD protocol.
    pub fn new(net: Arc<T>, bytes_per_node: u64, config: CarinaConfig) -> Arc<Self> {
        Dsm::with_policy(net, bytes_per_node, config)
    }
}

impl<T: Transport, C: Coherence> Dsm<T, C> {
    /// Build a DSM over `net`'s topology with `bytes_per_node` of global
    /// memory contributed by each node, running coherence policy `C`.
    pub fn with_policy(net: Arc<T>, bytes_per_node: u64, config: CarinaConfig) -> Arc<Self> {
        let n = net.topology().nodes;
        assert!(n <= 128, "directory metadata supports up to 128 nodes");
        let global = GlobalMemory::with_policy(n, bytes_per_node, config.home_policy);
        let total_pages = global.total_pages();
        let lyra = Arc::new(obs::FlightRecorder::new(n, config.lyra_ring));
        // Fault-injecting transports record the fates they decide against
        // the issuing endpoint's span; concrete backends ignore this.
        net.attach_recorder(lyra.clone());
        let membership = Membership::new(n);
        let latent = config.volans_latent_nodes.min(n.saturating_sub(1));
        if latent > 0 {
            // Latent nodes stand outside the initial membership: their
            // interleaved home pages are re-homed to the founding members
            // up front — a static homing decision like `alloc_blocked`, so
            // the epoch stays 0 — and `Dsm::join_node` brings them in
            // later at an epoch bump.
            let first_latent = (n - latent) as u16;
            for node in first_latent..n as u16 {
                membership.mark_dead(node);
            }
            let founders: Vec<u16> = (0..first_latent).collect();
            for q in 0..total_pages {
                let page = PageNum(q);
                if global.home_of(page) >= first_latent {
                    global.set_home(page, rendezvous_home(q, &founders));
                }
            }
        }
        Arc::new(Dsm {
            coherence: C::new(n, total_pages, &config),
            allocator: GlobalAllocator::new(global.total_bytes()),
            global,
            net,
            config,
            stats: CoherenceStats::new(n),
            tracer: crate::trace::Tracer::new(4096),
            profile: obs::LatencyProfile::new(n),
            lock_obs: obs::LockRegistry::new(),
            heat: obs::PageHeat::new(total_pages as usize),
            lyra,
            membership,
            transition: Mutex::new(()),
            nodes: (0..n)
                .map(|_| NodeState {
                    cache: PageCache::new(config.cache),
                    wbuf: WriteBuffer::with_shards(
                        config.write_buffer_pages,
                        config.write_buffer_shards,
                    ),
                    pending_settle: AtomicU64::new(0),
                    prefetch: Mutex::new(Prefetcher::default()),
                })
                .collect(),
        })
    }

    /// The coherence policy's short name (report labels, bench ids).
    #[inline]
    pub fn policy_name(&self) -> &'static str {
        C::NAME
    }

    /// The coherence policy instance (tests and policy-specific probes).
    #[inline]
    pub fn coherence(&self) -> &C {
        &self.coherence
    }

    #[inline]
    pub fn config(&self) -> &CarinaConfig {
        &self.config
    }

    #[inline]
    pub fn net(&self) -> &Arc<T> {
        &self.net
    }

    #[inline]
    pub fn stats(&self) -> &CoherenceStats {
        &self.stats
    }

    /// The protocol event tracer (disabled by default; see
    /// [`crate::trace::Tracer::set_enabled`]).
    #[inline]
    pub fn tracer(&self) -> &crate::trace::Tracer {
        &self.tracer
    }

    /// The protocol's latency histograms (read-miss service, faults,
    /// fences; locks and barriers record into it from Vela).
    #[inline]
    pub fn profile(&self) -> &obs::LatencyProfile {
        &self.profile
    }

    /// Registry of per-lock HQDL statistics. Vela locks register here at
    /// construction; run reports collect the snapshots.
    #[inline]
    pub fn lock_registry(&self) -> &obs::LockRegistry {
        &self.lock_obs
    }

    /// Per-page read-miss counters (the census's heat source).
    #[inline]
    pub fn page_heat(&self) -> &obs::PageHeat {
        &self.heat
    }

    /// The Lyra flight recorder: per-node verb-record rings, span minter,
    /// and tail captures (see [`obs::FlightRecorder`]).
    #[inline]
    pub fn lyra(&self) -> &obs::FlightRecorder {
        &self.lyra
    }

    /// A live metrics exposition: coherence counters, recorder/tracer
    /// health, and per-site latency summaries, pollable mid-run on either
    /// backend. Render with [`obs::MetricsSnapshot::to_prometheus`] or
    /// [`obs::MetricsSnapshot::to_json`].
    pub fn metrics_snapshot(&self) -> obs::MetricsSnapshot {
        let mut m = obs::MetricsSnapshot::default();
        let policy = [("policy", C::NAME)];
        let s = self.stats.snapshot();
        m.counter("carina_read_hits", &policy, s.read_hits);
        m.counter("carina_read_misses", &policy, s.read_misses);
        m.counter("carina_write_hits", &policy, s.write_hits);
        m.counter("carina_write_faults", &policy, s.write_faults);
        m.counter("carina_si_fences", &policy, s.si_fences);
        m.counter("carina_sd_fences", &policy, s.sd_fences);
        m.counter("carina_si_invalidated", &policy, s.si_invalidated);
        m.counter("carina_si_kept", &policy, s.si_kept);
        m.counter("carina_writebacks", &policy, s.writebacks);
        m.counter("carina_writeback_bytes", &policy, s.writeback_bytes);
        m.counter("carina_verb_retries", &policy, s.verb_retries);
        m.counter("carina_verb_exhaustions", &policy, s.verb_exhaustions);
        m.counter("carina_lease_expiries", &policy, s.lease_expiries);
        m.counter(
            "carina_mode_switches",
            &policy,
            s.mode_to_lease + s.mode_to_sisd,
        );
        m.counter("carina_failovers", &policy, s.failovers);
        m.counter("carina_pages_rehomed", &policy, s.pages_rehomed);
        m.counter("carina_shadow_mirrored", &policy, s.shadow_mirrored);
        m.gauge(
            "carina_membership_epoch",
            &[],
            self.membership.epoch() as f64,
        );
        m.gauge(
            "carina_nodes_alive",
            &[],
            self.membership.nodes_alive() as f64,
        );
        m.counter("carina_heat_total_misses", &[], self.heat.total());
        let rs = self.lyra.stats();
        m.counter("lyra_records_submitted", &[], rs.submitted);
        m.counter("lyra_records_dropped", &[], rs.dropped);
        m.counter("lyra_tail_captures", &[], rs.tail_captures);
        m.gauge("lyra_records_kept", &[], rs.kept as f64);
        m.gauge(
            "lyra_recorder_enabled",
            &[],
            if rs.enabled { 1.0 } else { 0.0 },
        );
        m.counter("carina_trace_events_dropped", &[], self.tracer.dropped());
        let prof = self.profile.snapshot();
        for site in obs::Site::ALL {
            let h = prof.get(site);
            if h.is_empty() {
                continue;
            }
            m.summary("carina_site_latency", &[("site", site.name())], h);
        }
        m
    }

    #[inline]
    pub fn allocator(&self) -> &GlobalAllocator {
        &self.allocator
    }

    #[inline]
    pub fn total_bytes(&self) -> u64 {
        self.global.total_bytes()
    }

    /// Total pages in the global address space.
    #[inline]
    pub fn total_pages(&self) -> u64 {
        self.global.total_pages()
    }

    /// Home node of the page containing `addr`.
    #[inline]
    pub fn home_of(&self, addr: GlobalAddr) -> u16 {
        self.global.home_of(addr.page())
    }

    /// Allocate page-aligned storage whose pages are **block-distributed**
    /// across the cluster: the allocation's page range is split into equal
    /// contiguous runs, one per node — so chunked access patterns touch
    /// mostly-local homes. This is the per-allocation distribution hint the
    /// paper leaves as future work (§3). Must be called before any access
    /// to the range.
    pub fn alloc_blocked(&self, bytes: u64) -> Result<GlobalAddr, mem::alloc::OutOfGlobalMemory> {
        let pages = bytes.div_ceil(PAGE_BYTES);
        let base = self.allocator.alloc(pages * PAGE_BYTES, PAGE_BYTES)?;
        let nodes = self.nodes.len() as u64;
        let first = base.page().0;
        let per = pages.div_ceil(nodes);
        for i in 0..pages {
            let node = (i / per).min(nodes - 1) as u16;
            self.global.set_home(PageNum(first + i), node);
        }
        Ok(base)
    }

    // ------------------------------------------------------------------
    // Retry bookkeeping
    // ------------------------------------------------------------------

    /// Fold a retry outcome into the stats, profile, and flight recorder,
    /// and translate an exhausted budget into a [`DsmError`] naming the
    /// route. Every remote verb site funnels through here; on a healthy
    /// fabric the zero-retry arm is the only one ever taken and records
    /// nothing. `span` attributes the retry records to the protocol site
    /// that issued the verb; `obs_at` is the caller's observability clock.
    #[inline]
    fn verb_retried<R>(
        &self,
        me: u16,
        target: u16,
        span: obs::SpanId,
        obs_at: u64,
        r: Result<Retried<R>, RetryExhausted>,
    ) -> Result<R, DsmError> {
        match r {
            Ok(Retried { value, retries: 0, .. }) => Ok(value),
            Ok(Retried { value, retries, delay }) => {
                CoherenceStats::add(&self.stats.shard(me).verb_retries, retries as u64);
                self.profile.record(me as usize, obs::Site::Retry, delay);
                self.lyra.record(me as usize, || obs::VerbRecord {
                    span,
                    start: obs_at,
                    arg: delay,
                    target: target as u32,
                    node: me,
                    attempt: retries as u16,
                    kind: obs::RecordKind::VerbRetry,
                    ..obs::VerbRecord::blank()
                });
                Ok(value)
            }
            Err(e) => {
                CoherenceStats::bump(&self.stats.shard(me).verb_exhaustions);
                CoherenceStats::add(
                    &self.stats.shard(me).verb_retries,
                    e.attempts.saturating_sub(1) as u64,
                );
                self.profile.record(me as usize, obs::Site::Retry, e.delay);
                self.lyra.record(me as usize, || obs::VerbRecord {
                    span,
                    start: obs_at,
                    arg: e.delay,
                    target: target as u32,
                    node: me,
                    attempt: e.attempts as u16,
                    kind: obs::RecordKind::VerbExhausted,
                    fate: obs::Fate::Exhausted,
                    class: e.class as u8,
                    ..obs::VerbRecord::blank()
                });
                Err(DsmError::new(e, me, target).with_span(span))
            }
        }
    }

    /// Drive an issued verb token to completion, reissuing along the
    /// schedule remainder when a failure surfaces at poll time, and fold
    /// the outcome into the usual retry bookkeeping. `reissue` posts a
    /// replacement given the cumulative backoff delay of the next attempt.
    /// Retrying at poll time walks exactly the schedule the blocking path
    /// would have walked — only the moment the failure is *observed* moves.
    ///
    /// Lyra: the issue→poll pair is flight-recorded under the span carried
    /// by the [`AttemptSeq`] — one `VerbIssue` slice spanning issue to
    /// completion (whose end marks the arrival on the target's track), one
    /// `VerbPoll` instant at completion, and one `VerbRetry` instant per
    /// reissue carrying the failed attempt's fate.
    #[allow(clippy::too_many_arguments)]
    fn poll_retried(
        &self,
        t: &mut T::Endpoint,
        me: u16,
        target: u16,
        issued: IssuedVerb,
        obs_issued: u64,
        class: VerbClass,
        bytes: u64,
        mut reissue: impl FnMut(&mut T::Endpoint, u64) -> VerbToken,
    ) -> Result<Completion, DsmError> {
        let (mut token, mut seq, mut attempt) = issued;
        let span = seq.span();
        loop {
            match t.wait(token) {
                Ok(c) => {
                    let now = t.obs_now();
                    self.lyra_record(t, me, || obs::VerbRecord {
                        span,
                        start: obs_issued,
                        dur: now.saturating_sub(obs_issued),
                        arg: bytes,
                        target: target as u32,
                        node: me,
                        attempt: attempt.index as u16,
                        kind: obs::RecordKind::VerbIssue,
                        class: class as u8,
                        ..obs::VerbRecord::blank()
                    });
                    self.lyra_record(t, me, || obs::VerbRecord {
                        span,
                        start: now,
                        arg: now.saturating_sub(obs_issued),
                        target: target as u32,
                        node: me,
                        attempt: attempt.index as u16,
                        kind: obs::RecordKind::VerbPoll,
                        class: class as u8,
                        ..obs::VerbRecord::blank()
                    });
                    // Stats/profile only: each reissue already produced its
                    // own `VerbRetry` flight record above, so funneling
                    // through `verb_retried` would double-record it.
                    if attempt.index > 0 {
                        CoherenceStats::add(
                            &self.stats.shard(me).verb_retries,
                            attempt.index as u64,
                        );
                        self.profile.record(me as usize, obs::Site::Retry, attempt.delay);
                    }
                    return Ok(c);
                }
                Err(e) => match seq.next() {
                    Some(a) => {
                        let now = t.obs_now();
                        self.lyra_record(t, me, || obs::VerbRecord {
                            span,
                            start: now,
                            arg: a.delay,
                            target: target as u32,
                            node: me,
                            attempt: a.index as u16,
                            kind: obs::RecordKind::VerbRetry,
                            fate: obs::Fate::from_error_name(e.name()),
                            class: class as u8,
                            ..obs::VerbRecord::blank()
                        });
                        attempt = a;
                        token = reissue(t, a.delay);
                    }
                    None => {
                        let now = t.obs_now();
                        return self.verb_retried(me, target, span, now, Err(seq.exhausted(e)));
                    }
                },
            }
        }
    }

    /// Issue one network-timeline verb with the full retry schedule and
    /// bookkeeping: `verb` posts the operation at the issue time it is
    /// given (`base` plus the attempt's cumulative backoff). Every
    /// fire-and-wait remote verb site — notifications, write-backs,
    /// directory atomics, checkpoint fetches — funnels its
    /// `RetryPolicy::run` + error-map boilerplate through here. `span` and
    /// `obs_at` feed the flight recorder (the blocking path records one
    /// aggregate `VerbRetry`/`VerbExhausted` entry, not one per attempt).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn net_verb(
        &self,
        me: u16,
        target: u16,
        class: VerbClass,
        salt: u64,
        base: u64,
        span: obs::SpanId,
        obs_at: u64,
        mut verb: impl FnMut(u64) -> Result<Completion, VerbError>,
    ) -> Result<Completion, DsmError> {
        self.check_alive(me, target, class, span)?;
        self.verb_retried(
            me,
            target,
            span,
            obs_at,
            self.config.retry.run(class, salt, |a| verb(base + a.delay)),
        )
    }

    /// Fold a posted write's completion into `me`'s clock and fence
    /// obligations: the initiator-done time advances the endpoint, the
    /// settle time joins the set the next SD fence must await.
    #[inline]
    fn settle_posted(&self, t: &mut T::Endpoint, me: u16, timing: &Completion) {
        t.merge(timing.initiator_done);
        self.nodes[me as usize]
            .pending_settle
            .fetch_max(timing.settled, Ordering::AcqRel);
    }

    /// Mint the span for a protocol operation starting on `t`: the
    /// endpoint's single-writer lane when present (plain stores, no atomic
    /// read-modify-writes), else the recorder's shared per-node minter.
    #[inline]
    pub fn mint_span(&self, t: &mut T::Endpoint, me: u16) -> obs::SpanId {
        match t.lyra_lane() {
            Some(lane) => lane.mint(),
            None => self.lyra.mint(me as usize),
        }
    }

    /// Flight-record through `t`'s single-writer lane when present, falling
    /// back to the recorder's shared multi-writer ring. Hot sites that hold
    /// the issuing endpoint route here; writers without one (the blocking
    /// retry aggregates, the fault injector) use the shared ring directly.
    #[inline]
    fn lyra_record(
        &self,
        t: &mut T::Endpoint,
        me: u16,
        make: impl FnOnce() -> obs::VerbRecord,
    ) {
        match t.lyra_lane() {
            Some(lane) => lane.record(make),
            None => self.lyra.record(me as usize, make),
        }
    }

    /// Fold one completed protocol site into every observability surface:
    /// the latency histogram, a `Site` flight record carrying the span,
    /// and — when the latency crosses `lyra_tail_threshold` — a tail
    /// capture of the node's ring around the offender. Public because the
    /// synchronization layer (Vela locks/barriers) funnels its own sites
    /// through the same path.
    #[inline]
    pub fn record_site(
        &self,
        t: &mut T::Endpoint,
        me: u16,
        site: obs::Site,
        span: obs::SpanId,
        start: u64,
        dur: u64,
    ) {
        self.profile.record(me as usize, site, dur);
        self.lyra_record(t, me, || obs::VerbRecord {
            span,
            start,
            dur,
            node: me,
            kind: obs::RecordKind::Site,
            site: site.index() as u8,
            ..obs::VerbRecord::blank()
        });
        let threshold = self.config.lyra_tail_threshold;
        if threshold > 0 && dur >= threshold {
            self.lyra.capture_tail(me as usize, site.index() as u8, span, start, dur);
        }
    }

    /// The panicking flavors' shared exit: programs that opted out of
    /// fault handling abort with the route and class in the message.
    #[inline]
    fn unrecoverable<R>(r: Result<R, DsmError>) -> R {
        match r {
            Ok(v) => v,
            Err(e) => panic!("unrecoverable DSM fault: {e}"),
        }
    }

    // ------------------------------------------------------------------
    // Volans: membership, failover, join
    // ------------------------------------------------------------------

    /// Volans: the cluster membership view (epoch, alive set, per-node
    /// observations).
    #[inline]
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Volans fail-fast: a verb about to target a departed node is rejected
    /// before issue — `attempts: 0`, [`VerbError::Departed`] — so a failure
    /// the membership already knows about costs no retry budget. Free until
    /// the first membership change (epoch 0 short-circuits everything);
    /// afterwards the caller's node also records its observation of the
    /// current epoch, which is what the epoch-monotonicity property tests
    /// gate admission on.
    #[inline]
    fn check_alive(
        &self,
        me: u16,
        target: u16,
        class: VerbClass,
        span: obs::SpanId,
    ) -> Result<(), DsmError> {
        if self.membership.epoch() == 0 {
            return Ok(());
        }
        self.membership.observe(me);
        if self.membership.is_alive(target) {
            return Ok(());
        }
        Err(DsmError {
            class,
            attempts: 0,
            last_error: VerbError::Departed,
            node: me,
            target,
            span,
        })
    }

    /// Retry a failed protocol operation across a failover: when
    /// `volans_failover` is on and the fault admits one, declare the target
    /// departed (re-homing its pages) and re-run the operation against the
    /// survivors. Loops because the retry can fail against a *different*
    /// node; terminates because every iteration either declares one more
    /// node dead (at most n−1 declarations exist) or gives up. Runs only
    /// after the inner operation returned, so every slot guard the
    /// operation held is already dropped — the failover sweep can take any
    /// lock it needs.
    fn failover_retry<R>(
        &self,
        t: &mut T::Endpoint,
        mut e: DsmError,
        mut op: impl FnMut(&Self, &mut T::Endpoint) -> Result<R, DsmError>,
    ) -> Result<R, DsmError> {
        loop {
            if !self.config.volans_failover || !self.absorb_fault(t, e) {
                return Err(e);
            }
            match op(self, t) {
                Ok(v) => return Ok(v),
                Err(next) => e = next,
            }
        }
    }

    /// Can a failover absorb `e`? [`VerbError::Departed`] means we raced a
    /// declaration that already re-homed — the retry re-routes by itself.
    /// Anything else that exhausted its budget is the deterministic death
    /// signal: the target failed every reissue across the full backoff
    /// schedule, so declare it departed. `false` only when there is no
    /// survivor left to fail over to.
    fn absorb_fault(&self, t: &mut T::Endpoint, e: DsmError) -> bool {
        if e.last_error == VerbError::Departed {
            return true;
        }
        let me = t.node().0;
        self.declare_dead(e.target, me, e.span, t.obs_now())
    }

    /// Volans failover: declare `dead` departed, re-home every page it
    /// homed onto the rendezvous survivors, scrub all cached copies of the
    /// re-homed pages (dirty data is preserved by writing it through to the
    /// flat store, which outlives the metadata change), null the affected
    /// coherence state, and bump the membership epoch.
    ///
    /// Deterministic: the sweep order and [`rendezvous_home`] are pure
    /// functions of `(page, survivors)`, so every declarer computes the
    /// identical new homes. Idempotent — returns `true` when `dead` is (now)
    /// departed and the cluster can continue, `false` when it is the last
    /// survivor (nothing to re-home to; the caller must surface its error).
    /// `span`/`obs_at` attribute the Lyra `EpochBump`/`Rehome` records to
    /// the exhausted verb that triggered the declaration, giving Perfetto a
    /// flow arrow from the failure to the transition.
    pub fn declare_dead(&self, dead: u16, me: u16, span: obs::SpanId, obs_at: u64) -> bool {
        let _serial = self.transition.lock().unwrap();
        if !self.membership.is_alive(dead) {
            // Someone else declared it while we waited: re-homing is done
            // and our retry will route to the new homes.
            return true;
        }
        let survivors: Vec<u16> = self
            .membership
            .alive_nodes()
            .into_iter()
            .filter(|&node| node != dead)
            .collect();
        if survivors.is_empty() {
            return false;
        }
        // Re-home the departed node's pages. `set_home` moves no bytes —
        // the flat page store survives the metadata change, so the last
        // drained version of every page is intact at its new home.
        let mut rehomed = Vec::new();
        for q in 0..self.global.total_pages() {
            let page = PageNum(q);
            if self.global.home_of(page) == dead {
                self.global.set_home(page, rendezvous_home(q, &survivors));
                rehomed.push(page);
            }
        }
        // Scrub every node's cached copy of a re-homed page: dirty data is
        // written through to the flat store first (nothing is lost), then
        // the copy is invalidated so the first post-failover access
        // refetches under the new home — the forced invalidation the epoch
        // bump implies. Safe mid-run: all stores to cached pages happen
        // under the same per-slot locks taken here, and any thread blocked
        // on our transition lock holds no slot lock (failover entry points
        // run only after their operation returned).
        for ns in &self.nodes {
            for &page in &rehomed {
                let mut st = ns.cache.lock_slot(page);
                if st.tag != Some(ns.cache.line_of(page)) {
                    continue;
                }
                let idx = ns.cache.index_in_line(page);
                if !st.pages[idx].valid {
                    continue;
                }
                if st.pages[idx].dirty {
                    self.silently_write_through(&st, page, idx);
                    ns.wbuf.remove(page);
                }
                st.pages[idx].invalidate();
            }
        }
        self.coherence.on_membership_change(&rehomed);
        self.membership.mark_dead(dead);
        let epoch = self.membership.bump_epoch();
        self.membership.observe(me);
        let shard = self.stats.shard(me);
        CoherenceStats::bump(&shard.failovers);
        CoherenceStats::add(&shard.pages_rehomed, rehomed.len() as u64);
        self.lyra.record(me as usize, || obs::VerbRecord {
            span,
            start: obs_at,
            arg: epoch,
            target: dead as u32,
            node: me,
            kind: obs::RecordKind::EpochBump,
            ..obs::VerbRecord::blank()
        });
        if !rehomed.is_empty() {
            self.lyra.record(me as usize, || obs::VerbRecord {
                span,
                start: obs_at,
                arg: rehomed.len() as u64,
                target: dead as u32,
                node: me,
                kind: obs::RecordKind::Rehome,
                ..obs::VerbRecord::blank()
            });
        }
        true
    }

    /// Volans online join: bring `node` into the membership at an epoch
    /// bump. The joiner enters with an empty page cache and warms purely by
    /// demand-faulting — no bulk transfer, and no re-homing either (pages
    /// stay where they are; only future failovers rendezvous over the
    /// larger survivor set). Returns the membership epoch after the join;
    /// idempotent — joining an already-alive node changes nothing.
    pub fn join_node(&self, node: u16) -> u64 {
        let _serial = self.transition.lock().unwrap();
        if !self.membership.mark_alive(node) {
            return self.membership.epoch();
        }
        let epoch = self.membership.bump_epoch();
        self.membership.observe(node);
        self.lyra.record(node as usize, || obs::VerbRecord {
            arg: epoch,
            target: node as u32,
            node,
            kind: obs::RecordKind::EpochBump,
            ..obs::VerbRecord::blank()
        });
        epoch
    }

    /// Volans shadow homes: mirror the fence's drained pages to each page's
    /// rendezvous *successor* — the node that would inherit it if its home
    /// died right now. Purely a warm spare against failover re-homing
    /// latency: the flat store needs no second copy, so this posts modeled
    /// whole-page traffic coalesced into one batched verb per successor,
    /// off the hot path at the fence boundary.
    fn mirror_to_successors(
        &self,
        t: &mut T::Endpoint,
        pages: &[PageNum],
        me: u16,
    ) -> Result<(), DsmError> {
        let alive = self.membership.alive_nodes();
        if alive.len() < 2 {
            return Ok(());
        }
        let mut batches: Vec<(u16, u64)> = Vec::new();
        for &page in pages {
            let home = self.global.home_of(page);
            let heirs: Vec<u16> = alive.iter().copied().filter(|&n| n != home).collect();
            if heirs.is_empty() {
                continue;
            }
            let succ = rendezvous_home(page.0, &heirs);
            if succ == me {
                continue; // our own cached copy is the mirror
            }
            match batches.iter_mut().find(|(h, _)| *h == succ) {
                Some((_, count)) => *count += 1,
                None => batches.push((succ, 1)),
            }
        }
        let loc = t.loc();
        let span = t.current_span();
        for (succ, count) in batches {
            self.check_alive(me, succ, VerbClass::DrainBatch, span)?;
            let sizes = vec![PAGE_BYTES; count as usize];
            let obs_at = t.obs_now();
            let timing = self.net_verb(
                me,
                succ,
                VerbClass::DrainBatch,
                ((succ as u64) << 32) | 1,
                t.now(),
                span,
                obs_at,
                |at| self.net.rdma_write_batch(loc, NodeId(succ), at, &sizes),
            )?;
            self.settle_posted(t, me, &timing);
            CoherenceStats::add(&self.stats.shard(me).shadow_mirrored, count);
        }
        Ok(())
    }

    /// Is `page` currently cached dirty on `node`? Failure-path helper for
    /// re-buffering pages a partially-failed drain did not reach.
    fn is_dirty_cached(&self, node: u16, page: PageNum) -> bool {
        let ns = &self.nodes[node as usize];
        let st = ns.cache.lock_slot(page);
        st.tag == Some(ns.cache.line_of(page)) && {
            let idx = ns.cache.index_in_line(page);
            st.pages[idx].valid && st.pages[idx].dirty
        }
    }

    // ------------------------------------------------------------------
    // Typed access path
    // ------------------------------------------------------------------

    /// Read an aligned 64-bit word at `addr`.
    ///
    /// Panics if the fabric stays broken past the retry budget; see
    /// [`Self::try_read_u64`] for the fallible flavor.
    pub fn read_u64(&self, t: &mut T::Endpoint, addr: GlobalAddr) -> u64 {
        Self::unrecoverable(self.try_read_u64(t, addr))
    }

    /// Read an aligned 64-bit word at `addr`, surfacing retry-budget
    /// exhaustion as a [`DsmError`] instead of panicking. Under
    /// `volans_failover`, an exhausted budget declares the target departed,
    /// re-homes its pages, and re-runs the read against the survivors.
    pub fn try_read_u64(&self, t: &mut T::Endpoint, addr: GlobalAddr) -> Result<u64, DsmError> {
        match self.read_u64_inner(t, addr) {
            Ok(v) => Ok(v),
            Err(e) => self.failover_retry(t, e, |dsm, t| dsm.read_u64_inner(t, addr)),
        }
    }

    fn read_u64_inner(&self, t: &mut T::Endpoint, addr: GlobalAddr) -> Result<u64, DsmError> {
        let page = addr.page();
        let word = addr.word_index();
        let me = t.node().0;
        t.compute(self.config.hit_cycles);
        if self.global.home_of(page) == me {
            self.register_reader_home(t, page, me)?;
            return Ok(self.global.home_page(page).load(word));
        }
        let ns = &self.nodes[me as usize];
        let line = ns.cache.line_of(page);
        let idx = ns.cache.index_in_line(page);
        // Hit fast path: optimistic seqlock read, no slot mutex. Falls
        // through to the locked path on a miss or a concurrent mutation.
        if let Some((v, ready)) = ns.cache.slot_for(page).try_read(line, idx, word) {
            CoherenceStats::bump(&self.stats.shard(me).read_hits);
            t.merge(ready);
            return Ok(v);
        }
        let mut st = ns.cache.lock_slot(page);
        if st.tag == Some(line) && st.pages[idx].valid {
            CoherenceStats::bump(&self.stats.shard(me).read_hits);
            t.merge(st.ready_at);
            return Ok(st.data(idx).load(word));
        }
        self.read_miss(t, &mut st, page, me)?;
        Ok(st.data(idx).load(word))
    }

    /// Write an aligned 64-bit word at `addr`.
    ///
    /// Panics if the fabric stays broken past the retry budget; see
    /// [`Self::try_write_u64`] for the fallible flavor.
    pub fn write_u64(&self, t: &mut T::Endpoint, addr: GlobalAddr, value: u64) {
        Self::unrecoverable(self.try_write_u64(t, addr, value))
    }

    /// Write an aligned 64-bit word at `addr`, surfacing retry-budget
    /// exhaustion as a [`DsmError`] instead of panicking (failover-aware;
    /// see [`Self::try_read_u64`]).
    pub fn try_write_u64(
        &self,
        t: &mut T::Endpoint,
        addr: GlobalAddr,
        value: u64,
    ) -> Result<(), DsmError> {
        match self.write_u64_inner(t, addr, value) {
            Ok(()) => Ok(()),
            Err(e) => self.failover_retry(t, e, |dsm, t| dsm.write_u64_inner(t, addr, value)),
        }
    }

    fn write_u64_inner(
        &self,
        t: &mut T::Endpoint,
        addr: GlobalAddr,
        value: u64,
    ) -> Result<(), DsmError> {
        let page = addr.page();
        let word = addr.word_index();
        let me = t.node().0;
        t.compute(self.config.hit_cycles);
        if self.global.home_of(page) == me {
            self.register_writer_home(t, page, me)?;
            self.global.home_page(page).store(word, value);
            // A sibling thread's release may have closed our write epoch
            // between the registration above and the store landing, in
            // which case the epoch's version bump did not cover this byte.
            // Re-checking after the store re-registers the page so the
            // next release covers it. (No-op for map-based policies.)
            self.register_writer_home(t, page, me)?;
            return Ok(());
        }
        let ns = &self.nodes[me as usize];
        let mut st = ns.cache.lock_slot(page);
        let line = ns.cache.line_of(page);
        let idx = ns.cache.index_in_line(page);
        if st.tag != Some(line) || !st.pages[idx].valid {
            self.read_miss(t, &mut st, page, me)?; // write-allocate
        }
        let was_dirty = st.pages[idx].dirty;
        if was_dirty {
            CoherenceStats::bump(&self.stats.shard(me).write_hits);
            Self::store_cached(&st, idx, word, value);
            return Ok(());
        }
        let buffered = self.write_fault_locked(t, &mut st, page, me)?;
        Self::store_cached(&st, idx, word, value);
        drop(st);
        if buffered {
            if let Some(victim) = ns.wbuf.push(page) {
                self.downgrade(t, victim, me)?;
            }
        }
        Ok(())
    }

    /// Store into a cached page under its slot lock, maintaining the
    /// page's write mask. The first store into each 64-word chunk copies
    /// that chunk of the pre-store data into the twin — lazy, chunk-wise
    /// twin materialization, so twin cost is O(chunks written), not
    /// O(page). Sound because all stores to cached pages happen under the
    /// slot mutex: nothing can change a chunk between the fault that
    /// allocated the (empty) twin and the copy-on-first-touch here.
    #[inline]
    fn store_cached(st: &SlotGuard<'_>, idx: usize, word: usize, value: u64) {
        let cp = &st.pages[idx];
        if cp.mask.set(word) {
            if let Some(twin) = &cp.twin {
                twin.copy_chunk_from(st.data(idx), word / CHUNK_WORDS);
            }
        }
        st.data(idx).store(word, value);
    }

    /// The clean→dirty transition of a cached page (a protection fault in
    /// the real implementation): register as writer, snapshot a twin, mark
    /// dirty. Returns whether the page should enter the write buffer; the
    /// caller must push it after releasing the slot lock.
    fn write_fault_locked(
        &self,
        t: &mut T::Endpoint,
        st: &mut SlotGuard<'_>,
        page: PageNum,
        me: u16,
    ) -> Result<bool, DsmError> {
        let ns = &self.nodes[me as usize];
        let idx = ns.cache.index_in_line(page);
        let obs_start = t.obs_now();
        let span = self.mint_span(t, me);
        t.set_span(span);
        CoherenceStats::bump(&self.stats.shard(me).write_faults);
        self.tracer
            .record(|| obs_start, || crate::trace::Event::WriteFault { node: me, page });
        t.fault_trap();
        self.register_writer(t, page, me)?;
        let disp = self.coherence.write_disposition(me, page);
        debug_assert!(st.pages[idx].mask.is_empty(), "clean page carries mask bits");
        if disp.need_twin {
            // The twin starts empty; `store_cached` copies each 64-word
            // chunk from the live data the first time the chunk is written,
            // so only touched chunks are ever materialized. The *virtual*
            // charge stays a full hot page copy — the simulated machine
            // snapshots eagerly; only host work became lazy.
            st.pages[idx].twin = Some(PageData::zeroed());
            t.compute(self.config.page_copy_cycles);
            CoherenceStats::bump(&self.stats.shard(me).twins_created);
        }
        st.pages[idx].dirty = true;
        self.record_site(
            t,
            me,
            obs::Site::WriteFault,
            span,
            obs_start,
            t.obs_now().saturating_sub(obs_start),
        );
        t.set_span(obs::SpanId::NONE);
        Ok(disp.buffer)
    }

    /// Read an aligned f64.
    pub fn read_f64(&self, t: &mut T::Endpoint, addr: GlobalAddr) -> f64 {
        f64::from_bits(self.read_u64(t, addr))
    }

    /// Fallible flavor of [`Self::read_f64`].
    pub fn try_read_f64(&self, t: &mut T::Endpoint, addr: GlobalAddr) -> Result<f64, DsmError> {
        self.try_read_u64(t, addr).map(f64::from_bits)
    }

    /// Write an aligned f64.
    pub fn write_f64(&self, t: &mut T::Endpoint, addr: GlobalAddr, value: f64) {
        self.write_u64(t, addr, value.to_bits());
    }

    /// Fallible flavor of [`Self::write_f64`].
    pub fn try_write_f64(
        &self,
        t: &mut T::Endpoint,
        addr: GlobalAddr,
        value: f64,
    ) -> Result<(), DsmError> {
        self.try_write_u64(t, addr, value.to_bits())
    }

    /// Bulk read of `out.len()` consecutive words starting at `addr`.
    ///
    /// Semantically identical to a loop of [`Self::read_u64`], but the
    /// protocol work (slot locking, hit check) is done once per *page* and
    /// streaming words are charged [`STREAM_WORD_CYCLES`] each — modeling a
    /// loop whose per-element cost is hidden by hardware caches. Workload
    /// kernels use this for row-contiguous access.
    pub fn read_u64_slice(&self, t: &mut T::Endpoint, addr: GlobalAddr, out: &mut [u64]) {
        Self::unrecoverable(self.try_read_u64_slice(t, addr, out))
    }

    /// Fallible flavor of [`Self::read_u64_slice`] (failover-aware; see
    /// [`Self::try_read_u64`]).
    pub fn try_read_u64_slice(
        &self,
        t: &mut T::Endpoint,
        addr: GlobalAddr,
        out: &mut [u64],
    ) -> Result<(), DsmError> {
        match self.read_u64_slice_inner(t, addr, out) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.failover_retry(t, e, |dsm, t| dsm.read_u64_slice_inner(t, addr, out))
            }
        }
    }

    fn read_u64_slice_inner(
        &self,
        t: &mut T::Endpoint,
        addr: GlobalAddr,
        out: &mut [u64],
    ) -> Result<(), DsmError> {
        let me = t.node().0;
        let mut i = 0usize;
        while i < out.len() {
            let a = addr.offset(i as u64 * 8);
            let page = a.page();
            let first_word = a.word_index();
            let run = (mem::WORDS_PER_PAGE - first_word).min(out.len() - i);
            t.compute(self.config.hit_cycles + run as u64 * STREAM_WORD_CYCLES);
            if self.global.home_of(page) == me {
                self.register_reader_home(t, page, me)?;
                let hp = self.global.home_page(page);
                for k in 0..run {
                    out[i + k] = hp.load(first_word + k);
                }
            } else {
                let ns = &self.nodes[me as usize];
                let line = ns.cache.line_of(page);
                let idx = ns.cache.index_in_line(page);
                // Hit fast path: whole run copied under one seqlock window.
                if let Some(ready) = ns.cache.slot_for(page).try_read_run(
                    line,
                    idx,
                    first_word,
                    &mut out[i..i + run],
                ) {
                    CoherenceStats::bump(&self.stats.shard(me).read_hits);
                    t.merge(ready);
                    i += run;
                    continue;
                }
                let mut st = ns.cache.lock_slot(page);
                if st.tag == Some(line) && st.pages[idx].valid {
                    CoherenceStats::bump(&self.stats.shard(me).read_hits);
                    t.merge(st.ready_at);
                } else {
                    self.read_miss(t, &mut st, page, me)?;
                }
                let data = st.data(idx);
                for k in 0..run {
                    out[i + k] = data.load(first_word + k);
                }
            }
            i += run;
        }
        Ok(())
    }

    /// Bulk write of consecutive words (see [`Self::read_u64_slice`]).
    pub fn write_u64_slice(&self, t: &mut T::Endpoint, addr: GlobalAddr, data: &[u64]) {
        Self::unrecoverable(self.try_write_u64_slice(t, addr, data))
    }

    /// Fallible flavor of [`Self::write_u64_slice`] (failover-aware; see
    /// [`Self::try_read_u64`]).
    pub fn try_write_u64_slice(
        &self,
        t: &mut T::Endpoint,
        addr: GlobalAddr,
        data: &[u64],
    ) -> Result<(), DsmError> {
        match self.write_u64_slice_inner(t, addr, data) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.failover_retry(t, e, |dsm, t| dsm.write_u64_slice_inner(t, addr, data))
            }
        }
    }

    fn write_u64_slice_inner(
        &self,
        t: &mut T::Endpoint,
        addr: GlobalAddr,
        data: &[u64],
    ) -> Result<(), DsmError> {
        let me = t.node().0;
        let mut i = 0usize;
        while i < data.len() {
            let a = addr.offset(i as u64 * 8);
            let page = a.page();
            let first_word = a.word_index();
            let run = (mem::WORDS_PER_PAGE - first_word).min(data.len() - i);
            t.compute(self.config.hit_cycles + run as u64 * STREAM_WORD_CYCLES);
            if self.global.home_of(page) == me {
                self.register_writer_home(t, page, me)?;
                let hp = self.global.home_page(page);
                for k in 0..run {
                    hp.store(first_word + k, data[i + k]);
                }
                // Post-store re-check, as in `try_write_u64`: a sibling
                // thread's release mid-run must not leave these bytes
                // outside the epoch's version bump.
                self.register_writer_home(t, page, me)?;
            } else {
                let ns = &self.nodes[me as usize];
                let mut st = ns.cache.lock_slot(page);
                let line = ns.cache.line_of(page);
                let idx = ns.cache.index_in_line(page);
                if st.tag != Some(line) || !st.pages[idx].valid {
                    self.read_miss(t, &mut st, page, me)?; // write-allocate
                }
                let buffered = if st.pages[idx].dirty {
                    CoherenceStats::bump(&self.stats.shard(me).write_hits);
                    false
                } else {
                    self.write_fault_locked(t, &mut st, page, me)?
                };
                let pd = st.data(idx);
                {
                    // Bulk mask update: one fetch_or per touched chunk, and
                    // lazy twin chunks materialized before the stores land
                    // (see `store_cached`).
                    let cp = &st.pages[idx];
                    cp.mask.cover(first_word, run, |chunk| {
                        if let Some(twin) = &cp.twin {
                            twin.copy_chunk_from(pd, chunk);
                        }
                    });
                }
                for k in 0..run {
                    pd.store(first_word + k, data[i + k]);
                }
                drop(st);
                if buffered {
                    if let Some(victim) = ns.wbuf.push(page) {
                        self.downgrade(t, victim, me)?;
                    }
                }
            }
            i += run;
        }
        Ok(())
    }

    /// Bulk f64 read (see [`Self::read_u64_slice`]).
    pub fn read_f64_slice(&self, t: &mut T::Endpoint, addr: GlobalAddr, out: &mut [f64]) {
        Self::unrecoverable(self.try_read_f64_slice(t, addr, out))
    }

    /// Fallible flavor of [`Self::read_f64_slice`].
    pub fn try_read_f64_slice(
        &self,
        t: &mut T::Endpoint,
        addr: GlobalAddr,
        out: &mut [f64],
    ) -> Result<(), DsmError> {
        // Reuse the u64 path by reinterpreting the buffer in place: f64 and
        // u64 have identical size and alignment, and every u64 bit pattern
        // is a valid f64 (and vice versa), so no scratch copy is needed.
        // Safety: same layout, both types valid for all bit patterns, and
        // the borrow is exclusive for the duration of the call.
        let words =
            unsafe { std::slice::from_raw_parts_mut(out.as_mut_ptr().cast::<u64>(), out.len()) };
        self.try_read_u64_slice(t, addr, words)
    }

    /// Bulk f64 write (see [`Self::write_u64_slice`]).
    pub fn write_f64_slice(&self, t: &mut T::Endpoint, addr: GlobalAddr, data: &[f64]) {
        Self::unrecoverable(self.try_write_f64_slice(t, addr, data))
    }

    /// Fallible flavor of [`Self::write_f64_slice`].
    pub fn try_write_f64_slice(
        &self,
        t: &mut T::Endpoint,
        addr: GlobalAddr,
        data: &[f64],
    ) -> Result<(), DsmError> {
        // Safety: as in `try_read_f64_slice`; shared borrow, read-only.
        let words =
            unsafe { std::slice::from_raw_parts(data.as_ptr().cast::<u64>(), data.len()) };
        self.try_write_u64_slice(t, addr, words)
    }

    // ------------------------------------------------------------------
    // Fences
    // ------------------------------------------------------------------

    /// Self-invalidation fence (acquire side): invalidate every cached page
    /// that Table 1 requires for the configured mode. Dirty pages are
    /// downgraded before invalidation so no write is lost.
    pub fn si_fence(&self, t: &mut T::Endpoint) {
        Self::unrecoverable(self.try_si_fence(t))
    }

    /// Fallible flavor of [`Self::si_fence`] (failover-aware; see
    /// [`Self::try_read_u64`]).
    pub fn try_si_fence(&self, t: &mut T::Endpoint) -> Result<(), DsmError> {
        match self.si_fence_inner(t) {
            Ok(()) => Ok(()),
            Err(e) => self.failover_retry(t, e, |dsm, t| dsm.si_fence_inner(t)),
        }
    }

    fn si_fence_inner(&self, t: &mut T::Endpoint) -> Result<(), DsmError> {
        let me = t.node().0;
        let obs_start = t.obs_now();
        let span = self.mint_span(t, me);
        t.set_span(span);
        CoherenceStats::bump(&self.stats.shard(me).si_fences);
        // Baselines for the fence's policy-event deltas: Tardis expiries
        // and Pyxis mode switches both land in this node's shard during the
        // sweep, so the before/after difference is what *this* fence did.
        let shard = self.stats.shard(me);
        let expiries_before = shard.lease_expiries.load(Ordering::Relaxed);
        let switches_before = shard.mode_to_lease.load(Ordering::Relaxed)
            + shard.mode_to_sisd.load(Ordering::Relaxed);
        // An acquire invalidates speculation too: ring snapshots predate
        // the synchronization this fence establishes.
        self.flush_prefetch(me);
        // Acquire-side policy hook (Tardis merges the global clock here).
        self.coherence.begin_si_fence(me, self.stats.shard(me));
        let ns = &self.nodes[me as usize];
        // O(resident): only slots holding a line are visited; empty slots
        // of a roomy cache cost nothing.
        for slot_idx in ns.cache.occupied_indices() {
            let mut st = ns.cache.lock_index(slot_idx);
            let Some(tag) = st.tag else { continue };
            let base = ns.cache.line_base(tag);
            let mut any_valid = false;
            for idx in 0..st.pages.len() {
                if !st.pages[idx].valid {
                    continue;
                }
                let page = PageNum(base.0 + idx as u64);
                t.compute(self.config.fence_scan_cycles);
                if self
                    .coherence
                    .must_self_invalidate(me, page, self.stats.shard(me))
                {
                    if st.pages[idx].dirty {
                        // Unbuffer first: the downgrade's local half always
                        // completes (errors only surface from the posting),
                        // so on a failure the page is clean and must not
                        // linger in the buffer.
                        ns.wbuf.remove(page);
                        self.downgrade_locked(t, &mut st, page, me)?;
                    }
                    st.pages[idx].invalidate();
                    t.compute(self.config.protect_cycles);
                    CoherenceStats::bump(&self.stats.shard(me).si_invalidated);
                    self.tracer.record(|| t.obs_now(), || crate::trace::Event::SiInvalidate {
                        node: me,
                        page,
                    });
                } else {
                    any_valid = true;
                    CoherenceStats::bump(&self.stats.shard(me).si_kept);
                    self.tracer
                        .record(|| t.obs_now(), || crate::trace::Event::SiKeep { node: me, page });
                }
            }
            if !any_valid {
                // Fully invalidated: release the slot so future fences skip
                // it. Behaviorally identical to a tagged all-invalid line
                // (the next access misses either way, with no eviction),
                // but it keeps the occupied set — and thus fence cost —
                // proportional to what actually survives fences.
                st.tag = None;
                st.ready_at = 0;
            }
        }
        let dur = t.obs_now().saturating_sub(obs_start);
        self.record_site(t, me, obs::Site::SiFence, span, obs_start, dur);
        let expired = shard
            .lease_expiries
            .load(Ordering::Relaxed)
            .saturating_sub(expiries_before);
        if expired > 0 {
            self.lyra_record(t, me, || obs::VerbRecord {
                span,
                start: obs_start,
                dur,
                arg: expired,
                node: me,
                kind: obs::RecordKind::LeaseExpiry,
                site: obs::Site::SiFence.index() as u8,
                ..obs::VerbRecord::blank()
            });
        }
        let switched = (shard.mode_to_lease.load(Ordering::Relaxed)
            + shard.mode_to_sisd.load(Ordering::Relaxed))
        .saturating_sub(switches_before);
        if switched > 0 {
            self.lyra_record(t, me, || obs::VerbRecord {
                span,
                start: obs_start,
                dur,
                arg: switched,
                node: me,
                kind: obs::RecordKind::ModeSwitch,
                site: obs::Site::SiFence.index() as u8,
                ..obs::VerbRecord::blank()
            });
        }
        t.set_span(obs::SpanId::NONE);
        self.tracer.record(
            || obs_start,
            || crate::trace::Event::Fence {
                node: me,
                kind: crate::trace::FenceKind::SelfInvalidate,
                dur_cycles: dur,
            },
        );
        Ok(())
    }

    /// Self-downgrade fence (release side): drain the write buffer and wait
    /// for every posted write of this node to settle at its home.
    pub fn sd_fence(&self, t: &mut T::Endpoint) {
        Self::unrecoverable(self.try_sd_fence(t))
    }

    /// Fallible flavor of [`Self::sd_fence`] (failover-aware; see
    /// [`Self::try_read_u64`]).
    pub fn try_sd_fence(&self, t: &mut T::Endpoint) -> Result<(), DsmError> {
        match self.sd_fence_inner(t) {
            Ok(()) => Ok(()),
            Err(e) => self.failover_retry(t, e, |dsm, t| dsm.sd_fence_inner(t)),
        }
    }

    fn sd_fence_inner(&self, t: &mut T::Endpoint) -> Result<(), DsmError> {
        let me = t.node().0;
        let obs_start = t.obs_now();
        let span = self.mint_span(t, me);
        t.set_span(span);
        CoherenceStats::bump(&self.stats.shard(me).sd_fences);
        // Pyxis applies pending mode switches at its release hook; baseline
        // the counters so the fence's delta becomes a `ModeSwitch` record.
        let shard = self.stats.shard(me);
        let switches_before = shard.mode_to_lease.load(Ordering::Relaxed)
            + shard.mode_to_sisd.load(Ordering::Relaxed);
        let ns = &self.nodes[me as usize];
        let drained = ns.wbuf.drain();
        // Auto: defer to the transport, except that big drains coalesce
        // everywhere — one doorbell per home amortizes once a fence moves
        // `batch_drain_cutover` pages, while small drains keep the
        // per-page path its timing calibration.
        let batch = match self.config.batch_drain {
            BatchDrain::Auto => {
                self.net.prefers_batched_drain()
                    || drained.len() >= self.config.batch_drain_cutover
            }
            BatchDrain::Always => true,
            BatchDrain::Never => false,
        };
        if batch {
            self.drain_batched(t, &drained, me)?;
        } else {
            for (i, &page) in drained.iter().enumerate() {
                if let Err(e) = self.downgrade(t, page, me) {
                    // Keep the buffer honest across the failure: pages the
                    // drain did not reach (and are still dirty) go back in,
                    // so a failover retry of this fence still drains them.
                    for &rest in &drained[i..] {
                        if self.is_dirty_cached(me, rest) {
                            if let Some(victim) = ns.wbuf.push(rest) {
                                let _ = self.downgrade(t, victim, me);
                            }
                        }
                    }
                    return Err(e);
                }
            }
        }
        if self.coherence.needs_checkpoint_sweep() {
            self.naive_checkpoint_sweep(t, me)?;
        }
        if self.config.volans_shadow && !drained.is_empty() {
            self.mirror_to_successors(t, &drained, me)?;
        }
        // Wait for posted downgrades/notifications to become globally
        // visible. `pending_settle` carries the settle time of every write
        // this node posted (including its NIC serialization), which is
        // exactly the set the fence must await — the NIC timeline itself
        // also holds *other* nodes' future reservations and must not be
        // merged wholesale.
        t.merge(ns.pending_settle.load(Ordering::Acquire));
        // Release-side policy hook, after the drain settled (Tardis
        // publishes its clock and opens a new write epoch here).
        self.coherence.end_sd_fence(me, self.stats.shard(me));
        let dur = t.obs_now().saturating_sub(obs_start);
        self.record_site(t, me, obs::Site::SdFence, span, obs_start, dur);
        let switched = (shard.mode_to_lease.load(Ordering::Relaxed)
            + shard.mode_to_sisd.load(Ordering::Relaxed))
        .saturating_sub(switches_before);
        if switched > 0 {
            self.lyra_record(t, me, || obs::VerbRecord {
                span,
                start: obs_start,
                dur,
                arg: switched,
                node: me,
                kind: obs::RecordKind::ModeSwitch,
                site: obs::Site::SdFence.index() as u8,
                ..obs::VerbRecord::blank()
            });
        }
        t.set_span(obs::SpanId::NONE);
        self.tracer.record(
            || obs_start,
            || crate::trace::Event::Fence {
                node: me,
                kind: crate::trace::FenceKind::SelfDowngrade,
                dur_cycles: dur,
            },
        );
        Ok(())
    }

    /// The naïve P/S scheme's sync-point obligation (§3.4.2): checkpoint
    /// every modified private page so a later P→S transition can be
    /// serviced. The page stays dirty and private; the checkpoint cost is
    /// paid at *every* synchronization point — which is why Figure 8 shows
    /// naïve P/S performing no better than no classification at all.
    fn naive_checkpoint_sweep(&self, t: &mut T::Endpoint, me: u16) -> Result<(), DsmError> {
        let ns = &self.nodes[me as usize];
        // O(dirty): clean and empty slots owe the sweep nothing.
        for slot_idx in ns.cache.dirty_indices() {
            let mut st = ns.cache.lock_index(slot_idx);
            let Some(tag) = st.tag else { continue };
            let base = ns.cache.line_base(tag);
            for idx in 0..st.pages.len() {
                if !st.pages[idx].valid || !st.pages[idx].dirty {
                    continue;
                }
                let page = PageNum(base.0 + idx as u64);
                if self.coherence.private_in_cache(me, page) {
                    // Local checkpoint copy; the simulator also quietly
                    // deposits the data at home so a later P→S reader finds
                    // it (the newcomer is charged the checkpoint-service
                    // round trip at transition time instead). The copy is
                    // cold — the sweep touches pages no CPU cache holds.
                    t.compute(self.config.checkpoint_cycles);
                    CoherenceStats::bump(&self.stats.shard(me).checkpoints);
                    self.tracer.record(|| t.obs_now(), || crate::trace::Event::Checkpoint {
                        node: me,
                        page,
                    });
                    self.silently_write_through(&st, page, idx);
                } else {
                    // Became shared since the write fault: downgrade now.
                    self.downgrade_locked(t, &mut st, page, me)?;
                }
            }
        }
        Ok(())
    }

    fn silently_write_through(&self, st: &SlotGuard<'_>, page: PageNum, idx: usize) {
        let home = self.global.home_page(page);
        match &st.pages[idx].twin {
            // Lazily-materialized twins are only meaningful inside masked
            // chunks; the masked diff never looks outside them.
            Some(twin) => home.apply_diff(
                &st.data(idx).diff_against_masked(twin, &st.pages[idx].mask),
            ),
            None => home.copy_from(st.data(idx)),
        }
    }

    // ------------------------------------------------------------------
    // Miss handling
    // ------------------------------------------------------------------

    /// Handle a read miss on `page`: evict/flush the conflicting line if
    /// needed, then fetch the whole line from the pages' homes, registering
    /// as a reader of each fetched page.
    fn read_miss(
        &self,
        t: &mut T::Endpoint,
        st: &mut SlotGuard<'_>,
        page: PageNum,
        me: u16,
    ) -> Result<(), DsmError> {
        let obs_start = t.obs_now();
        let span = self.mint_span(t, me);
        t.set_span(span);
        CoherenceStats::bump(&self.stats.shard(me).read_misses);
        self.heat.bump(page.0 as usize);
        self.tracer
            .record(|| obs_start, || crate::trace::Event::ReadMiss { node: me, page });
        t.fault_trap();
        let ns = &self.nodes[me as usize];
        let line = ns.cache.line_of(page);
        if st.tag != Some(line) {
            // Conflict eviction: flush dirty pages of the old line.
            if let Some(old) = st.tag {
                let old_base = ns.cache.line_base(old);
                let mut evicted_live = false;
                for idx in 0..st.pages.len() {
                    if st.pages[idx].valid {
                        evicted_live = true;
                        if st.pages[idx].dirty {
                            let old_page = PageNum(old_base.0 + idx as u64);
                            // Unbuffer before posting (see `si_fence_inner`).
                            ns.wbuf.remove(old_page);
                            self.downgrade_locked(t, st, old_page, me)?;
                        }
                    }
                }
                if evicted_live {
                    CoherenceStats::bump(&self.stats.shard(me).evictions);
                }
            }
            st.retag(line);
        }
        // Fetch every not-yet-valid remote page of the line, grouped by
        // home so transfers to distinct homes overlap (pipelined one-sided
        // reads issued back to back).
        let base = ns.cache.line_base(line);
        let total_pages = self.global.total_pages();
        let start = t.now();
        let mut done = start;
        let mut group: Vec<(u16, Vec<usize>)> = Vec::new();
        for idx in 0..st.pages.len() {
            let p = PageNum(base.0 + idx as u64);
            if p.0 >= total_pages || st.pages[idx].valid {
                continue;
            }
            let home = self.global.home_of(p);
            if home == me {
                continue; // local pages are never cached
            }
            match group.iter_mut().find(|(h, _)| *h == home) {
                Some((_, v)) => v.push(idx),
                None => group.push((home, vec![idx])),
            }
        }
        // A line the stride predictor fetched ahead of time satisfies its
        // pages from the ring; only uncovered pages go to the wire.
        let prefetched = self.take_prefetched(me, line);
        // Issue phase: every group's registrations run back-to-back
        // (pipelined one-sided atomics: latencies overlap, only wire
        // occupancy serializes), then its data read is *posted* — for all
        // homes — before any completion is polled. In-flight transfers to
        // distinct homes therefore overlap on the fabric instead of
        // queuing behind one another on this thread.
        let obs_issue = t.obs_now();
        let mut inflight: Vec<(u64, Option<IssuedVerb>)> = Vec::with_capacity(group.len());
        for (home, idxs) in &mut group {
            self.check_alive(me, *home, VerbClass::PageFetch, span)?;
            let mut reg_done = start;
            for &idx in idxs.iter() {
                let p = PageNum(base.0 + idx as u64);
                if let Some(completed) = self.register_reader_remote(t, p, me, *home, start)? {
                    reg_done = reg_done.max(completed);
                }
            }
            // Registration covered the whole group; pages the prefetcher
            // already has in the ring need no data read of their own.
            if let Some(pf) = &prefetched {
                idxs.retain(|&idx| {
                    let p = PageNum(base.0 + idx as u64);
                    !pf.pages.iter().any(|(q, _)| *q == p)
                });
            }
            let token = if idxs.is_empty() {
                None
            } else {
                let bytes = idxs.len() as u64 * PAGE_BYTES;
                let mut seq = self
                    .config
                    .retry
                    .attempt_seq(VerbClass::PageFetch, base.0.wrapping_add((*home as u64) << 48))
                    .with_span(span);
                let a0 = seq.next().expect("retry budget is at least one attempt");
                let tok = t.issue_read(NodeId(*home), bytes, reg_done + a0.delay);
                Some((tok, seq, a0))
            };
            inflight.push((reg_done, token));
        }
        // Poll phase: completions fold in as a single max, so the line fill
        // costs one slowest-home round trip rather than the sum.
        let overlapped = inflight.iter().filter(|(_, tok)| tok.is_some()).count() > 1;
        for ((home, idxs), (reg_done, token)) in group.into_iter().zip(inflight) {
            if let Some((tok, seq, a0)) = token {
                let bytes = idxs.len() as u64 * PAGE_BYTES;
                let timing = self.poll_retried(
                    t,
                    me,
                    home,
                    (tok, seq, a0),
                    obs_issue,
                    VerbClass::PageFetch,
                    bytes,
                    |t, delay| t.issue_read(NodeId(home), bytes, reg_done + delay),
                )?;
                done = done.max(timing.initiator_done);
            } else {
                // Entirely prefetched: the data is already in flight (or
                // landed); the fill is ready once the registrations are.
                done = done.max(reg_done);
            }
            for idx in idxs {
                let p = PageNum(base.0 + idx as u64);
                st.alloc_data(idx).copy_from(self.global.home_page(p));
                st.pages[idx].valid = true;
                st.pages[idx].dirty = false;
                st.pages[idx].twin = None;
                st.pages[idx].mask.clear();
            }
        }
        if let Some(pf) = prefetched {
            done = self.consume_prefetched(st, pf, done, me);
        }
        t.merge(done);
        st.ready_at = t.now();
        if overlapped {
            self.profile.record(
                me as usize,
                obs::Site::IssueToPoll,
                t.obs_now().saturating_sub(obs_issue),
            );
        }
        self.maybe_prefetch(t, line, me);
        self.record_site(
            t,
            me,
            obs::Site::ReadMiss,
            span,
            obs_start,
            t.obs_now().saturating_sub(obs_start),
        );
        t.set_span(obs::SpanId::NONE);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Stride prefetch
    // ------------------------------------------------------------------

    /// Pull the ring entry for `line` (if any) out of the node's prefetch
    /// ring so the in-progress demand fill can consume it.
    fn take_prefetched(&self, me: u16, line: u64) -> Option<PrefetchedLine> {
        if self.config.prefetch_lines == 0 {
            return None;
        }
        let mut pf = self.nodes[me as usize].prefetch.lock().unwrap();
        let pos = pf.ring.iter().position(|e| e.line == line)?;
        pf.ring.remove(pos)
    }

    /// Fold a claimed ring entry into the slot being filled: every page the
    /// slot still misses is satisfied from the speculative snapshot (a hit,
    /// paying the speculative read's completion time instead of a fresh
    /// round trip); anything else in the entry is wasted.
    fn consume_prefetched(
        &self,
        st: &mut SlotGuard<'_>,
        pf: PrefetchedLine,
        mut done: u64,
        me: u16,
    ) -> u64 {
        let ns = &self.nodes[me as usize];
        let shard = self.stats.shard(me);
        for (p, data) in pf.pages {
            let idx = ns.cache.index_in_line(p);
            if st.pages[idx].valid {
                CoherenceStats::bump(&shard.prefetch_wasted);
                continue;
            }
            st.alloc_data(idx).copy_from(&data);
            st.pages[idx].valid = true;
            st.pages[idx].dirty = false;
            st.pages[idx].twin = None;
            st.pages[idx].mask.clear();
            CoherenceStats::bump(&shard.prefetch_hits);
            done = done.max(pf.ready_at);
        }
        done
    }

    /// Advance `t`'s core's stride predictor past a demand miss on `line`
    /// and, once a stride has repeated `prefetch_streak` times, issue a
    /// speculative fetch of the predicted next line into the ring.
    fn maybe_prefetch(&self, t: &mut T::Endpoint, line: u64, me: u16) {
        if self.config.prefetch_lines == 0 {
            return;
        }
        let ns = &self.nodes[me as usize];
        let core = t.loc().core as usize;
        let next = {
            let mut pf = ns.prefetch.lock().unwrap();
            if pf.cores.len() <= core {
                pf.cores.resize(core + 1, StridePredictor::default());
            }
            let p = &mut pf.cores[core];
            let stride = if p.primed {
                line.wrapping_sub(p.last_line) as i64
            } else {
                0
            };
            if p.primed && stride != 0 && stride == p.stride {
                p.streak += 1;
            } else {
                p.streak = u32::from(p.primed && stride != 0);
            }
            p.stride = stride;
            p.last_line = line;
            p.primed = true;
            let (streak, stride) = (p.streak, p.stride);
            if streak < self.config.prefetch_streak {
                None
            } else {
                let next = line.wrapping_add(stride as u64);
                if next == line || pf.ring.iter().any(|e| e.line == next) {
                    None
                } else {
                    Some(next)
                }
            }
        };
        if let Some(next) = next {
            self.prefetch_line(t, next, me);
        }
    }

    /// Speculatively fetch every remote page of `line`. Fire-and-forget:
    /// the issued reads are polled immediately but their completion time is
    /// parked in the ring entry, never merged into the issuing thread's
    /// clock; a verb failure silently drops the line (speculation never
    /// retries and never surfaces errors). Takes no slot locks, so it is
    /// safe to call while a demand fill still holds its slot — pages the
    /// cache already holds are simply fetched redundantly and counted
    /// wasted when the entry is claimed or flushed.
    fn prefetch_line(&self, t: &mut T::Endpoint, line: u64, me: u16) {
        let ns = &self.nodes[me as usize];
        let base = ns.cache.line_base(line);
        let total_pages = self.global.total_pages();
        let mut group: Vec<(u16, Vec<PageNum>)> = Vec::new();
        for i in 0..self.config.cache.pages_per_line as u64 {
            let p = PageNum(base.0 + i);
            if p.0 >= total_pages {
                continue;
            }
            let home = self.global.home_of(p);
            if home == me {
                continue;
            }
            match group.iter_mut().find(|(h, _)| *h == home) {
                Some((_, v)) => v.push(p),
                None => group.push((home, vec![p])),
            }
        }
        if group.is_empty() {
            return;
        }
        let shard = self.stats.shard(me);
        let pages_total: u64 = group.iter().map(|(_, ps)| ps.len() as u64).sum();
        CoherenceStats::add(&shard.prefetch_issued, pages_total);
        let not_before = t.now();
        let tokens: Vec<VerbToken> = group
            .iter()
            .map(|(home, ps)| {
                t.issue_read(NodeId(*home), ps.len() as u64 * PAGE_BYTES, not_before)
            })
            .collect();
        let mut ready_at = not_before;
        let mut ok = true;
        for tok in tokens {
            match t.poll(tok) {
                Some(Ok(c)) => ready_at = ready_at.max(c.initiator_done),
                // Failed or still in flight: drop the whole line.
                Some(Err(_)) | None => ok = false,
            }
        }
        if !ok {
            CoherenceStats::add(&shard.prefetch_wasted, pages_total);
            return;
        }
        let pages: Vec<(PageNum, PageData)> = group
            .iter()
            .flat_map(|(_, ps)| ps.iter().map(|&p| (p, self.global.home_page(p).snapshot())))
            .collect();
        let mut pf = ns.prefetch.lock().unwrap();
        pf.ring.push_back(PrefetchedLine { line, ready_at, pages });
        while pf.ring.len() > self.config.prefetch_lines {
            if let Some(old) = pf.ring.pop_front() {
                CoherenceStats::add(&shard.prefetch_wasted, old.pages.len() as u64);
            }
        }
    }

    /// Drop every speculative line (and all predictor history) `node`
    /// holds, counting unconsumed pages as wasted. Acquire-side fences and
    /// phase resets call this: consuming a snapshot taken before the
    /// acquire would hand the program values it already synchronized away.
    fn flush_prefetch(&self, node: u16) {
        if self.config.prefetch_lines == 0 {
            return;
        }
        let mut pf = self.nodes[node as usize].prefetch.lock().unwrap();
        let shard = self.stats.shard(node);
        while let Some(e) = pf.ring.pop_front() {
            CoherenceStats::add(&shard.prefetch_wasted, e.pages.len() as u64);
        }
        pf.cores.clear();
    }

    // ------------------------------------------------------------------
    // Directory registration & notifications
    // ------------------------------------------------------------------

    /// Register as a reader of a page homed here (local, cheap).
    fn register_reader_home(
        &self,
        t: &mut T::Endpoint,
        page: PageNum,
        me: u16,
    ) -> Result<(), DsmError> {
        if self.coherence.read_registered(me, me, page) {
            return Ok(());
        }
        t.dram_access();
        let outcome = self
            .coherence
            .register_reader(me, me, page, self.stats.shard(me));
        self.apply_outcome(t, page, me, outcome)
    }

    /// Register as a reader of `page` at remote `home`, issuing the
    /// directory atomic at virtual time `start` (pipelined with the rest
    /// of its line-fill group). Returns the completion time, or `None` if
    /// no directory access was needed.
    fn register_reader_remote(
        &self,
        t: &mut T::Endpoint,
        page: PageNum,
        me: u16,
        home: u16,
        start: u64,
    ) -> Result<Option<u64>, DsmError> {
        if self.coherence.read_registered(me, home, page) {
            // Already registered (or the lease still holds): refresh is
            // piggy-backed on the data fetch (no separate atomic).
            return Ok(None);
        }
        let loc = t.loc();
        let span = t.current_span();
        let obs_at = t.obs_now();
        let timing = self.net_verb(
            me,
            home,
            VerbClass::DirectoryAtomic,
            page.0,
            start,
            span,
            obs_at,
            |at| self.net.rdma_fetch_or(loc, NodeId(home), at),
        )?;
        let mut op_clock = timing.initiator_done;
        if self.config.active_directory {
            op_clock += self.net.cost().handler_cycles;
            self.net
                .stats()
                .handler_invocations
                .fetch_add(1, Ordering::Relaxed);
        }
        let outcome = self
            .coherence
            .register_reader(me, home, page, self.stats.shard(me));
        self.apply_outcome(t, page, me, outcome)?;
        Ok(Some(op_clock))
    }

    /// Register as a writer of a page homed here.
    fn register_writer_home(
        &self,
        t: &mut T::Endpoint,
        page: PageNum,
        me: u16,
    ) -> Result<(), DsmError> {
        if self.coherence.write_registered(me, me, page) {
            return Ok(());
        }
        t.dram_access();
        let outcome = self
            .coherence
            .register_writer(me, me, page, self.stats.shard(me));
        self.apply_outcome(t, page, me, outcome)
    }

    /// Register as a writer of a (remote) page; charges the directory
    /// atomic unless we are already registered.
    fn register_writer(&self, t: &mut T::Endpoint, page: PageNum, me: u16) -> Result<(), DsmError> {
        let home = self.global.home_of(page);
        if self.coherence.write_registered(me, home, page) {
            return Ok(());
        }
        // Endpoint-level verb: backoff is spent as local compute before the
        // reissue (the endpoint's own clock is the only timeline here).
        let span = t.current_span();
        let obs_at = t.obs_now();
        self.check_alive(me, home, VerbClass::DirectoryAtomic, span)?;
        self.verb_retried(
            me,
            home,
            span,
            obs_at,
            self.config.retry.run(VerbClass::DirectoryAtomic, page.0, |a| {
                if a.step > 0 {
                    t.compute(a.step);
                }
                t.rdma_fetch_or(NodeId(home))
            }),
        )?;
        if self.config.active_directory {
            t.compute(self.net.cost().handler_cycles);
            self.net
                .stats()
                .handler_invocations
                .fetch_add(1, Ordering::Relaxed);
        }
        let outcome = self
            .coherence
            .register_writer(me, home, page, self.stats.shard(me));
        self.apply_outcome(t, page, me, outcome)
    }

    /// Perform the wire work a registration decided on: trace its
    /// transition events, post one notification per affected node, and
    /// service a checkpoint fetch if the policy asked for one. The policy
    /// already applied all metadata mutations host-side; this is purely
    /// the engine's verbs-and-clocks half.
    fn apply_outcome(
        &self,
        t: &mut T::Endpoint,
        page: PageNum,
        me: u16,
        outcome: RegisterOutcome,
    ) -> Result<(), DsmError> {
        if outcome.is_quiet() {
            return Ok(());
        }
        for ev in outcome.events {
            self.tracer.record(|| t.obs_now(), move || ev);
        }
        for target in outcome.notify {
            self.notify(t, target, page, me)?;
        }
        if let Some(owner) = outcome.fetch_from {
            // Service the fill from `owner`'s checkpoint: one extra round
            // trip (§3.4.2 "naïve solution").
            let loc = t.loc();
            let span = t.current_span();
            let obs_at = t.obs_now();
            let timing = self.net_verb(
                me,
                owner,
                VerbClass::PageFetch,
                page.0,
                t.now(),
                span,
                obs_at,
                |at| self.net.rdma_read(loc, NodeId(owner), at, PAGE_BYTES),
            )?;
            t.merge(timing.initiator_done);
        }
        Ok(())
    }

    /// Post the wire half of a directory-cache notification — the passive
    /// mechanism's one-sided write; no code runs at `target`. The metadata
    /// itself was already deposited by the policy (host-side, like the
    /// real remote OR).
    fn notify(
        &self,
        t: &mut T::Endpoint,
        target: u16,
        page: PageNum,
        me: u16,
    ) -> Result<(), DsmError> {
        if target == me {
            return Ok(());
        }
        if self.membership.epoch() != 0 && !self.membership.is_alive(target) {
            // The sharer departed: its directory cache died with it, so
            // there is nothing left to notify.
            return Ok(());
        }
        self.tracer.record(|| t.obs_now(), || crate::trace::Event::Notify {
            from: me,
            to: target,
            page,
        });
        let loc = t.loc();
        let span = t.current_span();
        let obs_at = t.obs_now();
        let timing = self.net_verb(
            me,
            target,
            VerbClass::Notify,
            page.0.wrapping_add((target as u64) << 48),
            t.now(),
            span,
            obs_at,
            |at| self.net.rdma_write(loc, NodeId(target), at, NOTIFY_BYTES),
        )?;
        self.settle_posted(t, me, &timing);
        if self.config.active_directory {
            t.compute(self.net.cost().handler_cycles);
            self.net
                .stats()
                .handler_invocations
                .fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Downgrades
    // ------------------------------------------------------------------

    /// Downgrade `page` (write its dirty data back to home), locking its
    /// slot. Used by write-buffer overflow and fence drains.
    fn downgrade(&self, t: &mut T::Endpoint, page: PageNum, me: u16) -> Result<(), DsmError> {
        let ns = &self.nodes[me as usize];
        let mut st = ns.cache.lock_slot(page);
        if st.tag != Some(ns.cache.line_of(page)) {
            return Ok(()); // evicted (and flushed) since it was buffered
        }
        self.downgrade_locked(t, &mut st, page, me)
    }

    /// Downgrade with the slot lock already held: resolve the data locally,
    /// then post the write-back home immediately (the per-page path).
    fn downgrade_locked(
        &self,
        t: &mut T::Endpoint,
        st: &mut SlotGuard<'_>,
        page: PageNum,
        me: u16,
    ) -> Result<(), DsmError> {
        let Some(bytes) = self.downgrade_local(t, st, page, me) else {
            return Ok(());
        };
        let home = self.global.home_of(page);
        if home == me {
            // Cannot happen: local pages are never cached. Kept as a guard.
            return Ok(());
        }
        let loc = t.loc();
        let span = t.current_span();
        let obs_at = t.obs_now();
        let timing = self.net_verb(
            me,
            home,
            VerbClass::Downgrade,
            page.0,
            t.now(),
            span,
            obs_at,
            |at| self.net.rdma_write(loc, NodeId(home), at, bytes),
        )?;
        self.settle_posted(t, me, &timing);
        Ok(())
    }

    /// The local half of a downgrade: diff (or copy) the dirty page into
    /// its home memory, flip it clean, and return the wire size of the
    /// write-back that must now be posted to the home — `None` if the page
    /// needed no downgrade. Split out so fence drains can batch the posting
    /// by home while the data movement stays per-page.
    fn downgrade_local(
        &self,
        t: &mut T::Endpoint,
        st: &mut SlotGuard<'_>,
        page: PageNum,
        me: u16,
    ) -> Option<u64> {
        let ns = &self.nodes[me as usize];
        let idx = ns.cache.index_in_line(page);
        if !st.pages[idx].valid || !st.pages[idx].dirty {
            return None;
        }
        let home_page = self.global.home_page(page);
        // A single writer may skip diff transmission: no other node can
        // have written this page, so the whole page is safe to send and the
        // diff computation is saved (the sw_no_diff extension; paper §3.2
        // leaves it as future work). Only sound when the policy can prove
        // single-writer ownership — Tardis never can and always diffs.
        let sw_skip = self.config.sw_no_diff && self.coherence.downgrade_skip_diff(me, page);
        let data = st.data(idx);
        let bytes = match (&st.pages[idx].twin, sw_skip) {
            (Some(twin), false) => {
                t.compute(self.config.page_copy_cycles); // diff scan
                // The twin is only materialized chunk-wise where the mask
                // says stores landed; outside the mask both copies agree by
                // construction, so the masked diff is exact.
                let diff = data.diff_against_masked(twin, &st.pages[idx].mask);
                let diff_bytes =
                    DOWNGRADE_HEADER_BYTES + diff.len() as u64 * DIFF_WORD_BYTES;
                if diff_bytes < PAGE_BYTES {
                    CoherenceStats::add(&self.stats.shard(me).diff_words, diff.len() as u64);
                    home_page.apply_diff(&diff);
                    diff_bytes
                } else {
                    home_page.copy_from(data);
                    PAGE_BYTES
                }
            }
            _ => {
                home_page.copy_from(data);
                PAGE_BYTES
            }
        };
        st.pages[idx].dirty = false;
        st.pages[idx].twin = None;
        st.pages[idx].mask.clear();
        // The new version is home: let the policy advance its clocks (all
        // drain paths — fence, overflow, eviction — funnel through here).
        self.coherence.note_downgrade(me, page);
        // The real implementation re-protects the page read-only so the
        // next write faults again.
        t.compute(self.config.protect_cycles);
        CoherenceStats::bump(&self.stats.shard(me).writebacks);
        CoherenceStats::add(&self.stats.shard(me).writeback_bytes, bytes);
        self.tracer.record(|| t.obs_now(), || crate::trace::Event::Downgrade {
            node: me,
            page,
            bytes,
        });
        Some(bytes)
    }

    /// SD-fence drain that coalesces write-backs by home node: every dirty
    /// page is still diffed into home memory individually and in global
    /// FIFO order, but instead of one verb per page each home receives one
    /// `rdma_write_batch` (one doorbell, one posting) carrying all of its
    /// pages' diffs. Homes appear in first-victim order.
    fn drain_batched(
        &self,
        t: &mut T::Endpoint,
        pages: &[PageNum],
        me: u16,
    ) -> Result<(), DsmError> {
        let ns = &self.nodes[me as usize];
        let mut batches: Vec<(u16, Vec<u64>)> = Vec::new();
        for &page in pages {
            let mut st = ns.cache.lock_slot(page);
            if st.tag != Some(ns.cache.line_of(page)) {
                continue; // evicted (and flushed) since it was buffered
            }
            let Some(bytes) = self.downgrade_local(t, &mut st, page, me) else {
                continue;
            };
            let home = self.global.home_of(page);
            if home == me {
                continue; // guard; local pages are never cached
            }
            match batches.iter_mut().find(|(h, _)| *h == home) {
                Some((_, sizes)) => sizes.push(bytes),
                None => batches.push((home, vec![bytes])),
            }
        }
        if batches.is_empty() {
            return Ok(());
        }
        // Issue every home's batch before polling any: drains to distinct
        // homes overlap on the fabric, so the fence pays the slowest home's
        // posting once instead of summing every home's. Homes still hit the
        // wire in first-victim order.
        let obs_issue = t.obs_now();
        let span = t.current_span();
        let base = t.now();
        let mut inflight = Vec::with_capacity(batches.len());
        for (home, sizes) in &batches {
            self.check_alive(me, *home, VerbClass::DrainBatch, span)?;
            let mut seq = self
                .config
                .retry
                .attempt_seq(VerbClass::DrainBatch, *home as u64)
                .with_span(span);
            let a0 = seq.next().expect("retry budget is at least one attempt");
            let token = t.issue_write_batch(NodeId(*home), sizes, base + a0.delay);
            inflight.push((token, seq, a0));
        }
        let mut done = base;
        for ((home, sizes), (token, seq, a0)) in batches.iter().zip(inflight) {
            let timing = self.poll_retried(
                t,
                me,
                *home,
                (token, seq, a0),
                obs_issue,
                VerbClass::DrainBatch,
                sizes.iter().sum(),
                |t, delay| t.issue_write_batch(NodeId(*home), sizes, base + delay),
            )?;
            done = done.max(timing.initiator_done);
            ns.pending_settle.fetch_max(timing.settled, Ordering::AcqRel);
            CoherenceStats::bump(&self.stats.shard(me).downgrade_batches);
            CoherenceStats::add(
                &self.stats.shard(me).downgrade_batch_pages,
                sizes.len() as u64,
            );
            self.tracer
                .record(|| t.obs_now(), || crate::trace::Event::DowngradeBatch {
                    node: me,
                    home: *home,
                    pages: sizes.len() as u64,
                    bytes: sizes.iter().sum(),
                });
        }
        t.merge(done);
        self.profile.record(
            me as usize,
            obs::Site::IssueToPoll,
            t.obs_now().saturating_sub(obs_issue),
        );
        Ok(())
    }

    // ------------------------------------------------------------------
    // Phase control
    // ------------------------------------------------------------------

    /// End-of-initialization reset (paper §3.4): initialization writes do
    /// not count toward classification. Flushes all caches to home (data
    /// plane only — initialization is excluded from measurements), then
    /// nulls every reader/writer map, directory cache, and statistic.
    pub fn reset_for_parallel_section(&self) {
        for (n, ns) in self.nodes.iter().enumerate() {
            self.flush_prefetch(n as u16);
            for slot_idx in ns.cache.occupied_indices() {
                let mut st = ns.cache.lock_index(slot_idx);
                let Some(tag) = st.tag else { continue };
                let base = ns.cache.line_base(tag);
                for idx in 0..st.pages.len() {
                    if st.pages[idx].valid && st.pages[idx].dirty {
                        let page = PageNum(base.0 + idx as u64);
                        self.silently_write_through(&st, page, idx);
                    }
                    st.pages[idx].invalidate();
                }
                st.tag = None;
                st.ready_at = 0;
            }
            let _ = ns.wbuf.drain();
            ns.pending_settle.store(0, Ordering::Release);
        }
        self.coherence.reset_all();
        self.stats.reset();
        self.profile.reset();
        self.heat.reset();
        self.lock_obs.reset();
        self.lyra.reset();
    }

    /// Adaptive classification by decay — the extension the paper sketches
    /// in §3.2 ("straightforward to extend the classification to adaptive
    /// … using simple decay techniques"). A *collective* operation: the
    /// caller (one thread, with every other thread quiescent at a barrier)
    /// flushes and invalidates every node's cache and nulls all
    /// reader/writer maps, so pages re-classify according to the access
    /// pattern of the *next* phase. Unlike
    /// [`Self::reset_for_parallel_section`], all work is charged to the
    /// calling thread's clock and statistics are preserved.
    pub fn decay_classification(&self, t: &mut T::Endpoint) {
        Self::unrecoverable(self.try_decay_classification(t))
    }

    /// Fallible flavor of [`Self::decay_classification`].
    pub fn try_decay_classification(&self, t: &mut T::Endpoint) -> Result<(), DsmError> {
        let me = t.node().0;
        for (n, ns) in self.nodes.iter().enumerate() {
            self.flush_prefetch(n as u16);
            for slot_idx in ns.cache.occupied_indices() {
                let mut st = ns.cache.lock_index(slot_idx);
                let Some(tag) = st.tag else { continue };
                let base = ns.cache.line_base(tag);
                for idx in 0..st.pages.len() {
                    if !st.pages[idx].valid {
                        continue;
                    }
                    t.compute(self.config.fence_scan_cycles);
                    if st.pages[idx].dirty {
                        let page = PageNum(base.0 + idx as u64);
                        // Downgrade on behalf of the owning node; charge
                        // the decay initiator (it coordinates the epoch).
                        self.downgrade_as(t, &mut st, page, n as u16)?;
                        ns.wbuf.remove(page);
                    }
                    st.pages[idx].invalidate();
                    t.compute(self.config.protect_cycles);
                    CoherenceStats::bump(&self.stats.shard(me).si_invalidated);
                }
                st.tag = None;
                st.ready_at = 0;
            }
            ns.pending_settle.store(0, Ordering::Release);
        }
        self.coherence.reset_all();
        CoherenceStats::bump(&self.stats.shard(me).decays);
        Ok(())
    }

    /// [`Self::downgrade_locked`] but writing back on behalf of node
    /// `owner` (used by the collective decay, where one thread flushes
    /// every node's cache).
    fn downgrade_as(
        &self,
        t: &mut T::Endpoint,
        st: &mut SlotGuard<'_>,
        page: PageNum,
        owner: u16,
    ) -> Result<(), DsmError> {
        let ns = &self.nodes[owner as usize];
        let idx = ns.cache.index_in_line(page);
        if !st.pages[idx].valid || !st.pages[idx].dirty {
            return Ok(());
        }
        let home = self.global.home_of(page);
        let home_page = self.global.home_page(page);
        let data = st.data(idx);
        let bytes = match &st.pages[idx].twin {
            Some(twin) => {
                t.compute(self.config.page_copy_cycles);
                let diff = data.diff_against_masked(twin, &st.pages[idx].mask);
                let diff_bytes = DOWNGRADE_HEADER_BYTES + diff.len() as u64 * DIFF_WORD_BYTES;
                if diff_bytes < PAGE_BYTES {
                    CoherenceStats::add(&self.stats.shard(owner).diff_words, diff.len() as u64);
                    home_page.apply_diff(&diff);
                    diff_bytes
                } else {
                    home_page.copy_from(data);
                    PAGE_BYTES
                }
            }
            None => {
                home_page.copy_from(data);
                PAGE_BYTES
            }
        };
        st.pages[idx].dirty = false;
        st.pages[idx].twin = None;
        st.pages[idx].mask.clear();
        if home != owner {
            let loc = t.loc();
            let me = t.node().0;
            let span = t.current_span();
            let obs_at = t.obs_now();
            let timing = self.net_verb(
                me,
                home,
                VerbClass::Downgrade,
                page.0,
                t.now(),
                span,
                obs_at,
                |at| self.net.rdma_write(loc, NodeId(home), at, bytes),
            )?;
            t.merge(timing.settled);
            CoherenceStats::bump(&self.stats.shard(owner).writebacks);
            CoherenceStats::add(&self.stats.shard(owner).writeback_bytes, bytes);
        }
        Ok(())
    }

    /// Check the protocol's internal invariants; returns a list of
    /// violations (empty = healthy). Intended for tests and debugging at
    /// quiescent points (no concurrent accesses).
    ///
    /// Engine-owned checks:
    /// 1. Clean pages hold no twin or mask bits; dirty pages are valid.
    /// 2. When the policy buffers every dirty page, a quiescent node's
    ///    write buffer contains exactly its dirty page set.
    /// 3. Cached pages are never homed on the caching node.
    ///
    /// Policy-owned checks (registration consistency, `wts <= rts`, lease
    /// subsumption, …) are appended via [`Coherence::invariant_problems`].
    pub fn check_invariants(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (n, ns) in self.nodes.iter().enumerate() {
            let me = n as u16;
            let mut dirty_pages = Vec::new();
            for slot_idx in ns.cache.occupied_indices() {
                let st = ns.cache.lock_index(slot_idx);
                let Some(tag) = st.tag else { continue };
                let base = ns.cache.line_base(tag);
                for idx in 0..st.pages.len() {
                    let page = PageNum(base.0 + idx as u64);
                    let cp = &st.pages[idx];
                    if cp.valid && self.global.home_of(page) == me {
                        problems.push(format!("n{n}: caches its own home page {}", page.0));
                    }
                    if cp.dirty {
                        if !cp.valid {
                            problems.push(format!("n{n}: dirty but invalid page {}", page.0));
                        }
                        dirty_pages.push(page);
                    } else if cp.twin.is_some() {
                        problems.push(format!("n{n}: clean page {} holds a twin", page.0));
                    } else if !cp.mask.is_empty() {
                        // A stale mask would make the next fault's lazy twin
                        // skip chunk snapshots it actually needs.
                        problems.push(format!("n{n}: clean page {} carries mask bits", page.0));
                    }
                }
            }
            if self.coherence.buffers_every_dirty_page() {
                let mut buffered = ns.wbuf.snapshot();
                buffered.sort_unstable();
                let mut dirty = dirty_pages.clone();
                dirty.sort_unstable();
                if buffered != dirty {
                    problems.push(format!(
                        "n{n}: write buffer {:?} != dirty set {:?}",
                        buffered.iter().map(|q| q.0).collect::<Vec<_>>(),
                        dirty.iter().map(|q| q.0).collect::<Vec<_>>()
                    ));
                }
            }
            problems.extend(self.coherence.invariant_problems(me, &dirty_pages));
        }
        problems
    }

    /// Data-plane read of the home copy, bypassing caches and charging no
    /// time. Used by PGAS mode (which has no caching by design) and by test
    /// assertions on final memory contents.
    pub fn peek_u64(&self, addr: GlobalAddr) -> u64 {
        self.global.home_page(addr.page()).load(addr.word_index())
    }

    /// Data-plane write of the home copy (see [`Self::peek_u64`]).
    pub fn poke_u64(&self, addr: GlobalAddr, value: u64) {
        self.global
            .home_page(addr.page())
            .store(addr.word_index(), value)
    }

    /// The policy's accessor view for `page` (census walks). Authoritative
    /// under SI/SD; diagnostic under timestamp policies.
    pub fn home_dir_view_of_page(&self, page: PageNum) -> DirView {
        self.coherence.census_view(page)
    }

    /// Which protocol currently governs `page` (census walks). Fixed for
    /// the pure policies; per-page under the Pyxis hybrid.
    pub fn page_mode_of(&self, page: PageNum) -> crate::coherence::PageMode {
        self.coherence.page_mode(page)
    }
}

/// SI/SD-specific directory inspection (tests and the protocol tour peek
/// at the full maps; timestamp policies have no equivalent).
impl<T: Transport> Dsm<T, CarinaSiSd> {
    /// The directory view a node currently holds for `addr`'s page
    /// (test/diagnostic aid).
    pub fn dir_view(&self, node: u16, addr: GlobalAddr) -> DirView {
        self.coherence.node_view(node, addr.page())
    }

    /// The authoritative home directory view for `addr`'s page.
    pub fn home_dir_view(&self, addr: GlobalAddr) -> DirView {
        self.coherence.home_view(addr.page())
    }
}
