//! A sequential pairing heap (Fredman, Sedgewick, Sleator, Tarjan 1986).
//!
//! The paper's lock microbenchmark (§5.3, Figures 11 and 12) builds a
//! concurrent priority queue from "a fast sequential implementation and a
//! lock to access it", using a pairing heap — which outperforms non-blocking
//! priority queues when combined with combining/delegation locks.
//!
//! Arena-based: nodes live in a `Vec` with an intrusive free list, so
//! insert/extract do no per-operation heap allocation in steady state.

/// Index of a node in the arena; `NONE` encodes absence.
type Idx = u32;
const NONE: Idx = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    key: u64,
    /// First child (leftmost).
    child: Idx,
    /// Next sibling in the child list, or next free-list entry.
    sibling: Idx,
}

/// A min-heap of `u64` keys.
///
/// ```
/// use vela::PairingHeap;
///
/// let mut h = PairingHeap::new();
/// for k in [5, 1, 3] {
///     h.insert(k);
/// }
/// assert_eq!(h.extract_min(), Some(1));
/// assert_eq!(h.peek_min(), Some(3));
/// assert_eq!(h.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct PairingHeap {
    nodes: Vec<Node>,
    root: Idx,
    free: Idx,
    len: usize,
}

impl PairingHeap {
    pub fn new() -> Self {
        PairingHeap {
            nodes: Vec::new(),
            root: NONE,
            free: NONE,
            len: 0,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        PairingHeap {
            nodes: Vec::with_capacity(cap),
            root: NONE,
            free: NONE,
            len: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn peek_min(&self) -> Option<u64> {
        if self.root == NONE {
            None
        } else {
            Some(self.nodes[self.root as usize].key)
        }
    }

    fn alloc(&mut self, key: u64) -> Idx {
        if self.free != NONE {
            let i = self.free;
            self.free = self.nodes[i as usize].sibling;
            self.nodes[i as usize] = Node {
                key,
                child: NONE,
                sibling: NONE,
            };
            i
        } else {
            self.nodes.push(Node {
                key,
                child: NONE,
                sibling: NONE,
            });
            (self.nodes.len() - 1) as Idx
        }
    }

    fn release(&mut self, i: Idx) {
        self.nodes[i as usize].sibling = self.free;
        self.free = i;
    }

    /// Meld two heaps rooted at `a` and `b`; returns the new root.
    fn meld(&mut self, a: Idx, b: Idx) -> Idx {
        if a == NONE {
            return b;
        }
        if b == NONE {
            return a;
        }
        let (parent, child) = if self.nodes[a as usize].key <= self.nodes[b as usize].key {
            (a, b)
        } else {
            (b, a)
        };
        self.nodes[child as usize].sibling = self.nodes[parent as usize].child;
        self.nodes[parent as usize].child = child;
        parent
    }

    pub fn insert(&mut self, key: u64) {
        let n = self.alloc(key);
        self.root = self.meld(self.root, n);
        self.len += 1;
    }

    /// Two-pass pairing of the root's child list after the root is removed.
    fn combine_children(&mut self, first: Idx) -> Idx {
        if first == NONE {
            return NONE;
        }
        // Pass 1: meld pairs left to right, collecting results.
        let mut pairs: Vec<Idx> = Vec::new();
        let mut cur = first;
        while cur != NONE {
            let a = cur;
            let b = self.nodes[a as usize].sibling;
            if b == NONE {
                self.nodes[a as usize].sibling = NONE;
                pairs.push(a);
                break;
            }
            let next = self.nodes[b as usize].sibling;
            self.nodes[a as usize].sibling = NONE;
            self.nodes[b as usize].sibling = NONE;
            pairs.push(self.meld(a, b));
            cur = next;
        }
        // Pass 2: meld right to left.
        let mut root = NONE;
        for &p in pairs.iter().rev() {
            root = self.meld(root, p);
        }
        root
    }

    pub fn extract_min(&mut self) -> Option<u64> {
        if self.root == NONE {
            return None;
        }
        let old = self.root;
        let key = self.nodes[old as usize].key;
        let first_child = self.nodes[old as usize].child;
        self.root = self.combine_children(first_child);
        self.release(old);
        self.len -= 1;
        Some(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    #[test]
    fn empty_heap_behaves() {
        let mut h = PairingHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.peek_min(), None);
        assert_eq!(h.extract_min(), None);
    }

    #[test]
    fn extracts_in_sorted_order() {
        let mut h = PairingHeap::new();
        for k in [5u64, 3, 8, 1, 9, 2, 7] {
            h.insert(k);
        }
        let mut out = Vec::new();
        while let Some(k) = h.extract_min() {
            out.push(k);
        }
        assert_eq!(out, vec![1, 2, 3, 5, 7, 8, 9]);
    }

    #[test]
    fn duplicates_preserved() {
        let mut h = PairingHeap::new();
        for k in [4u64, 4, 4, 1, 1] {
            h.insert(k);
        }
        assert_eq!(h.len(), 5);
        let out: Vec<_> = std::iter::from_fn(|| h.extract_min()).collect();
        assert_eq!(out, vec![1, 1, 4, 4, 4]);
    }

    #[test]
    fn free_list_reuses_nodes() {
        let mut h = PairingHeap::new();
        for k in 0..100u64 {
            h.insert(k);
        }
        for _ in 0..100 {
            h.extract_min();
        }
        let cap = h.nodes.len();
        for k in 0..100u64 {
            h.insert(k);
        }
        assert_eq!(h.nodes.len(), cap, "arena grew despite free list");
    }

    #[test]
    fn interleaved_random_ops_match_btreemap() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut h = PairingHeap::new();
        let mut model = std::collections::BinaryHeap::new();
        for _ in 0..10_000 {
            if rng.random_bool(0.5) {
                let k = rng.random_range(0..1000u64);
                h.insert(k);
                model.push(std::cmp::Reverse(k));
            } else {
                assert_eq!(h.extract_min(), model.pop().map(|r| r.0));
            }
            assert_eq!(h.len(), model.len());
        }
    }

    proptest! {
        #[test]
        fn prop_heap_sorts_any_sequence(keys in proptest::collection::vec(any::<u64>(), 0..200)) {
            let mut h = PairingHeap::new();
            for &k in &keys {
                h.insert(k);
            }
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            let out: Vec<_> = std::iter::from_fn(|| h.extract_min()).collect();
            prop_assert_eq!(out, sorted);
        }
    }
}
