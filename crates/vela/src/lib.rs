//! # vela — Argo's synchronization system
//!
//! The paper's second contribution. Synchronization is where a
//! self-invalidation DSM lives or dies: every acquire costs an SI fence
//! over the node's whole page cache, so the protocol must synchronize as
//! rarely — and as locally — as possible.
//!
//! Two halves:
//!
//! - [`local`]: real shared-memory locks measured in real time on real
//!   threads — Pthreads mutex, MCS, CLH, flat combining, **queue delegation
//!   (QDL)** and the **cohort lock**. These reproduce Figure 11's
//!   single-node comparison.
//! - [`dsm`]: cluster-wide primitives — the hierarchical barrier (§4.1), a
//!   one-sided global lock, **HQDL** (hierarchical queue delegation, §4.2),
//!   the distributed cohort-lock baseline, and a pairing heap resident in
//!   global memory. These reproduce Figure 12. All of them are generic over
//!   `rma::Transport`: on the default `SimTransport` they carry virtual-time
//!   semantics; on `NativeTransport` the same fence placement runs at
//!   wall-clock speed.
//!
//! [`pairing_heap`] is the sequential priority queue both microbenchmarks
//! wrap a lock around (§5.3).

pub mod dsm;
pub mod local;
pub mod pairing_heap;

pub use dsm::{ClockBarrier, DsmCohortLock, DsmFlag, DsmGlobalLock, DsmPairingHeap, FencePlacement, HierBarrier, Hqdl};
pub use local::{ClhLock, CohortLock, CsLock, FcLock, HboLock, HclhLock, McsLock, PthreadsMutex, QdLock, TicketLock};
pub use pairing_heap::PairingHeap;
