//! Synchronization over the DSM cluster (virtual-time semantics).
//!
//! Everything here both provides real mutual exclusion between the OS
//! threads that simulate cluster threads *and* models the virtual-time cost
//! of the distributed algorithm, including the Carina fences each
//! primitive's semantics require.

pub mod barrier;
pub mod flag;
pub mod cohort_dsm;
pub mod global_lock;
pub mod heap;
pub mod hqdl;

pub use barrier::{ClockBarrier, HierBarrier};
pub use flag::DsmFlag;
pub use cohort_dsm::{DsmCohortLock, FencePlacement};
pub use global_lock::{DsmGlobalLock, GlobalLockStats};
pub use heap::DsmPairingHeap;
pub use hqdl::{DsmFuture, Hqdl, HqdlStats};
