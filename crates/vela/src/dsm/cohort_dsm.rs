//! A cohort lock running over the DSM — the distributed baseline of
//! Figure 12.
//!
//! Classic cohort locking (no delegation): each thread acquires a node-
//! local lock, then the global lock (unless its node already holds it), and
//! executes the critical section *itself*. Coherence fences are placed
//! hierarchically, mirroring HQDL's reasoning: SI when the global lock
//! arrives at a node, SD when it leaves. The remaining per-section cost —
//! local lock hand-offs between cores/sockets and the migration of the
//! protected data into each executing thread's context — is exactly what
//! delegation eliminates, and is why HQDL wins in Figure 12.

use crate::dsm::global_lock::DsmGlobalLock;
use carina::{CarinaSiSd, Coherence, Dsm};
use parking_lot::{Condvar, Mutex};
use rma::{Endpoint, SimTransport, Transport};
use simnet::NodeId;
use std::sync::Arc;

struct TierState {
    locked: bool,
    owns_global: bool,
    passes: u64,
    waiters: usize,
    last_release: u64,
}

struct LocalTier {
    state: Mutex<TierState>,
    cond: Condvar,
}

/// Where a lock places its Carina fences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FencePlacement {
    /// SI on every acquire, SD on every release — the semantics any
    /// off-the-shelf lock gets on Argo (§4: "Once synchronization is
    /// achieved via a data race, Carina must self-invalidate and/or
    /// self-downgrade all cached data"). This is the Figure 12 baseline.
    PerSection,
    /// SI only when the global lock arrives at a node, SD only when it
    /// leaves — the hierarchical reasoning HQDL introduces, grafted onto
    /// cohorting (an ablation, not a paper configuration).
    Hierarchical,
}

/// A hierarchical (cohort) lock over a DSM cluster.
pub struct DsmCohortLock<T: Transport = SimTransport, C: Coherence = CarinaSiSd> {
    dsm: Arc<Dsm<T, C>>,
    global: Arc<DsmGlobalLock>,
    tiers: Vec<LocalTier>,
    pass_limit: u64,
    fencing: FencePlacement,
}

impl<T: Transport, C: Coherence> DsmCohortLock<T, C> {
    /// The paper's baseline configuration: per-section fences.
    pub fn new(dsm: Arc<Dsm<T, C>>, pass_limit: u64) -> Arc<Self> {
        Self::with_fencing(dsm, pass_limit, FencePlacement::PerSection)
    }

    pub fn with_fencing(
        dsm: Arc<Dsm<T, C>>,
        pass_limit: u64,
        fencing: FencePlacement,
    ) -> Arc<Self> {
        let nodes = dsm.net().topology().nodes;
        Arc::new(DsmCohortLock {
            global: DsmGlobalLock::with_retry(NodeId(0), dsm.config().retry),
            tiers: (0..nodes)
                .map(|_| LocalTier {
                    state: Mutex::new(TierState {
                        locked: false,
                        owns_global: false,
                        passes: 0,
                        waiters: 0,
                        last_release: 0,
                    }),
                    cond: Condvar::new(),
                })
                .collect(),
            dsm,
            pass_limit,
            fencing,
        })
    }

    /// Execute `f` as a critical section from thread `t`.
    pub fn with<R>(&self, t: &mut T::Endpoint, f: impl FnOnce(&mut T::Endpoint) -> R) -> R {
        let node = t.node().idx();
        let tier = &self.tiers[node];
        // Local tier acquire.
        {
            let mut st = tier.state.lock();
            st.waiters += 1;
            while st.locked {
                tier.cond.wait(&mut st);
            }
            st.waiters -= 1;
            st.locked = true;
            // Local hand-off: the previous holder's release flag crossed a
            // socket at worst.
            let handoff = st.last_release + t.cost().intersocket_latency;
            t.merge(handoff);
            if !st.owns_global {
                drop(st);
                self.global.acquire(t);
                // The lock arrived at this node: observe other nodes'
                // critical sections.
                self.dsm.si_fence(t);
                let mut st = tier.state.lock();
                st.owns_global = true;
                st.passes = 0;
            } else if self.fencing == FencePlacement::PerSection {
                drop(st);
                // Vanilla acquire semantics: self-invalidate even on a
                // local hand-off.
                self.dsm.si_fence(t);
            }
        }
        let result = f(t);
        if self.fencing == FencePlacement::PerSection {
            // Vanilla release semantics: publish this section's writes now.
            self.dsm.sd_fence(t);
        }
        // Release policy: pass locally while waiters remain and the
        // fairness budget allows; otherwise publish and surrender.
        let mut st = tier.state.lock();
        if st.waiters > 0 && st.passes < self.pass_limit {
            st.passes += 1;
            st.locked = false;
            st.last_release = t.now();
            tier.cond.notify_one();
        } else {
            st.owns_global = false;
            drop(st);
            // The lock leaves this node: publish our sections' writes.
            self.dsm.sd_fence(t);
            self.global.release(t);
            let mut st = tier.state.lock();
            st.locked = false;
            st.last_release = t.now();
            tier.cond.notify_one();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carina::CarinaConfig;
    use mem::{GlobalAddr, PAGE_BYTES};
    use simnet::testkit::{thread, tiny_net};

    #[test]
    fn counter_across_nodes() {
        let net = tiny_net(3);
        let dsm = Dsm::new(net.clone(), 1 << 20, CarinaConfig::default());
        let addr = GlobalAddr(4 * PAGE_BYTES);
        let lock = DsmCohortLock::new(dsm.clone(), 16);
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let lock = lock.clone();
                let dsm = dsm.clone();
                let net = net.clone();
                std::thread::spawn(move || {
                    let mut t = thread(&net, (i % 3) as u16, i / 3);
                    for _ in 0..250 {
                        lock.with(&mut t, |ht| {
                            let v = dsm.read_u64(ht, addr);
                            dsm.write_u64(ht, addr, v + 1);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut t = thread(&net, 0, 0);
        let v = lock.with(&mut t, |ht| dsm.read_u64(ht, addr));
        assert_eq!(v, 1500);
    }

    #[test]
    fn fences_only_on_node_switches() {
        // One node, one thread: the global lock never moves, so after the
        // first acquisition there are no SI fences per section.
        let net = tiny_net(1);
        let dsm = Dsm::new(net.clone(), 1 << 20, CarinaConfig::default());
        let lock = DsmCohortLock::new(dsm.clone(), 1_000_000);
        let mut t = thread(&net, 0, 0);
        for _ in 0..100 {
            lock.with(&mut t, |_| {});
        }
        // With pass_limit never reached and no waiters, each section
        // releases globally (no waiters ⇒ surrender). Relax: just assert
        // correctness of fence pairing — SI fences ≤ global acquisitions.
        let si = dsm.stats().snapshot().si_fences;
        assert!(si <= lock.global.stats().acquisitions);
    }
}
