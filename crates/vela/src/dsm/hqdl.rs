//! Hierarchical Queue Delegation Locking — the paper's second contribution
//! (§4.2).
//!
//! Plain (flat) queue delegation does not survive distribution: delegating
//! a section to a *remote* helper forces the delegator to self-downgrade
//! first (the helper must see its writes) and to self-invalidate on wait —
//! delegation saves nothing. HQDL therefore only allows delegation **from
//! the same node as the lock holder**:
//!
//! 1. A node's would-be helper acquires a *global* lock; the node becomes
//!    the active node.
//! 2. The helper performs **one** SI fence ("see data possibly written in
//!    earlier executions of critical sections in other nodes").
//! 3. Threads of the active node delegate critical sections into the node
//!    queue; the helper executes them back to back on one core — no
//!    fences, no lock hand-offs, local cache reuse.
//! 4. After the queue is empty (or a batch limit is reached), **one** SD
//!    fence publishes every executed section's writes, and the global lock
//!    moves on.
//!
//! Threads on non-active nodes simply wait to become the active node; "if
//! the program depends on lock performance, it has enough work even on a
//! single node, otherwise there are only negligible stalls on other nodes."

use crate::dsm::global_lock::DsmGlobalLock;
use carina::{CarinaSiSd, Coherence, Dsm};
use crossbeam::queue::SegQueue;
use parking_lot::lock_api::RawMutex as _;
use parking_lot::RawMutex;
use rma::{Endpoint, SimTransport, Transport};
use simnet::NodeId;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

type DsmJob<T> = Box<dyn FnOnce(&mut <T as Transport>::Endpoint) + Send>;

struct Slot<R> {
    done: AtomicBool,
    /// The helper's virtual clock when the section completed; the waiter
    /// merges it.
    clock: AtomicU64,
    value: UnsafeCell<Option<R>>,
}

// SAFETY: `value` written once before `done` is released, read after.
unsafe impl<R: Send> Sync for Slot<R> {}

/// Handle to a delegated (possibly detached) DSM critical section.
pub struct DsmFuture<R> {
    slot: Arc<Slot<R>>,
}

impl<R> DsmFuture<R> {
    pub fn is_done(&self) -> bool {
        self.slot.done.load(Ordering::Acquire)
    }
}

struct NodeQueue<T: Transport> {
    queue: SegQueue<DsmJob<T>>,
    /// Guards the helper role on this node.
    helper: RawMutex,
}

/// Statistics of an [`Hqdl`] lock.
#[derive(Debug, Clone, Copy, Default)]
pub struct HqdlStats {
    pub sections_executed: u64,
    pub batches: u64,
    /// Virtual cycles helpers spent acquiring the global lock (incl.
    /// waiting for other nodes' tenures).
    pub acquire_cycles: u64,
    /// Virtual cycles helpers spent in SI/SD fences.
    pub fence_cycles: u64,
    /// Virtual cycles helpers spent executing delegated sections.
    pub section_cycles: u64,
    /// Largest single batch.
    pub max_batch: u64,
}

/// A hierarchical queue delegation lock over a DSM cluster.
pub struct Hqdl<T: Transport = SimTransport, C: Coherence = CarinaSiSd> {
    dsm: Arc<Dsm<T, C>>,
    global: Arc<DsmGlobalLock>,
    node_queues: Vec<NodeQueue<T>>,
    batch_limit: usize,
    /// Per-lock observability, registered with the DSM's lock registry.
    obs: Arc<obs::LockObs>,
    sections: AtomicU64,
    batches: AtomicU64,
    acquire_cycles: AtomicU64,
    fence_cycles: AtomicU64,
    section_cycles: AtomicU64,
    max_batch: AtomicU64,
}

impl<T: Transport, C: Coherence> Hqdl<T, C> {
    /// `batch_limit`: maximum sections executed per global-lock tenure
    /// ("either because there are no more, or a limit is reached").
    pub fn new(dsm: Arc<Dsm<T, C>>, batch_limit: usize) -> Arc<Self> {
        Self::new_named(dsm, batch_limit, "hqdl")
    }

    /// [`new`](Self::new) with a name for per-lock statistics: the lock
    /// registers itself in the DSM's [`obs::LockRegistry`] so run reports
    /// can attribute delegation behaviour to individual locks.
    pub fn new_named(dsm: Arc<Dsm<T, C>>, batch_limit: usize, name: &str) -> Arc<Self> {
        assert!(batch_limit > 0, "batch limit must be positive");
        let nodes = dsm.net().topology().nodes;
        let obs = dsm.lock_registry().register(name);
        Arc::new(Hqdl {
            global: DsmGlobalLock::with_retry(NodeId(0), dsm.config().retry),
            node_queues: (0..nodes)
                .map(|_| NodeQueue {
                    queue: SegQueue::new(),
                    helper: RawMutex::INIT,
                })
                .collect(),
            dsm,
            batch_limit,
            obs,
            sections: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            acquire_cycles: AtomicU64::new(0),
            fence_cycles: AtomicU64::new(0),
            section_cycles: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
        })
    }

    /// This lock's live observability counters.
    pub fn observer(&self) -> &Arc<obs::LockObs> {
        &self.obs
    }

    pub fn stats(&self) -> HqdlStats {
        HqdlStats {
            sections_executed: self.sections.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            acquire_cycles: self.acquire_cycles.load(Ordering::Relaxed),
            fence_cycles: self.fence_cycles.load(Ordering::Relaxed),
            section_cycles: self.section_cycles.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
        }
    }

    /// Delegate a critical section from `t`'s node; returns immediately
    /// (detached execution). The closure runs on the node's helper thread
    /// with the helper's virtual clock and may access the DSM freely.
    pub fn delegate<R: Send + 'static>(
        self: &Arc<Self>,
        t: &mut T::Endpoint,
        f: impl FnOnce(&mut T::Endpoint) -> R + Send + 'static,
    ) -> DsmFuture<R> {
        let slot = Arc::new(Slot {
            done: AtomicBool::new(false),
            clock: AtomicU64::new(0),
            value: UnsafeCell::new(None),
        });
        let s = slot.clone();
        // Publication cost: writing the request where the helper reads it
        // (same node, possibly another socket).
        let publish = t.cost().intersocket_latency;
        t.compute(publish);
        let node = t.node().idx();
        obs::LockObs::bump(&self.obs.delegations);
        let lock_obs = self.obs.clone();
        let enqueued_at = t.obs_now();
        let delegator = t.loc();
        self.node_queues[node].queue.push(Box::new(move |ht: &mut T::Endpoint| {
            // Helpers can run with a clock behind the delegator's on the
            // sim transport; a saturating difference keeps the histogram
            // honest rather than wrapping.
            lock_obs
                .queue_wait
                .record(ht.obs_now().saturating_sub(enqueued_at));
            if ht.loc() == delegator {
                obs::LockObs::bump(&lock_obs.executed_local);
            } else {
                obs::LockObs::bump(&lock_obs.executed_remote);
            }
            let r = f(ht);
            // SAFETY: sole writer before the `done` release.
            unsafe { *s.value.get() = Some(r) };
            s.clock.store(ht.now(), Ordering::Relaxed);
            s.done.store(true, Ordering::Release);
        }));
        // Deliberately do NOT help here: detached delegation returns
        // immediately, letting sections accumulate so the eventual helper
        // executes a large batch (the whole point of QDL). Execution is
        // guaranteed by any subsequent `wait` (including our own), or by a
        // flushing `delegate_wait`.
        DsmFuture { slot }
    }

    /// Wait for a delegated section, helping if the helper role is free.
    pub fn wait<R>(self: &Arc<Self>, t: &mut T::Endpoint, future: DsmFuture<R>) -> R {
        let node = t.node().idx();
        let mut spins = 0u32;
        while !future.is_done() {
            self.try_help(t, node);
            if future.is_done() {
                break;
            }
            spins += 1;
            if spins > 32 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // The result was produced at the helper's clock; we cannot have it
        // earlier.
        t.merge(future.slot.clock.load(Ordering::Relaxed));
        // SAFETY: done acquired.
        unsafe { (*future.slot.value.get()).take().expect("result taken twice") }
    }

    /// Delegate and wait (synchronous critical section).
    pub fn delegate_wait<R: Send + 'static>(
        self: &Arc<Self>,
        t: &mut T::Endpoint,
        f: impl FnOnce(&mut T::Endpoint) -> R + Send + 'static,
    ) -> R {
        let fut = self.delegate(t, f);
        self.wait(t, fut)
    }

    /// Become this node's helper if the role is free and the queue is
    /// non-empty: acquire the global lock, SI once, run a batch, SD once,
    /// release.
    fn try_help(&self, t: &mut T::Endpoint, node: usize) {
        let nq = &self.node_queues[node];
        if nq.queue.is_empty() || !nq.helper.try_lock() {
            return;
        }
        if nq.queue.is_empty() {
            // Raced with a previous helper that drained everything.
            // SAFETY: locked above.
            unsafe { nq.helper.unlock() };
            return;
        }
        let t0 = t.now();
        let obs_t0 = t.obs_now();
        // One Lyra span covers the whole helper tenure: the global-lock
        // acquire, both fences, and every verb a delegated section issues
        // link back to it in the flight-recorder timeline.
        let span = self.dsm.mint_span(t, node as u16);
        t.set_span(span);
        let switched = self.global.acquire_tracked(t);
        let t1 = t.now();
        let acquire_dur = t.obs_now().saturating_sub(obs_t0);
        self.obs.acquire.record(acquire_dur);
        self.dsm
            .record_site(t, node as u16, obs::Site::LockAcquire, span, obs_t0, acquire_dur);
        if switched {
            obs::LockObs::bump(&self.obs.handovers);
        }
        // Open the delegation queue: one SI to observe earlier critical
        // sections executed on other nodes.
        self.dsm.si_fence(t);
        let t2 = t.now();
        self.acquire_cycles.fetch_add(t1 - t0, Ordering::Relaxed);
        let mut executed = 0usize;
        'batch: while executed < self.batch_limit {
            match nq.queue.pop() {
                Some(job) => {
                    job(t);
                    executed += 1;
                }
                None => {
                    // The queue is open while we hold the lock: linger
                    // briefly for sections being enqueued right now, so
                    // real-thread scheduling doesn't shatter the batch.
                    // Yield rather than spin — on an oversubscribed host
                    // the producers need the CPU to enqueue anything.
                    for _ in 0..48 {
                        std::thread::yield_now();
                        if !nq.queue.is_empty() {
                            continue 'batch;
                        }
                    }
                    break;
                }
            }
        }
        self.sections.fetch_add(executed as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.max_batch.fetch_max(executed as u64, Ordering::Relaxed);
        obs::LockObs::bump(&self.obs.batches);
        self.obs.batch_size.record(executed as u64);
        let t3 = t.now();
        self.section_cycles.fetch_add(t3 - t2, Ordering::Relaxed);
        // Close the queue: one SD to publish every section's writes.
        self.dsm.sd_fence(t);
        self.fence_cycles
            .fetch_add((t2 - t1) + (t.now() - t3), Ordering::Relaxed);
        self.global.release(t);
        t.set_span(rma::SpanId::NONE);
        // SAFETY: locked above.
        unsafe { nq.helper.unlock() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carina::CarinaConfig;
    use mem::{GlobalAddr, PAGE_BYTES};
    use simnet::testkit::{thread, tiny_net};
    use simnet::Interconnect;

    fn setup(nodes: usize) -> (Arc<Dsm>, Arc<Interconnect>) {
        let net = tiny_net(nodes);
        let dsm = Dsm::new(net.clone(), 1 << 20, CarinaConfig::default());
        (dsm, net)
    }

    #[test]
    fn delegated_counter_across_nodes() {
        let (dsm, net) = setup(3);
        let addr = GlobalAddr(5 * PAGE_BYTES);
        let lock = Hqdl::new(dsm.clone(), 64);
        let handles: Vec<_> = (0..3)
            .map(|n| {
                let lock = lock.clone();
                let dsm = dsm.clone();
                let net = net.clone();
                std::thread::spawn(move || {
                    let mut t = thread(&net, n as u16, 0);
                    for _ in 0..500 {
                        let d = dsm.clone();
                        lock.delegate_wait(&mut t, move |ht| {
                            let v = d.read_u64(ht, addr);
                            d.write_u64(ht, addr, v + 1);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut t = thread(&net, 0, 0);
        let final_v = lock.delegate_wait(&mut t, {
            let d = dsm.clone();
            move |ht| d.read_u64(ht, addr)
        });
        assert_eq!(final_v, 1500);
        let st = lock.stats();
        assert_eq!(st.sections_executed, 1501);
        // Batching: far fewer global-lock tenures than sections.
        assert!(st.batches <= st.sections_executed);

        // The lock registered itself and its observer saw every section.
        let snaps = dsm.lock_registry().snapshots();
        assert_eq!(snaps.len(), 1);
        let obs = &snaps[0];
        assert_eq!(obs.name, "hqdl");
        assert_eq!(obs.delegations, 1501);
        assert_eq!(obs.executed(), 1501);
        assert_eq!(obs.queue_wait.count(), 1501);
        assert_eq!(obs.batches, st.batches);
        assert_eq!(obs.batch_size.count(), st.batches);
        assert_eq!(obs.acquire.count(), st.batches);
        // Three nodes contended: the global lock changed hands.
        assert!(obs.handovers >= 2);
        // One thread per node: every delegator is its own helper.
        assert_eq!(obs.executed_local, 1501);
        // Acquire latency also lands in the DSM-wide profile.
        let prof = dsm.profile().snapshot();
        assert_eq!(
            prof.get(obs::Site::LockAcquire).count(),
            st.batches
        );
    }

    #[test]
    fn helper_executing_anothers_section_counts_as_remote() {
        let (dsm, net) = setup(1);
        let addr = GlobalAddr(PAGE_BYTES);
        let lock = Hqdl::new_named(dsm.clone(), 64, "counter");
        // Core 0 delegates a detached increment; core 1's helper drains it
        // (FIFO, so the increment lands before core 1's own read).
        let mut a = thread(&net, 0, 0);
        let d = dsm.clone();
        let fut = lock.delegate(&mut a, move |ht| {
            let v = d.read_u64(ht, addr);
            d.write_u64(ht, addr, v + 1);
        });
        let mut b = thread(&net, 0, 1);
        let d = dsm.clone();
        assert_eq!(lock.delegate_wait(&mut b, move |ht| d.read_u64(ht, addr)), 1);
        assert!(fut.is_done());
        let snap = lock.observer().snapshot();
        assert_eq!(snap.name, "counter");
        assert_eq!(snap.executed_remote, 1); // a's section, run by b
        assert_eq!(snap.executed_local, 1); // b's own section
        assert_eq!(snap.queue_wait.count(), 2);
    }

    #[test]
    fn detached_sections_complete_on_wait() {
        let (dsm, net) = setup(1);
        let addr = GlobalAddr(PAGE_BYTES);
        let lock = Hqdl::new(dsm.clone(), 1024);
        let mut t = thread(&net, 0, 0);
        let futs: Vec<_> = (0..100)
            .map(|_| {
                let d = dsm.clone();
                lock.delegate(&mut t, move |ht| {
                    let v = d.read_u64(ht, addr);
                    d.write_u64(ht, addr, v + 1);
                })
            })
            .collect();
        for f in futs {
            lock.wait(&mut t, f);
        }
        let d = dsm.clone();
        assert_eq!(lock.delegate_wait(&mut t, move |ht| d.read_u64(ht, addr)), 100);
    }

    #[test]
    fn waiter_clock_includes_helper_time() {
        let (dsm, net) = setup(2);
        let lock = Hqdl::new(dsm.clone(), 8);
        let mut t = thread(&net, 0, 0);
        let before = t.now();
        lock.delegate_wait(&mut t, |ht| ht.compute(10_000));
        assert!(t.now() >= before + 10_000);
    }
}
