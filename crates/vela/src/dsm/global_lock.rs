//! A cluster-wide lock acquired with one-sided atomics.
//!
//! Models an MCS-style queue lock whose word lives in one node's share of
//! global memory: acquisition is a remote atomic (one round trip); a
//! contended hand-off is the previous holder's one-way flag write. The
//! *coherence* consequences of locking (SI on acquire / SD on release) are
//! deliberately **not** part of this type — HQDL's whole point is choosing
//! where those fences go (paper §4.2).

use carina::DsmError;
use parking_lot::{Condvar, Mutex};
use rma::{Endpoint, RetryExhausted, RetryPolicy, VerbClass};
use simnet::NodeId;
use std::sync::Arc;

/// Translate an exhausted retry budget into the DSM-level error, naming
/// the route (Vela builds it field-wise; the carina constructor is private
/// to the protocol engine).
pub(crate) fn lock_fault(e: RetryExhausted, node: u16, target: u16) -> DsmError {
    DsmError {
        class: e.class,
        attempts: e.attempts,
        last_error: e.last_error,
        node,
        target,
        span: rma::SpanId::NONE,
    }
}

struct LockState {
    locked: bool,
    /// Virtual time of the last release (what the next holder merges).
    last_release: u64,
    /// Successive acquisitions by the same node skip the remote round trip
    /// probability model — tracked for stats only.
    last_holder: Option<u16>,
}

/// Statistics of a [`DsmGlobalLock`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalLockStats {
    pub acquisitions: u64,
    /// Acquisitions where the lock came from a different node.
    pub node_switches: u64,
}

/// A global (cluster-wide) mutual-exclusion lock with virtual-time costs.
pub struct DsmGlobalLock {
    home: NodeId,
    retry: RetryPolicy,
    state: Mutex<(LockState, GlobalLockStats)>,
    cond: Condvar,
}

impl DsmGlobalLock {
    /// `home`: the node whose memory holds the lock word.
    pub fn new(home: NodeId) -> Arc<Self> {
        Self::with_retry(home, RetryPolicy::default())
    }

    /// [`new`](Self::new) with an explicit policy for reissuing the lock
    /// word's CAS and hand-off write when the fabric drops them. Locks
    /// built by higher layers inherit their DSM's configured policy.
    pub fn with_retry(home: NodeId, retry: RetryPolicy) -> Arc<Self> {
        Arc::new(DsmGlobalLock {
            home,
            retry,
            state: Mutex::new((
                LockState {
                    locked: false,
                    last_release: 0,
                    last_holder: None,
                },
                GlobalLockStats::default(),
            )),
            cond: Condvar::new(),
        })
    }

    /// Acquire: one remote atomic on the lock word, plus waiting for the
    /// previous holder's release to propagate.
    ///
    /// Panics if the fabric stays broken past the retry budget; see
    /// [`Self::try_acquire`] for the fallible flavor.
    pub fn acquire<E: Endpoint>(&self, t: &mut E) {
        self.acquire_tracked(t);
    }

    /// Fallible flavor of [`Self::acquire`].
    pub fn try_acquire<E: Endpoint>(&self, t: &mut E) -> Result<(), DsmError> {
        self.try_acquire_tracked(t).map(|_| ())
    }

    /// [`acquire`](Self::acquire), reporting whether the lock changed hands
    /// between nodes (a *handover*: the previous holder was a different
    /// node, so the release flag crossed the network to reach us).
    pub fn acquire_tracked<E: Endpoint>(&self, t: &mut E) -> bool {
        match self.try_acquire_tracked(t) {
            Ok(switched) => switched,
            Err(e) => panic!("unrecoverable DSM fault: {e}"),
        }
    }

    /// Fallible flavor of [`Self::acquire_tracked`]: an exhausted CAS
    /// budget surfaces *before* any queue state changes, so a failed
    /// acquisition leaves the lock exactly as it found it.
    pub fn try_acquire_tracked<E: Endpoint>(&self, t: &mut E) -> Result<bool, DsmError> {
        // The CAS on the lock word costs a round trip regardless of
        // outcome; a dropped CAS is reissued after backing off locally.
        self.retry
            .run(VerbClass::LockAtomic, self.home.0 as u64, |a| {
                if a.step > 0 {
                    t.compute(a.step);
                }
                t.rdma_cas(self.home)
            })
            .map_err(|e| lock_fault(e, t.node().0, self.home.0))?;
        let mut st = self.state.lock();
        while st.0.locked {
            self.cond.wait(&mut st);
        }
        st.0.locked = true;
        st.1.acquisitions += 1;
        let me = t.node().0;
        let switched = st.0.last_holder != Some(me);
        let before = t.now();
        if switched {
            st.1.node_switches += 1;
            // Hand-off from another node: the release flag travelled one
            // network hop to reach us.
            t.merge(st.0.last_release + t.cost().network_latency);
        } else {
            t.merge(st.0.last_release);
        }
        st.0.last_holder = Some(me);
        drop(st);
        let jump = t.now() - before;
        if switched && jump > 0 {
            // Real-time shadow of the virtual wait (~0.3 ns per simulated
            // cycle, capped). Without this, waiting out another node's
            // tenure is instantaneous in wall-clock terms and delegation
            // queues never accumulate the way they do on real hardware —
            // queue *dynamics* must track the virtual timeline for HQDL
            // batching (and cohort pass behaviour) to be representative.
            let shadow = std::time::Duration::from_nanos((jump * 3 / 10).min(100_000));
            let start = std::time::Instant::now();
            while start.elapsed() < shadow {
                std::thread::yield_now();
            }
        }
        Ok(switched)
    }

    /// Release: a posted write of the lock word (the successor's spin flag).
    ///
    /// Panics if the fabric stays broken past the retry budget; see
    /// [`Self::try_release`] for the fallible flavor.
    pub fn release<E: Endpoint>(&self, t: &mut E) {
        if let Err(e) = self.try_release(t) {
            panic!("unrecoverable DSM fault: {e}");
        }
    }

    /// Fallible flavor of [`Self::release`]: if the hand-off write never
    /// lands, the lock stays held (the successor must not observe a release
    /// that did not reach the fabric).
    pub fn try_release<E: Endpoint>(&self, t: &mut E) -> Result<(), DsmError> {
        self.retry
            .run(VerbClass::LockAtomic, !(self.home.0 as u64), |a| {
                if a.step > 0 {
                    t.compute(a.step);
                }
                t.rdma_write(self.home, 8).map(|_| ())
            })
            .map_err(|e| lock_fault(e, t.node().0, self.home.0))?;
        let mut st = self.state.lock();
        assert!(st.0.locked, "releasing an unheld global lock");
        st.0.locked = false;
        st.0.last_release = t.now();
        self.cond.notify_one();
        Ok(())
    }

    pub fn stats(&self) -> GlobalLockStats {
        self.state.lock().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::testkit::{thread, tiny_net};
    use simnet::CostModel;

    #[test]
    fn mutual_exclusion_and_clock_monotonicity() {
        let net = tiny_net(4);
        let lock = DsmGlobalLock::new(NodeId(0));
        let shared = Arc::new(Mutex::new((0u64, 0u64))); // (counter, last_clock)
        let handles: Vec<_> = (0..4)
            .map(|n| {
                let lock = lock.clone();
                let net = net.clone();
                let shared = shared.clone();
                std::thread::spawn(move || {
                    let mut t = thread(&net, n as u16, 0);
                    for _ in 0..200 {
                        lock.acquire(&mut t);
                        {
                            let mut s = shared.lock();
                            s.0 += 1;
                            // Virtual time inside the lock is monotone
                            // across holders.
                            assert!(t.now() >= s.1);
                            s.1 = t.now();
                        }
                        t.compute(50);
                        lock.release(&mut t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.lock().0, 800);
        let st = lock.stats();
        assert_eq!(st.acquisitions, 800);
        assert!(st.node_switches >= 3);
    }

    #[test]
    fn acquisition_costs_a_round_trip() {
        let net = tiny_net(2);
        let lock = DsmGlobalLock::new(NodeId(1));
        let mut t = thread(&net, 0, 0);
        lock.acquire(&mut t);
        let c = CostModel::paper_2011();
        assert!(t.now() >= 2 * c.network_latency);
        lock.release(&mut t);
    }

    #[test]
    #[should_panic(expected = "unheld")]
    fn double_release_is_a_bug() {
        let lock = DsmGlobalLock::new(NodeId(0));
        let mut t = thread(&tiny_net(1), 0, 0);
        lock.acquire(&mut t);
        lock.release(&mut t);
        lock.release(&mut t);
    }
}
