//! Signal/wait: point-to-point synchronization (mentioned as part of
//! Vela's API in §4 — "among other primitives such as signal/wait").
//!
//! A [`DsmFlag`] is the DSM analogue of a condition flag: the signaller
//! self-downgrades (release semantics) before raising the flag; waiters
//! self-invalidate (acquire semantics) after observing it, so everything
//! written before `signal` is visible after `wait` — without a full
//! barrier episode across all threads.
//!
//! The flag word itself is synchronization (a deliberate data race in the
//! application's terms), so it is exercised through one-sided atomics on
//! its home node, not through the page cache.

use crate::dsm::global_lock::lock_fault;
use carina::{CarinaSiSd, Coherence, Dsm, DsmError};
use parking_lot::{Condvar, Mutex};
use rma::{Endpoint, SimTransport, Transport, VerbClass};
use simnet::NodeId;
use std::sync::Arc;

struct FlagState {
    /// Generation counter: signal increments, waiters wait for `> seen`.
    generation: u64,
    /// Virtual time of the latest signal.
    signal_clock: u64,
}

/// A cluster-wide signal/wait flag with release/acquire fence semantics.
pub struct DsmFlag<T: Transport = SimTransport, C: Coherence = CarinaSiSd> {
    dsm: Arc<Dsm<T, C>>,
    home: NodeId,
    state: Mutex<FlagState>,
    cond: Condvar,
}

impl<T: Transport, C: Coherence> DsmFlag<T, C> {
    /// Create a flag whose word lives on `home`.
    pub fn new(dsm: Arc<Dsm<T, C>>, home: NodeId) -> Arc<Self> {
        Arc::new(DsmFlag {
            dsm,
            home,
            state: Mutex::new(FlagState {
                generation: 0,
                signal_clock: 0,
            }),
            cond: Condvar::new(),
        })
    }

    /// Release semantics: publish all our writes (SD fence), then raise
    /// the flag with a one-sided write to its home.
    ///
    /// Panics if the fabric stays broken past the retry budget; see
    /// [`Self::try_signal`] for the fallible flavor.
    pub fn signal(&self, t: &mut T::Endpoint) {
        if let Err(e) = self.try_signal(t) {
            panic!("unrecoverable DSM fault: {e}");
        }
    }

    /// Fallible flavor of [`Self::signal`]: the generation only advances if
    /// both the fence and the flag write reach the fabric, so waiters never
    /// observe a signal whose payload was lost.
    pub fn try_signal(&self, t: &mut T::Endpoint) -> Result<(), DsmError> {
        self.dsm.try_sd_fence(t)?;
        self.dsm
            .config()
            .retry
            .run(VerbClass::FlagWrite, self.home.0 as u64, |a| {
                if a.step > 0 {
                    t.compute(a.step);
                }
                t.rdma_write(self.home, 8).map(|_| ())
            })
            .map_err(|e| lock_fault(e, t.node().0, self.home.0))?;
        let mut st = self.state.lock();
        st.generation += 1;
        st.signal_clock = st.signal_clock.max(t.now());
        self.cond.notify_all();
        Ok(())
    }

    /// Current generation (for [`Self::wait_past`]).
    pub fn generation(&self) -> u64 {
        self.state.lock().generation
    }

    /// Acquire semantics: block until the flag's generation exceeds
    /// `seen`, then self-invalidate. In the real system this is a remote
    /// polling loop; each poll is a one-sided read, charged on wakeup as a
    /// final successful poll.
    pub fn wait_past(&self, t: &mut T::Endpoint, seen: u64) {
        if let Err(e) = self.try_wait_past(t, seen) {
            panic!("unrecoverable DSM fault: {e}");
        }
    }

    /// Fallible flavor of [`Self::wait_past`].
    pub fn try_wait_past(&self, t: &mut T::Endpoint, seen: u64) -> Result<(), DsmError> {
        {
            let mut st = self.state.lock();
            while st.generation <= seen {
                self.cond.wait(&mut st);
            }
            t.merge(st.signal_clock);
        }
        // The successful poll: one remote read of the flag word. A dropped
        // poll is just another unsuccessful poll — reissue after backing off.
        self.dsm
            .config()
            .retry
            .run(VerbClass::FlagWrite, !(self.home.0 as u64), |a| {
                if a.step > 0 {
                    t.compute(a.step);
                }
                t.rdma_read(self.home, 8)
            })
            .map_err(|e| lock_fault(e, t.node().0, self.home.0))?;
        self.dsm.try_si_fence(t)
    }

    /// Wait for the *next* signal after this call. Note: if the signal of
    /// interest may already have fired, use [`Self::wait_past`] with a
    /// generation observed *before* the signaller could run — otherwise
    /// this blocks until a further signal.
    pub fn wait(&self, t: &mut T::Endpoint) {
        let seen = self.generation();
        self.wait_past(t, seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carina::CarinaConfig;
    use mem::{GlobalAddr, PAGE_BYTES};
    use simnet::testkit::{thread, tiny_net};
    use simnet::Interconnect;

    fn setup(nodes: usize) -> (Arc<Dsm>, Arc<Interconnect>) {
        let net = tiny_net(nodes);
        let dsm = Dsm::new(net.clone(), 1 << 20, CarinaConfig::default());
        (dsm, net)
    }

    #[test]
    fn signal_publishes_prior_writes() {
        let (dsm, net) = setup(2);
        let flag = DsmFlag::new(dsm.clone(), NodeId(0));
        let addr = GlobalAddr(3 * PAGE_BYTES);

        let d = dsm.clone();
        let f = flag.clone();
        let n = net.clone();
        let producer = std::thread::spawn(move || {
            let mut t = thread(&n, 0, 0);
            d.write_u64(&mut t, addr, 1234);
            f.signal(&mut t);
        });
        let mut t = thread(&net, 1, 0);
        // Cache a stale copy first.
        let _ = dsm.read_u64(&mut t, addr);
        // Wait for the first signal ever (generation > 0) — the producer
        // may already have fired.
        flag.wait_past(&mut t, 0);
        assert_eq!(dsm.read_u64(&mut t, addr), 1234);
        producer.join().unwrap();
    }

    #[test]
    fn waiter_clock_reflects_signal_time() {
        let (dsm, net) = setup(2);
        let flag = DsmFlag::new(dsm, NodeId(0));
        let f = flag.clone();
        let n = net.clone();
        let signaller = std::thread::spawn(move || {
            let mut t = thread(&n, 0, 0);
            t.compute(50_000);
            f.signal(&mut t);
            t.now()
        });
        let mut t = thread(&net, 1, 0);
        flag.wait_past(&mut t, 0);
        let signal_time = signaller.join().unwrap();
        assert!(t.now() >= signal_time);
    }

    #[test]
    fn generations_support_repeated_signalling() {
        let (dsm, net) = setup(2);
        let flag = DsmFlag::new(dsm, NodeId(0));
        let mut t0 = thread(&net, 0, 0);
        let mut t1 = thread(&net, 1, 0);
        for i in 0..5 {
            let seen = flag.generation();
            assert_eq!(seen, i);
            flag.signal(&mut t0);
            flag.wait_past(&mut t1, seen);
        }
        assert_eq!(flag.generation(), 5);
    }
}
