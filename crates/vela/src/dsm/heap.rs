//! A pairing heap living **in global DSM memory**.
//!
//! The distributed lock microbenchmark (Figure 12) protects a shared
//! priority queue with a lock; the queue's nodes live in the global address
//! space, so whichever node executes a critical section pulls the touched
//! heap pages through the coherence layer. This is the migratory-data
//! behaviour that makes consolidated (hierarchical) critical-section
//! execution pay off.
//!
//! Same algorithm as [`crate::pairing_heap`], but every word access goes
//! through `Dsm::{read,write}_u64` and is charged virtual time.

use carina::{Coherence, Dsm};
use mem::GlobalAddr;
use rma::Transport;

const NONE: u64 = u64::MAX;

/// Header words.
const H_LEN: u64 = 0;
const H_ROOT: u64 = 1;
const H_FREE: u64 = 2;
const H_NEXT: u64 = 3;
const H_CAP: u64 = 4;
/// First node starts after an 8-word header.
const HEADER_WORDS: u64 = 8;
/// Words per node: key, child, sibling.
const NODE_WORDS: u64 = 3;

/// A handle to a pairing heap at a fixed global address. The handle itself
/// is plain data; all state lives in the DSM. Callers must serialize
/// operations with a lock (that is the point of the benchmark).
#[derive(Debug, Clone, Copy)]
pub struct DsmPairingHeap {
    base: GlobalAddr,
}

impl DsmPairingHeap {
    /// Bytes of global memory needed for a heap of `capacity` keys.
    pub fn bytes_needed(capacity: u64) -> u64 {
        (HEADER_WORDS + capacity * NODE_WORDS) * 8
    }

    /// Initialize an empty heap at `base` (which must have
    /// [`Self::bytes_needed`] bytes of space).
    pub fn init<T: Transport, C: Coherence>(
        dsm: &Dsm<T, C>,
        t: &mut T::Endpoint,
        base: GlobalAddr,
        capacity: u64,
    ) -> Self {
        let h = DsmPairingHeap { base };
        dsm.write_u64(t, h.word(H_LEN), 0);
        dsm.write_u64(t, h.word(H_ROOT), NONE);
        dsm.write_u64(t, h.word(H_FREE), NONE);
        dsm.write_u64(t, h.word(H_NEXT), 0);
        dsm.write_u64(t, h.word(H_CAP), capacity);
        h
    }

    /// Attach to an already initialized heap.
    pub fn attach(base: GlobalAddr) -> Self {
        DsmPairingHeap { base }
    }

    #[inline]
    fn word(&self, w: u64) -> GlobalAddr {
        self.base.offset(w * 8)
    }

    #[inline]
    fn node_word(&self, node: u64, field: u64) -> GlobalAddr {
        self.word(HEADER_WORDS + node * NODE_WORDS + field)
    }

    fn key<T: Transport, C: Coherence>(&self, dsm: &Dsm<T, C>, t: &mut T::Endpoint, n: u64) -> u64 {
        dsm.read_u64(t, self.node_word(n, 0))
    }

    fn child<T: Transport, C: Coherence>(&self, dsm: &Dsm<T, C>, t: &mut T::Endpoint, n: u64) -> u64 {
        dsm.read_u64(t, self.node_word(n, 1))
    }

    fn sibling<T: Transport, C: Coherence>(&self, dsm: &Dsm<T, C>, t: &mut T::Endpoint, n: u64) -> u64 {
        dsm.read_u64(t, self.node_word(n, 2))
    }

    fn set_child<T: Transport, C: Coherence>(&self, dsm: &Dsm<T, C>, t: &mut T::Endpoint, n: u64, v: u64) {
        dsm.write_u64(t, self.node_word(n, 1), v);
    }

    fn set_sibling<T: Transport, C: Coherence>(&self, dsm: &Dsm<T, C>, t: &mut T::Endpoint, n: u64, v: u64) {
        dsm.write_u64(t, self.node_word(n, 2), v);
    }

    pub fn len<T: Transport, C: Coherence>(&self, dsm: &Dsm<T, C>, t: &mut T::Endpoint) -> u64 {
        dsm.read_u64(t, self.word(H_LEN))
    }

    pub fn is_empty<T: Transport, C: Coherence>(&self, dsm: &Dsm<T, C>, t: &mut T::Endpoint) -> bool {
        self.len(dsm, t) == 0
    }

    fn alloc<T: Transport, C: Coherence>(&self, dsm: &Dsm<T, C>, t: &mut T::Endpoint, key: u64) -> u64 {
        let free = dsm.read_u64(t, self.word(H_FREE));
        let n = if free != NONE {
            let next_free = self.sibling(dsm, t, free);
            dsm.write_u64(t, self.word(H_FREE), next_free);
            free
        } else {
            let next = dsm.read_u64(t, self.word(H_NEXT));
            let cap = dsm.read_u64(t, self.word(H_CAP));
            assert!(next < cap, "DSM pairing heap capacity exceeded");
            dsm.write_u64(t, self.word(H_NEXT), next + 1);
            next
        };
        dsm.write_u64(t, self.node_word(n, 0), key);
        self.set_child(dsm, t, n, NONE);
        self.set_sibling(dsm, t, n, NONE);
        n
    }

    fn release<T: Transport, C: Coherence>(&self, dsm: &Dsm<T, C>, t: &mut T::Endpoint, n: u64) {
        let free = dsm.read_u64(t, self.word(H_FREE));
        self.set_sibling(dsm, t, n, free);
        dsm.write_u64(t, self.word(H_FREE), n);
    }

    fn meld<T: Transport, C: Coherence>(&self, dsm: &Dsm<T, C>, t: &mut T::Endpoint, a: u64, b: u64) -> u64 {
        if a == NONE {
            return b;
        }
        if b == NONE {
            return a;
        }
        let (parent, child) = if self.key(dsm, t, a) <= self.key(dsm, t, b) {
            (a, b)
        } else {
            (b, a)
        };
        let old_child = self.child(dsm, t, parent);
        self.set_sibling(dsm, t, child, old_child);
        self.set_child(dsm, t, parent, child);
        parent
    }

    pub fn insert<T: Transport, C: Coherence>(&self, dsm: &Dsm<T, C>, t: &mut T::Endpoint, key: u64) {
        let n = self.alloc(dsm, t, key);
        let root = dsm.read_u64(t, self.word(H_ROOT));
        let new_root = self.meld(dsm, t, root, n);
        dsm.write_u64(t, self.word(H_ROOT), new_root);
        let len = dsm.read_u64(t, self.word(H_LEN));
        dsm.write_u64(t, self.word(H_LEN), len + 1);
    }

    pub fn extract_min<T: Transport, C: Coherence>(&self, dsm: &Dsm<T, C>, t: &mut T::Endpoint) -> Option<u64> {
        let root = dsm.read_u64(t, self.word(H_ROOT));
        if root == NONE {
            return None;
        }
        let key = self.key(dsm, t, root);
        let first = self.child(dsm, t, root);
        // Two-pass pairing.
        let mut pairs: Vec<u64> = Vec::new();
        let mut cur = first;
        while cur != NONE {
            let a = cur;
            let b = self.sibling(dsm, t, a);
            if b == NONE {
                self.set_sibling(dsm, t, a, NONE);
                pairs.push(a);
                break;
            }
            let next = self.sibling(dsm, t, b);
            self.set_sibling(dsm, t, a, NONE);
            self.set_sibling(dsm, t, b, NONE);
            pairs.push(self.meld(dsm, t, a, b));
            cur = next;
        }
        let mut new_root = NONE;
        for &p in pairs.iter().rev() {
            new_root = self.meld(dsm, t, new_root, p);
        }
        dsm.write_u64(t, self.word(H_ROOT), new_root);
        self.release(dsm, t, root);
        let len = dsm.read_u64(t, self.word(H_LEN));
        dsm.write_u64(t, self.word(H_LEN), len - 1);
        Some(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carina::CarinaConfig;
    use rand::prelude::*;
    use simnet::testkit::{thread, tiny_net};
    use simnet::SimThread;
    use std::sync::Arc;

    fn setup() -> (Arc<Dsm>, SimThread) {
        let net = tiny_net(2);
        let dsm = Dsm::new(net.clone(), 4 << 20, CarinaConfig::default());
        let t = thread(&net, 0, 0);
        (dsm, t)
    }

    #[test]
    fn sorts_like_local_heap() {
        let (dsm, mut t) = setup();
        let base = dsm.allocator().alloc(DsmPairingHeap::bytes_needed(256), 8).unwrap();
        let h = DsmPairingHeap::init(&dsm, &mut t, base, 256);
        let mut rng = StdRng::seed_from_u64(7);
        let keys: Vec<u64> = (0..200).map(|_| rng.random_range(0..500)).collect();
        for &k in &keys {
            h.insert(&dsm, &mut t, k);
        }
        assert_eq!(h.len(&dsm, &mut t), 200);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let out: Vec<u64> = std::iter::from_fn(|| h.extract_min(&dsm, &mut t)).collect();
        assert_eq!(out, sorted);
    }

    #[test]
    fn free_list_bounds_allocation() {
        let (dsm, mut t) = setup();
        let base = dsm.allocator().alloc(DsmPairingHeap::bytes_needed(4), 8).unwrap();
        let h = DsmPairingHeap::init(&dsm, &mut t, base, 4);
        for round in 0..10 {
            for k in 0..4u64 {
                h.insert(&dsm, &mut t, k + round);
            }
            for _ in 0..4 {
                h.extract_min(&dsm, &mut t).unwrap();
            }
        }
        assert!(h.is_empty(&dsm, &mut t));
    }

    #[test]
    #[should_panic(expected = "capacity exceeded")]
    fn overflow_panics() {
        let (dsm, mut t) = setup();
        let base = dsm.allocator().alloc(DsmPairingHeap::bytes_needed(2), 8).unwrap();
        let h = DsmPairingHeap::init(&dsm, &mut t, base, 2);
        for k in 0..3 {
            h.insert(&dsm, &mut t, k);
        }
    }

    #[test]
    fn operations_charge_virtual_time() {
        let (dsm, mut t) = setup();
        let base = dsm.allocator().alloc(DsmPairingHeap::bytes_needed(64), 8).unwrap();
        let h = DsmPairingHeap::init(&dsm, &mut t, base, 64);
        let before = t.now();
        h.insert(&dsm, &mut t, 1);
        assert!(t.now() > before);
    }
}
