//! Barriers with virtual-clock merging, and Argo's hierarchical barrier
//! (paper §4.1).
//!
//! The hierarchical barrier is: node-local barrier → leader self-downgrades
//! the node's write buffer → global barrier across node leaders → leader
//! self-invalidates the node's cache → node-local release. One SD and one
//! SI per *node* per barrier episode, not per thread.

use carina::{CarinaSiSd, Coherence, Dsm};
use parking_lot::{Condvar, Mutex};
use rma::{Endpoint, SimTransport, Transport};
use std::sync::Arc;

struct BarrierState {
    entered: usize,
    generation: u64,
    max_clock: u64,
    release_clock: u64,
}

/// A reusable barrier for `n` participants that merges virtual clocks:
/// every participant leaves with `max(entry clocks) + exit_cost`.
pub struct ClockBarrier {
    n: usize,
    exit_cost: u64,
    state: Mutex<BarrierState>,
    cond: Condvar,
}

impl ClockBarrier {
    pub fn new(n: usize, exit_cost: u64) -> Self {
        assert!(n > 0, "barrier needs participants");
        ClockBarrier {
            n,
            exit_cost,
            state: Mutex::new(BarrierState {
                entered: 0,
                generation: 0,
                max_clock: 0,
                release_clock: 0,
            }),
            cond: Condvar::new(),
        }
    }

    pub fn participants(&self) -> usize {
        self.n
    }

    /// Wait for all participants; merge clocks.
    pub fn wait<E: Endpoint>(&self, t: &mut E) {
        self.wait_leader(t, |_| {});
    }

    /// Wait for all participants; the **last** to arrive runs `leader`
    /// (with the merged clock) before everyone is released with the
    /// leader's final clock. This is how the hierarchical barrier performs
    /// its one-per-node fences.
    pub fn wait_leader<E: Endpoint>(&self, t: &mut E, leader: impl FnOnce(&mut E)) {
        let mut st = self.state.lock();
        let my_gen = st.generation;
        st.entered += 1;
        st.max_clock = st.max_clock.max(t.now());
        if st.entered == self.n {
            // Leader: everyone has arrived. Run the leader section at the
            // merged clock, then release.
            t.merge(st.max_clock);
            drop(st);
            leader(t);
            t.compute(self.exit_cost);
            let mut st = self.state.lock();
            st.entered = 0;
            st.generation += 1;
            st.max_clock = 0;
            st.release_clock = t.now();
            self.cond.notify_all();
        } else {
            while st.generation == my_gen {
                self.cond.wait(&mut st);
            }
            t.merge(st.release_clock);
        }
    }
}

/// Argo's hierarchical barrier over a DSM cluster.
pub struct HierBarrier<T: Transport = SimTransport, C: Coherence = CarinaSiSd> {
    dsm: Arc<Dsm<T, C>>,
    node_barriers: Vec<ClockBarrier>,
    global: Arc<ClockBarrier>,
}

impl<T: Transport, C: Coherence> HierBarrier<T, C> {
    /// `threads_per_node[i]` = participating threads on node `i`. Nodes
    /// with zero threads do not participate.
    pub fn new(dsm: Arc<Dsm<T, C>>, threads_per_node: &[usize]) -> Self {
        let cost = dsm.net().cost();
        let active_nodes = threads_per_node.iter().filter(|&&n| n > 0).count();
        assert!(active_nodes > 0, "barrier needs at least one active node");
        let local_cost = 2 * cost.intersocket_latency;
        let rounds = (active_nodes as u64).next_power_of_two().trailing_zeros() as u64;
        let global_cost = 2 * cost.network_latency * rounds.max(if active_nodes > 1 { 1 } else { 0 });
        HierBarrier {
            dsm,
            node_barriers: threads_per_node
                .iter()
                .map(|&n| ClockBarrier::new(n.max(1), local_cost))
                .collect(),
            global: Arc::new(ClockBarrier::new(active_nodes, global_cost)),
        }
    }

    /// Wait at the barrier. DRF programs may rely on: every write before
    /// the barrier (on any thread) is visible to every read after it.
    pub fn wait(&self, t: &mut T::Endpoint) {
        let node = t.node().idx();
        let obs_start = t.obs_now();
        let span = self.dsm.mint_span(t, node as u16);
        let dsm = &self.dsm;
        let global = &self.global;
        self.node_barriers[node].wait_leader(t, |t| {
            dsm.sd_fence(t);
            global.wait(t);
            dsm.si_fence(t);
        });
        // The whole episode — local rendezvous, leader fences, global
        // rendezvous — counts as barrier wait for this thread.
        self.dsm.record_site(
            t,
            node as u16,
            obs::Site::BarrierWait,
            span,
            obs_start,
            t.obs_now().saturating_sub(obs_start),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carina::CarinaConfig;
    use mem::{GlobalAddr, PAGE_BYTES};
    use simnet::testkit::{thread, tiny_net};

    #[test]
    fn clock_barrier_merges_to_max_plus_cost() {
        let b = Arc::new(ClockBarrier::new(3, 100));
        let net = tiny_net(1);
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let b = b.clone();
                let net = net.clone();
                std::thread::spawn(move || {
                    let mut t = thread(&net, 0, 0);
                    t.compute((i as u64 + 1) * 500);
                    b.wait(&mut t);
                    t.now()
                })
            })
            .collect();
        let exits: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(exits.iter().all(|&e| e == 1600)); // max(500,1000,1500)+100
    }

    #[test]
    fn clock_barrier_is_reusable() {
        let b = ClockBarrier::new(1, 10);
        let mut t = thread(&tiny_net(1), 0, 0);
        b.wait(&mut t);
        b.wait(&mut t);
        assert_eq!(t.now(), 20);
    }

    #[test]
    fn hier_barrier_publishes_writes() {
        // Two nodes, one thread each: node 0 writes, both barrier, node 1
        // must read the new value.
        let net = tiny_net(2);
        let dsm = carina::Dsm::new(net.clone(), 1 << 20, CarinaConfig::default());
        let barrier = Arc::new(HierBarrier::new(dsm.clone(), &[1, 1]));
        let addr = GlobalAddr(3 * PAGE_BYTES); // homed on node 1

        let d0 = dsm.clone();
        let b0 = barrier.clone();
        let n0 = net.clone();
        let writer = std::thread::spawn(move || {
            let mut t = thread(&n0, 0, 0);
            d0.write_u64(&mut t, addr, 123);
            b0.wait(&mut t);
        });
        let reader = std::thread::spawn(move || {
            let mut t = thread(&net, 1, 0);
            // Cache the stale value first to prove SI happens.
            let _ = dsm.read_u64(&mut t, addr);
            barrier.wait(&mut t);
            dsm.read_u64(&mut t, addr)
        });
        writer.join().unwrap();
        assert_eq!(reader.join().unwrap(), 123);
    }

    #[test]
    fn barrier_wait_lands_in_latency_profile() {
        let net = tiny_net(1);
        let dsm = carina::Dsm::new(net.clone(), 1 << 20, CarinaConfig::default());
        let barrier = HierBarrier::new(dsm.clone(), &[1]);
        let mut t = thread(&net, 0, 0);
        barrier.wait(&mut t);
        barrier.wait(&mut t);
        let prof = dsm.profile().snapshot();
        assert_eq!(prof.get(obs::Site::BarrierWait).count(), 2);
    }

    #[test]
    fn single_node_barrier_costs_no_network() {
        let net = tiny_net(1);
        let dsm = carina::Dsm::new(net.clone(), 1 << 20, CarinaConfig::default());
        let barrier = HierBarrier::new(dsm, &[1]);
        let mut t = thread(&net, 0, 0);
        barrier.wait(&mut t);
        assert_eq!(net.stats().snapshot().messages, 0);
        assert!(t.now() < 10_000);
    }
}
