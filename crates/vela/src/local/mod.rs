//! Real shared-memory locks, measured in real time (Figure 11).
//!
//! These are genuine concurrent lock implementations — not simulations.
//! The single-node lock microbenchmark runs them on actual OS threads and
//! reports actual throughput, exactly as the paper does on one machine.

pub mod clh;
pub mod cohort;
pub mod flat_combining;
pub mod hbo;
pub mod hclh;
pub mod mcs;
pub mod qd;
pub mod ticket;

pub use clh::ClhLock;
pub use cohort::CohortLock;
pub use flat_combining::FcLock;
pub use hbo::HboLock;
pub use hclh::HclhLock;
pub use mcs::McsLock;
pub use qd::{QdFuture, QdLock};
pub use ticket::TicketLock;

use std::sync::Mutex;

/// A uniform synchronous critical-section interface over every local lock,
/// so one benchmark harness can sweep all of them. `socket` is the NUMA
/// domain of the calling thread (used by NUMA-aware locks, ignored by the
/// rest).
pub trait CsLock<T>: Sync {
    fn with<R: Send + 'static>(&self, socket: usize, f: impl FnOnce(&mut T) -> R + Send + 'static)
        -> R;
    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// The "Pthreads mutex lock" baseline of Figure 11.
pub struct PthreadsMutex<T>(pub Mutex<T>);

impl<T> PthreadsMutex<T> {
    pub fn new(data: T) -> Self {
        PthreadsMutex(Mutex::new(data))
    }
}

impl<T: Send> CsLock<T> for PthreadsMutex<T> {
    fn with<R: Send + 'static>(
        &self,
        _socket: usize,
        f: impl FnOnce(&mut T) -> R + Send + 'static,
    ) -> R {
        f(&mut self.0.lock().expect("poisoned"))
    }
    fn name(&self) -> &'static str {
        "pthreads-mutex"
    }
}

impl<T: Send> CsLock<T> for McsLock<T> {
    fn with<R: Send + 'static>(
        &self,
        _socket: usize,
        f: impl FnOnce(&mut T) -> R + Send + 'static,
    ) -> R {
        McsLock::with(self, f)
    }
    fn name(&self) -> &'static str {
        "mcs"
    }
}

impl<T: Send> CsLock<T> for ClhLock<T> {
    fn with<R: Send + 'static>(
        &self,
        _socket: usize,
        f: impl FnOnce(&mut T) -> R + Send + 'static,
    ) -> R {
        ClhLock::with(self, f)
    }
    fn name(&self) -> &'static str {
        "clh"
    }
}

impl<T: Send> CsLock<T> for CohortLock<T> {
    fn with<R: Send + 'static>(
        &self,
        socket: usize,
        f: impl FnOnce(&mut T) -> R + Send + 'static,
    ) -> R {
        CohortLock::with(self, socket % self.sockets(), f)
    }
    fn name(&self) -> &'static str {
        "cohort"
    }
}

impl<T: Send> CsLock<T> for QdLock<T> {
    fn with<R: Send + 'static>(
        &self,
        _socket: usize,
        f: impl FnOnce(&mut T) -> R + Send + 'static,
    ) -> R {
        self.delegate_wait(f)
    }
    fn name(&self) -> &'static str {
        "qd"
    }
}

impl<T: Send> CsLock<T> for FcLock<T> {
    fn with<R: Send + 'static>(
        &self,
        _socket: usize,
        f: impl FnOnce(&mut T) -> R + Send + 'static,
    ) -> R {
        FcLock::with(self, f)
    }
    fn name(&self) -> &'static str {
        "flat-combining"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn hammer<L: CsLock<u64> + Send + 'static>(lock: Arc<L>, threads: usize, per: u64) -> u64 {
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let l = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..per {
                        l.with(i % 4, |v| *v += 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        lock.with(0, |v| *v)
    }

    #[test]
    fn every_lock_satisfies_the_trait_contract() {
        assert_eq!(hammer(Arc::new(PthreadsMutex::new(0)), 4, 5000), 20_000);
        assert_eq!(hammer(Arc::new(McsLock::new(0)), 4, 5000), 20_000);
        assert_eq!(hammer(Arc::new(ClhLock::new(0)), 4, 5000), 20_000);
        assert_eq!(hammer(Arc::new(CohortLock::new(4, 32, 0)), 4, 5000), 20_000);
        assert_eq!(hammer(Arc::new(QdLock::new(0)), 4, 5000), 20_000);
        assert_eq!(hammer(Arc::new(FcLock::new(64, 0)), 4, 5000), 20_000);
        assert_eq!(hammer(Arc::new(HboLock::new(8, 64, 0)), 4, 5000), 20_000);
        assert_eq!(hammer(Arc::new(HclhLock::new(4, 32, 0)), 4, 5000), 20_000);
    }
}
