//! The CLH queue lock (Craig 1993; Magnusson, Landin & Hagersten 1994).
//!
//! Like MCS, waiters form a queue; unlike MCS each waiter spins on its
//! *predecessor's* node, and releases by flipping its own node — the
//! predecessor's node is then recycled by the releasing thread.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

struct ClhNode {
    locked: AtomicBool,
}

/// A CLH lock protecting `T`.
pub struct ClhLock<T> {
    tail: AtomicPtr<ClhNode>,
    data: UnsafeCell<T>,
}

// SAFETY: queue protocol guarantees exclusivity between acquire and release.
unsafe impl<T: Send> Sync for ClhLock<T> {}
unsafe impl<T: Send> Send for ClhLock<T> {}

impl<T> ClhLock<T> {
    pub fn new(data: T) -> Self {
        // The queue starts with a sentinel "released" node.
        let sentinel = Box::into_raw(Box::new(ClhNode {
            locked: AtomicBool::new(false),
        }));
        ClhLock {
            tail: AtomicPtr::new(sentinel),
            data: UnsafeCell::new(data),
        }
    }

    /// Run `f` with exclusive access to the data.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let node = Box::into_raw(Box::new(ClhNode {
            locked: AtomicBool::new(true),
        }));
        let pred = self.tail.swap(node, Ordering::AcqRel);
        // SAFETY: `pred` stays allocated until we recycle it below; its
        // owner only flips `locked` and never frees it.
        let mut spins = 0u32;
        while unsafe { (*pred).locked.load(Ordering::Acquire) } {
            spins += 1;
            if spins > 128 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        // SAFETY: predecessor released; we hold the lock.
        let result = f(unsafe { &mut *self.data.get() });
        unsafe {
            // Release our node for our successor, recycle the predecessor.
            (*node).locked.store(false, Ordering::Release);
            drop(Box::from_raw(pred));
        }
        result
    }
}

impl<T> Drop for ClhLock<T> {
    fn drop(&mut self) {
        // The final tail node (sentinel or last releaser's node) is live.
        let tail = *self.tail.get_mut();
        if !tail.is_null() {
            // SAFETY: no threads can hold references (we have &mut self).
            unsafe { drop(Box::from_raw(tail)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_under_contention() {
        let lock = Arc::new(ClhLock::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..20_000 {
                        l.with(|v| *v += 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        lock.with(|v| assert_eq!(*v, 160_000));
    }

    #[test]
    fn no_leak_on_drop() {
        // Exercise drop with a used lock (would double-free or leak if the
        // recycling protocol were wrong; run under Miri/ASan to verify).
        let lock = ClhLock::new(1u32);
        lock.with(|v| *v += 1);
        lock.with(|v| assert_eq!(*v, 2));
        drop(lock);
    }
}
