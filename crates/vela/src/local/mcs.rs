//! The MCS queue lock (Mellor-Crummey & Scott 1991).
//!
//! Each waiter spins on its *own* queue node, so handing the lock over
//! touches one cache line — the property that made queue locks the
//! multicore baseline the paper's §2.2 starts from.

use std::cell::UnsafeCell;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

struct QNode {
    locked: AtomicBool,
    next: AtomicPtr<QNode>,
}

/// An MCS lock protecting `T`.
///
/// Queue nodes are heap-allocated per acquisition and freed by the
/// *successor* observation protocol (each node is freed by its owner after
/// release, once the successor link has been consumed).
pub struct McsLock<T> {
    tail: AtomicPtr<QNode>,
    data: UnsafeCell<T>,
}

// SAFETY: the queue protocol guarantees exclusive access to `data` between
// a successful `lock_raw` and the matching `unlock_raw`.
unsafe impl<T: Send> Sync for McsLock<T> {}
unsafe impl<T: Send> Send for McsLock<T> {}

impl<T> McsLock<T> {
    pub fn new(data: T) -> Self {
        McsLock {
            tail: AtomicPtr::new(ptr::null_mut()),
            data: UnsafeCell::new(data),
        }
    }

    /// Run `f` with exclusive access to the data.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let node = Box::into_raw(Box::new(QNode {
            locked: AtomicBool::new(true),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        // Enqueue at the tail.
        let prev = self.tail.swap(node, Ordering::AcqRel);
        if !prev.is_null() {
            // SAFETY: `prev` is live until its owner releases, and its
            // owner cannot free it before setting our `next` link (see
            // unlock path ordering below).
            unsafe { (*prev).next.store(node, Ordering::Release) };
            let mut spins = 0u32;
            while unsafe { (*node).locked.load(Ordering::Acquire) } {
                spins += 1;
                if spins > 128 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        // SAFETY: we hold the lock.
        let result = f(unsafe { &mut *self.data.get() });
        // Release: hand to successor or detach.
        unsafe {
            let next = (*node).next.load(Ordering::Acquire);
            if next.is_null() {
                if self
                    .tail
                    .compare_exchange(node, ptr::null_mut(), Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    drop(Box::from_raw(node));
                    return result;
                }
                // A successor is enqueueing; wait for its link.
                let mut next = (*node).next.load(Ordering::Acquire);
                let mut spins = 0u32;
                while next.is_null() {
                    spins += 1;
                    if spins > 128 {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                    next = (*node).next.load(Ordering::Acquire);
                }
                (*next).locked.store(false, Ordering::Release);
            } else {
                (*next).locked.store(false, Ordering::Release);
            }
            drop(Box::from_raw(node));
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_under_contention() {
        let lock = Arc::new(McsLock::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..20_000 {
                        l.with(|v| *v += 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        lock.with(|v| assert_eq!(*v, 160_000));
    }

    #[test]
    fn returns_closure_result() {
        let lock = McsLock::new(String::from("a"));
        let r = lock.with(|s| {
            s.push('b');
            s.len()
        });
        assert_eq!(r, 2);
    }

    #[test]
    fn sequential_reacquisition() {
        let lock = McsLock::new(Vec::new());
        for i in 0..100 {
            lock.with(|v| v.push(i));
        }
        lock.with(|v| assert_eq!(v.len(), 100));
    }
}
