//! Lock cohorting (Dice, Marathe & Shavit 2012).
//!
//! A NUMA-aware composite lock: one local (per-socket) lock plus one global
//! lock. While threads of the current socket keep arriving, the holder
//! passes the *local* lock and retains the global one ("cohort passing"),
//! so the protected data stays in the socket's caches; after a bounded
//! number of passes fairness forces a global release. This is the
//! state-of-the-art non-delegation baseline the paper compares QDL and
//! HQDL against (Figures 11 and 12).

use crate::local::ticket::TicketLock;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

struct LocalTier {
    lock: TicketLock,
    /// Does this socket currently own the global lock? Only read/written
    /// while holding the local lock.
    owns_global: AtomicU64, // 0 or 1 (atomic for Sync; protected by `lock`)
    passes: AtomicU64,
}

/// A cohort lock over `sockets` NUMA domains, protecting `T`.
pub struct CohortLock<T> {
    global: TicketLock,
    locals: Vec<LocalTier>,
    /// Maximum consecutive local passes before releasing the global lock.
    pass_limit: u64,
    data: UnsafeCell<T>,
}

// SAFETY: `data` is only accessed between a successful acquire (local +
// global ownership) and the matching release.
unsafe impl<T: Send> Sync for CohortLock<T> {}
unsafe impl<T: Send> Send for CohortLock<T> {}

impl<T> CohortLock<T> {
    /// `sockets`: number of NUMA domains; `pass_limit`: fairness bound on
    /// consecutive local handoffs (the paper's cohort locks use a few tens).
    pub fn new(sockets: usize, pass_limit: u64, data: T) -> Self {
        assert!(sockets > 0, "need at least one socket");
        CohortLock {
            global: TicketLock::new(),
            locals: (0..sockets)
                .map(|_| LocalTier {
                    lock: TicketLock::new(),
                    owns_global: AtomicU64::new(0),
                    passes: AtomicU64::new(0),
                })
                .collect(),
            pass_limit,
            data: UnsafeCell::new(data),
        }
    }

    pub fn sockets(&self) -> usize {
        self.locals.len()
    }

    /// Run `f` with exclusive access, from a thread on `socket`.
    pub fn with<R>(&self, socket: usize, f: impl FnOnce(&mut T) -> R) -> R {
        let tier = &self.locals[socket];
        tier.lock.lock();
        if tier.owns_global.load(Ordering::Relaxed) == 0 {
            self.global.lock();
            tier.owns_global.store(1, Ordering::Relaxed);
            tier.passes.store(0, Ordering::Relaxed);
        }
        // SAFETY: we hold the local lock of a socket that owns the global
        // lock — system-wide exclusivity.
        let result = f(unsafe { &mut *self.data.get() });
        // Release policy: pass locally while waiters exist and the fairness
        // budget allows; otherwise surrender the global lock.
        let passes = tier.passes.load(Ordering::Relaxed);
        if tier.lock.has_waiters() && passes < self.pass_limit {
            tier.passes.store(passes + 1, Ordering::Relaxed);
            tier.lock.unlock(); // global stays with this socket
        } else {
            tier.owns_global.store(0, Ordering::Relaxed);
            self.global.unlock();
            tier.lock.unlock();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_under_contention_across_sockets() {
        let lock = Arc::new(CohortLock::new(4, 32, 0u64));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let l = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..20_000 {
                        l.with(i % 4, |v| *v += 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.with(0, |v| *v), 160_000);
    }

    #[test]
    fn single_socket_degenerates_to_plain_lock() {
        let lock = Arc::new(CohortLock::new(1, 8, Vec::new()));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let l = lock.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        l.with(0, |v| v.push((t, i)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.with(0, |v| v.len()), 2000);
    }

    #[test]
    fn pass_limit_zero_releases_global_every_time() {
        // With a zero pass budget the lock is still correct (just slower).
        let lock = Arc::new(CohortLock::new(2, 0, 0u64));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let l = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        l.with(i % 2, |v| *v += 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.with(0, |v| *v), 20_000);
    }
}
